//! Golden-file test of the C emitter: the instrumented step function for a
//! small Saturation model must serialize byte-identically across runs and
//! machines.
//!
//! Because [`cftcg::codegen::emit_c`] prints the *optimized* step program,
//! this golden also pins the mid-end's output for the example: constant
//! folding, CSE, dead-register elimination and register compaction all
//! leave fingerprints in the emitted text, so an unintentional pass change
//! fails here with a diffable artifact.
//!
//! After an *intentional* change to the optimizer or the C emitter,
//! re-bless with:
//!
//! ```text
//! BLESS=1 cargo test --offline --test cemit_golden
//! ```

use std::fs;
use std::path::PathBuf;

use cftcg::codegen::{compile, emit_c};
use cftcg::model::{BlockKind, DataType, InputSign, ModelBuilder, Value};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/saturation_step.c")
}

/// The Saturation example from the crate docs, plus a redundant gain pair
/// the optimizer visibly cleans up (the two `* 2.0` products CSE into one
/// register, and the folded `1.0 + 1.0` constant appears pre-computed in
/// the emitted text).
fn saturation_model() -> cftcg::model::Model {
    let mut b = ModelBuilder::new("SatExample");
    let u = b.inport("u", DataType::F64);
    let one = b.add("one", BlockKind::Constant { value: Value::F64(1.0) });
    let two = b.add("two", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
    b.wire(one, two);
    b.connect(one, 0, two, 1);
    let gain_a = b.add("gain_a", BlockKind::Gain { gain: 2.0 });
    let gain_b = b.add("gain_b", BlockKind::Gain { gain: 2.0 });
    b.wire(u, gain_a);
    b.connect(u, 0, gain_b, 0);
    let sum = b.add("sum", BlockKind::Sum { signs: vec![InputSign::Plus; 3] });
    b.wire(gain_a, sum);
    b.connect(gain_b, 0, sum, 1);
    b.connect(two, 0, sum, 2);
    let sat = b.add("sat", BlockKind::Saturation { lower: 0.0, upper: 10.0 });
    b.wire(sum, sat);
    let y = b.outport("y");
    b.wire(sat, y);
    b.finish().expect("example model validates")
}

#[test]
fn emitted_c_matches_golden() {
    let model = saturation_model();
    let compiled = compile(&model).expect("example compiles");
    let c = emit_c(&compiled);

    // Sanity before comparing bytes: the optimizer fingerprints this test
    // relies on are actually present.
    let stats = compiled.opt_stats();
    assert!(stats.consts_folded > 0, "1.0 + 1.0 must fold");
    assert!(stats.cse_hits > 0, "the duplicate gains must CSE");
    assert!(stats.regs_after < stats.regs_before, "compaction must shrink the register file");

    let golden = golden_path();
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden, &c).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!("missing golden file {} (run with BLESS=1 to create): {e}", golden.display())
    });
    if c != expected {
        let actual = golden.with_extension("actual.c");
        fs::write(&actual, &c).expect("write actual");
        panic!(
            "C emitter drifted from golden ({} bytes rendered vs {} expected); \
             actual output written to {} — re-bless with BLESS=1 if the change is intentional",
            c.len(),
            expected.len(),
            actual.display()
        );
    }
}
