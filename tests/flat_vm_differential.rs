//! Differential battery: the optimized flat VM against the reference tree
//! walker — and, where supported, the native JIT tier against both — over
//! every bundled benchmark model and randomized input cases.
//!
//! Three surfaces must agree bit-for-bit — anything less would let the
//! optimizer silently change fuzz outcomes:
//!
//! 1. **Outputs**: every outport value of every tick.
//! 2. **Signal registers** (post-remap): `signals()` on the flat engine
//!    reads the same values `reference_signals()` reads on the reference
//!    engine — the contract `cftcg-trace` probes and the lockstep auditor
//!    rely on.
//! 3. **Recorder event sequences**: branch, condition, decision, compare
//!    and assertion events in identical order with identical payloads —
//!    the contract byte-identical fuzz campaigns rely on.

use cftcg::codegen::{compile, CompiledModel, Engine, Executor, TestCase};
use cftcg::coverage::{AssertionId, BranchId, ConditionId, DecisionId, Recorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Every probe event, in execution order, with bit-exact payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Branch(BranchId),
    Condition(ConditionId, bool),
    Decision(DecisionId, u64, u32),
    Compare(u64, u64),
    Assertion(AssertionId, bool),
}

#[derive(Default)]
struct EventLog {
    events: Vec<Event>,
}

impl Recorder for EventLog {
    fn branch(&mut self, id: BranchId) {
        self.events.push(Event::Branch(id));
    }
    fn condition(&mut self, id: ConditionId, value: bool) {
        self.events.push(Event::Condition(id, value));
    }
    fn decision_eval(&mut self, id: DecisionId, vector: u64, outcome: u32) {
        self.events.push(Event::Decision(id, vector, outcome));
    }
    fn compare(&mut self, lhs: f64, rhs: f64) {
        self.events.push(Event::Compare(lhs.to_bits(), rhs.to_bits()));
    }
    fn assertion(&mut self, id: AssertionId, passed: bool) {
        self.events.push(Event::Assertion(id, passed));
    }
}

/// Random case bytes: `ticks` tuples of mostly-interesting values.
fn random_case(compiled: &CompiledModel, rng: &mut SmallRng, ticks: usize) -> TestCase {
    let size = compiled.layout().tuple_size().max(1);
    let mut bytes = Vec::with_capacity(size * ticks);
    for _ in 0..size * ticks {
        // Bias towards small values and boundary bytes so branches and
        // saturations actually flip.
        let b = match rng.random_range(0..4u32) {
            0 => 0u8,
            1 => 0xFF,
            2 => rng.random_range(0..4u32) as u8,
            _ => rng.random::<u8>(),
        };
        bytes.push(b);
    }
    TestCase::new(bytes)
}

/// Runs one case on all engines tick-by-tick, asserting the three
/// equivalence surfaces after every tick. The JIT engine (when this build
/// supports it) is held to the same contract as the flat VM: same signal
/// registers, same outputs, same state, same recorder event sequence.
fn assert_case_equivalent(compiled: &CompiledModel, case: &TestCase, context: &str) {
    let mut flat = Executor::new(compiled);
    let mut tree = Executor::new_reference(compiled);
    let mut jit = Executor::new_jit(compiled);
    let jit_live = jit.engine() == Engine::Jit;
    let mut flat_log = EventLog::default();
    let mut tree_log = EventLog::default();
    let mut jit_log = EventLog::default();
    flat.reset();
    tree.reset();
    jit.reset();

    let metas = compiled.signals();
    let ref_metas = compiled.reference_signals();
    assert_eq!(metas.len(), ref_metas.len(), "{context}: signal table lengths");

    for (tick, tuple) in compiled.layout().split(&case.bytes).enumerate() {
        flat.step_tuple(tuple, &mut flat_log);
        tree.step_tuple(tuple, &mut tree_log);
        if jit_live {
            jit.step_tuple(tuple, &mut jit_log);
        }

        for (m, rm) in metas.iter().zip(ref_metas) {
            assert_eq!(m.name, rm.name, "{context}: signal table order");
            assert_eq!(
                flat.reg(m.reg).to_bits(),
                tree.reg(rm.reg).to_bits(),
                "{context}: signal {} diverges at tick {tick}",
                m.name
            );
            if jit_live {
                assert_eq!(
                    jit.reg(m.reg).to_bits(),
                    flat.reg(m.reg).to_bits(),
                    "{context}: jit signal {} diverges at tick {tick}",
                    m.name
                );
            }
        }

        let flat_out: Vec<u64> = flat.outputs().iter().map(|v| v.as_f64().to_bits()).collect();
        let tree_out: Vec<u64> = tree.outputs().iter().map(|v| v.as_f64().to_bits()).collect();
        assert_eq!(flat_out, tree_out, "{context}: outputs diverge at tick {tick}");
        if jit_live {
            let jit_out: Vec<u64> = jit.outputs().iter().map(|v| v.as_f64().to_bits()).collect();
            assert_eq!(jit_out, flat_out, "{context}: jit outputs diverge at tick {tick}");
        }

        // State must match exactly too (same slots, all engines).
        let fs: Vec<u64> = flat.state().iter().map(|x| x.to_bits()).collect();
        let ts: Vec<u64> = tree.state().iter().map(|x| x.to_bits()).collect();
        assert_eq!(fs, ts, "{context}: state diverges at tick {tick}");
        if jit_live {
            let js: Vec<u64> = jit.state().iter().map(|x| x.to_bits()).collect();
            assert_eq!(js, fs, "{context}: jit state diverges at tick {tick}");
        }
    }

    assert_eq!(
        flat_log.events.len(),
        tree_log.events.len(),
        "{context}: event counts diverge ({} flat vs {} reference)",
        flat_log.events.len(),
        tree_log.events.len()
    );
    for (i, (f, t)) in flat_log.events.iter().zip(&tree_log.events).enumerate() {
        assert_eq!(f, t, "{context}: event {i} diverges");
    }
    if jit_live {
        assert_eq!(
            jit_log.events.len(),
            flat_log.events.len(),
            "{context}: jit event counts diverge ({} jit vs {} flat)",
            jit_log.events.len(),
            flat_log.events.len()
        );
        for (i, (j, f)) in jit_log.events.iter().zip(&flat_log.events).enumerate() {
            assert_eq!(j, f, "{context}: jit event {i} diverges");
        }
    }
}

#[test]
fn flat_vm_matches_reference_on_all_benchmarks() {
    for model in cftcg::benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let mut rng = SmallRng::seed_from_u64(0xCF7C6 ^ model.name().len() as u64);
        for round in 0..8 {
            let ticks = 1 + (round * 7) % 23;
            let case = random_case(&compiled, &mut rng, ticks);
            assert_case_equivalent(&compiled, &case, &format!("{} round {round}", model.name()));
        }
    }
}

#[test]
fn flat_vm_matches_reference_on_zero_and_saturating_inputs() {
    for model in cftcg::benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let size = compiled.layout().tuple_size().max(1);
        for fill in [0x00u8, 0xFF, 0x7F, 0x80, 0x01] {
            let case = TestCase::new(vec![fill; size * 11]);
            let context = format!("{} fill 0x{fill:02X}", model.name());
            assert_case_equivalent(&compiled, &case, &context);
        }
    }
}

#[test]
fn optimizer_reduces_benchmark_instruction_counts() {
    // The mid-end must be a net win somewhere on the benchmark corpus:
    // every model at least doesn't grow, and the corpus shrinks overall.
    let mut before = 0usize;
    let mut after = 0usize;
    for model in cftcg::benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let stats = compiled.opt_stats();
        assert!(
            stats.instrs_after_dce <= stats.instrs_before,
            "{}: optimizer grew the program ({} -> {})",
            model.name(),
            stats.instrs_before,
            stats.instrs_after_dce
        );
        assert!(
            stats.regs_after <= stats.regs_before,
            "{}: compaction grew the register file",
            model.name()
        );
        before += stats.instrs_before;
        after += stats.instrs_after_dce;
    }
    assert!(after < before, "mid-end removed nothing across the corpus ({before} -> {after})");
}
