//! Integration test for the live observatory: a short SolarPV campaign
//! runs with a telemetry registry attached while an [`ObserveServer`] on
//! an ephemeral port serves `/metrics`, `/snapshot`, and the dashboard.
//! The endpoints are scraped over raw TCP *during* the run and must
//! reflect live campaign state, not just post-run totals.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cftcg::observe::{Observatory, ObserveServer};
use cftcg::telemetry::json::Json;
use cftcg::telemetry::{SpanKind, SpanTrace, Telemetry};
use cftcg::Cftcg;

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to observatory");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    (head.to_string(), body.to_string())
}

/// Parses `cftcg_executions_total <n>` out of a Prometheus exposition body.
fn executions_total(metrics: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix("cftcg_executions_total "))
        .and_then(|v| v.parse().ok())
        .expect("cftcg_executions_total present")
}

#[test]
fn live_solar_pv_campaign_serves_all_endpoints() {
    let model = cftcg::benchmarks::by_name("SolarPV").expect("bundled benchmark");
    let telemetry = Arc::new(Telemetry::new());
    let trace = SpanTrace::new();
    let server =
        ObserveServer::bind("127.0.0.1:0", Observatory::new(Arc::clone(&telemetry), model.name()))
            .expect("observatory binds an ephemeral port");
    let addr = server.local_addr();

    // Run the campaign in the background while this thread scrapes.
    let campaign = {
        let telemetry = Arc::clone(&telemetry);
        let trace = trace.clone();
        std::thread::spawn(move || {
            let model = cftcg::benchmarks::by_name("SolarPV").unwrap();
            let tool = Cftcg::new(&model)
                .expect("benchmark compiles")
                .with_telemetry(telemetry)
                .with_span_trace(trace)
                .with_plateau_window(2_000);
            tool.generate(Duration::from_millis(1_200), 0)
        })
    };

    // Poll /metrics until the campaign is visibly making progress.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mid_run_execs = loop {
        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "metrics status: {head}");
        assert!(
            head.to_ascii_lowercase().contains("content-type: text/plain; version=0.0.4"),
            "Prometheus content type: {head}"
        );
        let execs = executions_total(&body);
        if execs > 0 {
            break execs;
        }
        assert!(Instant::now() < deadline, "campaign never reported executions");
        std::thread::sleep(Duration::from_millis(20));
    };

    // /snapshot is valid JSON describing the same live campaign.
    let (head, body) = http_get(addr, "/snapshot");
    assert!(head.starts_with("HTTP/1.1 200"), "snapshot status: {head}");
    assert!(head.to_ascii_lowercase().contains("content-type: application/json"));
    let snapshot = Json::parse(&body).expect("snapshot is valid JSON");
    assert_eq!(snapshot.get("model").and_then(Json::as_str), Some("SolarPV"));
    let snapshot_execs =
        snapshot.get("executions").and_then(Json::as_u64).expect("executions field");
    assert!(snapshot_execs >= mid_run_execs, "snapshot lags metrics: {snapshot_execs}");

    // The dashboard renders HTML with the model name and self-refresh.
    let (head, body) = http_get(addr, "/");
    assert!(head.starts_with("HTTP/1.1 200"), "dashboard status: {head}");
    assert!(head.to_ascii_lowercase().contains("content-type: text/html"));
    assert!(body.contains("cftcg observatory"), "dashboard title missing");
    assert!(body.contains("SolarPV"), "dashboard names the model");
    assert!(body.contains("http-equiv=\"refresh\""), "dashboard self-refreshes");

    // Unknown paths 404, /healthz answers — without killing the server.
    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "unknown path: {head}");
    let (head, body) = http_get(addr, "/healthz");
    assert!(head.starts_with("HTTP/1.1 200"), "healthz: {head}");
    assert_eq!(body, "ok\n");

    let generation = campaign.join().expect("campaign thread");
    assert!(generation.executions > 0);

    // After the run, the final scrape reflects the completed campaign and
    // the span trace exports Perfetto-loadable Chrome trace JSON.
    let (_, body) = http_get(addr, "/metrics");
    assert!(executions_total(&body) >= generation.executions);
    // The mutation-yield family is present and labeled per kind × outcome.
    assert!(body.contains("cftcg_mutation_yield{kind="), "yield family exported:\n{body}");
    assert!(body.contains("outcome=\"executed\"}"), "outcome labels exported");
    assert!(body.contains("cftcg_goals_per_second "), "goal rate exported");
    assert!(body.contains("cftcg_plateaus_total "), "plateau counter exported");

    // The snapshot carries the new search-forensics sections.
    let (_, body) = http_get(addr, "/snapshot");
    let snapshot = Json::parse(&body).expect("final snapshot is valid JSON");
    let yields = snapshot.get("yields").and_then(Json::as_array).expect("yields section");
    assert!(!yields.is_empty(), "yield rows present after a fuzzing run");
    assert!(
        yields.iter().any(|y| y.get("executed").and_then(Json::as_u64).unwrap_or(0) > 0),
        "some operator executed"
    );
    let seeds = snapshot.get("corpus_seeds").and_then(Json::as_array).expect("corpus_seeds");
    assert!(!seeds.is_empty(), "corpus forensics published at flush");
    assert!(snapshot.get("plateaus").is_some(), "plateau counter in snapshot");
    let chrome = trace.to_chrome_json();
    let parsed = Json::parse(&chrome).expect("trace is valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    assert!(!events.is_empty(), "trace captured span events");
    for kind in [SpanKind::Mutation, SpanKind::Execution] {
        assert!(
            events.iter().any(|e| e.get("name").and_then(Json::as_str) == Some(kind.name())),
            "trace contains {} spans",
            kind.name()
        );
    }

    server.shutdown();
}
