//! The `.mdlx` files shipped in `models/` stay in sync with the benchmark
//! builders (regenerate with `cargo run --bin cftcg -- export-benchmarks`).

use std::path::Path;

#[test]
fn shipped_model_files_match_builders() {
    for model in cftcg::benchmarks::all() {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("models")
            .join(format!("{}.mdlx", model.name().to_lowercase()));
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} missing ({e}); run `cargo run --bin cftcg -- export-benchmarks models`",
                path.display()
            )
        });
        let expected = cftcg::model::save_model(&model);
        assert_eq!(
            on_disk,
            expected,
            "{} is stale; run `cargo run --bin cftcg -- export-benchmarks models`",
            path.display()
        );
        // And the file loads back to a valid, identical model.
        let loaded = cftcg::model::load_model(&on_disk).expect("file parses");
        loaded.validate().expect("file validates");
        assert_eq!(loaded, model);
    }
}
