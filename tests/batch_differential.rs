//! Differential battery for the batched SoA tier: every lane of a
//! `BatchExecutor` must reproduce, bit for bit, what the single-case flat
//! VM (and the JIT, where live) produces for the same case.
//!
//! Three surfaces are compared per lane, per tick:
//!
//! 1. **Outputs**: every outport value.
//! 2. **State**: every state slot.
//! 3. **Events**: the branch / compare / assertion sequence — the batch
//!    program variant keeps branch probes, relational compares, and
//!    asserts, so per lane those must match the full flat program's
//!    sequence exactly (condition/decision events, which the batch tier
//!    never observes, are filtered out of the scalar log).
//!
//! Widths 1, 2, 4, 8 are exercised (1 = degenerate single-lane batch, 8 =
//! the fuzz loop's default), with lanes running *different* cases so
//! divergence and the scalar fallback path actually trigger.

use cftcg::codegen::{compile, BatchExecutor, CompiledModel, Engine, Executor, TestCase};
use cftcg::coverage::{AssertionId, BranchId, LaneBitmap, LaneRecorder, Recorder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The event classes the batch tier observes, bit-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Branch(BranchId),
    Compare(u64, u64),
    Assertion(AssertionId, bool),
}

/// Scalar recorder keeping only the batch-observable event classes.
#[derive(Default)]
struct ScalarLog {
    events: Vec<Event>,
}

impl Recorder for ScalarLog {
    fn branch(&mut self, id: BranchId) {
        self.events.push(Event::Branch(id));
    }
    fn compare(&mut self, lhs: f64, rhs: f64) {
        self.events.push(Event::Compare(lhs.to_bits(), rhs.to_bits()));
    }
    fn assertion(&mut self, id: AssertionId, passed: bool) {
        self.events.push(Event::Assertion(id, passed));
    }
}

/// Per-lane event log for the batch side.
struct LaneLog {
    lanes: Vec<Vec<Event>>,
}

impl LaneLog {
    fn new(width: usize) -> Self {
        LaneLog { lanes: (0..width).map(|_| Vec::new()).collect() }
    }
}

impl LaneRecorder for LaneLog {
    fn branch(&mut self, lane: usize, id: BranchId) {
        self.lanes[lane].push(Event::Branch(id));
    }
    fn compare(&mut self, lane: usize, lhs: f64, rhs: f64) {
        self.lanes[lane].push(Event::Compare(lhs.to_bits(), rhs.to_bits()));
    }
    fn assertion(&mut self, lane: usize, id: AssertionId, passed: bool) {
        self.lanes[lane].push(Event::Assertion(id, passed));
    }
}

/// Random case bytes biased towards branch-flipping values.
fn random_case(compiled: &CompiledModel, rng: &mut SmallRng, ticks: usize) -> TestCase {
    let size = compiled.layout().tuple_size().max(1);
    let bytes = (0..size * ticks)
        .map(|_| match rng.random_range(0..4u32) {
            0 => 0u8,
            1 => 0xFF,
            2 => rng.random_range(0..4u32) as u8,
            _ => rng.random::<u8>(),
        })
        .collect();
    TestCase::new(bytes)
}

/// Runs `cases` (one per lane, possibly different tick counts) through a
/// batch of `width` lanes and through the scalar engines case by case,
/// asserting the per-lane surfaces match.
fn assert_batch_equivalent(
    compiled: &CompiledModel,
    cases: &[TestCase],
    width: usize,
    context: &str,
) {
    assert!(cases.len() <= width);
    let layout = compiled.layout();
    let tuple = layout.tuple_size();

    // Batch side: tick all lanes together, snapshotting per-lane outputs
    // and state after each tick while the lane is live.
    let mut batch = BatchExecutor::new(compiled, width);
    let mut lane_log = LaneLog::new(width);
    let counts: Vec<usize> = cases.iter().map(|c| layout.tuple_count(&c.bytes)).collect();
    let ticks = counts.iter().copied().max().unwrap_or(0);
    let mut lane_outputs: Vec<Vec<Vec<u64>>> = vec![Vec::new(); cases.len()];
    let mut lane_states: Vec<Vec<Vec<u64>>> = vec![Vec::new(); cases.len()];
    batch.begin();
    for t in 0..ticks {
        for (lane, case) in cases.iter().enumerate() {
            if t < counts[lane] {
                batch.load_tuple(lane, &case.bytes[t * tuple..(t + 1) * tuple]);
            } else {
                batch.retire_lane(lane);
            }
        }
        batch.step_tick(&mut lane_log);
        for lane in 0..cases.len() {
            if t < counts[lane] {
                lane_outputs[lane]
                    .push(batch.lane_outputs(lane).iter().map(|v| v.as_f64().to_bits()).collect());
                lane_states[lane]
                    .push(batch.lane_state(lane).iter().map(|x| x.to_bits()).collect());
            }
        }
    }

    // Also collect covered-branch sets through the production LaneBitmap.
    let mut bitmap = LaneBitmap::new(compiled.map().branch_count(), width);
    let refs: Vec<&[u8]> = cases.iter().map(|c| c.bytes.as_slice()).collect();
    batch.run_cases(&refs, usize::MAX, &mut bitmap);

    // Scalar side: each engine runs every case on ONE executor back to
    // back — `reset()` must isolate the cases exactly like fresh lanes do.
    let mut flat = Executor::new(compiled);
    let mut jit = Executor::new_jit(compiled);
    let jit_live = jit.engine() == Engine::Jit;
    for (lane, case) in cases.iter().enumerate() {
        let mut log = ScalarLog::default();
        flat.reset();
        let mut scalar_branches = cftcg::coverage::BranchBitmap::new(compiled.map().branch_count());
        for (t, tup) in layout.split(&case.bytes).enumerate() {
            flat.step_tuple(tup, &mut log);
            let out: Vec<u64> = flat.outputs().iter().map(|v| v.as_f64().to_bits()).collect();
            assert_eq!(
                lane_outputs[lane][t], out,
                "{context}: lane {lane} outputs diverge from flat at tick {t}"
            );
            let st: Vec<u64> = flat.state().iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                lane_states[lane][t], st,
                "{context}: lane {lane} state diverges from flat at tick {t}"
            );
        }
        assert_eq!(
            lane_log.lanes[lane], log.events,
            "{context}: lane {lane} event sequence diverges from flat"
        );
        // Covered-branch set via the production bitmaps.
        flat.run_case(case, &mut scalar_branches);
        let mut lane_dense = cftcg::coverage::BranchBitmap::new(compiled.map().branch_count());
        bitmap.extract_lane(lane, &mut lane_dense);
        assert_eq!(
            lane_dense.set_indices().collect::<Vec<_>>(),
            scalar_branches.set_indices().collect::<Vec<_>>(),
            "{context}: lane {lane} covered-branch set diverges from flat"
        );
        if jit_live {
            let mut jlog = ScalarLog::default();
            jit.run_case(case, &mut jlog);
            assert_eq!(
                lane_log.lanes[lane], jlog.events,
                "{context}: lane {lane} event sequence diverges from jit"
            );
        }
    }
}

#[test]
fn batch_matches_flat_and_jit_on_all_benchmarks() {
    for model in cftcg::benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let mut rng = SmallRng::seed_from_u64(0xBA7C4 ^ model.name().len() as u64);
        for width in [1usize, 2, 4, 8] {
            for round in 0..3 {
                // Different tick counts per lane exercise lane retirement.
                let cases: Vec<TestCase> = (0..width)
                    .map(|lane| random_case(&compiled, &mut rng, 1 + (lane + 3 * round) % 13))
                    .collect();
                let context = format!("{} width {width} round {round}", model.name());
                assert_batch_equivalent(&compiled, &cases, width, &context);
            }
        }
    }
}

#[test]
fn batch_matches_flat_on_saturating_fills() {
    for model in cftcg::benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let size = compiled.layout().tuple_size().max(1);
        // All four lanes saturate differently — heavy divergence.
        let cases: Vec<TestCase> =
            [0x00u8, 0xFF, 0x7F, 0x80].iter().map(|&f| TestCase::new(vec![f; size * 9])).collect();
        assert_batch_equivalent(&compiled, &cases, 4, &format!("{} fills", model.name()));
    }
}

#[test]
fn batch_with_fewer_cases_than_lanes() {
    for model in cftcg::benchmarks::all().into_iter().take(2) {
        let compiled = compile(&model).expect("benchmark compiles");
        let mut rng = SmallRng::seed_from_u64(0x51AC);
        let cases: Vec<TestCase> = (0..3).map(|_| random_case(&compiled, &mut rng, 7)).collect();
        assert_batch_equivalent(&compiled, &cases, 8, "3 cases in 8 lanes");
    }
}
