//! Golden-file test of the HTML campaign diff report: two fixed-seed
//! SolarPV campaigns must diff and render byte-identically across runs and
//! machines.
//!
//! Wall-clock timestamps are the only nondeterministic renderer inputs, so
//! the test zeroes them, and the engine/host annotations (which the CLI
//! attaches from the live environment) are pinned to fixed literals;
//! everything else — the partition, first-hit shifts, yield deltas, the
//! frontier migration — is fully determined by the two seeds.
//!
//! After an *intentional* change to the diff report's output, re-bless with:
//!
//! ```text
//! BLESS=1 cargo test --offline --test diff_html_golden
//! ```

use std::fs;
use std::path::PathBuf;

use cftcg::compare::{diff_html, replay_tracker, ArtifactDiff, FrontierMigration};
use cftcg::pipeline::{CampaignArtifact, HostMeta};
use cftcg::Cftcg;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/campaign_diff.html")
}

fn campaign(tool: &Cftcg, seed: u64) -> CampaignArtifact {
    let model = "SolarPV";
    let generation = tool.generate_executions(3_000, seed);
    let mut artifact =
        CampaignArtifact::from_generation(model, seed, 1, &generation, tool.compiled().map());
    artifact.elapsed_s = 0.0;
    for case in &mut artifact.cases {
        case.t_s = 0.0;
    }
    for hit in &mut artifact.hits {
        hit.elapsed_s = 0.0;
    }
    // Pin the environment annotations the CLI would attach, so the report
    // is identical on every host.
    artifact.engine = Some("flat".to_string());
    artifact.host = Some(HostMeta { cores: 8, arch: "x86_64".to_string() });
    artifact
}

#[test]
fn campaign_diff_matches_golden() {
    let model = cftcg::benchmarks::solar_pv::model();
    let tool = Cftcg::new(&model).expect("benchmark compiles");

    // Round-trip both artifacts through JSON exactly like `cftcg diff`
    // does (it always starts from two campaign.json files on disk).
    let a = CampaignArtifact::from_json(&campaign(&tool, 41).to_json()).expect("A round-trips");
    let b = CampaignArtifact::from_json(&campaign(&tool, 42).to_json()).expect("B round-trips");

    let diff = ArtifactDiff::compute(&a, &b);
    let tracker_a = replay_tracker(tool.compiled(), &a);
    let tracker_b = replay_tracker(tool.compiled(), &b);
    let migration = FrontierMigration::compute(tool.compiled().map(), &tracker_a, &tracker_b);
    let html = diff_html(&diff, &a, &b, Some(&migration), tool.compiled().map());

    let golden = golden_path();
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden, &html).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!("missing golden file {} (run with BLESS=1 to create): {e}", golden.display())
    });
    if html != expected {
        let actual = golden.with_extension("actual.html");
        fs::write(&actual, &html).expect("write actual");
        panic!(
            "HTML diff report drifted from golden ({} bytes rendered vs {} expected); \
             actual output written to {} — re-bless with BLESS=1 if the change is intentional",
            html.len(),
            expected.len(),
            actual.display()
        );
    }
}
