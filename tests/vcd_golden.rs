//! Golden-file test of the VCD waveform exporter: tracing a fixed-seed
//! SolarPV test case must serialize byte-identically across runs and
//! machines.
//!
//! The trace pipeline has no wall-clock inputs at all — the VCD timescale
//! is the model tick, the probed values come from the deterministic VM
//! replay, and the id-code assignment follows signal table order — so the
//! whole file is determined by the seed.
//!
//! After an *intentional* change to the VCD serialization, re-bless with:
//!
//! ```text
//! BLESS=1 cargo test --offline --test vcd_golden
//! ```

use std::fs;
use std::path::PathBuf;

use cftcg::codegen::TestCase;
use cftcg::trace::{to_vcd, trace_vm_case, ProbeMask};
use cftcg::Cftcg;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace.vcd")
}

#[test]
fn vcd_export_matches_golden() {
    let model = cftcg::benchmarks::solar_pv::model();
    let tool = Cftcg::new(&model).expect("benchmark compiles");
    let generation = tool.generate_executions(3_000, 42);

    // The longest emitted case exercises the change-only dump format over
    // the most ticks; ties break on suite order, which is deterministic.
    let case = generation
        .suite
        .iter()
        .max_by_key(|c| c.bytes.len())
        .expect("fixed-seed campaign emits cases");
    let mask = ProbeMask::outputs(tool.compiled());
    let trace = trace_vm_case(tool.compiled(), &TestCase::new(case.bytes.clone()), &mask, 1 << 16);
    assert!(trace.ticks() > 1, "golden case should span several ticks, got {}", trace.ticks());
    assert_eq!(trace.dropped(), 0, "ring must not overflow for the golden case");
    let vcd = to_vcd(&trace, model.name());

    let golden = golden_path();
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden, &vcd).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!("missing golden file {} (run with BLESS=1 to create): {e}", golden.display())
    });
    if vcd != expected {
        let actual = golden.with_extension("actual.vcd");
        fs::write(&actual, &vcd).expect("write actual");
        panic!(
            "VCD exporter drifted from golden ({} bytes rendered vs {} expected); \
             actual output written to {} — re-bless with BLESS=1 if the change is intentional",
            vcd.len(),
            expected.len(),
            actual.display()
        );
    }
}
