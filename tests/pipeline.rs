//! Cross-crate integration tests: the full CFTCG pipeline over the
//! benchmark suite.

use cftcg::codegen::{compile, replay_suite, test_case_from_csv, test_case_to_csv};
use cftcg::Cftcg;

/// Every benchmark model makes it through the whole pipeline: validate →
/// instrument/compile → fuzz → replay-score → CSV export/import.
#[test]
fn end_to_end_on_every_benchmark() {
    for model in cftcg::benchmarks::all() {
        let tool = Cftcg::new(&model).unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        let generation = tool.generate_executions(1_500, 99);
        assert!(
            !generation.suite.is_empty(),
            "{}: fuzzer must emit at least one test case",
            model.name()
        );
        let report = tool.score(&generation);
        assert!(
            report.decision.covered > 0,
            "{}: some decision outcome must be covered",
            model.name()
        );
        // CSV round trip preserves the replayed coverage exactly.
        let compiled = tool.compiled();
        let rebuilt: Vec<_> = generation
            .suite
            .iter()
            .map(|case| {
                let csv = test_case_to_csv(compiled.layout(), case);
                test_case_from_csv(compiled.layout(), &csv)
                    .unwrap_or_else(|e| panic!("{}: {e}", model.name()))
            })
            .collect();
        let replayed = replay_suite(compiled, &rebuilt);
        assert_eq!(
            replayed.decision.covered,
            report.decision.covered,
            "{}: CSV export must preserve coverage",
            model.name()
        );
    }
}

/// The emitted C artifacts are structurally complete for every benchmark.
#[test]
fn c_emission_is_complete_for_every_benchmark() {
    for model in cftcg::benchmarks::all() {
        let tool = Cftcg::new(&model).unwrap();
        let step = tool.fuzz_code_c();
        let driver = tool.fuzz_driver_c();
        let probes = step.matches("CoverageStatistics(").count();
        assert_eq!(
            probes,
            tool.compiled().map().branch_count() + 1, // + the extern decl
            "{}: one probe per branch",
            model.name()
        );
        assert!(
            driver.contains(&format!("int dataLen = {};", tool.compiled().layout().tuple_size()))
        );
        for field in tool.compiled().layout().fields() {
            assert!(
                driver.contains(&format!("+ {}, {});", field.offset, field.dtype.size())),
                "{}: driver must memcpy field `{}`",
                model.name(),
                field.name
            );
        }
    }
}

/// Model files round-trip through XML and recompile to the identical
/// instrumentation map and program.
#[test]
fn xml_roundtrip_preserves_compilation() {
    for model in cftcg::benchmarks::all() {
        let xml = cftcg::model::save_model(&model);
        let reloaded = cftcg::model::load_model(&xml).unwrap();
        let a = compile(&model).unwrap();
        let b = compile(&reloaded).unwrap();
        assert_eq!(a.map(), b.map(), "{}", model.name());
        assert_eq!(a.program(), b.program(), "{}", model.name());
    }
}
