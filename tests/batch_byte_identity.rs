//! Campaign-level byte-identity of the batched SoA tier: a fuzz run that
//! executes `width` cases per pass through the flat program must commit the
//! *same campaign* as a sequential run on the flat VM — same suite bytes,
//! lineage, violations, operator attribution, and `campaign.json` (modulo
//! wall-clock fields). The batched loop earns this by pre-mutating a batch
//! against a frozen corpus/TORC snapshot, committing lanes in order, and
//! abandoning (rewinding the RNG and selection accounting) the moment a
//! committed lane invalidates the snapshot.

use cftcg::codegen::{compile, Engine};
use cftcg::fuzz::{
    FuzzConfig, FuzzOutcome, Fuzzer, Generation, ParallelFuzzConfig, ParallelFuzzer,
};
use cftcg::pipeline::CampaignArtifact;

/// Zeroes every `"t_s"` / `"elapsed_s"` value in a campaign JSON document.
fn strip_wallclock(mut s: String) -> String {
    for key in ["\"t_s\":", "\"elapsed_s\":"] {
        let mut from = 0;
        while let Some(rel) = s[from..].find(key) {
            let start = from + rel + key.len();
            let end = s[start..].find([',', '}', '\n']).map_or(s.len(), |e| start + e);
            s.replace_range(start..end, "0");
            from = start + 1;
        }
    }
    s
}

/// Asserts every wall-clock-free surface of two outcomes is identical.
fn assert_outcomes_identical(batch: &FuzzOutcome, scalar: &FuzzOutcome, context: &str) {
    let bytes = |o: &FuzzOutcome| o.suite.iter().map(|c| c.bytes.clone()).collect::<Vec<_>>();
    assert_eq!(bytes(batch), bytes(scalar), "{context}: suite bytes");
    assert_eq!(batch.lineage, scalar.lineage, "{context}: lineage records");
    assert_eq!(batch.executions, scalar.executions, "{context}: executions");
    assert_eq!(batch.iterations, scalar.iterations, "{context}: iterations");
    assert_eq!(batch.covered_branches, scalar.covered_branches, "{context}: covered branches");
    let viol = |o: &FuzzOutcome| {
        o.violations.iter().map(|(i, c)| (*i, c.bytes.clone())).collect::<Vec<_>>()
    };
    assert_eq!(viol(batch), viol(scalar), "{context}: assertion violations");
    assert_eq!(batch.operators, scalar.operators, "{context}: operator attribution");
}

/// The acceptance gate: a `workers = 1` campaign under `Engine::Batch` is
/// byte-for-byte the campaign the flat VM produces. Covers a
/// divergence-free model (SolarPV) and a divergent one (CPUTask) so both
/// the converged fast path and the masked-span path are on trial.
#[test]
fn batch_campaign_json_is_byte_identical_with_one_worker() {
    for name in ["SolarPV", "CPUTask"] {
        let model = cftcg::benchmarks::by_name(name).expect("bundled benchmark");
        let compiled = compile(&model).expect("benchmark compiles");

        let run = |engine: Engine| {
            let config = ParallelFuzzConfig {
                workers: 1,
                sync_interval: 512,
                fuzz: FuzzConfig { seed: 23, engine: Some(engine), ..FuzzConfig::default() },
                ..ParallelFuzzConfig::default()
            };
            ParallelFuzzer::new(&compiled, config).run_executions(2_500)
        };

        let batch = run(Engine::Batch { width: 0 });
        let flat = run(Engine::Flat);
        assert_outcomes_identical(&batch, &flat, name);

        let json = |outcome: FuzzOutcome| {
            let generation: Generation = outcome.into();
            let artifact =
                CampaignArtifact::from_generation(model.name(), 23, 1, &generation, compiled.map());
            strip_wallclock(artifact.to_json())
        };
        assert_eq!(
            json(batch),
            json(flat),
            "{name}: campaign.json must be byte-identical under the batch tier"
        );
    }
}

/// The committed input sequence is invariant across batch widths — any
/// width, including degenerate width 1, replays the sequential trajectory.
#[test]
fn batch_width_does_not_change_the_campaign() {
    let model = cftcg::benchmarks::by_name("TCP").expect("bundled benchmark");
    let compiled = compile(&model).expect("benchmark compiles");

    let run = |engine: Option<Engine>| {
        let config = FuzzConfig { seed: 11, engine, ..FuzzConfig::default() };
        Fuzzer::new(&compiled, config).run_executions(3_000)
    };

    let scalar = run(Some(Engine::Flat));
    for width in [1usize, 2, 4, 8] {
        let batch = run(Some(Engine::Batch { width }));
        assert_outcomes_identical(&batch, &scalar, &format!("TCP width {width}"));
    }
}
