//! Campaign-level byte-identity of the optimizer: a fuzz run on the
//! optimized flat VM must produce the *same campaign* as one on the
//! reference tree walker (`FuzzConfig::reference_vm`). The fuzzing
//! trajectory depends only on per-iteration branch-event sets, compare
//! event streams and output values — all three of which the mid-end is
//! contractually required to preserve — so the emitted suite, lineage,
//! violations and `campaign.json` must match byte for byte (modulo
//! wall-clock fields, which differ between any two runs).

use cftcg::codegen::compile;
use cftcg::fuzz::{
    FuzzConfig, FuzzOutcome, Fuzzer, Generation, ParallelFuzzConfig, ParallelFuzzer,
};
use cftcg::pipeline::CampaignArtifact;

/// Zeroes every `"t_s"` / `"elapsed_s"` value in a campaign JSON document.
fn strip_wallclock(mut s: String) -> String {
    for key in ["\"t_s\":", "\"elapsed_s\":"] {
        let mut from = 0;
        while let Some(rel) = s[from..].find(key) {
            let start = from + rel + key.len();
            let end = s[start..].find([',', '}', '\n']).map_or(s.len(), |e| start + e);
            s.replace_range(start..end, "0");
            from = start + 1;
        }
    }
    s
}

/// Asserts every wall-clock-free surface of two outcomes is identical.
fn assert_outcomes_identical(flat: &FuzzOutcome, reference: &FuzzOutcome, context: &str) {
    let bytes = |o: &FuzzOutcome| o.suite.iter().map(|c| c.bytes.clone()).collect::<Vec<_>>();
    assert_eq!(bytes(flat), bytes(reference), "{context}: suite bytes");
    assert_eq!(flat.lineage, reference.lineage, "{context}: lineage records");
    assert_eq!(flat.executions, reference.executions, "{context}: executions");
    assert_eq!(flat.iterations, reference.iterations, "{context}: iterations");
    assert_eq!(flat.covered_branches, reference.covered_branches, "{context}: covered branches");
    let viol = |o: &FuzzOutcome| {
        o.violations.iter().map(|(i, c)| (*i, c.bytes.clone())).collect::<Vec<_>>()
    };
    assert_eq!(viol(flat), viol(reference), "{context}: assertion violations");
    assert_eq!(flat.operators, reference.operators, "{context}: operator attribution");
}

#[test]
fn reference_vm_campaign_is_byte_identical() {
    for name in ["SolarPV", "CPUTask"] {
        let model = cftcg::benchmarks::by_name(name).expect("bundled benchmark");
        let compiled = compile(&model).expect("benchmark compiles");

        let run = |reference_vm: bool| {
            let config = FuzzConfig { seed: 7, reference_vm, ..FuzzConfig::default() };
            let mut fuzzer = Fuzzer::new(&compiled, config);
            fuzzer.run_executions(3_000)
        };

        let flat = run(false);
        let reference = run(true);
        assert_outcomes_identical(&flat, &reference, name);

        let json = |outcome: FuzzOutcome| {
            let generation: Generation = outcome.into();
            let artifact =
                CampaignArtifact::from_generation(model.name(), 7, 1, &generation, compiled.map());
            strip_wallclock(artifact.to_json())
        };
        assert_eq!(json(flat), json(reference), "{name}: campaign.json must be byte-identical");
    }
}

/// The JIT tier must be campaign-invisible: a `workers = 1` run with
/// `engine: Jit` produces byte-for-byte the same `campaign.json` as one on
/// the flat VM. On hosts without the JIT tier `Engine::Jit` falls back to
/// the flat VM, so the test degrades to flat-vs-flat and still proves the
/// engine knob itself does not perturb the campaign.
#[test]
fn jit_campaign_json_is_byte_identical_with_one_worker() {
    use cftcg::codegen::Engine;

    let model = cftcg::benchmarks::by_name("SolarPV").expect("bundled benchmark");
    let compiled = compile(&model).expect("benchmark compiles");

    let run = |engine: Engine| {
        let config = ParallelFuzzConfig {
            workers: 1,
            sync_interval: 512,
            fuzz: FuzzConfig { seed: 23, engine: Some(engine), ..FuzzConfig::default() },
            ..ParallelFuzzConfig::default()
        };
        ParallelFuzzer::new(&compiled, config).run_executions(2_500)
    };

    let jit = run(Engine::Jit);
    let flat = run(Engine::Flat);
    assert_outcomes_identical(&jit, &flat, "SolarPV workers=1 jit");

    let json = |outcome: FuzzOutcome| {
        let generation: Generation = outcome.into();
        let artifact =
            CampaignArtifact::from_generation(model.name(), 23, 1, &generation, compiled.map());
        strip_wallclock(artifact.to_json())
    };
    assert_eq!(
        json(jit),
        json(flat),
        "SolarPV: campaign.json must be byte-identical regardless of engine"
    );
}

#[test]
fn reference_vm_is_byte_identical_through_the_parallel_engine() {
    let model = cftcg::benchmarks::by_name("TCP").expect("bundled benchmark");
    let compiled = compile(&model).expect("benchmark compiles");

    let run = |reference_vm: bool| {
        let config = ParallelFuzzConfig {
            workers: 1,
            sync_interval: 512,
            fuzz: FuzzConfig { seed: 11, reference_vm, ..FuzzConfig::default() },
            ..ParallelFuzzConfig::default()
        };
        ParallelFuzzer::new(&compiled, config).run_executions(2_000)
    };

    assert_outcomes_identical(&run(false), &run(true), "TCP workers=1");
}
