//! The standing observability invariant, extended to the full observatory:
//! a workers=1 campaign with every observation layer attached — telemetry
//! registry, span-trace buffer, live HTTP observatory being scraped
//! mid-run — must serialize to the same `campaign.json` as a bare
//! sequential run. Wall-clock fields legitimately differ and are
//! normalized; everything else is compared byte for byte.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use cftcg::observe::{Observatory, ObserveServer};
use cftcg::pipeline::CampaignArtifact;
use cftcg::telemetry::{SpanKind, SpanTrace, Telemetry};
use cftcg::Cftcg;

/// Zeroes every `"t_s"` / `"elapsed_s"` value in a campaign JSON document.
fn strip_wallclock(mut s: String) -> String {
    for key in ["\"t_s\":", "\"elapsed_s\":"] {
        let mut from = 0;
        while let Some(rel) = s[from..].find(key) {
            let start = from + rel + key.len();
            let end = s[start..].find([',', '}', '\n']).map_or(s.len(), |e| start + e);
            s.replace_range(start..end, "0");
            from = start + 1;
        }
    }
    s
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> Option<String> {
    let mut stream = TcpStream::connect(addr).ok()?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    Some(response)
}

#[test]
fn observatory_leaves_workers1_campaign_byte_identical() {
    const EXECUTIONS: u64 = 3_000;
    const SEED: u64 = 42;
    let model = cftcg::benchmarks::by_name("TCP").expect("bundled benchmark");

    // Bare sequential run: no telemetry, no spans, no server.
    let bare = {
        let tool = Cftcg::new(&model).expect("benchmark compiles");
        let generation = tool.generate_executions(EXECUTIONS, SEED);
        CampaignArtifact::from_generation(model.name(), SEED, 1, &generation, tool.compiled().map())
            .to_json()
    };

    // Fully-observed workers=1 run: registry + span trace attached, HTTP
    // observatory live and scraped concurrently while the campaign runs.
    let telemetry = Arc::new(Telemetry::new());
    let trace = SpanTrace::new();
    let server =
        ObserveServer::bind("127.0.0.1:0", Observatory::new(Arc::clone(&telemetry), model.name()))
            .expect("observatory binds");
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicUsize::new(0));
    let scraper = {
        let stop = Arc::clone(&stop);
        let scrapes = Arc::clone(&scrapes);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for path in ["/metrics", "/snapshot", "/", "/healthz"] {
                    if let Some(response) = http_get(addr, path) {
                        assert!(response.starts_with("HTTP/1.1 200"), "{path}: {response}");
                        scrapes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
    };

    let observed = {
        // Every introspection layer armed: registry, span trace, and the
        // plateau detector (yield stats and corpus accounting are always
        // on once a registry is attached).
        let tool = Cftcg::new(&model)
            .expect("benchmark compiles")
            .with_telemetry(Arc::clone(&telemetry))
            .with_span_trace(trace.clone())
            .with_plateau_window(500);
        let generation = tool.generate_parallel_executions(EXECUTIONS, SEED, 1);
        CampaignArtifact::from_generation(model.name(), SEED, 1, &generation, tool.compiled().map())
            .to_json()
    };
    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper thread");
    server.shutdown();

    assert!(scrapes.load(Ordering::Relaxed) > 0, "the observatory was actually scraped mid-run");
    assert!(
        telemetry.snapshot().totals.spans.histogram(SpanKind::Execution).count() > 0,
        "span profiling was live during the observed run"
    );
    assert!(!trace.is_empty(), "the span trace buffer captured events");
    assert_eq!(
        strip_wallclock(bare),
        strip_wallclock(observed),
        "campaign artifacts must be byte-identical modulo wall-clock"
    );
}
