//! Scale test: a synthetic model an order of magnitude larger than the
//! benchmarks still validates, compiles, matches the interpreter, and
//! fuzzes — guarding against accidental quadratic blow-ups in scheduling,
//! type resolution, or instrumentation.

use cftcg::codegen::{compile, Executor};
use cftcg::coverage::NullRecorder;
use cftcg::model::{BlockKind, DataType, InputSign, Model, ModelBuilder, RelOp, Value};
use cftcg::sim::Simulator;

/// Builds a model with `chains` parallel processing chains of `depth`
/// blocks each, cross-coupled through a shared accumulator.
fn big_model(chains: usize, depth: usize) -> Model {
    let mut b = ModelBuilder::new("big");
    let mut chain_ends = Vec::new();
    for c in 0..chains {
        let u = b.inport(format!("u{c}"), DataType::F64);
        let mut prev = u;
        for d in 0..depth {
            let blk = match d % 6 {
                0 => b.add(format!("g{c}_{d}"), BlockKind::Gain { gain: 1.01 }),
                1 => b.add(format!("b{c}_{d}"), BlockKind::Bias { bias: -0.5 }),
                2 => b.add(format!("s{c}_{d}"), BlockKind::Saturation { lower: -1e6, upper: 1e6 }),
                3 => b.add(format!("d{c}_{d}"), BlockKind::UnitDelay { initial: Value::F64(0.0) }),
                4 => b.add(format!("a{c}_{d}"), BlockKind::Abs),
                _ => b.add(format!("q{c}_{d}"), BlockKind::Quantizer { interval: 0.25 }),
            };
            b.wire(prev, blk);
            prev = blk;
        }
        chain_ends.push(prev);
    }
    let total = b.add("total", BlockKind::Sum { signs: vec![InputSign::Plus; chains] });
    for (i, &end) in chain_ends.iter().enumerate() {
        b.connect(end, 0, total, i);
    }
    let hot = b.add("hot", BlockKind::Compare { op: RelOp::Gt, constant: 100.0 });
    b.wire(total, hot);
    let y = b.outport("y");
    let alarm = b.outport("alarm");
    b.wire(total, y);
    b.wire(hot, alarm);
    b.finish().expect("big model validates")
}

#[test]
fn large_model_compiles_and_stays_equivalent() {
    let model = big_model(12, 40); // ~500 blocks
    assert!(model.total_block_count() > 480);
    let compiled = compile(&model).expect("compiles");
    let mut sim = Simulator::new(&model).expect("simulates");
    let mut exec = Executor::new(&compiled);
    let mut rec = NullRecorder;
    let mut actual = Vec::new();
    for k in 0..30 {
        let inputs: Vec<Value> =
            (0..12).map(|i| Value::F64((k * 7 + i) as f64 / 3.0 - 20.0)).collect();
        let expected = sim.step(&inputs).unwrap();
        exec.step_into(&inputs, &mut actual, &mut rec);
        assert_eq!(expected, actual, "diverged at step {k}");
    }
}

#[test]
fn large_model_fuzzes_to_full_coverage_quickly() {
    let model = big_model(6, 20);
    let tool = cftcg::Cftcg::new(&model).expect("compiles");
    let generation = tool.generate_executions(2_000, 1);
    let report = tool.score(&generation);
    // Each chain's second and third saturations sit downstream of an `Abs`,
    // so their lower-limit clip branches are structurally unreachable:
    // 2 unreachable branches × 6 chains = 12. Everything reachable must be
    // covered.
    let unreachable = 12;
    assert_eq!(
        report.decision.covered,
        report.decision.total - unreachable,
        "expected full reachable coverage, got {}",
        report.decision
    );
}

#[test]
fn deterministic_suites_on_a_benchmark_model() {
    let model = cftcg::benchmarks::tcp::model();
    let tool = cftcg::Cftcg::new(&model).expect("compiles");
    let a = tool.generate_executions(600, 77);
    let b = tool.generate_executions(600, 77);
    assert_eq!(a.suite, b.suite, "same seed must give byte-identical suites");
    assert_eq!(a.iterations, b.iterations);
    let c = tool.generate_executions(600, 78);
    assert!(
        a.suite != c.suite || a.iterations != c.iterations,
        "different seeds should explore differently"
    );
}
