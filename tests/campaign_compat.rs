//! Backward compatibility of the campaign artifact schema: a checked-in
//! `campaign.json` written *before* the diff observatory existed (no
//! `engine`, `host`, `yields`, or `spans` keys) must still parse, with the
//! new optional fields defaulting to "not recorded", and must be diffable.

use cftcg::compare::ArtifactDiff;
use cftcg::pipeline::CampaignArtifact;

fn fixture() -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/campaign_pre_pr9.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

#[test]
fn pre_pr9_artifact_parses_with_defaulted_fields() {
    let artifact = CampaignArtifact::from_json(&fixture()).expect("pre-PR-9 artifact parses");
    assert_eq!(artifact.model, "SolarPV");
    assert_eq!(artifact.seed, 7);
    assert_eq!(artifact.workers, 1);
    assert_eq!(artifact.executions, 1234);
    assert_eq!(artifact.cases.len(), 1);
    assert_eq!(artifact.lineage.len(), 2);
    assert_eq!(artifact.hits.len(), 3);
    assert_eq!(artifact.series.len(), 1);
    // The fields this PR introduced are absent from the document and must
    // default to "not recorded" rather than failing the parse.
    assert_eq!(artifact.engine, None);
    assert_eq!(artifact.host, None);
    assert!(artifact.yields.is_empty());
    assert!(artifact.spans.is_empty());
}

#[test]
fn pre_pr9_artifact_round_trips_through_the_new_serializer() {
    let artifact = CampaignArtifact::from_json(&fixture()).expect("pre-PR-9 artifact parses");
    let json = artifact.to_json();
    // The re-serialized document spells the new fields out explicitly…
    assert!(json.contains("\"engine\":null"));
    assert!(json.contains("\"host\":null"));
    // …and parses back to the identical artifact.
    assert_eq!(CampaignArtifact::from_json(&json).expect("round trip"), artifact);
}

#[test]
fn pre_pr9_artifact_self_diff_is_identity() {
    let artifact = CampaignArtifact::from_json(&fixture()).expect("pre-PR-9 artifact parses");
    let diff = ArtifactDiff::compute(&artifact, &artifact);
    assert!(diff.is_identity());
    assert!(diff.only_a.is_empty() && diff.only_b.is_empty());
    assert_eq!(diff.both.len(), 3);
    // Unrecorded engine/host must not be reported as a mismatch — a diff of
    // two old artifacts should not demand `--allow-mismatch`.
    assert!(diff.mismatches.is_empty());
}
