//! Golden-file test of the HTML campaign explorer: a fixed-seed SolarPV
//! campaign must render byte-identically across runs and machines.
//!
//! Wall-clock timestamps (case emission times, elapsed, per-hit elapsed)
//! are the only nondeterministic inputs of the renderer, so the test zeroes
//! them before rendering; everything else — the suite, lineage ids, goal
//! provenance, frontier classification — is fully determined by the seed.
//!
//! After an *intentional* change to the explorer's output, re-bless with:
//!
//! ```text
//! BLESS=1 cargo test --offline --test html_golden
//! ```

use std::fs;
use std::path::PathBuf;

use cftcg::codegen::{replay_case, TestCase};
use cftcg::coverage::FullTracker;
use cftcg::pipeline::{campaign_explorer_html, CampaignArtifact};
use cftcg::Cftcg;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/campaign_explorer.html")
}

#[test]
fn campaign_explorer_matches_golden() {
    let model = cftcg::benchmarks::solar_pv::model();
    let tool = Cftcg::new(&model).expect("benchmark compiles");
    let generation = tool.generate_executions(3_000, 42);
    let map = tool.compiled().map();

    let mut artifact = CampaignArtifact::from_generation(model.name(), 42, 1, &generation, map);
    artifact.elapsed_s = 0.0;
    for case in &mut artifact.cases {
        case.t_s = 0.0;
    }
    for hit in &mut artifact.hits {
        hit.elapsed_s = 0.0;
    }

    // Round-trip through JSON exactly like the CLI does (fuzz --out writes
    // the artifact; report --html parses it back).
    let json = artifact.to_json();
    let artifact = CampaignArtifact::from_json(&json).expect("artifact round-trips");

    let mut tracker = FullTracker::new(map);
    for case in &artifact.cases {
        replay_case(tool.compiled(), &TestCase::new(case.bytes.clone()), &mut tracker);
    }
    let html = campaign_explorer_html(tool.compiled(), &artifact, &tracker);

    let golden = golden_path();
    if std::env::var_os("BLESS").is_some() {
        fs::write(&golden, &html).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!("missing golden file {} (run with BLESS=1 to create): {e}", golden.display())
    });
    if html != expected {
        let actual = golden.with_extension("actual.html");
        fs::write(&actual, &html).expect("write actual");
        panic!(
            "HTML explorer drifted from golden ({} bytes rendered vs {} expected); \
             actual output written to {} — re-bless with BLESS=1 if the change is intentional",
            html.len(),
            expected.len(),
            actual.display()
        );
    }
}
