//! End-to-end tests of the Assertion block: instrumentation, violation
//! recording, engine agreement, and fuzzer-driven violation discovery.

use cftcg::codegen::{compile, Executor};
use cftcg::coverage::FullTracker;
use cftcg::fuzz::{FuzzConfig, Fuzzer};
use cftcg::model::{BlockKind, DataType, LogicOp, Model, ModelBuilder, RelOp, Value};
use cftcg::sim::Simulator;

/// A plant with the safety property "output stays below 100", which a
/// sustained positive input violates.
fn guarded_model() -> Model {
    let mut b = ModelBuilder::new("guarded");
    let u = b.inport("u", DataType::I8);
    let integ = b.add(
        "integ",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(-500.0),
            upper: Some(500.0),
        },
    );
    let u_f = b.add("u_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.wire(u, u_f);
    b.wire(u_f, integ);
    let ok = b.add("ok", BlockKind::Compare { op: RelOp::Lt, constant: 100.0 });
    b.wire(integ, ok);
    let guard = b.add("safety", BlockKind::Assertion);
    b.wire(ok, guard);
    let y = b.outport("y");
    b.wire(integ, y);
    b.finish().unwrap()
}

#[test]
fn assertion_is_instrumented_and_recorded() {
    let model = guarded_model();
    let compiled = compile(&model).unwrap();
    assert_eq!(compiled.map().assertion_count(), 1);
    assert!(compiled.map().assertions()[0].contains("safety"));

    let mut exec = Executor::new(&compiled);
    let mut tracker = FullTracker::new(compiled.map());
    // 10 iterations of +20: the integrator passes 100 on iteration 6.
    for _ in 0..10 {
        exec.step(&[Value::I8(20)], &mut tracker);
    }
    assert_eq!(tracker.assertion_failures(0), 5, "iterations 6..10 violate");
}

#[test]
fn simulator_counts_the_same_violations() {
    let model = guarded_model();
    let compiled = compile(&model).unwrap();
    let mut sim = Simulator::new(&model).unwrap();
    let mut exec = Executor::new(&compiled);
    let mut tracker = FullTracker::new(compiled.map());
    for k in 0..40 {
        let v = Value::I8(if k % 3 == 0 { 30 } else { -5 });
        sim.step(&[v]).unwrap();
        exec.step(&[v], &mut tracker);
    }
    assert_eq!(sim.violations(), tracker.assertion_failures(0));
    sim.reset();
    assert_eq!(sim.violations(), 0, "reset clears the violation counter");
}

#[test]
fn fuzzer_finds_a_violating_input() {
    let model = guarded_model();
    let compiled = compile(&model).unwrap();
    let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed: 2, ..Default::default() });
    fuzzer.run_executions(3_000);
    let violations = fuzzer.violations();
    assert!(
        !violations.is_empty(),
        "the fuzzer must find an input driving the integrator past 100"
    );
    // The reported witness actually reproduces the violation.
    let (idx, case) = &violations[0];
    assert_eq!(*idx, 0);
    let mut exec = Executor::new(&compiled);
    let mut tracker = FullTracker::new(compiled.map());
    exec.run_case(case, &mut tracker);
    assert!(tracker.assertion_failures(0) > 0, "witness must reproduce");
}

#[test]
fn assertions_survive_xml_and_nested_subsystems() {
    // An assertion inside a subsystem: still instrumented, still counted.
    let mut inner = ModelBuilder::new("inner");
    let u = inner.inport("u", DataType::Bool);
    let not = inner.add("not", BlockKind::Logic { op: LogicOp::Not, inputs: 1 });
    inner.wire(u, not);
    let guard = inner.add("inner_guard", BlockKind::Assertion);
    inner.wire(not, guard);
    let y = inner.outport("y");
    inner.feed(u, y, 0);
    let inner = inner.finish().unwrap();

    let mut b = ModelBuilder::new("outer");
    let u = b.inport("u", DataType::Bool);
    let sub = b.add("sub", BlockKind::Subsystem { model: Box::new(inner) });
    let y = b.outport("y");
    b.wire(u, sub);
    b.wire(sub, y);
    let model = b.finish().unwrap();

    // XML roundtrip keeps the assertion.
    let xml = cftcg::model::save_model(&model);
    let reloaded = cftcg::model::load_model(&xml).unwrap();
    assert_eq!(reloaded, model);

    let compiled = compile(&reloaded).unwrap();
    assert_eq!(compiled.map().assertion_count(), 1);
    let mut exec = Executor::new(&compiled);
    let mut tracker = FullTracker::new(compiled.map());
    exec.step(&[Value::Bool(true)], &mut tracker); // !true = false -> violation
    exec.step(&[Value::Bool(false)], &mut tracker); // passes
    assert_eq!(tracker.assertion_failures(0), 1);
    let mut sim = Simulator::new(&model).unwrap();
    sim.step(&[Value::Bool(true)]).unwrap();
    sim.step(&[Value::Bool(false)]).unwrap();
    assert_eq!(sim.violations(), 1);
}

#[test]
fn assertion_decision_counts_toward_coverage() {
    let model = guarded_model();
    let compiled = compile(&model).unwrap();
    // The pass/fail decision exists in the map.
    let has_assert_decision = compiled.map().decisions().iter().any(|d| d.label.contains("safety"));
    assert!(has_assert_decision);
    let mut exec = Executor::new(&compiled);
    let mut tracker = FullTracker::new(compiled.map());
    exec.step(&[Value::I8(1)], &mut tracker); // pass outcome only
    let report = cftcg::coverage::CoverageReport::score(compiled.map(), &tracker);
    assert!(report.decision.covered < report.decision.total);
}
