//! The paper's correctness argument at full scale: "we verified the
//! correctness of the generated code by comparing simulation results with
//! code execution results" — here across the whole benchmark suite with
//! structured input sequences.

use cftcg::codegen::{compile, Executor};
use cftcg::coverage::NullRecorder;
use cftcg::model::{DataType, Value};
use cftcg::sim::Simulator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn values_eq(a: &Value, b: &Value) -> bool {
    let (x, y) = (a.as_f64(), b.as_f64());
    a.data_type() == b.data_type() && ((x.is_nan() && y.is_nan()) || x == y)
}

/// Draws an input that actually exercises control logic: small magnitudes,
/// constraint-scale values, booleans, with occasional extremes.
fn draw(rng: &mut SmallRng, ty: DataType) -> Value {
    let x = match rng.random_range(0..4u8) {
        0 => f64::from(rng.random_range(-5i8..=5)),
        1 => f64::from(rng.random_range(-200i16..=200)),
        2 => f64::from(rng.random_range(-10_000i32..=10_000)),
        _ => rng.random_range(-1e9f64..1e9),
    };
    Value::from_f64(x, ty)
}

#[test]
fn compiled_matches_interpreter_on_all_benchmarks() {
    for model in cftcg::benchmarks::all() {
        let compiled = compile(&model).unwrap();
        let types: Vec<DataType> = compiled.input_types().to_vec();
        let mut rng = SmallRng::seed_from_u64(2024);
        for run in 0..3 {
            let mut sim = Simulator::new(&model).unwrap();
            let mut exec = Executor::new(&compiled);
            let mut rec = NullRecorder;
            // Long runs with persistent values drive the charts deep.
            let mut held: Vec<Value> = types.iter().map(|&t| draw(&mut rng, t)).collect();
            let mut actual = Vec::new();
            for step in 0..400 {
                if rng.random_bool(0.3) {
                    let i = rng.random_range(0..held.len());
                    held[i] = draw(&mut rng, types[i]);
                }
                let expected = sim.step(&held).unwrap();
                exec.step_into(&held, &mut actual, &mut rec);
                for (port, (e, a)) in expected.iter().zip(&actual).enumerate() {
                    assert!(
                        values_eq(e, a),
                        "{} run {run} step {step} output {port}: sim {e:?} vs compiled {a:?} \
                         (inputs {held:?})",
                        model.name(),
                    );
                }
            }
        }
    }
}

/// Reset semantics agree: both engines return to identical initial
/// behaviour after a reset.
#[test]
fn reset_equivalence_on_all_benchmarks() {
    for model in cftcg::benchmarks::all() {
        let compiled = compile(&model).unwrap();
        let types: Vec<DataType> = compiled.input_types().to_vec();
        let mut rng = SmallRng::seed_from_u64(7);
        let inputs: Vec<Vec<Value>> =
            (0..50).map(|_| types.iter().map(|&t| draw(&mut rng, t)).collect()).collect();

        let mut sim = Simulator::new(&model).unwrap();
        let mut exec = Executor::new(&compiled);
        let mut rec = NullRecorder;
        let first: Vec<_> = inputs.iter().map(|i| exec.step(i, &mut rec)).collect();
        let _ = inputs.iter().map(|i| sim.step(i).unwrap()).count();

        exec.reset();
        sim.reset();
        for (k, input) in inputs.iter().enumerate() {
            let again = exec.step(input, &mut rec);
            assert_eq!(again, first[k], "{}: compiled reset diverged", model.name());
            let sim_out = sim.step(input).unwrap();
            for (e, a) in sim_out.iter().zip(&again) {
                assert!(values_eq(e, a), "{}: sim reset diverged", model.name());
            }
        }
    }
}
