//! Artifact-level byte-identity of the tracing layer: a fuzz run with a
//! trace hook installed must serialize to the same `campaign.json` as a
//! bare run. Wall-clock fields (`t_s`, `elapsed_s`) legitimately differ
//! between any two runs and are normalized out before comparison;
//! everything else — cases, ids, lineage, hits, counters — is compared
//! byte for byte.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cftcg::codegen::compile;
use cftcg::fuzz::{FuzzConfig, Fuzzer, Generation, TraceHook};
use cftcg::pipeline::CampaignArtifact;

/// Zeroes every `"t_s"` / `"elapsed_s"` value in a campaign JSON document.
fn strip_wallclock(mut s: String) -> String {
    for key in ["\"t_s\":", "\"elapsed_s\":"] {
        let mut from = 0;
        while let Some(rel) = s[from..].find(key) {
            let start = from + rel + key.len();
            let end = s[start..].find([',', '}', '\n']).map_or(s.len(), |e| start + e);
            s.replace_range(start..end, "0");
            from = start + 1;
        }
    }
    s
}

#[test]
fn trace_hook_leaves_campaign_artifact_byte_identical() {
    let model = cftcg::benchmarks::by_name("TCP").expect("bundled benchmark");
    let compiled = compile(&model).expect("benchmark compiles");

    let run = |hook: Option<TraceHook>| {
        let config = FuzzConfig { seed: 42, trace_hook: hook, ..FuzzConfig::default() };
        let mut fuzzer = Fuzzer::new(&compiled, config);
        let generation: Generation = fuzzer.run_executions(3_000).into();
        CampaignArtifact::from_generation(model.name(), 42, 1, &generation, compiled.map())
            .to_json()
    };

    let bare = run(None);
    let fired = Arc::new(AtomicUsize::new(0));
    let counter = fired.clone();
    let hooked = run(Some(TraceHook::new(move |_, _| {
        counter.fetch_add(1, Ordering::Relaxed);
    })));

    assert!(fired.load(Ordering::Relaxed) > 0, "the hook observed cases");
    assert_eq!(
        strip_wallclock(bare),
        strip_wallclock(hooked),
        "campaign artifacts must be byte-identical modulo wall-clock"
    );
}

#[test]
fn strip_wallclock_normalizes_only_time_fields() {
    let doc = "{\"t_s\":1.25,\"seed\":7,\n\"elapsed_s\":0.5}\n".to_string();
    assert_eq!(strip_wallclock(doc), "{\"t_s\":0,\"seed\":7,\n\"elapsed_s\":0}\n");
}
