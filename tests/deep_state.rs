//! Experiment E6: the deep-state observations of the paper's §4.
//!
//! * CPUTask has "branches only triggered when the task queue is
//!   fullfilled" — CFTCG reaches them quickly, the random baselines do not.
//! * TWC's emergency branch needs sustained slip; UTPC's emergency needs a
//!   sustained leak at depth.

use std::time::Duration;

use cftcg::baselines::{simcotest, sldv};
use cftcg::codegen::{compile, replay_suite};
use cftcg::coverage::FullTracker;
use cftcg::Cftcg;

/// The CPUTask queue-full branches are reachable by CFTCG within a modest
/// execution budget (the paper: 37 seconds of fuzzing vs an estimated 44.5
/// hours of simulation).
#[test]
fn cftcg_fills_the_cputask_queue() {
    let model = cftcg::benchmarks::cputask::model();
    let compiled = compile(&model).unwrap();
    // Identify the queue-full goal: the Normal -> Full transition guard of
    // the queue chart ("len >= 8 && submit": true outcome).
    let full_branch = compiled
        .map()
        .branches()
        .iter()
        .position(|b| {
            let decision = &compiled.map().decisions()[b.decision.index()];
            decision.label.contains("Normal -> Full") && b.label.ends_with("true")
        })
        .expect("queue-full guard is instrumented");

    let tool = Cftcg::new(&model).unwrap();
    let generation = tool.generate_executions(30_000, 3);
    let mut tracker = FullTracker::new(compiled.map());
    for case in &generation.suite {
        cftcg::codegen::replay_case(&compiled, case, &mut tracker);
    }
    assert!(
        tracker.branch_hit(full_branch),
        "CFTCG must fill the eight-slot queue (repeated-tuple mutation)"
    );
}

/// The SLDV-like bounded search cannot reach the queue-full branch: it
/// needs more consecutive submit commands than the unrolling depth.
#[test]
fn bounded_search_misses_the_queue_full_branch() {
    let model = cftcg::benchmarks::cputask::model();
    let compiled = compile(&model).unwrap();
    let config = sldv::SldvConfig {
        max_depth: 6, // below the queue depth of 8
        budget: Duration::from_secs(2),
        ..Default::default()
    };
    let generation = sldv::generate(&model, &compiled, &config);
    let report = replay_suite(&compiled, &generation.suite);
    let full_branch = compiled
        .map()
        .branches()
        .iter()
        .position(|b| {
            let decision = &compiled.map().decisions()[b.decision.index()];
            decision.label.contains("Normal -> Full") && b.label.ends_with("true")
        })
        .expect("queue-full guard is instrumented");
    let mut tracker = FullTracker::new(compiled.map());
    for case in &generation.suite {
        cftcg::codegen::replay_case(&compiled, case, &mut tracker);
    }
    assert!(!tracker.branch_hit(full_branch), "a depth-6 unrolling cannot fill an 8-deep queue");
    // ... even though it covers plenty of shallow logic.
    assert!(report.decision.covered > 0);
}

/// Simulation-based search under its engine budget covers less of the
/// deep-state models than CFTCG does in the same wall-clock time — the
/// systemic speed argument of the paper.
#[test]
fn cftcg_beats_simulation_search_on_deep_state_models() {
    let budget = Duration::from_millis(1_500);
    let mut cftcg_wins = 0;
    let mut comparisons = 0;
    for name in ["CPUTask", "UTPC", "TWC"] {
        let model = cftcg::benchmarks::by_name(name).unwrap();
        let compiled = compile(&model).unwrap();
        let sim_gen = simcotest::generate(
            &model,
            &simcotest::SimCoTestConfig { budget, seed: 11, ..Default::default() },
        );
        let sim_report = replay_suite(&compiled, &sim_gen.suite);
        let tool = Cftcg::new(&model).unwrap();
        let cftcg_gen = tool.generate(budget, 11);
        let cftcg_report = replay_suite(&compiled, &cftcg_gen.suite);
        comparisons += 1;
        if cftcg_report.decision.percent() >= sim_report.decision.percent() {
            cftcg_wins += 1;
        }
    }
    assert!(
        cftcg_wins >= comparisons - 1,
        "CFTCG should win on (almost) all deep-state models: {cftcg_wins}/{comparisons}"
    );
}
