#!/usr/bin/env sh
# Tier-1 gate: build, test, and format-check the whole workspace.
# Offline-safe: all dependencies are workspace-local (see vendor/).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test --workspace --offline -q
cargo fmt --check
cargo clippy --workspace --offline --all-targets -- -D warnings
