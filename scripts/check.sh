#!/usr/bin/env sh
# Tier-1 gate: build, test, and format-check the whole workspace.
# Offline-safe: all dependencies are workspace-local (see vendor/).
set -eu

cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test --workspace --offline -q
cargo fmt --check
cargo clippy --workspace --offline --all-targets -- -D warnings

# Golden-file gates (also part of the workspace test run, invoked explicitly
# so a drift in the HTML campaign explorer, the campaign diff report, or the
# VCD waveform exporter fails loudly and names the fix): re-bless with
# `BLESS=1 cargo test --offline --test html_golden` (or --test vcd_golden,
# --test diff_html_golden) after an intentional rendering change.
cargo test --offline -q --test html_golden
cargo test --offline -q --test diff_html_golden
cargo test --offline -q --test vcd_golden
cargo test --offline -q --test cemit_golden
