//! Offline shim of the `criterion` API surface this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal benchmarking harness with criterion's spelling: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is timed with
//! `std::time::Instant` over an auto-calibrated batch and reported as a
//! single `ns/iter` line — no warm-up statistics, outlier analysis, or HTML
//! reports. Honors `CRITERION_QUICK=1` for a fast smoke pass.

use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
fn measure_budget() -> Duration {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(500)
    }
}

/// The timing context handed to each benchmark closure.
pub struct Bencher {
    /// Nanoseconds per iteration of the most recent [`iter`](Self::iter).
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, auto-scaling the batch size until the measurement
    /// fills the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it runs long enough to time.
        let mut batch: u64 = 1;
        let budget = measure_budget();
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget || batch >= 1 << 40 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
                return;
            }
            // Aim straight for the budget, with headroom for timer noise.
            let scale = budget.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            batch = (batch as f64 * scale.clamp(2.0, 100.0)) as u64;
        }
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter");
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(name.as_ref(), b.ns_per_iter);
        self
    }

    /// Opens a named group; benchmarks in it report as `group/name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, name.as_ref()), b.ns_per_iter);
        self
    }

    /// Ends the group (a no-op in this shim, kept for API parity).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut x = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        let mut group = c.benchmark_group("grouped");
        group.bench_function("spin2", |b| b.iter(|| std::hint::black_box(3u32 * 7)));
        group.finish();
    }
}
