//! Offline shim of the `rand` 0.9 API surface this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal, dependency-free implementation: the traits (`RngCore`,
//! `SeedableRng`, `Rng`), the `SmallRng` generator (xoshiro256++ seeded via
//! SplitMix64, like upstream on 64-bit targets), uniform range sampling for
//! the primitive types the workspace draws, and the `IndexedRandom::choose`
//! slice helper. Streams are deterministic given a seed, which is the only
//! property the fuzzer's tests rely on; they are *not* bit-identical to
//! upstream `rand`.

/// Low-level generator interface: raw 32/64-bit draws and byte filling.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a value from the type's "standard" distribution (full range
    /// for integers, `[0, 1)` for floats, fair coin for `bool`).
    fn random<T: sample::StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: sample::SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        sample::unit_f64(self.next_u64()) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

pub mod sample {
    //! Distribution plumbing behind [`Rng`](super::Rng)'s generic methods.

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
    #[inline]
    pub(crate) fn unit_f64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Types with a "standard" full-range / unit-interval distribution.
    pub trait StandardSample {
        /// Draws one value.
        fn sample<R: RngCore>(rng: &mut R) -> Self;
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl StandardSample for $t {
                #[inline]
                fn sample<R: RngCore>(rng: &mut R) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl StandardSample for bool {
        #[inline]
        fn sample<R: RngCore>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl StandardSample for f64 {
        #[inline]
        fn sample<R: RngCore>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64())
        }
    }

    impl StandardSample for f32 {
        #[inline]
        fn sample<R: RngCore>(rng: &mut R) -> Self {
            unit_f64(rng.next_u64()) as f32
        }
    }

    /// Ranges that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        ///
        /// # Panics
        ///
        /// Panics when the range is empty.
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    start + (end - start) * unit_f64(rng.next_u64()) as $t
                }
            }
        )*};
    }
    impl_range_float!(f32, f64);
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Random element selection from indexable sequences.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Uniformly picks one element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! The traits, in one import.
    pub use super::rngs::SmallRng;
    pub use super::seq::IndexedRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..10usize);
            assert!((3..10).contains(&x));
            let y = rng.random_range(-5i8..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn fill_fills_every_suffix_length() {
        let mut rng = SmallRng::seed_from_u64(4);
        for len in 0..20 {
            let mut buf = vec![0u8; len];
            rng.fill(buf.as_mut_slice());
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = SmallRng::seed_from_u64(5);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(xs.as_slice().choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
