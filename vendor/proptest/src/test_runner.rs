//! The runner-side types: [`TestRng`], [`ProptestConfig`], [`TestCaseError`].

use rand::prelude::*;

/// The RNG handed to strategies.
///
/// Seeds are fixed per test function (derived from the test's name), so a
/// failure seen in CI replays identically on a developer machine.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates a generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: SmallRng::seed_from_u64(h) }
    }
}

impl rand::RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Runner configuration. Only `cases` is meaningful in this shim; the
/// struct is non-exhaustive-by-convention via `..ProptestConfig::default()`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this container is single-core, so the
        // shim trims the default while keeping per-test overrides intact.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by a filter (not a failure).
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure with the given message.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A filtered-out case with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// Runs `body` for `config.cases` cases, panicking (with the generating
/// inputs rendered by `body` itself) on the first failure. This is the
/// engine behind the [`proptest!`](crate::proptest) macro; user code does
/// not call it directly.
pub fn run<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), String>,
{
    let mut rng = TestRng::for_test(name);
    for case in 0..config.cases {
        if let Err(msg) = body(&mut rng) {
            panic!("proptest case {case} of '{name}' failed:\n{msg}");
        }
    }
}
