//! The [`Strategy`] trait and combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, resampling (up to a retry bound).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates in a row", self.reason);
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// A weighted union of same-valued strategies — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V: Debug> Union<V> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty or all weights are zero.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = options.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut ticket = rng.random_range(0..total);
        for (weight, strat) in &self.options {
            let w = u64::from(*weight);
            if ticket < w {
                return strat.sample(rng);
            }
            ticket -= w;
        }
        unreachable!("ticket always lands within total weight")
    }
}

/// Length specification for [`collection::vec`](crate::collection::vec):
/// an exact length or a half-open/inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

/// See [`collection::vec`](crate::collection::vec).
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// See [`option::of`](crate::option::of).
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.random_range(0..4u8) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String strategies from a regex *subset*: a sequence of atoms, each a
/// character class `[...]` (ranges, escapes, literals) or a literal
/// character, optionally repeated with `{n}` or `{m,n}`. This covers every
/// pattern the workspace's tests use (e.g. `"[a-zA-Z_][a-zA-Z0-9_.-]{0,8}"`).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = rng.random_range(atom.min..=atom.max);
            for _ in 0..count {
                let i = rng.random_range(0..atom.chars.len());
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => parse_class(&mut it, pattern),
            '\\' => vec![unescape(
                it.next().unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            )],
            other => vec![other],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            parse_repeat(&mut it, pattern)
        } else {
            (1, 1)
        };
        assert!(!chars.is_empty(), "empty character class in pattern {pattern:?}");
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut chars = Vec::new();
    loop {
        let c = it
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => return chars,
            '\\' => chars.push(unescape(
                it.next().unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            )),
            lo => {
                // Range `lo-hi` (a trailing `-` is a literal).
                if it.peek() == Some(&'-') {
                    let mut ahead = it.clone();
                    ahead.next(); // consume '-'
                    match ahead.peek() {
                        Some(&hi) if hi != ']' => {
                            it.next();
                            it.next();
                            let hi = if hi == '\\' {
                                unreachable!("escapes as range bounds are unsupported")
                            } else {
                                hi
                            };
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            chars.extend(lo..=hi);
                        }
                        _ => chars.push(lo),
                    }
                } else {
                    chars.push(lo);
                }
            }
        }
    }
}

fn parse_repeat(
    it: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (usize, usize) {
    let mut nums = vec![String::new()];
    loop {
        match it.next() {
            Some('}') => break,
            Some(',') => nums.push(String::new()),
            Some(d) if d.is_ascii_digit() => nums.last_mut().unwrap().push(d),
            other => panic!("bad repetition {other:?} in pattern {pattern:?}"),
        }
    }
    let parse = |s: &String| s.parse::<usize>().unwrap_or(0);
    match nums.len() {
        1 => {
            let n = parse(&nums[0]);
            (n, n)
        }
        2 => (parse(&nums[0]), parse(&nums[1])),
        _ => panic!("bad repetition in pattern {pattern:?}"),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}
