//! Offline shim of the `proptest` 1.x API surface this workspace uses.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! small, dependency-light property-testing engine with the same *spelling*
//! as proptest: the [`Strategy`] trait with `prop_map` / `prop_filter` /
//! `boxed`, `Just`, `any::<T>()`, tuple and range strategies, string
//! strategies from a character-class regex subset, `prop::collection::vec`,
//! `prop::option::of`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** (the failing
//! inputs are printed verbatim), and case generation is deterministic (the
//! RNG seed is fixed per test, so CI failures reproduce locally).

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy for `Vec<T>` with element strategy `element` and a length
    /// drawn from `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` about a quarter of the time and
    /// `Some(value)` otherwise.
    pub fn of<S: Strategy>(value: S) -> OptionStrategy<S> {
        OptionStrategy { inner: value }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: std::fmt::Debug + Clone {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod prelude {
    //! Everything a `proptest!` test file needs, in one import.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! The `prop::` module tree (`prop::collection`, `prop::option`).
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///
///     #[test]
///     fn my_prop(x in 0u32..10, s in "[a-z]{1,4}") {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// Each test samples its arguments from the given strategies for
/// `config.cases` cases; the first failing case panics with the failing
/// inputs rendered via `Debug`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, __rng);)+
                    let __inputs =
                        format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __result.map_err(|e| format!("{e}\n  inputs: {__inputs}"))
                });
            }
        )*
    };
}

/// A weighted choice between strategies yielding the same type:
/// `prop_oneof![3 => strat_a, 1 => strat_b]` or, unweighted,
/// `prop_oneof![strat_a, strat_b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Like `assert!` but fails the current proptest case instead of
/// panicking directly (the runner adds the generating inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Like `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn mapped_ranges_hold(x in evens(), b in any::<bool>()) {
            prop_assert!(x % 2 == 0);
            prop_assert!(x < 1000);
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_bounds(
            xs in prop::collection::vec(0i32..10, 2..5),
            fixed in prop::collection::vec(any::<bool>(), 3),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert_eq!(fixed.len(), 3);
        }

        #[test]
        fn oneof_and_filter_compose(
            x in prop_oneof![3 => 0i32..10, 1 => Just(99)],
            y in (0i32..100).prop_filter("even", |v| v % 2 == 0),
        ) {
            prop_assert!((0..10).contains(&x) || x == 99);
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z][a-z0-9_]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn options_produce_both_variants(xs in prop::collection::vec(prop::option::of(0u8..5), 40)) {
            // Statistically certain with 40 draws at ~25% None.
            prop_assert!(xs.iter().any(|x| x.is_none()));
            prop_assert!(xs.iter().any(|x| x.is_some()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honored(_x in any::<bool>()) {
            // Runs without panicking; the case count is not observable from
            // inside, so this just exercises the config-parsing macro arm.
        }
    }

    // No `#[test]` meta: this one is only run (and expected to panic) from
    // `failures_panic_with_inputs` below.
    proptest! {
        fn always_fails(x in 5u32..6) {
            prop_assert!(x != 5, "x was {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "x was 5")]
    fn failures_panic_with_inputs() {
        always_fails();
    }
}
