//! Inspect the fuzzing code generation stage: load a model from XML text,
//! print the instrumented C step function and the branch map.
//!
//! ```sh
//! cargo run --release --example codegen_inspect
//! ```

use std::error::Error;

use cftcg::codegen::{compile, emit_c, emit_driver_c};
use cftcg::model::load_model;

/// A model written directly in the `.mdlx` on-disk format.
const MDLX: &str = r#"
<model name="speed_guard">
  <block name="speed" kind="Inport">
    <param name="index">0</param>
    <param name="dtype">uint16</param>
  </block>
  <block name="limit" kind="Inport">
    <param name="index">1</param>
    <param name="dtype">uint16</param>
  </block>
  <block name="margin" kind="Sum">
    <param name="signs">+-</param>
  </block>
  <block name="over" kind="Compare">
    <param name="op">&gt;</param>
    <param name="constant">0</param>
  </block>
  <block name="warn_zone" kind="Saturation">
    <param name="lower">-50</param>
    <param name="upper">50</param>
  </block>
  <block name="alarm" kind="Outport">
    <param name="index">0</param>
  </block>
  <block name="margin_out" kind="Outport">
    <param name="index">1</param>
  </block>
  <connection from="speed:0" to="margin:0"/>
  <connection from="limit:0" to="margin:1"/>
  <connection from="margin:0" to="over:0"/>
  <connection from="margin:0" to="warn_zone:0"/>
  <connection from="over:0" to="alarm:0"/>
  <connection from="warn_zone:0" to="margin_out:0"/>
</model>
"#;

fn main() -> Result<(), Box<dyn Error>> {
    let model = load_model(MDLX)?;
    model.validate()?;
    let compiled = compile(&model)?;

    println!("=== branch instrumentation map ===");
    for (i, decision) in compiled.map().decisions().iter().enumerate() {
        println!(
            "decision {i}: {} ({} outcomes, {} conditions{})",
            decision.label,
            decision.outcomes.len(),
            decision.conditions.len(),
            if decision.code_level { "" } else { ", branchless in -O2 code" },
        );
    }
    println!("\n=== instrumented step function ===");
    println!("{}", emit_c(&compiled));
    println!("=== fuzz driver ===");
    println!("{}", emit_driver_c(&compiled));
    Ok(())
}
