//! Quickstart: build a small model, run the CFTCG pipeline, inspect the
//! generated artifacts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::error::Error;
use std::time::Duration;

use cftcg::model::{BlockKind, DataType, LogicOp, ModelBuilder, RelOp};
use cftcg::Cftcg;

fn main() -> Result<(), Box<dyn Error>> {
    // A little supervisory controller: alarm when the filtered temperature
    // stays above a threshold while the system is armed.
    let mut b = ModelBuilder::new("overheat_guard");
    let temp = b.inport("temp", DataType::I16);
    let armed = b.inport("armed", DataType::Bool);

    let temp_f = b.add("temp_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.wire(temp, temp_f);
    let filt = b.add(
        "filter",
        BlockKind::DiscreteIntegrator {
            gain: 0.2,
            initial: 0.0,
            lower: Some(-500.0),
            upper: Some(500.0),
        },
    );
    b.wire(temp_f, filt);
    let hot = b.add("hot", BlockKind::Compare { op: RelOp::Gt, constant: 80.0 });
    b.wire(filt, hot);
    let alarm = b.add("alarm", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(hot, alarm, 0);
    b.feed(armed, alarm, 1);
    let y = b.outport("alarm_out");
    b.wire(alarm, y);
    let model = b.finish()?;

    // Stage 1: fuzzing code generation.
    let tool = Cftcg::new(&model)?;
    println!("=== generated fuzz driver (paper Fig. 3 shape) ===");
    println!("{}", tool.fuzz_driver_c());
    println!(
        "instrumentation: {} branches, {} decisions, {} conditions",
        tool.compiled().map().branch_count(),
        tool.compiled().map().decision_count(),
        tool.compiled().map().condition_count(),
    );

    // Stage 2: the model-oriented fuzzing loop.
    let generation = tool.generate(Duration::from_millis(500), 0);
    println!(
        "\nfuzzed {} inputs / {} model iterations in {:?} ({:.0} iterations/s)",
        generation.executions,
        generation.iterations,
        generation.elapsed,
        generation.iterations_per_second(),
    );
    println!("emitted {} test cases", generation.suite.len());

    // Stage 3: score the suite.
    let report = tool.score(&generation);
    println!("coverage: {report}");

    // Test cases export to Simulink-style CSV.
    if let Some(csv) = tool.export_csv(&generation.suite).first() {
        println!("\nfirst test case as CSV:\n{csv}");
    }
    Ok(())
}
