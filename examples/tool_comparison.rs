//! A miniature of the paper's Table 3 on one model: run SLDV-like,
//! SimCoTest-like, and CFTCG under the same wall-clock budget and score all
//! three with the common replay yardstick.
//!
//! ```sh
//! cargo run --release --example tool_comparison -- [ModelName] [budget_ms]
//! ```

use std::error::Error;
use std::time::Duration;

use cftcg::baselines::{fuzz_only, simcotest, sldv};
use cftcg::codegen::{compile, replay_suite};
use cftcg::Cftcg;

fn main() -> Result<(), Box<dyn Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "TWC".to_string());
    let budget_ms: u64 = args.next().map_or(1500, |s| s.parse().unwrap_or(1500));
    let budget = Duration::from_millis(budget_ms);

    let model = cftcg::benchmarks::by_name(&name).ok_or_else(|| {
        format!("unknown model `{name}`; pick one of {:?}", cftcg::benchmarks::NAMES)
    })?;
    let compiled = compile(&model)?;
    println!("{name}: {} branches, budget {budget:?} per tool\n", compiled.map().branch_count());
    println!(
        "{:<12} {:>9} {:>10} {:>7} {:>7} {:>7}  notes",
        "tool", "cases", "iters/s", "DC%", "CC%", "MCDC%"
    );

    let show = |tool: &str, generation: &cftcg::Generation| {
        let report = replay_suite(&compiled, &generation.suite);
        println!(
            "{:<12} {:>9} {:>10.0} {:>6.0}% {:>6.0}% {:>6.0}%  {}",
            tool,
            generation.suite.len(),
            generation.iterations_per_second(),
            report.decision.percent(),
            report.condition.percent(),
            report.mcdc.percent(),
            generation.notes,
        );
    };

    let g = sldv::generate(&model, &compiled, &sldv::SldvConfig { budget, ..Default::default() });
    show("SLDV-like", &g);

    let g = simcotest::generate(
        &model,
        &simcotest::SimCoTestConfig { budget, seed: 1, ..Default::default() },
    );
    show("SimCoTest", &g);

    let g = fuzz_only::generate(&compiled, &fuzz_only::FuzzOnlyConfig { budget, seed: 1 });
    show("Fuzz Only", &g);

    let tool = Cftcg::new(&model)?;
    let g = tool.generate(budget, 1);
    show("CFTCG", &g);

    Ok(())
}
