//! The paper's running example, end to end: the SolarPV panel energy
//! output control system (its Figures 1, 3 and 5).
//!
//! Demonstrates the model file format, the generated driver with the
//! paper's exact 9-byte tuple layout, the fuzzing loop, and the speed gap
//! between the compiled path and interpretive simulation.
//!
//! ```sh
//! cargo run --release --example solar_pv
//! ```

use std::error::Error;
use std::time::{Duration, Instant};

use cftcg::benchmarks::solar_pv;
use cftcg::model::{save_model, Value};
use cftcg::sim::Simulator;
use cftcg::Cftcg;

fn main() -> Result<(), Box<dyn Error>> {
    let model = solar_pv::model();

    // The model persists to the XML `.mdlx` format ("Unzip + TinyXML" path).
    let xml = save_model(&model);
    println!(
        "SolarPV: {} blocks (incl. subsystems), model file {} KiB",
        model.total_block_count(),
        xml.len() / 1024
    );

    let tool = Cftcg::new(&model)?;
    let layout = tool.compiled().layout();
    println!("driver tuple layout: {} bytes/iteration (paper: dataLen = 9)", layout.tuple_size());
    for field in layout.fields() {
        println!("  {:>8}  {}  at offset {}", field.name, field.dtype, field.offset);
    }

    // Model-oriented fuzzing.
    let generation = tool.generate(Duration::from_secs(2), 1);
    let report = tool.score(&generation);
    println!("\nCFTCG after {:?}: {report}", generation.elapsed);
    println!(
        "  {} test cases, {:.0} compiled iterations/s",
        generation.suite.len(),
        generation.iterations_per_second()
    );

    // The speed story (paper: 6 iterations/s simulated vs 26 000+ fuzzed):
    // run the same tuples through the interpretive simulator.
    let mut sim = Simulator::new(&model)?;
    let tuple = vec![Value::I8(1), Value::I32(1000), Value::I32(1)];
    let started = Instant::now();
    let mut sim_iters = 0u64;
    while started.elapsed() < Duration::from_millis(300) {
        sim.step(&tuple)?;
        sim_iters += 1;
    }
    let sim_rate = sim_iters as f64 / started.elapsed().as_secs_f64();
    println!(
        "\ninterpretive simulator: {:.0} iterations/s (×{:.0} slower than the compiled loop)",
        sim_rate,
        generation.iterations_per_second() / sim_rate
    );
    println!(
        "(the paper's Simulink engine is far heavier still; \
         `Simulator::set_engine_overhead` models that gap)"
    );
    Ok(())
}
