//! Property tests on the artifact diff: the algebraic laws any
//! differential view must satisfy, checked against randomly fuzzed
//! campaign artifacts.
//!
//! * **Identity**: `diff(a, a)` reports no gained or lost goals, zero
//!   first-hit shifts, zero yield deltas, and no identity mismatches.
//! * **Anti-symmetry**: swapping the arguments swaps the partition
//!   (`only_a` ↔ `only_b`), negates every first-hit shift and the goal
//!   balance, and transposes the yield rows.

use cftcg_compare::ArtifactDiff;
use cftcg_core::{CampaignArtifact, CampaignHit, HostMeta};
use cftcg_coverage::Goal;
use cftcg_telemetry::YieldReport;
use proptest::prelude::*;

/// Strategy for one goal: the index space is kept tiny so two artifacts
/// routinely share goals (exercising `both`) and routinely don't
/// (exercising `only_a` / `only_b`).
fn goal() -> impl Strategy<Value = Goal> {
    prop_oneof![
        (0u32..6).prop_map(|i| Goal::Outcome(i as usize)),
        ((0u32..4), any::<bool>()).prop_map(|(i, v)| Goal::Condition(i as usize, v)),
        (0u32..4).prop_map(|i| Goal::Mcdc(i as usize)),
    ]
}

fn yields() -> impl Strategy<Value = Vec<YieldReport>> {
    prop::collection::vec(
        ((0u32..3), (0u64..500), (0u64..20), (0u64..20), (0u64..3)).prop_map(
            |(name, executed, new_coverage, corpus_insert, violation)| YieldReport {
                name: ["EraseTuples", "InsertTuples", "ChangeBytes"][name as usize].to_string(),
                executed,
                new_coverage,
                corpus_insert,
                violation,
            },
        ),
        0..4,
    )
    .prop_map(|mut rows| {
        // One row per operator, like the real yield matrix.
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        rows.dedup_by(|a, b| a.name == b.name);
        rows
    })
}

/// Strategy for a fuzzed artifact: random goal set with random first-hit
/// indices, random identity fields, random yield rows. Cases/lineage/series
/// stay empty — the diff never reads them.
fn artifact() -> impl Strategy<Value = CampaignArtifact> {
    (
        prop::collection::vec((goal(), 1u64..10_000), 0..12),
        (1u64..1000, 1usize..4, 0u64..200_000),
        prop::option::of((0u32..3).prop_map(|i| ["ref", "flat", "jit"][i as usize].to_string())),
        prop::option::of((1u64..64).prop_map(|cores| HostMeta { cores, arch: "x86_64".into() })),
        yields(),
    )
        .prop_map(|(mut hits, (seed, workers, executions), engine, host, yields)| {
            hits.sort_by_key(|&(goal, _)| goal);
            hits.dedup_by_key(|&mut (goal, _)| goal);
            CampaignArtifact {
                model: "prop".into(),
                seed,
                workers,
                executions,
                iterations: executions * 4,
                elapsed_s: 0.25,
                branch_count: 16,
                covered_branches: hits.len().min(16),
                cases: Vec::new(),
                lineage: Vec::new(),
                hits: hits
                    .into_iter()
                    .map(|(goal, executions)| CampaignHit {
                        goal,
                        executions,
                        elapsed_s: 0.0,
                        shard: 0,
                        case: 0,
                        ops: Vec::new(),
                    })
                    .collect(),
                series: Vec::new(),
                engine,
                host,
                yields,
                spans: Vec::new(),
            }
        })
}

proptest! {
    /// `diff(a, a)` is the identity diff: nothing gained, nothing lost,
    /// nothing shifted, no mismatch annotations.
    #[test]
    fn self_diff_is_identity(a in artifact()) {
        let diff = ArtifactDiff::compute(&a, &a);
        prop_assert!(diff.is_identity());
        prop_assert!(diff.only_a.is_empty());
        prop_assert!(diff.only_b.is_empty());
        prop_assert_eq!(diff.both.len(), a.hits.len());
        prop_assert!(diff.both.iter().all(|s| s.delta() == 0));
        prop_assert!(diff.yields.iter().all(|y| y.is_zero()));
        prop_assert!(diff.mismatches.is_empty());
        prop_assert_eq!(diff.goal_balance(), 0);
    }

    /// Swapping the arguments transposes the diff: `only_a` ↔ `only_b`,
    /// every shift and the goal balance negate, yield rows swap sides.
    #[test]
    fn diff_is_anti_symmetric(a in artifact(), b in artifact()) {
        let ab = ArtifactDiff::compute(&a, &b);
        let ba = ArtifactDiff::compute(&b, &a);

        prop_assert_eq!(&ab.only_a, &ba.only_b);
        prop_assert_eq!(&ab.only_b, &ba.only_a);
        prop_assert_eq!(ab.goal_balance(), -ba.goal_balance());
        prop_assert_eq!(ab.is_identity(), ba.is_identity());

        prop_assert_eq!(ab.both.len(), ba.both.len());
        for (fwd, rev) in ab.both.iter().zip(&ba.both) {
            prop_assert_eq!(fwd.goal, rev.goal);
            prop_assert_eq!(fwd.delta(), -rev.delta());
            prop_assert_eq!(fwd.executions_a, rev.executions_b);
        }

        // Yield rows transpose (membership, not order: the union order is
        // first-seen and thus side-dependent).
        prop_assert_eq!(ab.yields.len(), ba.yields.len());
        for fwd in &ab.yields {
            let rev = ba.yields.iter().find(|y| y.name == fwd.name);
            prop_assert!(rev.is_some(), "operator {} lost in swap", fwd.name);
            let rev = rev.unwrap();
            prop_assert_eq!(fwd.a, rev.b);
            prop_assert_eq!(fwd.b, rev.a);
        }

        // Mismatch annotations are membership-symmetric: the same
        // dimensions are flagged regardless of argument order.
        prop_assert_eq!(ab.mismatches.len(), ba.mismatches.len());
    }

    /// The goal partition is exhaustive and disjoint: every goal of either
    /// side lands in exactly one of `only_a` / `only_b` / `both`.
    #[test]
    fn partition_is_exhaustive_and_disjoint(a in artifact(), b in artifact()) {
        let diff = ArtifactDiff::compute(&a, &b);
        prop_assert_eq!(diff.only_a.len() + diff.both.len(), a.hits.len());
        prop_assert_eq!(diff.only_b.len() + diff.both.len(), b.hits.len());
        for side in &diff.only_a {
            prop_assert!(!diff.both.iter().any(|s| s.goal == side.goal));
            prop_assert!(!diff.only_b.iter().any(|s| s.goal == side.goal));
        }
    }
}
