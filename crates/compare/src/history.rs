//! The bench-history subsystem: append-only JSONL records per benchmark
//! under `results/history/<bench>.jsonl`, so repeated runs accumulate a
//! time series instead of clobbering one flat snapshot — plus the
//! `--check-regress` gate that compares the newest point against the
//! trailing median and fails CI on a throughput or coverage regression.
//!
//! Records are deliberately schema-light: a benchmark is a bag of named
//! throughput metrics (bigger is better, ratio-compared) and named
//! coverage metrics (bigger is better, absolute-compared). New metrics can
//! appear and old ones disappear across commits without invalidating the
//! file; the gate only compares metrics present on both sides.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use cftcg_telemetry::json::{push_json_f64, push_json_str, Json};

/// Throughput drop tolerated before the gate fails: the new point must be
/// at least `1 − REGRESS_TOLERANCE` of the trailing median.
pub const REGRESS_TOLERANCE: f64 = 0.15;

/// Trailing window (number of most-recent history records) the gate
/// medians over.
pub const DEFAULT_WINDOW: usize = 5;

/// One appended benchmark observation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Unix timestamp (seconds) of the run.
    pub t_unix: u64,
    /// Benchmark name (also the JSONL file stem).
    pub bench: String,
    /// Named throughput metrics, bigger is better (iterations/s, cases/s).
    /// Compared as ratios: a >15% drop against the trailing median fails.
    pub throughput: Vec<(String, f64)>,
    /// Named coverage metrics, bigger is better (covered branches at a
    /// fixed budget). Compared absolutely: any drop below the trailing
    /// median fails.
    pub coverage: Vec<(String, f64)>,
}

impl HistoryRecord {
    /// Serializes the record as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"t_unix\":{},\"bench\":", self.t_unix);
        push_json_str(&mut out, &self.bench);
        for (key, metrics) in [("throughput", &self.throughput), ("coverage", &self.coverage)] {
            let _ = write!(out, ",\"{key}\":{{");
            for (i, (name, value)) in metrics.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, name);
                out.push(':');
                push_json_f64(&mut out, *value);
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Parses one JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_jsonl(line: &str) -> Result<HistoryRecord, String> {
        let doc = Json::parse(line).map_err(|e| format!("history line: {e}"))?;
        let metrics = |key: &str| -> Result<Vec<(String, f64)>, String> {
            match doc.get(key) {
                None | Some(Json::Null) => Ok(Vec::new()),
                Some(Json::Obj(entries)) => entries
                    .iter()
                    .map(|(name, value)| {
                        value
                            .as_f64()
                            .map(|v| (name.clone(), v))
                            .ok_or_else(|| format!("history {key}.{name} is not a number"))
                    })
                    .collect(),
                Some(_) => Err(format!("history `{key}` is not an object")),
            }
        };
        Ok(HistoryRecord {
            t_unix: doc
                .get("t_unix")
                .and_then(Json::as_u64)
                .ok_or("history line missing `t_unix`")?,
            bench: doc
                .get("bench")
                .and_then(Json::as_str)
                .ok_or("history line missing `bench`")?
                .to_string(),
            throughput: metrics("throughput")?,
            coverage: metrics("coverage")?,
        })
    }

    fn metric(metrics: &[(String, f64)], name: &str) -> Option<f64> {
        metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// The JSONL path of one benchmark's history under `dir`
/// (`<dir>/history/<bench>.jsonl`).
pub fn history_path(dir: &Path, bench: &str) -> PathBuf {
    dir.join("history").join(format!("{bench}.jsonl"))
}

/// Appends one record to `<dir>/history/<bench>.jsonl`, creating the
/// directory chain on first use.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_history(dir: &Path, record: &HistoryRecord) -> std::io::Result<PathBuf> {
    let path = history_path(dir, &record.bench);
    fs::create_dir_all(path.parent().expect("history path has a parent"))?;
    let mut file = fs::OpenOptions::new().create(true).append(true).open(&path)?;
    writeln!(file, "{}", record.to_jsonl())?;
    Ok(path)
}

/// Loads a benchmark's history, oldest first. A missing file is an empty
/// history (the first run seeds it); a malformed line is an error naming
/// the line number.
///
/// # Errors
///
/// Returns filesystem or parse errors.
pub fn load_history(dir: &Path, bench: &str) -> Result<Vec<HistoryRecord>, String> {
    let path = history_path(dir, bench);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            HistoryRecord::from_jsonl(line)
                .map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))
        })
        .collect()
}

/// One gate violation: a metric of the new point regressed against the
/// trailing median.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// `throughput` or `coverage`.
    pub kind: &'static str,
    /// Metric name.
    pub metric: String,
    /// The new point's value.
    pub current: f64,
    /// Trailing median over the comparison window.
    pub baseline: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} `{}` regressed: {:.1} vs trailing median {:.1} ({:+.1}%)",
            self.kind,
            self.metric,
            self.current,
            self.baseline,
            (self.current / self.baseline.max(1e-9) - 1.0) * 100.0
        )
    }
}

/// Gates `current` against the trailing `window` records of `history`
/// (the history must NOT already contain `current`). Returns the list of
/// violations — empty means the gate passes. Metrics without a baseline
/// (first run, renamed metric) are skipped: the gate never fails on an
/// empty or incomparable history.
pub fn check_regress(
    history: &[HistoryRecord],
    current: &HistoryRecord,
    window: usize,
) -> Vec<Regression> {
    let tail: Vec<&HistoryRecord> = history.iter().rev().take(window.max(1)).collect();
    let median_of = |pick: fn(&HistoryRecord) -> &Vec<(String, f64)>, name: &str| {
        let mut values: Vec<f64> =
            tail.iter().filter_map(|r| HistoryRecord::metric(pick(r), name)).collect();
        if values.is_empty() {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("metrics are never NaN"));
        Some(values[values.len() / 2])
    };
    let mut out = Vec::new();
    for (name, value) in &current.throughput {
        if let Some(baseline) = median_of(|r| &r.throughput, name) {
            if *value < baseline * (1.0 - REGRESS_TOLERANCE) {
                out.push(Regression {
                    kind: "throughput",
                    metric: name.clone(),
                    current: *value,
                    baseline,
                });
            }
        }
    }
    for (name, value) in &current.coverage {
        if let Some(baseline) = median_of(|r| &r.coverage, name) {
            if *value < baseline {
                out.push(Regression {
                    kind: "coverage",
                    metric: name.clone(),
                    current: *value,
                    baseline,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: u64, rate: f64, covered: f64) -> HistoryRecord {
        HistoryRecord {
            t_unix: t,
            bench: "vm".into(),
            throughput: vec![("SolarPV/flat".into(), rate)],
            coverage: vec![("SolarPV".into(), covered)],
        }
    }

    #[test]
    fn jsonl_round_trip() {
        let r = record(1_700_000_000, 26_000.5, 34.0);
        let line = r.to_jsonl();
        assert!(line.starts_with("{\"t_unix\":1700000000,\"bench\":\"vm\""));
        assert_eq!(HistoryRecord::from_jsonl(&line).unwrap(), r);
        assert!(HistoryRecord::from_jsonl("{}").is_err());
        // Empty metric bags survive.
        let bare = HistoryRecord {
            t_unix: 5,
            bench: "b".into(),
            throughput: Vec::new(),
            coverage: Vec::new(),
        };
        assert_eq!(HistoryRecord::from_jsonl(&bare.to_jsonl()).unwrap(), bare);
    }

    #[test]
    fn append_and_load_accumulate() {
        let dir = std::env::temp_dir().join(format!("cftcg-history-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = append_history(&dir, &record(1, 100.0, 30.0)).unwrap();
        append_history(&dir, &record(2, 110.0, 31.0)).unwrap();
        assert!(path.ends_with("history/vm.jsonl"));
        let history = load_history(&dir, "vm").unwrap();
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].t_unix, 1);
        assert_eq!(history[1].throughput[0].1, 110.0);
        assert!(load_history(&dir, "missing").unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_fails_on_large_throughput_drop_only() {
        let history: Vec<_> = (0..5).map(|i| record(i, 100.0 + i as f64, 30.0)).collect();
        // Median of the window is 102; -10% passes, -20% fails.
        assert!(check_regress(&history, &record(9, 92.0, 30.0), DEFAULT_WINDOW).is_empty());
        let violations = check_regress(&history, &record(9, 80.0, 30.0), DEFAULT_WINDOW);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, "throughput");
        assert_eq!(violations[0].baseline, 102.0);
        assert!(violations[0].to_string().contains("regressed"));
    }

    #[test]
    fn gate_fails_on_any_coverage_drop() {
        let history: Vec<_> = (0..3).map(|i| record(i, 100.0, 30.0)).collect();
        let violations = check_regress(&history, &record(9, 100.0, 29.0), DEFAULT_WINDOW);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, "coverage");
        assert!(check_regress(&history, &record(9, 100.0, 30.0), DEFAULT_WINDOW).is_empty());
    }

    #[test]
    fn gate_skips_unseeded_metrics() {
        // Empty history, renamed metric: never fail.
        assert!(check_regress(&[], &record(9, 1.0, 1.0), DEFAULT_WINDOW).is_empty());
        let history = vec![record(1, 100.0, 30.0)];
        let mut renamed = record(9, 1.0, 1.0);
        renamed.throughput[0].0 = "Other/flat".into();
        renamed.coverage[0].0 = "Other".into();
        assert!(check_regress(&history, &renamed, DEFAULT_WINDOW).is_empty());
    }
}
