//! Frontier-cause migration between two campaigns: which blocked goals one
//! side unblocked, and how the cause classification of the goals still open
//! on both sides shifted. Replay-based — the artifact stores suite bytes,
//! not observations, so both suites are run through the compiled model to
//! rebuild the evidence the frontier analysis needs.

use cftcg_codegen::{replay_case, CompiledModel, TestCase};
use cftcg_core::CampaignArtifact;
use cftcg_coverage::{frontier, FrontierEntry, FullTracker, Goal, InstrumentationMap};

/// One goal open on one side and closed (or differently blocked) on the
/// other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigratedGoal {
    /// The goal.
    pub goal: Goal,
    /// Goal label resolved to the model block path.
    pub label: String,
    /// Cause tag on the side where the goal is (or was) open.
    pub cause: String,
    /// The open side's cause elaboration (blocked MCDC pair, observed
    /// polarity, …).
    pub detail: String,
}

/// A goal open on both sides, with both cause classifications — a cause
/// change without coverage (e.g. `mcdc-decision-never-reached` →
/// `mcdc-blocked-pair`) still shows search progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenBoth {
    /// The goal.
    pub goal: Goal,
    /// Goal label resolved to the model block path.
    pub label: String,
    /// Cause tag in campaign A.
    pub cause_a: String,
    /// Cause tag in campaign B.
    pub cause_b: String,
}

/// The frontier migration between two campaigns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierMigration {
    /// Goals open in A that B closed, with A's blocking cause.
    pub unblocked_by_b: Vec<MigratedGoal>,
    /// Goals open in B that A closed, with B's blocking cause.
    pub unblocked_by_a: Vec<MigratedGoal>,
    /// Goals open on both sides, with both cause tags.
    pub open_both: Vec<OpenBoth>,
}

impl FrontierMigration {
    /// Computes the migration from two replayed trackers.
    pub fn compute(
        map: &InstrumentationMap,
        tracker_a: &FullTracker,
        tracker_b: &FullTracker,
    ) -> Self {
        let open_a = frontier(map, tracker_a);
        let open_b = frontier(map, tracker_b);
        let migrated = |entry: &FrontierEntry| MigratedGoal {
            goal: entry.goal,
            label: entry.label.clone(),
            cause: entry.cause.tag().to_string(),
            detail: entry.detail.clone(),
        };
        let in_side = |side: &[FrontierEntry], goal: Goal| side.iter().any(|e| e.goal == goal);
        FrontierMigration {
            unblocked_by_b: open_a
                .iter()
                .filter(|e| !in_side(&open_b, e.goal))
                .map(migrated)
                .collect(),
            unblocked_by_a: open_b
                .iter()
                .filter(|e| !in_side(&open_a, e.goal))
                .map(migrated)
                .collect(),
            open_both: open_a
                .iter()
                .filter_map(|ea| {
                    open_b.iter().find(|eb| eb.goal == ea.goal).map(|eb| OpenBoth {
                        goal: ea.goal,
                        label: ea.label.clone(),
                        cause_a: ea.cause.tag().to_string(),
                        cause_b: eb.cause.tag().to_string(),
                    })
                })
                .collect(),
        }
    }

    /// Whether both frontiers are identical in membership (causes may still
    /// differ — check [`OpenBoth`] rows).
    pub fn is_symmetric(&self) -> bool {
        self.unblocked_by_a.is_empty() && self.unblocked_by_b.is_empty()
    }
}

/// Rebuilds the replay-time observations of a persisted campaign by running
/// its embedded suite bytes through the compiled model — the same evidence
/// the frontier analysis and the HTML explorer derive from.
pub fn replay_tracker(compiled: &CompiledModel, artifact: &CampaignArtifact) -> FullTracker {
    let mut tracker = FullTracker::new(compiled.map());
    for case in &artifact.cases {
        replay_case(compiled, &TestCase::new(case.bytes.clone()), &mut tracker);
    }
    tracker
}
