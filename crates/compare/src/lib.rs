#![warn(missing_docs)]

//! Comparative observability for CFTCG campaigns.
//!
//! Everything upstream of this crate observes **one** run: the dashboard
//! streams it, the explorer renders it, the forensics tables dissect it.
//! This crate answers the question that actually drives engine and search
//! work — *did the change help?* — by comparing **two** runs:
//!
//! * [`ArtifactDiff`] — the pure, replay-free diff of two persisted
//!   [`CampaignArtifact`](cftcg_core::CampaignArtifact)s: the per-goal
//!   coverage partition (only-A / only-B / both, keyed by stable
//!   [`Goal`](cftcg_coverage::Goal) identity), first-hit execution-index
//!   shifts, mutation-yield-matrix and span-profile deltas, and the
//!   run-identity mismatch annotations that keep apples-to-oranges
//!   comparisons honest.
//! * [`FrontierMigration`] — the replay-based half: which blocked goals
//!   (e.g. pinned MCDC pairs) one side unblocked, and how the blocking
//!   causes of the still-open goals migrated.
//! * [`terminal_report`] / [`diff_json`] / [`diff_html`] — one diff, three
//!   renderings: aligned terminal table, machine JSON, and a
//!   self-contained side-by-side HTML report with a coverage-vs-time curve
//!   overlay in the explorer's visual language.
//! * [`run_ab`] — the paired A/B harness: interleaved trials with shared
//!   per-trial seeds, median/IQR summaries of goals-at-budget and
//!   time-to-goal, and a representative artifact pair feeding the same
//!   diff renderers.
//! * [`append_history`] / [`check_regress`] — the bench-history gate:
//!   benchmarks append timestamped JSONL records under `results/history/`
//!   instead of clobbering a snapshot, and CI compares each new point
//!   against the trailing median (>15% throughput drop or any
//!   coverage-at-budget drop fails).
//!
//! Like every persistence layer in the tree, serialization is hand-rolled
//! over [`cftcg_telemetry::json`] — no new dependencies.

mod ab;
mod diff;
mod frontier;
mod history;
mod html;
mod render;

pub use ab::{
    ab_report, run_ab, AbBudget, AbOutcome, Spread, TrialResult, VariantOutcome, VariantSpec,
};
pub use diff::{ArtifactDiff, GoalShift, GoalSide, RunIdentity, SpanDelta, YieldDelta};
pub use frontier::{replay_tracker, FrontierMigration, MigratedGoal, OpenBoth};
pub use history::{
    append_history, check_regress, history_path, load_history, HistoryRecord, Regression,
    DEFAULT_WINDOW, REGRESS_TOLERANCE,
};
pub use html::diff_html;
pub use render::{diff_json, terminal_report};
