//! Terminal and machine-JSON renderers of an [`ArtifactDiff`]. Both are
//! byte-stable functions of their inputs: collections are walked in the
//! diff's deterministic order, and floats go through the telemetry JSON
//! writer used by every other persisted document.

use std::fmt::Write as _;

use cftcg_coverage::InstrumentationMap;
use cftcg_telemetry::json::{push_json_f64, push_json_str};

use crate::diff::{ArtifactDiff, RunIdentity};
use crate::frontier::FrontierMigration;

/// Renders the diff as an aligned terminal report. `map` resolves goal
/// labels to model block paths.
pub fn terminal_report(
    diff: &ArtifactDiff,
    migration: Option<&FrontierMigration>,
    map: &InstrumentationMap,
) -> String {
    let mut out = String::new();
    let side = |id: &RunIdentity| {
        format!(
            "seed {} | {} worker(s) | engine {} | {} executions | {}/{} branches | {} goals",
            id.seed,
            id.workers,
            id.engine.as_deref().unwrap_or("?"),
            id.executions,
            id.covered_branches,
            id.branch_count,
            id.goals
        )
    };
    let _ = writeln!(out, "campaign A : model {} | {}", diff.a.model, side(&diff.a));
    let _ = writeln!(out, "campaign B : model {} | {}", diff.b.model, side(&diff.b));
    if !diff.mismatches.is_empty() {
        let _ = writeln!(out, "WARNING    : apples-to-oranges comparison —");
        for m in &diff.mismatches {
            let _ = writeln!(out, "  mismatch : {m}");
        }
    }
    let _ = writeln!(
        out,
        "goals      : {} both | {} only A | {} only B (net B−A: {:+})",
        diff.both.len(),
        diff.only_a.len(),
        diff.only_b.len(),
        diff.goal_balance()
    );
    if diff.is_identity() {
        let _ = writeln!(out, "verdict    : identical coverage outcomes");
    }
    for (title, rows) in
        [("goals only A covered", &diff.only_a), ("goals only B covered", &diff.only_b)]
    {
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{title}:");
        for row in rows {
            let _ = writeln!(
                out,
                "  [{}] {} (first hit at execution {})",
                row.goal.metric(),
                row.goal.label(map),
                row.executions
            );
        }
    }
    let shifted: Vec<_> = diff.both.iter().filter(|s| s.delta() != 0).collect();
    if !shifted.is_empty() {
        let _ = writeln!(out, "first-hit shifts (goals both covered, B−A executions):");
        for shift in shifted {
            let _ = writeln!(
                out,
                "  [{}] {}  A@{} B@{} ({:+})",
                shift.goal.metric(),
                shift.goal.label(map),
                shift.executions_a,
                shift.executions_b,
                shift.delta()
            );
        }
    }
    let changed: Vec<_> = diff.yields.iter().filter(|y| !y.is_zero()).collect();
    if !changed.is_empty() {
        let width = changed.iter().map(|y| y.name.len()).max().unwrap_or(8).max("operator".len());
        let _ = writeln!(
            out,
            "mutation-yield deltas (B−A):\n  {:width$}  {:>10}  {:>12}  {:>13}  {:>10}",
            "operator", "executed", "new-coverage", "corpus-insert", "violation"
        );
        for y in changed {
            let d = |i: usize| y.b[i] as i64 - y.a[i] as i64;
            let _ = writeln!(
                out,
                "  {:width$}  {:>+10}  {:>+12}  {:>+13}  {:>+10}",
                y.name,
                d(0),
                d(1),
                d(2),
                d(3)
            );
        }
    }
    if !diff.spans.is_empty() {
        let width = diff.spans.iter().map(|s| s.name.len()).max().unwrap_or(8).max("phase".len());
        let _ = writeln!(
            out,
            "span-profile totals (wall-clock ns):\n  {:width$}  {:>14}  {:>14}",
            "phase", "A total", "B total"
        );
        for span in &diff.spans {
            let total = |s: &Option<cftcg_core::SpanSummary>| {
                s.as_ref().map_or("-".to_string(), |s| s.total_ns.to_string())
            };
            let _ = writeln!(
                out,
                "  {:width$}  {:>14}  {:>14}",
                span.name,
                total(&span.a),
                total(&span.b)
            );
        }
    }
    if let Some(migration) = migration {
        for (title, rows) in [
            ("frontier goals B unblocked (A's blocking cause shown)", &migration.unblocked_by_b),
            ("frontier goals A unblocked (B's blocking cause shown)", &migration.unblocked_by_a),
        ] {
            if rows.is_empty() {
                continue;
            }
            let _ = writeln!(out, "{title}:");
            for row in rows {
                let _ = writeln!(
                    out,
                    "  [{}] {} — {}: {}",
                    row.goal.metric(),
                    row.label,
                    row.cause,
                    row.detail
                );
            }
        }
        let moved: Vec<_> = migration.open_both.iter().filter(|g| g.cause_a != g.cause_b).collect();
        if !moved.is_empty() {
            let _ = writeln!(out, "still open on both sides, cause migrated:");
            for g in moved {
                let _ = writeln!(
                    out,
                    "  [{}] {} — {} → {}",
                    g.goal.metric(),
                    g.label,
                    g.cause_a,
                    g.cause_b
                );
            }
        }
    }
    out
}

/// Renders the diff as one machine-readable JSON document.
pub fn diff_json(
    diff: &ArtifactDiff,
    migration: Option<&FrontierMigration>,
    map: &InstrumentationMap,
) -> String {
    let mut out = String::new();
    out.push_str("{\n\"a\":");
    push_identity(&mut out, &diff.a);
    out.push_str(",\n\"b\":");
    push_identity(&mut out, &diff.b);
    out.push_str(",\n\"mismatches\":[");
    for (i, m) in diff.mismatches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(&mut out, m);
    }
    let _ = write!(
        out,
        "],\n\"identity\":{},\n\"goal_balance\":{}",
        diff.is_identity(),
        diff.goal_balance()
    );
    for (key, rows) in [("only_a", &diff.only_a), ("only_b", &diff.only_b)] {
        let _ = write!(out, ",\n\"{key}\":[");
        for (i, row) in rows.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"goal\":");
            push_json_str(&mut out, &row.goal.label(map));
            let _ = write!(
                out,
                ",\"metric\":\"{}\",\"executions\":{}}}",
                row.goal.metric(),
                row.executions
            );
        }
        out.push(']');
    }
    out.push_str(",\n\"both\":[");
    for (i, shift) in diff.both.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("{\"goal\":");
        push_json_str(&mut out, &shift.goal.label(map));
        let _ = write!(
            out,
            ",\"metric\":\"{}\",\"executions_a\":{},\"executions_b\":{},\"delta\":{}}}",
            shift.goal.metric(),
            shift.executions_a,
            shift.executions_b,
            shift.delta()
        );
    }
    out.push_str("],\n\"yields\":[");
    for (i, y) in diff.yields.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("{\"name\":");
        push_json_str(&mut out, &y.name);
        let _ = write!(
            out,
            ",\"a\":[{},{},{},{}],\"b\":[{},{},{},{}]}}",
            y.a[0], y.a[1], y.a[2], y.a[3], y.b[0], y.b[1], y.b[2], y.b[3]
        );
    }
    out.push_str("],\n\"spans\":[");
    for (i, span) in diff.spans.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("{\"name\":");
        push_json_str(&mut out, &span.name);
        for (key, side) in [("a", &span.a), ("b", &span.b)] {
            let _ = write!(out, ",\"{key}\":");
            match side {
                Some(s) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                        s.count, s.total_ns, s.p50_ns, s.p99_ns
                    );
                }
                None => out.push_str("null"),
            }
        }
        out.push('}');
    }
    out.push(']');
    if let Some(migration) = migration {
        for (key, rows) in [
            ("unblocked_by_b", &migration.unblocked_by_b),
            ("unblocked_by_a", &migration.unblocked_by_a),
        ] {
            let _ = write!(out, ",\n\"{key}\":[");
            for (i, row) in rows.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("{\"label\":");
                push_json_str(&mut out, &row.label);
                out.push_str(",\"cause\":");
                push_json_str(&mut out, &row.cause);
                out.push_str(",\"detail\":");
                push_json_str(&mut out, &row.detail);
                out.push('}');
            }
            out.push(']');
        }
        out.push_str(",\n\"open_both\":[");
        for (i, g) in migration.open_both.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"label\":");
            push_json_str(&mut out, &g.label);
            out.push_str(",\"cause_a\":");
            push_json_str(&mut out, &g.cause_a);
            out.push_str(",\"cause_b\":");
            push_json_str(&mut out, &g.cause_b);
            out.push('}');
        }
        out.push(']');
    }
    out.push_str("\n}\n");
    out
}

fn push_identity(out: &mut String, id: &RunIdentity) {
    out.push_str("{\"model\":");
    push_json_str(out, &id.model);
    let _ = write!(out, ",\"seed\":{},\"workers\":{},\"engine\":", id.seed, id.workers);
    match &id.engine {
        Some(e) => push_json_str(out, e),
        None => out.push_str("null"),
    }
    out.push_str(",\"host\":");
    match &id.host {
        Some(h) => {
            let _ = write!(out, "{{\"cores\":{},\"arch\":", h.cores);
            push_json_str(out, &h.arch);
            out.push('}');
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"executions\":{},\"elapsed_s\":", id.executions);
    push_json_f64(out, id.elapsed_s);
    let _ = write!(
        out,
        ",\"covered_branches\":{},\"branch_count\":{},\"cases\":{},\"goals\":{}}}",
        id.covered_branches, id.branch_count, id.cases, id.goals
    );
}
