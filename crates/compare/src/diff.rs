//! The differential view of two persisted campaigns: per-goal coverage
//! partition, first-hit execution-index shifts, mutation-yield and
//! span-profile deltas, plus the run-identity checks that let the CLI
//! refuse (or loudly annotate) apples-to-oranges comparisons.
//!
//! The diff is computed from the artifacts alone — no replay, no model —
//! so it is cheap, deterministic, and testable against random artifacts.
//! The replay-based frontier migration lives in [`crate::FrontierMigration`]
//! because it needs the compiled model.

use std::collections::BTreeMap;

use cftcg_core::{CampaignArtifact, HostMeta, SpanSummary};
use cftcg_coverage::Goal;
use cftcg_telemetry::YieldReport;

/// The identity card of one side of a comparison, echoed into every output
/// so a reader can always see what exactly was compared.
#[derive(Debug, Clone, PartialEq)]
pub struct RunIdentity {
    /// Model name the campaign ran against.
    pub model: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Worker shard count.
    pub workers: usize,
    /// Resolved execution engine, when the artifact recorded one.
    pub engine: Option<String>,
    /// Host identity, when the artifact recorded one.
    pub host: Option<HostMeta>,
    /// Total inputs executed.
    pub executions: u64,
    /// Wall-clock duration, seconds.
    pub elapsed_s: f64,
    /// Branches covered / branch-probe universe size.
    pub covered_branches: usize,
    /// Size of the branch-probe universe.
    pub branch_count: usize,
    /// Emitted test cases.
    pub cases: usize,
    /// Goals covered with provenance.
    pub goals: usize,
}

impl RunIdentity {
    fn of(artifact: &CampaignArtifact) -> Self {
        RunIdentity {
            model: artifact.model.clone(),
            seed: artifact.seed,
            workers: artifact.workers,
            engine: artifact.engine.clone(),
            host: artifact.host.clone(),
            executions: artifact.executions,
            elapsed_s: artifact.elapsed_s,
            covered_branches: artifact.covered_branches,
            branch_count: artifact.branch_count,
            cases: artifact.cases.len(),
            goals: artifact.hits.len(),
        }
    }
}

/// A goal covered by exactly one side, with its first-hit execution index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoalSide {
    /// The goal.
    pub goal: Goal,
    /// First-hit execution index on the side that covered it.
    pub executions: u64,
}

/// A goal both sides covered, with both first-hit execution indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoalShift {
    /// The goal.
    pub goal: Goal,
    /// First-hit execution index in campaign A.
    pub executions_a: u64,
    /// First-hit execution index in campaign B.
    pub executions_b: u64,
}

impl GoalShift {
    /// `B − A` first-hit shift: negative means B reached the goal with
    /// fewer executions.
    pub fn delta(&self) -> i64 {
        self.executions_b as i64 - self.executions_a as i64
    }
}

/// One mutation operator's yield-matrix rows from both sides
/// (`[executed, new_coverage, corpus_insert, violation]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YieldDelta {
    /// Operator name (Table 1 spelling).
    pub name: String,
    /// Campaign A's row (zeros when A never recorded the operator).
    pub a: [u64; 4],
    /// Campaign B's row.
    pub b: [u64; 4],
}

impl YieldDelta {
    /// Whether both rows are identical.
    pub fn is_zero(&self) -> bool {
        self.a == self.b
    }
}

/// One span kind's profile summary from both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanDelta {
    /// Span kind name.
    pub name: String,
    /// Campaign A's summary, when A profiled this kind.
    pub a: Option<SpanSummary>,
    /// Campaign B's summary.
    pub b: Option<SpanSummary>,
}

/// The complete artifact-level diff of two campaigns.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactDiff {
    /// Identity of campaign A.
    pub a: RunIdentity,
    /// Identity of campaign B.
    pub b: RunIdentity,
    /// Apples-to-oranges annotations: run-identity dimensions on which the
    /// two campaigns are not comparable (different model, engine, worker
    /// count, or host). Empty for a clean comparison.
    pub mismatches: Vec<String>,
    /// Goals only campaign A covered, in canonical goal order.
    pub only_a: Vec<GoalSide>,
    /// Goals only campaign B covered, in canonical goal order.
    pub only_b: Vec<GoalSide>,
    /// Goals both covered, with first-hit shifts, in canonical goal order.
    pub both: Vec<GoalShift>,
    /// Mutation-yield rows, operators in first-seen order (A's order, then
    /// operators only B recorded).
    pub yields: Vec<YieldDelta>,
    /// Span-profile rows, kinds in first-seen order.
    pub spans: Vec<SpanDelta>,
}

impl ArtifactDiff {
    /// Computes the diff of two artifacts. Pure and total: mismatched
    /// models/engines are *reported* (see [`ArtifactDiff::mismatches`]),
    /// not rejected — the caller decides whether to refuse.
    pub fn compute(a: &CampaignArtifact, b: &CampaignArtifact) -> Self {
        let hits_a: BTreeMap<Goal, u64> = a.hits.iter().map(|h| (h.goal, h.executions)).collect();
        let hits_b: BTreeMap<Goal, u64> = b.hits.iter().map(|h| (h.goal, h.executions)).collect();

        let mut only_a = Vec::new();
        let mut both = Vec::new();
        for (&goal, &ea) in &hits_a {
            match hits_b.get(&goal) {
                Some(&eb) => both.push(GoalShift { goal, executions_a: ea, executions_b: eb }),
                None => only_a.push(GoalSide { goal, executions: ea }),
            }
        }
        let only_b = hits_b
            .iter()
            .filter(|(goal, _)| !hits_a.contains_key(goal))
            .map(|(&goal, &executions)| GoalSide { goal, executions })
            .collect();

        ArtifactDiff {
            a: RunIdentity::of(a),
            b: RunIdentity::of(b),
            mismatches: identity_mismatches(a, b),
            only_a,
            only_b,
            both,
            yields: yield_deltas(&a.yields, &b.yields),
            spans: span_deltas(&a.spans, &b.spans),
        }
    }

    /// Whether the two campaigns are observationally identical: no gained
    /// or lost goals, no first-hit shift, and identical yield matrices.
    /// (Span profiles are wall-clock derived and excluded — two runs of the
    /// same campaign legitimately differ there.)
    pub fn is_identity(&self) -> bool {
        self.only_a.is_empty()
            && self.only_b.is_empty()
            && self.both.iter().all(|s| s.delta() == 0)
            && self.yields.iter().all(YieldDelta::is_zero)
    }

    /// Net goal balance: `B − A` covered-goal count.
    pub fn goal_balance(&self) -> i64 {
        self.only_b.len() as i64 - self.only_a.len() as i64
    }
}

fn identity_mismatches(a: &CampaignArtifact, b: &CampaignArtifact) -> Vec<String> {
    let mut out = Vec::new();
    if a.model != b.model {
        out.push(format!("model: `{}` vs `{}`", a.model, b.model));
    }
    if a.workers != b.workers {
        out.push(format!("workers: {} vs {}", a.workers, b.workers));
    }
    if let (Some(ea), Some(eb)) = (&a.engine, &b.engine) {
        if ea != eb {
            out.push(format!("engine: {ea} vs {eb}"));
        }
    }
    if let (Some(ha), Some(hb)) = (&a.host, &b.host) {
        if ha.arch != hb.arch {
            out.push(format!("host arch: {} vs {}", ha.arch, hb.arch));
        }
        if ha.cores != hb.cores {
            out.push(format!("host cores: {} vs {}", ha.cores, hb.cores));
        }
    }
    out
}

fn yield_row(report: &YieldReport) -> [u64; 4] {
    [report.executed, report.new_coverage, report.corpus_insert, report.violation]
}

fn yield_deltas(a: &[YieldReport], b: &[YieldReport]) -> Vec<YieldDelta> {
    let by_name = |rows: &[YieldReport], name: &str| {
        rows.iter().find(|r| r.name == name).map(yield_row).unwrap_or_default()
    };
    let mut names: Vec<&str> = a.iter().map(|r| r.name.as_str()).collect();
    for name in b.iter().map(|r| r.name.as_str()) {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names
        .into_iter()
        .map(|name| YieldDelta { name: name.to_string(), a: by_name(a, name), b: by_name(b, name) })
        .collect()
}

fn span_deltas(a: &[SpanSummary], b: &[SpanSummary]) -> Vec<SpanDelta> {
    let by_name = |rows: &[SpanSummary], name: &str| rows.iter().find(|r| r.name == name).cloned();
    let mut names: Vec<&str> = a.iter().map(|r| r.name.as_str()).collect();
    for name in b.iter().map(|r| r.name.as_str()) {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names
        .into_iter()
        .map(|name| SpanDelta { name: name.to_string(), a: by_name(a, name), b: by_name(b, name) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_core::CampaignHit;

    fn artifact(hits: &[(Goal, u64)]) -> CampaignArtifact {
        CampaignArtifact {
            model: "m".into(),
            seed: 1,
            workers: 1,
            executions: 100,
            iterations: 500,
            elapsed_s: 0.0,
            branch_count: 10,
            covered_branches: hits.len(),
            cases: Vec::new(),
            lineage: Vec::new(),
            hits: hits
                .iter()
                .map(|&(goal, executions)| CampaignHit {
                    goal,
                    executions,
                    elapsed_s: 0.0,
                    shard: 0,
                    case: 0,
                    ops: Vec::new(),
                })
                .collect(),
            series: Vec::new(),
            engine: None,
            host: None,
            yields: Vec::new(),
            spans: Vec::new(),
        }
    }

    #[test]
    fn partitions_goals_and_computes_shifts() {
        let a = artifact(&[(Goal::Outcome(0), 10), (Goal::Outcome(1), 50)]);
        let b = artifact(&[(Goal::Outcome(1), 20), (Goal::Mcdc(0), 70)]);
        let diff = ArtifactDiff::compute(&a, &b);
        assert_eq!(diff.only_a, vec![GoalSide { goal: Goal::Outcome(0), executions: 10 }]);
        assert_eq!(diff.only_b, vec![GoalSide { goal: Goal::Mcdc(0), executions: 70 }]);
        assert_eq!(
            diff.both,
            vec![GoalShift { goal: Goal::Outcome(1), executions_a: 50, executions_b: 20 }]
        );
        assert_eq!(diff.both[0].delta(), -30);
        assert_eq!(diff.goal_balance(), 0);
        assert!(!diff.is_identity());
    }

    #[test]
    fn self_diff_is_identity() {
        let mut a = artifact(&[(Goal::Outcome(0), 10), (Goal::Condition(2, true), 30)]);
        a.yields = vec![YieldReport {
            name: "EraseTuples".into(),
            executed: 9,
            new_coverage: 1,
            corpus_insert: 1,
            violation: 0,
        }];
        let diff = ArtifactDiff::compute(&a, &a);
        assert!(diff.is_identity());
        assert!(diff.mismatches.is_empty());
    }

    #[test]
    fn mismatched_identities_are_annotated() {
        let mut a = artifact(&[]);
        let mut b = artifact(&[]);
        a.engine = Some("flat".into());
        b.engine = Some("jit".into());
        b.workers = 4;
        b.model = "other".into();
        let diff = ArtifactDiff::compute(&a, &b);
        assert_eq!(diff.mismatches.len(), 3, "{:?}", diff.mismatches);
        // Engine recorded on one side only is not a mismatch — just unknown.
        b.engine = None;
        b.workers = 1;
        b.model = "m".into();
        assert!(ArtifactDiff::compute(&a, &b).mismatches.is_empty());
    }
}
