//! The paired A/B harness: run two fuzzing-loop configurations against the
//! same model as interleaved trials (A₁ B₁ A₂ B₂ …) with per-trial seeds,
//! summarize each variant's goals-at-budget and time-to-goal distribution
//! (median / interquartile range), and pick a representative artifact pair
//! for the standard diff renderer.
//!
//! Interleaving matters for wall-clock budgets: thermal drift, page-cache
//! warm-up, and background load then bias both variants equally instead of
//! whichever ran second. Under an execution budget every trial is
//! deterministic given its seed, so the harness doubles as a test surface.

use cftcg_codegen::Engine;
use cftcg_core::{CampaignArtifact, Cftcg};
use cftcg_coverage::InstrumentationMap;
use cftcg_fuzz::FuzzConfig;
use cftcg_model::Model;
use std::time::Duration;

/// One side of an A/B experiment: a named fuzzing-loop configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantSpec {
    /// Display name (`A` / `B` by default, or the raw spec string).
    pub name: String,
    /// Execution engine override; `None` resolves like the `fuzz`
    /// subcommand (environment, then the build's best tier).
    pub engine: Option<Engine>,
    /// Worker shard count.
    pub workers: usize,
    /// Field-aware tuple mutation (ablation A2 when off).
    pub field_aware: bool,
    /// Metric-weighted corpus scheduling (ablation A1 when off).
    pub metric_weighted_corpus: bool,
}

impl Default for VariantSpec {
    fn default() -> Self {
        let defaults = FuzzConfig::default();
        VariantSpec {
            name: String::new(),
            engine: None,
            workers: 1,
            field_aware: defaults.field_aware,
            metric_weighted_corpus: defaults.metric_weighted_corpus,
        }
    }
}

impl VariantSpec {
    /// Parses a `key=value[,key=value…]` variant spec. Keys: `engine`
    /// (`ref`/`flat`/`jit`), `workers` (count), `field-aware` and
    /// `metric-corpus` (`on`/`off`). The empty string is the default
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending clause.
    pub fn parse(name: &str, spec: &str) -> Result<Self, String> {
        let mut out = VariantSpec { name: name.to_string(), ..VariantSpec::default() };
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("variant clause `{clause}` is not key=value"))?;
            match key.trim() {
                "engine" => {
                    out.engine = Some(match value.trim().to_ascii_lowercase().as_str() {
                        "ref" | "reference" => Engine::Reference,
                        "flat" => Engine::Flat,
                        "jit" => Engine::Jit,
                        other => return Err(format!("unknown engine `{other}`")),
                    });
                }
                "workers" => {
                    out.workers = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("workers `{value}` is not a count"))?;
                    if out.workers == 0 {
                        return Err("workers must be at least 1".to_string());
                    }
                }
                "field-aware" => out.field_aware = parse_switch(value)?,
                "metric-corpus" => out.metric_weighted_corpus = parse_switch(value)?,
                other => return Err(format!("unknown variant key `{other}`")),
            }
        }
        Ok(out)
    }

    /// A compact one-line description of the non-default knobs.
    pub fn describe(&self) -> String {
        let mut parts = vec![format!(
            "engine={}",
            self.engine.map_or("auto".to_string(), |e| e.name().to_string())
        )];
        parts.push(format!("workers={}", self.workers));
        if !self.field_aware {
            parts.push("field-aware=off".to_string());
        }
        if !self.metric_weighted_corpus {
            parts.push("metric-corpus=off".to_string());
        }
        parts.join(",")
    }

    fn config(&self, seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            engine: self.engine,
            field_aware: self.field_aware,
            metric_weighted_corpus: self.metric_weighted_corpus,
            ..FuzzConfig::default()
        }
    }
}

fn parse_switch(value: &str) -> Result<bool, String> {
    match value.trim().to_ascii_lowercase().as_str() {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        other => Err(format!("switch value `{other}` is not on/off")),
    }
}

/// The per-trial budget of an A/B experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbBudget {
    /// Wall-clock budget per trial, milliseconds.
    Millis(u64),
    /// Exact execution count per trial (deterministic given the seed).
    Executions(u64),
}

/// One trial's outcome summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The trial's RNG seed.
    pub seed: u64,
    /// Goals covered at budget exhaustion.
    pub goals: usize,
    /// Branches covered.
    pub covered: usize,
    /// Inputs executed.
    pub executions: u64,
    /// Wall-clock offset of the last goal hit, seconds (0 when no goal was
    /// hit).
    pub time_to_last_goal_s: f64,
}

/// Median and interquartile range of one metric across trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Spread {
    /// The distribution median.
    pub median: f64,
    /// 25th percentile.
    pub q1: f64,
    /// 75th percentile.
    pub q3: f64,
}

impl Spread {
    /// Computes the spread of a sample (empty samples yield all-zero).
    pub fn of(values: &[f64]) -> Spread {
        if values.is_empty() {
            return Spread { median: 0.0, q1: 0.0, q3: 0.0 };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric is never NaN"));
        Spread {
            median: percentile(&sorted, 0.50),
            q1: percentile(&sorted, 0.25),
            q3: percentile(&sorted, 0.75),
        }
    }

    /// Interquartile range (`q3 − q1`).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolated percentile of an already-sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// One variant's half of the experiment: per-trial results, distribution
/// summaries, and the representative artifact.
#[derive(Debug, Clone)]
pub struct VariantOutcome {
    /// The configuration.
    pub spec: VariantSpec,
    /// Per-trial results, trial order.
    pub trials: Vec<TrialResult>,
    /// Goals-at-budget distribution.
    pub goals: Spread,
    /// Branches-covered distribution.
    pub covered: Spread,
    /// Time-to-last-goal distribution, seconds.
    pub time_to_goal_s: Spread,
    /// The artifact of the median-by-goals trial (ties: earliest trial),
    /// used as the variant's representative in the diff renderer.
    pub representative: CampaignArtifact,
    /// Trial index of the representative artifact.
    pub representative_trial: usize,
}

/// The full paired experiment outcome.
#[derive(Debug, Clone)]
pub struct AbOutcome {
    /// Variant A.
    pub a: VariantOutcome,
    /// Variant B.
    pub b: VariantOutcome,
}

/// Runs the paired experiment: `trials` interleaved A/B trial pairs with
/// seeds `base_seed + trial`, both sides of a pair sharing the seed.
///
/// # Errors
///
/// Returns the compile error when the model is invalid.
pub fn run_ab(
    model: &Model,
    a: &VariantSpec,
    b: &VariantSpec,
    trials: usize,
    base_seed: u64,
    budget: AbBudget,
) -> Result<AbOutcome, Box<dyn std::error::Error>> {
    let mut runs_a = Vec::with_capacity(trials);
    let mut runs_b = Vec::with_capacity(trials);
    for trial in 0..trials {
        let seed = base_seed + trial as u64;
        runs_a.push(run_trial(model, a, seed, budget)?);
        runs_b.push(run_trial(model, b, seed, budget)?);
    }
    Ok(AbOutcome { a: summarize(a, runs_a), b: summarize(b, runs_b) })
}

fn run_trial(
    model: &Model,
    spec: &VariantSpec,
    seed: u64,
    budget: AbBudget,
) -> Result<(TrialResult, CampaignArtifact), Box<dyn std::error::Error>> {
    let tool = Cftcg::new(model)?.with_config(spec.config(seed));
    let generation = match budget {
        AbBudget::Millis(ms) => {
            tool.generate_parallel(Duration::from_millis(ms), seed, spec.workers)
        }
        AbBudget::Executions(n) => tool.generate_parallel_executions(n, seed, spec.workers),
    };
    let map: &InstrumentationMap = tool.compiled().map();
    let mut artifact =
        CampaignArtifact::from_generation(model.name(), seed, spec.workers, &generation, map);
    artifact.engine = Some(tool.engine().name().to_string());
    let result = TrialResult {
        seed,
        goals: artifact.hits.len(),
        covered: artifact.covered_branches,
        executions: artifact.executions,
        time_to_last_goal_s: artifact.hits.iter().map(|h| h.elapsed_s).fold(0.0f64, f64::max),
    };
    Ok((result, artifact))
}

fn summarize(spec: &VariantSpec, runs: Vec<(TrialResult, CampaignArtifact)>) -> VariantOutcome {
    let metric = |f: fn(&TrialResult) -> f64| {
        Spread::of(&runs.iter().map(|(t, _)| f(t)).collect::<Vec<_>>())
    };
    let goals = metric(|t| t.goals as f64);
    // Representative: the trial whose goal count sits closest to the median
    // (earliest trial on ties), so the rendered diff shows a typical run,
    // not a lucky or unlucky tail.
    let representative_trial = runs
        .iter()
        .enumerate()
        .min_by(|(_, (x, _)), (_, (y, _))| {
            let dx = (x.goals as f64 - goals.median).abs();
            let dy = (y.goals as f64 - goals.median).abs();
            dx.partial_cmp(&dy).expect("goal distances are never NaN")
        })
        .map(|(i, _)| i)
        .expect("at least one trial");
    let representative = runs[representative_trial].1.clone();
    VariantOutcome {
        spec: spec.clone(),
        goals,
        covered: metric(|t| t.covered as f64),
        time_to_goal_s: metric(|t| t.time_to_last_goal_s),
        trials: runs.into_iter().map(|(t, _)| t).collect(),
        representative,
        representative_trial,
    }
}

/// Renders the experiment summary as an aligned terminal table.
pub fn ab_report(outcome: &AbOutcome, trials: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "paired A/B: {trials} interleaved trial pairs, shared per-trial seeds");
    let _ = writeln!(
        out,
        "  {:8}  {:>24}  {:>24}  {:>22}",
        "variant", "goals (median [IQR])", "branches (median [IQR])", "t-to-goal s (median)"
    );
    for (name, v) in [("A", &outcome.a), ("B", &outcome.b)] {
        let _ = writeln!(
            out,
            "  {:8}  {:>24}  {:>24}  {:>22}",
            name,
            format!("{:.1} [{:.1}]", v.goals.median, v.goals.iqr()),
            format!("{:.1} [{:.1}]", v.covered.median, v.covered.iqr()),
            format!("{:.3}", v.time_to_goal_s.median),
        );
        let _ = writeln!(out, "           config: {}", v.spec.describe());
    }
    let _ = writeln!(
        out,
        "  representative trials: A#{} (seed {}), B#{} (seed {}) — diffed below",
        outcome.a.representative_trial,
        outcome.a.representative.seed,
        outcome.b.representative_trial,
        outcome.b.representative.seed
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_variant_specs() {
        let v = VariantSpec::parse("B", "engine=flat, workers=2, field-aware=off").unwrap();
        assert_eq!(v.engine, Some(Engine::Flat));
        assert_eq!(v.workers, 2);
        assert!(!v.field_aware);
        assert!(v.metric_weighted_corpus);
        assert!(VariantSpec::parse("A", "").unwrap().engine.is_none());
        assert!(VariantSpec::parse("A", "engine=warp").is_err());
        assert!(VariantSpec::parse("A", "workers=0").is_err());
        assert!(VariantSpec::parse("A", "bogus").is_err());
    }

    #[test]
    fn spread_median_and_iqr() {
        let s = Spread::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.q1, 1.75);
        assert_eq!(s.q3, 3.25);
        assert_eq!(Spread::of(&[7.0]).median, 7.0);
        assert_eq!(Spread::of(&[]).median, 0.0);
    }

    #[test]
    fn execution_budget_trials_are_deterministic() {
        let model = cftcg_benchmarks::solar_pv::model();
        let spec = VariantSpec::parse("A", "engine=flat").unwrap();
        let first = run_trial(&model, &spec, 9, AbBudget::Executions(400)).unwrap();
        let second = run_trial(&model, &spec, 9, AbBudget::Executions(400)).unwrap();
        assert_eq!(first.0.goals, second.0.goals);
        // Wall clock legitimately differs between the two runs; the
        // deterministic remainder (goals, first hits, yields) must not —
        // exactly what the diff's identity check measures.
        let diff = crate::diff::ArtifactDiff::compute(&first.1, &second.1);
        assert!(diff.is_identity(), "same-seed trials drifted");
        assert!(diff.mismatches.is_empty());
    }

    #[test]
    fn ab_interleaves_and_summarizes() {
        let model = cftcg_benchmarks::solar_pv::model();
        let a = VariantSpec::parse("A", "engine=flat").unwrap();
        let b = VariantSpec::parse("B", "engine=flat,field-aware=off").unwrap();
        let outcome = run_ab(&model, &a, &b, 2, 7, AbBudget::Executions(300)).unwrap();
        assert_eq!(outcome.a.trials.len(), 2);
        assert_eq!(outcome.b.trials.len(), 2);
        assert_eq!(outcome.a.trials[0].seed, 7);
        assert_eq!(outcome.a.trials[1].seed, 8);
        assert_eq!(outcome.a.representative.engine.as_deref(), Some("flat"));
        assert!(outcome.a.goals.median >= 0.0);
        let report = ab_report(&outcome, 2);
        assert!(report.contains("variant"));
        assert!(report.contains("field-aware=off"));
    }
}
