//! The side-by-side HTML diff report: one self-contained document (inline
//! CSS, inline SVG, zero JavaScript) rendering two campaigns against each
//! other — identity cards, the goal partition, a coverage-vs-time curve
//! overlay, first-hit shifts, yield/span deltas, and the frontier-cause
//! migration. Reuses the campaign explorer's visual language: blue
//! (`#2a6fb0`) is campaign A, orange (`#b0572a`) is campaign B.
//!
//! Byte-stable like the explorer: every collection is walked in the diff's
//! deterministic order, so the golden-file test in the umbrella crate can
//! pin the output.

use std::fmt::Write as _;

use cftcg_core::CampaignArtifact;
use cftcg_coverage::InstrumentationMap;

use crate::diff::{ArtifactDiff, GoalSide};
use crate::frontier::FrontierMigration;

const A_COLOR: &str = "#2a6fb0";
const B_COLOR: &str = "#b0572a";

const STYLE: &str = "<style>\n\
body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:70rem;color:#1a1a2a;padding:0 1rem}\n\
h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #ccd;padding-bottom:.2rem}\n\
.tiles{display:flex;flex-wrap:wrap;gap:.6rem;margin:1rem 0}\n\
.tile{border:1px solid #ccd;border-radius:6px;padding:.5rem .8rem;background:#f7f8fb}\n\
.tile b{display:block;font-size:1.15rem}.tile span{color:#567;font-size:.8rem}\n\
.cols{display:flex;gap:1rem;flex-wrap:wrap}.col{flex:1 1 20rem}\n\
.col.a h3{color:#2a6fb0}.col.b h3{color:#b0572a}\n\
table{border-collapse:collapse;width:100%;margin:.6rem 0}\n\
th,td{border:1px solid #dde;padding:.25rem .5rem;text-align:left;vertical-align:top}\n\
th{background:#eef0f6}tr.gain td{background:#f4fbf4}tr.loss td{background:#fff4f2}\n\
code{background:#eef;padding:0 .2rem;border-radius:3px;font-size:.92em}\n\
.warn{border:1px solid #c66;border-radius:6px;background:#fff4f2;padding:.6rem .8rem;margin:1rem 0}\n\
.pos{color:#1a7a2a;font-weight:600}.neg{color:#b03030;font-weight:600}\n\
svg{background:#fbfcff;border:1px solid #ccd;border-radius:6px}\n\
.legend span{display:inline-block;margin-right:1.2rem;font-size:.85em;color:#567}\n\
.swatch{display:inline-block;width:1.6em;height:.5em;border-radius:2px;margin-right:.35em;vertical-align:middle}\n\
</style>\n";

/// Renders the side-by-side diff report.
pub fn diff_html(
    diff: &ArtifactDiff,
    a: &CampaignArtifact,
    b: &CampaignArtifact,
    migration: Option<&FrontierMigration>,
    map: &InstrumentationMap,
) -> String {
    let mut out = String::with_capacity(32 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>CFTCG campaign diff — {}</title>", esc(&diff.a.model));
    out.push_str(STYLE);
    out.push_str("</head>\n<body>\n");
    let _ = writeln!(out, "<h1>CFTCG campaign diff — {}</h1>", esc(&diff.a.model));

    if !diff.mismatches.is_empty() {
        out.push_str("<div class=\"warn\"><b>Apples-to-oranges comparison.</b> The two campaigns differ on:<ul>\n");
        for m in &diff.mismatches {
            let _ = writeln!(out, "<li>{}</li>", esc(m));
        }
        out.push_str("</ul></div>\n");
    }

    render_identities(&mut out, diff);
    render_partition_tiles(&mut out, diff);
    render_curve_overlay(&mut out, a, b);
    render_goal_tables(&mut out, diff, map);
    render_shifts(&mut out, diff, map);
    render_yields(&mut out, diff);
    render_spans(&mut out, diff);
    if let Some(migration) = migration {
        render_migration(&mut out, migration);
    }

    out.push_str("</body>\n</html>\n");
    out
}

fn render_identities(out: &mut String, diff: &ArtifactDiff) {
    out.push_str("<div class=\"cols\">\n");
    for (class, title, id) in [("a", "Campaign A", &diff.a), ("b", "Campaign B", &diff.b)] {
        let _ = writeln!(out, "<div class=\"col {class}\"><h3>{title}</h3>");
        out.push_str("<table>\n");
        let mut row = |k: &str, v: String| {
            let _ = writeln!(out, "<tr><th>{k}</th><td>{v}</td></tr>");
        };
        row("model", esc(&id.model));
        row("seed", id.seed.to_string());
        row("workers", id.workers.to_string());
        row("engine", esc(id.engine.as_deref().unwrap_or("(not recorded)")));
        row(
            "host",
            id.host.as_ref().map_or("(not recorded)".to_string(), |h| {
                format!("{} cores, {}", h.cores, esc(&h.arch))
            }),
        );
        row("executions", id.executions.to_string());
        row("wall clock", format!("{:.2}s", id.elapsed_s));
        row("branches", format!("{}/{}", id.covered_branches, id.branch_count));
        row("test cases", id.cases.to_string());
        row("goals covered", id.goals.to_string());
        out.push_str("</table></div>\n");
    }
    out.push_str("</div>\n");
}

fn render_partition_tiles(out: &mut String, diff: &ArtifactDiff) {
    out.push_str("<div class=\"tiles\">\n");
    let mut tile = |value: String, label: &str| {
        let _ = writeln!(out, "<div class=\"tile\"><b>{value}</b><span>{label}</span></div>");
    };
    tile(diff.both.len().to_string(), "goals both covered");
    tile(diff.only_a.len().to_string(), "goals only A");
    tile(diff.only_b.len().to_string(), "goals only B");
    tile(format!("{:+}", diff.goal_balance()), "net goal balance (B−A)");
    let faster_b = diff.both.iter().filter(|s| s.delta() < 0).count();
    tile(faster_b.to_string(), "shared goals B hit earlier");
    out.push_str("</div>\n");
    if diff.is_identity() {
        out.push_str("<p><b>Identical coverage outcomes</b>: no gained or lost goals, no first-hit shifts, identical yield matrices.</p>\n");
    }
}

/// The coverage-vs-time curve overlay: both campaigns' sampled telemetry
/// series (falling back to the per-case emission steps when a side ran
/// without telemetry) on one normalized time axis.
fn render_curve_overlay(out: &mut String, a: &CampaignArtifact, b: &CampaignArtifact) {
    let curve_a = coverage_curve(a);
    let curve_b = coverage_curve(b);
    if curve_a.is_empty() && curve_b.is_empty() {
        return;
    }
    out.push_str("<h2>Coverage over time</h2>\n");
    const W: f64 = 680.0;
    const H: f64 = 220.0;
    const PAD: f64 = 42.0;
    let max_t = curve_a
        .iter()
        .chain(&curve_b)
        .map(|p| p.0)
        .fold(a.elapsed_s.max(b.elapsed_s), f64::max)
        .max(1e-9);
    let max_c = a.branch_count.max(b.branch_count).max(1) as f64;
    let x = |t: f64| PAD + (W - 2.0 * PAD) * (t / max_t);
    let y = |c: f64| H - PAD + (2.0 * PAD - H) * (c / max_c);
    let polyline = |curve: &[(f64, f64)]| {
        let mut points = String::new();
        let mut last = 0.0f64;
        let _ = write!(points, "{:.1},{:.1}", x(0.0), y(0.0));
        for &(t, c) in curve {
            // Step function: hold the previous level until the sample.
            let _ = write!(points, " {:.1},{:.1}", x(t), y(last));
            last = c;
            let _ = write!(points, " {:.1},{:.1}", x(t), y(last));
        }
        let _ = write!(points, " {:.1},{:.1}", x(max_t), y(last));
        points
    };
    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\" \
         aria-label=\"covered branches over time, both campaigns\">\n\
         <line x1=\"{p}\" y1=\"{yb:.1}\" x2=\"{xe:.1}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <line x1=\"{p}\" y1=\"{yt:.1}\" x2=\"{p}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <text x=\"{p}\" y=\"{H}\" font-size=\"11\" fill=\"#567\">0s</text>\n\
         <text x=\"{xe:.1}\" y=\"{H}\" font-size=\"11\" fill=\"#567\" text-anchor=\"end\">{max_t:.2}s</text>\n\
         <text x=\"4\" y=\"{yt2:.1}\" font-size=\"11\" fill=\"#567\">{branches}</text>\n\
         <text x=\"4\" y=\"{yb:.1}\" font-size=\"11\" fill=\"#567\">0</text>\n\
         <polyline fill=\"none\" stroke=\"{A_COLOR}\" stroke-width=\"2\" points=\"{pa}\"/>\n\
         <polyline fill=\"none\" stroke=\"{B_COLOR}\" stroke-width=\"2\" stroke-dasharray=\"6 3\" points=\"{pb}\"/>\n\
         </svg>\n",
        p = PAD,
        yb = y(0.0),
        yt = y(max_c),
        yt2 = y(max_c) + 4.0,
        xe = x(max_t),
        branches = a.branch_count.max(b.branch_count),
        pa = polyline(&curve_a),
        pb = polyline(&curve_b),
    );
    let _ = writeln!(
        out,
        "<p class=\"legend\"><span><i class=\"swatch\" style=\"background:{A_COLOR}\"></i>campaign A \
         ({}/{} branches)</span><span><i class=\"swatch\" style=\"background:{B_COLOR}\"></i>campaign B \
         ({}/{} branches)</span></p>",
        a.covered_branches, a.branch_count, b.covered_branches, b.branch_count
    );
}

/// `(t_s, covered)` points of one campaign: the sampled telemetry series
/// when present, else the per-case emission steps.
fn coverage_curve(artifact: &CampaignArtifact) -> Vec<(f64, f64)> {
    if !artifact.series.is_empty() {
        return artifact.series.iter().map(|p| (p.t_s, p.covered as f64)).collect();
    }
    artifact.cases.iter().map(|c| (c.t_s, c.covered_branches as f64)).collect()
}

fn render_goal_tables(out: &mut String, diff: &ArtifactDiff, map: &InstrumentationMap) {
    let mut table = |title: &str, rows: &[GoalSide], class: &str| {
        if rows.is_empty() {
            return;
        }
        let _ = writeln!(out, "<h2>{title} ({})</h2>", rows.len());
        out.push_str(
            "<table>\n<tr><th>metric</th><th>goal</th><th>first hit (executions)</th></tr>\n",
        );
        for row in rows {
            let _ = writeln!(
                out,
                "<tr class=\"{class}\"><td>{}</td><td><code>{}</code></td><td>{}</td></tr>",
                row.goal.metric(),
                esc(&row.goal.label(map)),
                row.executions
            );
        }
        out.push_str("</table>\n");
    };
    table("Goals only campaign A covered", &diff.only_a, "loss");
    table("Goals only campaign B covered", &diff.only_b, "gain");
}

fn render_shifts(out: &mut String, diff: &ArtifactDiff, map: &InstrumentationMap) {
    let shifted: Vec<_> = diff.both.iter().filter(|s| s.delta() != 0).collect();
    if shifted.is_empty() {
        return;
    }
    let _ = writeln!(out, "<h2>First-hit shifts ({} shared goals moved)</h2>", shifted.len());
    out.push_str(
        "<table>\n<tr><th>metric</th><th>goal</th><th>A first hit</th><th>B first hit</th>\
         <th>shift (B−A)</th></tr>\n",
    );
    for shift in shifted {
        let delta = shift.delta();
        let class = if delta < 0 { "pos" } else { "neg" };
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td><code>{}</code></td><td>{}</td><td>{}</td>\
             <td class=\"{class}\">{delta:+}</td></tr>",
            shift.goal.metric(),
            esc(&shift.goal.label(map)),
            shift.executions_a,
            shift.executions_b
        );
    }
    out.push_str("</table>\n<p>Negative shifts mean campaign B reached the goal with fewer executions.</p>\n");
}

fn render_yields(out: &mut String, diff: &ArtifactDiff) {
    let changed: Vec<_> = diff.yields.iter().filter(|y| !y.is_zero()).collect();
    if changed.is_empty() {
        return;
    }
    out.push_str(
        "<h2>Mutation-yield deltas (B−A)</h2>\n<table>\n<tr><th>operator</th>\
        <th>executed</th><th>new coverage</th><th>corpus insert</th><th>violation</th></tr>\n",
    );
    for y in changed {
        let _ = write!(out, "<tr><td><code>{}</code></td>", esc(&y.name));
        for i in 0..4 {
            let delta = y.b[i] as i64 - y.a[i] as i64;
            let _ = write!(
                out,
                "<td>{delta:+} <span style=\"color:#567\">({} → {})</span></td>",
                y.a[i], y.b[i]
            );
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
}

fn render_spans(out: &mut String, diff: &ArtifactDiff) {
    if diff.spans.is_empty() {
        return;
    }
    out.push_str(
        "<h2>Span-profile comparison</h2>\n<table>\n<tr><th>phase</th>\
        <th>A spans</th><th>A total ns</th><th>A p99 ns</th>\
        <th>B spans</th><th>B total ns</th><th>B p99 ns</th></tr>\n",
    );
    for span in &diff.spans {
        let _ = write!(out, "<tr><td><code>{}</code></td>", esc(&span.name));
        for side in [&span.a, &span.b] {
            match side {
                Some(s) => {
                    let _ = write!(
                        out,
                        "<td>{}</td><td>{}</td><td>{}</td>",
                        s.count, s.total_ns, s.p99_ns
                    );
                }
                None => out.push_str("<td>-</td><td>-</td><td>-</td>"),
            }
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
}

fn render_migration(out: &mut String, migration: &FrontierMigration) {
    let mut table = |title: &str, rows: &[crate::frontier::MigratedGoal], class: &str| {
        if rows.is_empty() {
            return;
        }
        let _ = writeln!(out, "<h2>{title} ({})</h2>", rows.len());
        out.push_str("<table>\n<tr><th>metric</th><th>goal</th><th>blocking cause</th><th>detail</th></tr>\n");
        for row in rows {
            let _ = writeln!(
                out,
                "<tr class=\"{class}\"><td>{}</td><td><code>{}</code></td><td><code>{}</code></td><td>{}</td></tr>",
                row.goal.metric(),
                esc(&row.label),
                esc(&row.cause),
                esc(&row.detail)
            );
        }
        out.push_str("</table>\n");
    };
    table("Frontier goals campaign B unblocked", &migration.unblocked_by_b, "gain");
    table("Frontier goals campaign A unblocked", &migration.unblocked_by_a, "loss");
    let moved: Vec<_> = migration.open_both.iter().filter(|g| g.cause_a != g.cause_b).collect();
    if !moved.is_empty() {
        let _ =
            writeln!(out, "<h2>Still open on both sides, cause migrated ({})</h2>", moved.len());
        out.push_str("<table>\n<tr><th>metric</th><th>goal</th><th>cause in A</th><th>cause in B</th></tr>\n");
        for g in moved {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td><code>{}</code></td><td><code>{}</code></td><td><code>{}</code></td></tr>",
                g.goal.metric(),
                esc(&g.label),
                esc(&g.cause_a),
                esc(&g.cause_b)
            );
        }
        out.push_str("</table>\n");
    }
}

/// HTML-escapes text content and attribute values.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}
