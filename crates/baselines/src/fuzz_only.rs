//! The "Fuzz Only" ablation of the paper's Figure 8: a generic fuzzer
//! pointed at the generated code *without* the model-oriented pieces.
//!
//! Two things change relative to CFTCG, matching the paper's root-cause
//! analysis exactly:
//!
//! 1. **Feedback**: only code-level branches are observable. Boolean and
//!    relational blocks compile branchless under `-O2` ("the boolean
//!    operations did not have jump instruction and not instrumented"), so
//!    their coverage never guides the search.
//! 2. **Mutation**: blind byte-stream editing with arbitrary-length inserts
//!    and erases ("traditional input mutation methods can cause data
//!    misalignment when deleting or inserting data in the byte stream").

use std::time::Duration;

use cftcg_codegen::CompiledModel;
use cftcg_fuzz::{FeedbackMode, FuzzConfig, Fuzzer};

use crate::Generation;

/// Configuration of the ablated fuzzer.
#[derive(Debug, Clone)]
pub struct FuzzOnlyConfig {
    /// RNG seed.
    pub seed: u64,
    /// Wall-clock budget.
    pub budget: Duration,
}

impl Default for FuzzOnlyConfig {
    fn default() -> Self {
        FuzzOnlyConfig { seed: 0, budget: Duration::from_secs(10) }
    }
}

/// Runs the ablated fuzzer for the configured budget.
pub fn generate(compiled: &CompiledModel, config: &FuzzOnlyConfig) -> Generation {
    let fuzz_config = FuzzConfig {
        seed: config.seed,
        field_aware: false,
        metric_weighted_corpus: false,
        feedback: FeedbackMode::CodeLevelOnly,
        ..FuzzConfig::default()
    };
    let mut fuzzer = Fuzzer::new(compiled, fuzz_config);
    let outcome = fuzzer.run_for(config.budget);
    let mut generation: Generation = outcome.into();
    generation.notes = format!(
        "code-level feedback over {} of {} branches",
        compiled.map().code_level_mask().iter().filter(|&&v| v).count(),
        compiled.map().branch_count()
    );
    generation
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::{compile, replay_suite};
    use cftcg_fuzz::Fuzzer;
    use cftcg_model::{BlockKind, DataType, LogicOp, ModelBuilder};

    /// Boolean-heavy model: fuzz-only is blind to most of it.
    fn boolean_model() -> cftcg_codegen::CompiledModel {
        let mut b = ModelBuilder::new("bools");
        let x = b.inport("x", DataType::Bool);
        let w = b.inport("w", DataType::Bool);
        let z = b.inport("z", DataType::Bool);
        let and = b.add("and", BlockKind::Logic { op: LogicOp::And, inputs: 3 });
        let or = b.add("or", BlockKind::Logic { op: LogicOp::Or, inputs: 2 });
        let y = b.outport("y");
        b.feed(x, and, 0);
        b.feed(w, and, 1);
        b.feed(z, and, 2);
        b.feed(and, or, 0);
        b.feed(z, or, 1);
        b.wire(or, y);
        compile(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn fuzz_only_lags_cftcg_on_boolean_logic() {
        let compiled = boolean_model();
        let ablated =
            generate(&compiled, &FuzzOnlyConfig { seed: 4, budget: Duration::from_millis(100) });
        let ablated_report = replay_suite(&compiled, &ablated.suite);

        let mut cftcg =
            Fuzzer::new(&compiled, cftcg_fuzz::FuzzConfig { seed: 4, ..Default::default() });
        let full = cftcg.run_for(Duration::from_millis(100));
        let full_report = replay_suite(&compiled, &full.suite);

        assert!(
            full_report.condition.percent() > ablated_report.condition.percent(),
            "model-oriented must beat fuzz-only on condition coverage: {} vs {}",
            full_report.condition.percent(),
            ablated_report.condition.percent()
        );
        assert!(ablated.notes.contains("code-level feedback"));
    }
}
