//! The SLDV-like baseline: goal-directed **bounded reachability search**.
//!
//! Simulink Design Verifier translates the model into a formal description
//! and solves for inputs reaching each coverage objective, unrolling the
//! model a bounded number of steps. This reproduction keeps that structure
//! while staying self-contained:
//!
//! 1. **Constraint mining** — every numeric constant that appears in a
//!    branch condition (compare thresholds, saturation limits, case labels,
//!    guard literals, lookup breakpoints, ...) is collected, exactly the
//!    values a solver's decision procedure would pivot on.
//! 2. **Candidate inputs** — each inport field gets a candidate value set
//!    built from those constants (and their ±1 neighbours, type extremes,
//!    0/1), giving a finite solver-style input alphabet.
//! 3. **Explicit-state bounded search** — breadth-first exploration of the
//!    reachable state space under that alphabet up to an unrolling depth,
//!    deduplicating states by their bit patterns. Every newly covered
//!    branch emits a witness test case (the input prefix reaching it).
//!
//! The approach inherits SLDV's profile faithfully: shallow combinational
//! goals fall in one or two unrollings, while state-rich models blow up the
//! frontier — the run stops at the state budget ("in the later stages of
//! SLDV solving, its memory usage exceeded 12 GB") and deep goals beyond
//! the unrolling depth are simply never reached.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use cftcg_codegen::{CompiledModel, Executor, TestCase};
use cftcg_coverage::BranchBitmap;
use cftcg_model::expr::{Expr, Stmt};
use cftcg_model::{BlockKind, Model, SwitchCriterion, Value};

use crate::Generation;

/// Configuration of the bounded search.
#[derive(Debug, Clone)]
pub struct SldvConfig {
    /// Maximum unrolling depth (model iterations per witness).
    pub max_depth: usize,
    /// Maximum distinct states tracked before declaring state-space
    /// explosion (the memory budget).
    pub state_budget: usize,
    /// Maximum candidate tuples per expansion step.
    pub max_candidates: usize,
    /// Wall-clock budget.
    pub budget: Duration,
}

impl Default for SldvConfig {
    fn default() -> Self {
        SldvConfig {
            max_depth: 8,
            state_budget: 50_000,
            max_candidates: 1024,
            budget: Duration::from_secs(10),
        }
    }
}

/// Runs the bounded-reachability generator against a compiled model.
///
/// `model` supplies the structure for constraint mining; `compiled` is the
/// execution substrate (the search needs snapshot/restore of model state).
pub fn generate(model: &Model, compiled: &CompiledModel, config: &SldvConfig) -> Generation {
    let started = Instant::now();
    let candidates = candidate_tuples(model, compiled, config.max_candidates);
    let branch_count = compiled.map().branch_count();

    let mut exec = Executor::new(compiled);
    let mut total = BranchBitmap::new(branch_count);
    let mut curr = BranchBitmap::new(branch_count);

    // Explored states, deduplicated by bit pattern. Parent links let us
    // reconstruct the input prefix that reaches any state.
    let mut states: Vec<Vec<f64>> = vec![compiled_initial_state(&exec)];
    let mut parents: Vec<(usize, usize)> = vec![(usize::MAX, usize::MAX)];
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    seen.insert(state_bits(&states[0]));

    let mut generation = Generation::default();
    let mut frontier: Vec<usize> = vec![0];
    let mut exploded = false;

    'search: for _depth in 1..=config.max_depth {
        if frontier.is_empty() || total.count() == branch_count {
            break;
        }
        let mut next_frontier = Vec::new();
        for &node in &frontier {
            for (ti, tuple) in candidates.iter().enumerate() {
                if started.elapsed() >= config.budget {
                    generation.notes =
                        format!("time budget exhausted after {} states", states.len());
                    break 'search;
                }
                exec.set_state(&states[node]);
                curr.clear();
                exec.step_tuple(tuple, &mut curr);
                generation.executions += 1;
                generation.iterations += 1;
                let new_branches = curr.merge_into(&mut total);
                let state = exec.state().to_vec();
                let bits = state_bits(&state);
                let state_idx = if seen.contains(&bits) {
                    None
                } else if states.len() >= config.state_budget {
                    exploded = true;
                    None
                } else {
                    seen.insert(bits);
                    states.push(state.clone());
                    parents.push((node, ti));
                    next_frontier.push(states.len() - 1);
                    Some(states.len() - 1)
                };
                if new_branches > 0 {
                    // Witness: the prefix reaching `node`, plus this tuple.
                    let mut bytes = prefix_bytes(&parents, &candidates, node);
                    bytes.extend_from_slice(tuple);
                    generation.suite.push(TestCase::new(bytes));
                    generation.case_times.push(started.elapsed());
                }
                let _ = state_idx;
            }
        }
        if exploded {
            generation.notes = format!(
                "state-space explosion: budget of {} states exhausted \
                 (≈{} MB solver memory)",
                config.state_budget,
                states.len() * states[0].len().max(1) * 8 / (1024 * 1024)
            );
            break;
        }
        frontier = next_frontier;
    }
    if generation.notes.is_empty() {
        generation.notes =
            format!("search complete: {} states, depth ≤ {}", states.len(), config.max_depth);
    }
    generation.elapsed = started.elapsed();
    generation
}

fn compiled_initial_state(exec: &Executor<'_>) -> Vec<f64> {
    exec.state().to_vec()
}

fn state_bits(state: &[f64]) -> Vec<u64> {
    state.iter().map(|x| x.to_bits()).collect()
}

fn prefix_bytes(parents: &[(usize, usize)], candidates: &[Vec<u8>], mut node: usize) -> Vec<u8> {
    let mut tuples_rev = Vec::new();
    while parents[node].0 != usize::MAX {
        let (parent, ti) = parents[node];
        tuples_rev.push(ti);
        node = parent;
    }
    let mut bytes = Vec::new();
    for &ti in tuples_rev.iter().rev() {
        bytes.extend_from_slice(&candidates[ti]);
    }
    bytes
}

// ---------------------------------------------------------------------------
// Constraint mining
// ---------------------------------------------------------------------------

/// Collects every constant a solver would pivot on from the model's branch
/// conditions, recursing into subsystems, charts, and function bodies.
pub fn mine_constants(model: &Model) -> Vec<f64> {
    let mut out = Vec::new();
    collect_model(model, &mut out);
    out.sort_by(f64::total_cmp);
    out.dedup();
    out
}

fn collect_model(model: &Model, out: &mut Vec<f64>) {
    for block in model.blocks() {
        match block.kind() {
            BlockKind::Compare { constant, .. } => out.push(*constant),
            BlockKind::Saturation { lower, upper } => out.extend([*lower, *upper]),
            BlockKind::DeadZone { start, end } => out.extend([*start, *end]),
            BlockKind::Relay { on_threshold, off_threshold, .. } => {
                out.extend([*on_threshold, *off_threshold]);
            }
            BlockKind::Switch { criterion } => match criterion {
                SwitchCriterion::GreaterEqual(t) | SwitchCriterion::Greater(t) => {
                    out.push(*t);
                }
                SwitchCriterion::NotZero => out.push(0.0),
            },
            BlockKind::MultiportSwitch { cases } => {
                out.extend((1..=*cases).map(|k| k as f64));
            }
            BlockKind::SwitchCase { cases, .. } => {
                for labels in cases {
                    out.extend(labels.iter().map(|&l| l as f64));
                }
            }
            BlockKind::If { conditions, .. } => {
                for cond in conditions {
                    collect_expr(cond, out);
                }
            }
            BlockKind::Lookup1D { breakpoints, .. } => out.extend(breakpoints),
            BlockKind::Lookup2D { row_breaks, col_breaks, .. } => {
                out.extend(row_breaks);
                out.extend(col_breaks);
            }
            BlockKind::DiscreteIntegrator { lower, upper, .. } => {
                out.extend(lower.iter().chain(upper.iter()));
            }
            BlockKind::CounterLimited { limit } => out.push(f64::from(*limit)),
            BlockKind::MatlabFunction { function } => {
                for stmt in function.body() {
                    collect_stmt(stmt, out);
                }
            }
            BlockKind::Chart { chart } => {
                for t in &chart.transitions {
                    if let Some(guard) = &t.guard {
                        collect_expr(guard, out);
                    }
                    for stmt in &t.action {
                        collect_stmt(stmt, out);
                    }
                }
                for state in &chart.states {
                    for stmt in state.entry.iter().chain(&state.during) {
                        collect_stmt(stmt, out);
                    }
                }
            }
            other => {
                if let Some(inner) = other.inner_model() {
                    collect_model(inner, out);
                }
            }
        }
    }
}

fn collect_expr(expr: &Expr, out: &mut Vec<f64>) {
    match expr {
        Expr::Literal(v) => out.push(v.as_f64()),
        Expr::Var(_) => {}
        Expr::Unary(_, inner) => collect_expr(inner, out),
        Expr::Binary(_, lhs, rhs) => {
            collect_expr(lhs, out);
            collect_expr(rhs, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr(a, out);
            }
        }
    }
}

fn collect_stmt(stmt: &Stmt, out: &mut Vec<f64>) {
    match stmt {
        Stmt::Assign(_, value) => collect_expr(value, out),
        Stmt::If { cond, then_body, else_body } => {
            collect_expr(cond, out);
            for s in then_body.iter().chain(else_body) {
                collect_stmt(s, out);
            }
        }
    }
}

/// Builds the candidate input alphabet from the cone-of-influence
/// relevance analysis. Per field, the candidates are the *region
/// representatives* of its relevant constants — the exact thresholds, the
/// midpoints between consecutive thresholds, and the just-outside values —
/// exactly the witnesses an interval-based decision procedure would emit.
/// Joint assignments come from a cross product over spread-reduced sets;
/// the remaining cap is used for single-field probes over the full sets.
fn candidate_tuples(model: &Model, compiled: &CompiledModel, cap: usize) -> Vec<Vec<u8>> {
    let layout = compiled.layout();
    if layout.tuple_size() == 0 {
        return vec![Vec::new()];
    }
    let relevant = crate::relevance::relevant_constants(model);

    let mut per_field: Vec<Vec<Value>> = Vec::new();
    for (fi, field) in layout.fields().iter().enumerate() {
        let ty = field.dtype;
        let mut raw: Vec<f64> = vec![0.0, 1.0, -1.0];
        let mut consts: Vec<f64> = relevant
            .get(fi)
            .map(|v| v.iter().copied().filter(|c| c.is_finite()).collect())
            .unwrap_or_default();
        consts.sort_by(f64::total_cmp);
        consts.dedup();
        // Exact thresholds, just-outside values, and region midpoints.
        for &c in &consts {
            raw.extend([c, c + 1.0, c - 1.0]);
        }
        for pair in consts.windows(2) {
            raw.push((pair[0] + pair[1]) / 2.0);
        }
        if let (Some(&first), Some(&last)) = (consts.first(), consts.last()) {
            raw.extend([first - 10.0, last + 10.0]);
        }
        // Clamp into the field type, dedupe as typed values, sort. Type
        // extremes join only at the end so spread-reduction for the joint
        // cross product keeps the constraint regions, not the far corners.
        let mut vals: Vec<Value> = Vec::new();
        raw.sort_by(f64::total_cmp);
        for x in raw {
            let v = Value::from_f64(x.clamp(ty.min_f64(), ty.max_f64()), ty);
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        // Cap by even spread so the whole range stays represented.
        let max_per_field = 32;
        if vals.len() > max_per_field {
            vals = (0..max_per_field)
                .map(|i| vals[i * (vals.len() - 1) / (max_per_field - 1)])
                .collect();
        }
        for x in [ty.min_f64(), ty.max_f64()] {
            let v = Value::from_f64(x, ty);
            if !vals.contains(&v) {
                vals.push(v); // appended: used by single-field probes
            }
        }
        if vals.is_empty() {
            vals.push(ty.zero());
        }
        per_field.push(vals);
    }

    // Reduced per-field counts for the joint cross product: grow round
    // robin while the product stays within half the cap.
    let nf = per_field.len();
    let mut counts = vec![1usize; nf];
    loop {
        let mut grew = false;
        for f in 0..nf {
            if counts[f] < per_field[f].len() {
                let product: usize = counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| if i == f { c + 1 } else { c })
                    .product();
                if product <= (cap / 2).max(1) {
                    counts[f] += 1;
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Spread-reduce each field to its count.
    let reduced: Vec<Vec<Value>> = per_field
        .iter()
        .zip(&counts)
        .map(|(vals, &k)| {
            if vals.len() <= k {
                vals.clone()
            } else if k == 1 {
                vec![vals[0]]
            } else {
                (0..k).map(|i| vals[i * (vals.len() - 1) / (k - 1)]).collect()
            }
        })
        .collect();
    let _ = &counts;

    let mut tuples: Vec<Vec<u8>> = Vec::new();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut index = vec![0usize; nf];
    'cross: loop {
        let tuple: Vec<Value> = index.iter().zip(&reduced).map(|(&i, vals)| vals[i]).collect();
        let bytes = layout.encode(&tuple);
        if seen.insert(bytes.clone()) {
            tuples.push(bytes);
        }
        let mut d = 0;
        loop {
            index[d] += 1;
            if index[d] < reduced[d].len() {
                break;
            }
            index[d] = 0;
            d += 1;
            if d == nf {
                break 'cross;
            }
        }
    }
    // Single-field probes over the full candidate sets.
    let zero_tuple: Vec<Value> = layout.fields().iter().map(|f| f.dtype.zero()).collect();
    for (fi, vals) in per_field.iter().enumerate() {
        for v in vals {
            let mut tuple = zero_tuple.clone();
            tuple[fi] = *v;
            let bytes = layout.encode(&tuple);
            if seen.insert(bytes.clone()) {
                tuples.push(bytes);
            }
            if tuples.len() >= cap {
                return tuples;
            }
        }
    }
    tuples
}

/// The per-field candidate count and mined-constant count, for diagnostics
/// and tests.
pub fn alphabet_size(model: &Model, compiled: &CompiledModel, cap: usize) -> usize {
    candidate_tuples(model, compiled, cap).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::{compile, replay_suite};
    use cftcg_model::expr::parse_expr;
    use cftcg_model::{DataType, ModelBuilder, RelOp};

    fn compare_model(threshold: f64) -> Model {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::I16);
        let cmp = b.add("cmp", BlockKind::Compare { op: RelOp::Gt, constant: threshold });
        let y = b.outport("y");
        b.wire(u, cmp);
        b.wire(cmp, y);
        b.finish().unwrap()
    }

    #[test]
    fn mines_constants_from_blocks_and_guards() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let sat = b.add("sat", BlockKind::Saturation { lower: -7.0, upper: 9.0 });
        let iff = b.add(
            "if",
            BlockKind::If {
                num_inputs: 1,
                conditions: vec![parse_expr("u1 > 42 && u1 != 13").unwrap()],
                has_else: false,
            },
        );
        let t = b.add("t", BlockKind::Terminator);
        let y = b.outport("y");
        b.wire(u, sat);
        b.feed(u, iff, 0);
        b.wire(sat, y);
        // Action output must go to an action subsystem; simplest: terminator
        // is invalid, so leave the If's action unconnected instead.
        let _ = t;
        let model = b.finish_unchecked();
        let constants = mine_constants(&model);
        for expected in [-7.0, 9.0, 42.0, 13.0] {
            assert!(constants.contains(&expected), "missing {expected}: {constants:?}");
        }
    }

    #[test]
    fn solves_magic_threshold_at_depth_one() {
        let model = compare_model(12_345.0);
        let compiled = compile(&model).unwrap();
        let generation = generate(&model, &compiled, &SldvConfig::default());
        let report = replay_suite(&compiled, &generation.suite);
        assert_eq!(
            report.decision.percent(),
            100.0,
            "solver candidates must include the mined threshold: {}",
            generation.notes
        );
    }

    #[test]
    fn depth_limit_blocks_deep_goals() {
        // A counter must exceed 20 before the branch flips: deeper than the
        // unrolling depth of 5.
        let mut b = ModelBuilder::new("deep");
        let u = b.inport("u", DataType::U8);
        let t = b.add("t", BlockKind::Terminator);
        b.wire(u, t);
        let cnt = b.add("cnt", BlockKind::CounterLimited { limit: 100 });
        let cmp = b.add("deep_cmp", BlockKind::Compare { op: RelOp::Ge, constant: 20.0 });
        let y = b.outport("y");
        b.wire(cnt, cmp);
        b.wire(cmp, y);
        let model = b.finish().unwrap();
        let compiled = compile(&model).unwrap();
        let config = SldvConfig { max_depth: 5, ..Default::default() };
        let generation = generate(&model, &compiled, &config);
        let report = replay_suite(&compiled, &generation.suite);
        assert!(
            report.decision.percent() < 100.0,
            "goal beyond the unrolling depth must stay uncovered"
        );
    }

    #[test]
    fn state_budget_reports_explosion() {
        // A model whose state space grows fast: an 8-step delay line over a
        // wide integer input.
        let mut b = ModelBuilder::new("wide");
        let u = b.inport("u", DataType::I32);
        let d = b.add("d", BlockKind::Delay { steps: 8, initial: Value::I32(0) });
        let cmp = b.add("cmp", BlockKind::Compare { op: RelOp::Gt, constant: 3.0 });
        let y = b.outport("y");
        b.wire(u, d);
        b.wire(d, cmp);
        b.wire(cmp, y);
        let model = b.finish().unwrap();
        let compiled = compile(&model).unwrap();
        let config = SldvConfig { state_budget: 100, max_depth: 12, ..Default::default() };
        let generation = generate(&model, &compiled, &config);
        assert!(
            generation.notes.contains("explosion"),
            "expected state explosion, got: {}",
            generation.notes
        );
    }

    #[test]
    fn alphabet_is_bounded() {
        let model = compare_model(5.0);
        let compiled = compile(&model).unwrap();
        assert!(alphabet_size(&model, &compiled, 48) <= 48);
    }
}
