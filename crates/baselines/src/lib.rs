#![warn(missing_docs)]

//! Comparison test-case generators for the CFTCG evaluation (paper §4).
//!
//! The paper compares CFTCG against Simulink Design Verifier (constraint
//! solving), SimCoTest (simulation-based meta-heuristic search), and a
//! "Fuzz Only" ablation (vanilla LibFuzzer on Simulink-generated code).
//! None of those tools can be shipped, so this crate rebuilds each
//! *approach* with its characteristic strengths and failure modes:
//!
//! * [`sldv`] — goal-directed **bounded reachability search**: explicit
//!   state-space exploration over solver-style candidate inputs mined from
//!   the model's constraint constants. Excellent on shallow combinational
//!   logic; collapses on state-rich models (frontier explosion = the paper's
//!   ">12 GB memory" observation) and cannot see past its unrolling depth.
//! * [`simcotest`] — **simulation-based search**: random signal templates
//!   (constant/step/ramp/pulse/noise) scored by output-signal diversity,
//!   executed on the *interpretive* simulator, so throughput is limited by
//!   simulation speed exactly as the paper measures (6 iterations/s vs
//!   CFTCG's 26 000+ on SolarPV).
//! * [`fuzz_only`] — the ablation of Figure 8: the same fuzzing loop but
//!   with blind byte-stream mutation and code-level-only coverage feedback
//!   (boolean blocks compile branchless and are invisible).
//!
//! All generators return a [`Generation`]: the emitted suite with per-case
//! timestamps, so the bench harness can score every tool with the same
//! replay yardstick and draw the paper's coverage-vs-time curves.

pub mod fuzz_only;
pub mod hybrid;
pub mod relevance;
pub mod simcotest;
pub mod sldv;

pub use cftcg_fuzz::{coverage_series, Generation};

#[cfg(test)]
pub(crate) mod tests_support {
    use cftcg_model::{BlockKind, ModelBuilder, Value};

    /// An action subsystem emitting a boolean constant, for If/Merge wiring
    /// in baseline tests.
    pub fn const_action_bool(value: bool) -> BlockKind {
        let mut b = ModelBuilder::new(if value { "true_m" } else { "false_m" });
        let c = b.add("c", BlockKind::Constant { value: Value::Bool(value) });
        let y = b.outport("y");
        b.wire(c, y);
        BlockKind::ActionSubsystem { model: Box::new(b.finish().expect("valid")) }
    }
}
