//! The hybrid generator the paper's §5 sketches as future work:
//! "we can first apply constraint solving to the branches in the model to
//! obtain the constraints between ports and then generate input data
//! accordingly."
//!
//! Implementation: a short bounded-reachability pass ([`crate::sldv`])
//! solves the shallow multi-port constraints and produces witnesses; those
//! witnesses seed the model-oriented fuzzing loop's corpus, which then
//! spends the remaining budget mutating *valid, constraint-satisfying*
//! prefixes into the deep state space that solving alone cannot reach.

use std::time::{Duration, Instant};

use cftcg_codegen::CompiledModel;
use cftcg_fuzz::{FuzzConfig, Fuzzer};
use cftcg_model::Model;

use crate::sldv::{self, SldvConfig};
use crate::Generation;

/// Configuration of the hybrid generator.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// RNG seed for the fuzzing phase.
    pub seed: u64,
    /// Total wall-clock budget across both phases.
    pub budget: Duration,
    /// Fraction of the budget spent solving before fuzzing (0..1).
    pub solve_fraction: f64,
    /// Fuzzing-loop knobs (the seed field is overwritten per run).
    pub fuzz: FuzzConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            seed: 0,
            budget: Duration::from_secs(10),
            solve_fraction: 0.2,
            fuzz: FuzzConfig::default(),
        }
    }
}

/// Runs the hybrid pipeline: solve briefly, seed the fuzzer, fuzz the rest.
pub fn generate(model: &Model, compiled: &CompiledModel, config: &HybridConfig) -> Generation {
    let started = Instant::now();
    let solve_budget = config.budget.mul_f64(config.solve_fraction.clamp(0.0, 0.9));
    let solving =
        sldv::generate(model, compiled, &SldvConfig { budget: solve_budget, ..Default::default() });

    let mut fuzzer = Fuzzer::new(compiled, FuzzConfig { seed: config.seed, ..config.fuzz.clone() });
    for case in &solving.suite {
        fuzzer.add_seed(case.bytes.clone());
    }
    let remaining = config.budget.saturating_sub(started.elapsed());
    let outcome = fuzzer.run_for(remaining);

    let mut generation: Generation = outcome.into();
    generation.executions += solving.executions;
    generation.iterations += solving.iterations;
    generation.elapsed = started.elapsed();
    generation.notes = format!(
        "hybrid: {} solver witnesses seeded ({}); fuzzing covered {} of {} branches",
        solving.suite.len(),
        solving.notes,
        fuzzer.covered_branches(),
        compiled.map().branch_count()
    );
    generation
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::{compile, replay_suite};
    use cftcg_model::expr::parse_expr;
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    /// A model with a multi-port constraint gate in front of deep state:
    /// the counter only advances while `a == 37 && c == 91`, and the deep
    /// branch needs 6 gated iterations. Solving cracks the gate; fuzzing
    /// sustains it.
    fn gated_counter_model() -> cftcg_model::Model {
        let mut b = ModelBuilder::new("gated");
        let a = b.inport("a", DataType::I32);
        let c = b.inport("c", DataType::I32);
        let is_a = b.add("is_a", BlockKind::Compare { op: cftcg_model::RelOp::Eq, constant: 37.0 });
        let is_c = b.add("is_c", BlockKind::Compare { op: cftcg_model::RelOp::Eq, constant: 91.0 });
        let gate = b.add("gate", BlockKind::Logic { op: cftcg_model::LogicOp::And, inputs: 2 });
        b.wire(a, is_a);
        b.wire(c, is_c);
        b.feed(is_a, gate, 0);
        b.feed(is_c, gate, 1);
        let gate_f = b.add("gate_f", BlockKind::DataTypeConversion { to: DataType::F64 });
        b.wire(gate, gate_f);
        // Upper limit reachable within the input-length cap (21 gated
        // iterations); the lower limit is structurally unreachable (the
        // gate signal is non-negative) and stays uncovered by design.
        let count = b.add(
            "count",
            BlockKind::DiscreteIntegrator {
                gain: 1.0,
                initial: 0.0,
                lower: Some(0.0),
                upper: Some(20.0),
            },
        );
        b.wire(gate_f, count);
        let iff = b.add(
            "deep",
            BlockKind::If {
                num_inputs: 1,
                conditions: vec![parse_expr("u1 >= 6").unwrap()],
                has_else: true,
            },
        );
        b.wire(count, iff);
        let hit = b.add("hit", crate::tests_support::const_action_bool(true));
        let miss = b.add("miss", crate::tests_support::const_action_bool(false));
        let merge = b.add("merge", BlockKind::Merge { inputs: 2 });
        b.connect(iff, 0, hit, 0);
        b.connect(iff, 1, miss, 0);
        b.connect(hit, 0, merge, 0);
        b.connect(miss, 0, merge, 1);
        let y = b.outport("y");
        b.wire(merge, y);
        b.finish().unwrap()
    }

    #[test]
    fn hybrid_reaches_gated_deep_state() {
        let model = gated_counter_model();
        let compiled = compile(&model).unwrap();
        let config =
            HybridConfig { seed: 5, budget: Duration::from_millis(1_000), ..Default::default() };
        let generation = generate(&model, &compiled, &config);
        let report = replay_suite(&compiled, &generation.suite);
        // Everything except the structurally unreachable lower clip.
        assert_eq!(
            report.decision.covered,
            report.decision.total - 1,
            "hybrid must crack the gate and sustain it to the limit: {}",
            generation.notes
        );
        assert!(generation.notes.contains("witnesses seeded"));
    }

    #[test]
    fn seeded_fuzzer_counts_seed_coverage() {
        let model = gated_counter_model();
        let compiled = compile(&model).unwrap();
        let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig::default());
        assert_eq!(fuzzer.covered_branches(), 0);
        // A hand-built satisfying seed: 6 gated tuples.
        let layout = compiled.layout();
        let tuple = layout.encode(&[cftcg_model::Value::I32(37), cftcg_model::Value::I32(91)]);
        let mut bytes = Vec::new();
        for _ in 0..8 {
            bytes.extend_from_slice(&tuple);
        }
        fuzzer.add_seed(bytes);
        assert!(fuzzer.covered_branches() > 0);
        assert!(!fuzzer.suite().is_empty());
    }
}
