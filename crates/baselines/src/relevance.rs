//! Cone-of-influence constraint relevance: which branch-condition constants
//! can each top-level inport actually steer?
//!
//! Real solvers restrict each decision variable's domain using only the
//! constraints in its cone of influence. This module approximates that with
//! a forward *taint* analysis: every output port carries the bitmask of
//! top-level inports that (transitively) influence it, propagated to a
//! fixpoint so feedback through delay blocks is captured. Branch constants
//! are then credited to the inports tainting the guarded signal — e.g. a
//! `PanelID == 3` compare credits `3` to the `PanelID` inport only, keeping
//! the SLDV-like search's input alphabet small *and* relevant.

use cftcg_model::expr::Expr;
use cftcg_model::{BlockKind, Model, PortRef, SwitchCriterion};

/// Per-top-level-inport constant sets: `result[i]` holds the constants from
/// constraints influenced by inport `i`.
pub fn relevant_constants(model: &Model) -> Vec<Vec<f64>> {
    let n = model.num_inports();
    let mut attr: Vec<Vec<f64>> = vec![Vec::new(); n];
    let input_taints: Vec<u64> = (0..n.min(64)).map(|i| 1u64 << i).collect();
    taint_model(model, &input_taints, &mut attr);
    for consts in &mut attr {
        consts.sort_by(f64::total_cmp);
        consts.dedup();
    }
    attr
}

/// Credits `value` to every inport bit set in `mask`.
fn credit(attr: &mut [Vec<f64>], mask: u64, value: f64) {
    for (i, consts) in attr.iter_mut().enumerate() {
        if mask & (1u64 << i) != 0 {
            consts.push(value);
        }
    }
}

fn credit_expr(attr: &mut [Vec<f64>], mask: u64, expr: &Expr) {
    match expr {
        Expr::Literal(v) => credit(attr, mask, v.as_f64()),
        Expr::Var(_) => {}
        Expr::Unary(_, inner) => credit_expr(attr, mask, inner),
        Expr::Binary(_, lhs, rhs) => {
            credit_expr(attr, mask, lhs);
            credit_expr(attr, mask, rhs);
        }
        Expr::Call(_, args) => {
            for a in args {
                credit_expr(attr, mask, a);
            }
        }
    }
}

/// Propagates taints through one model level to a fixpoint, attributing
/// constants, and recursing into subsystems.
fn taint_model(model: &Model, input_taints: &[u64], attr: &mut [Vec<f64>]) {
    let n = model.blocks().len();
    let mut taints: Vec<Vec<u64>> =
        model.blocks().iter().map(|b| vec![0u64; b.kind().num_outputs()]).collect();
    let in_taint = |taints: &Vec<Vec<u64>>, b: usize, port: usize| -> u64 {
        model
            .source_of(PortRef::new(model.blocks()[b].id(), port))
            .map_or(0, |src| taints[src.block.index()][src.port])
    };
    let all_in = |taints: &Vec<Vec<u64>>, b: usize| -> u64 {
        (0..model.blocks()[b].kind().num_inputs())
            .map(|p| in_taint(taints, b, p))
            .fold(0, |a, t| a | t)
    };
    // Fixpoint (delay blocks feed taints backwards through cycles).
    loop {
        let mut changed = false;
        for b in 0..n {
            let kind = model.blocks()[b].kind();
            let new: u64 = match kind {
                BlockKind::Inport { index, .. } => input_taints.get(*index).copied().unwrap_or(0),
                BlockKind::Constant { .. } | BlockKind::Ground { .. } => 0,
                _ => all_in(&taints, b),
            };
            for port in 0..taints[b].len() {
                if taints[b][port] != new {
                    taints[b][port] = new;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Attribute constants.
    for b in 0..n {
        let kind = model.blocks()[b].kind().clone();
        let t0 = in_taint(&taints, b, 0);
        match &kind {
            BlockKind::Compare { constant, .. } => credit(attr, t0, *constant),
            BlockKind::Saturation { lower, upper } => {
                credit(attr, t0, *lower);
                credit(attr, t0, *upper);
            }
            BlockKind::DeadZone { start, end } => {
                credit(attr, t0, *start);
                credit(attr, t0, *end);
            }
            BlockKind::Relay { on_threshold, off_threshold, .. } => {
                credit(attr, t0, *on_threshold);
                credit(attr, t0, *off_threshold);
            }
            BlockKind::Switch { criterion } => {
                let tc = in_taint(&taints, b, 1);
                match criterion {
                    SwitchCriterion::GreaterEqual(t) | SwitchCriterion::Greater(t) => {
                        credit(attr, tc, *t);
                    }
                    SwitchCriterion::NotZero => credit(attr, tc, 0.0),
                }
            }
            BlockKind::MultiportSwitch { cases } => {
                for k in 1..=*cases {
                    credit(attr, t0, k as f64);
                }
            }
            BlockKind::SwitchCase { cases, .. } => {
                for labels in cases {
                    for &l in labels {
                        credit(attr, t0, l as f64);
                    }
                }
            }
            BlockKind::If { num_inputs, conditions, .. } => {
                for cond in conditions {
                    // Credit each condition's constants to the inports
                    // feeding the `u<i>` variables it references.
                    let mut mask = 0;
                    for var in cond.free_vars() {
                        if let Some(i) = var.strip_prefix('u').and_then(|d| d.parse::<usize>().ok())
                        {
                            if i >= 1 && i <= *num_inputs {
                                mask |= in_taint(&taints, b, i - 1);
                            }
                        }
                    }
                    credit_expr(attr, mask, cond);
                }
            }
            BlockKind::Lookup1D { breakpoints, .. } => {
                for &x in breakpoints {
                    credit(attr, t0, x);
                }
            }
            BlockKind::Lookup2D { row_breaks, col_breaks, .. } => {
                for &x in row_breaks {
                    credit(attr, t0, x);
                }
                let t1 = in_taint(&taints, b, 1);
                for &x in col_breaks {
                    credit(attr, t1, x);
                }
            }
            BlockKind::DiscreteIntegrator { lower, upper, .. } => {
                for limit in lower.iter().chain(upper.iter()) {
                    credit(attr, t0, *limit);
                }
            }
            BlockKind::CounterLimited { limit } => {
                // No inputs: counters are driven by time, not data.
                let _ = limit;
            }
            BlockKind::MatlabFunction { function } => {
                let name_taint = |name: &str| -> u64 {
                    function
                        .inputs()
                        .iter()
                        .position(|(n, _)| n == name)
                        .map_or(0, |p| in_taint(&taints, b, p))
                };
                credit_function_like(attr, function.body(), &name_taint, all_in(&taints, b));
            }
            BlockKind::Chart { chart } => {
                let name_taint = |name: &str| -> u64 {
                    chart
                        .inputs
                        .iter()
                        .position(|(n, _)| n == name)
                        .map_or(0, |p| in_taint(&taints, b, p))
                };
                let fallback = all_in(&taints, b);
                for tr in &chart.transitions {
                    if let Some(guard) = &tr.guard {
                        credit_guarded_expr(attr, guard, &name_taint, fallback);
                    }
                    credit_function_like(attr, &tr.action, &name_taint, fallback);
                }
                for state in &chart.states {
                    credit_function_like(attr, &state.entry, &name_taint, fallback);
                    credit_function_like(attr, &state.during, &name_taint, fallback);
                }
            }
            BlockKind::ActionSubsystem { model: inner }
            | BlockKind::EnabledSubsystem { model: inner }
            | BlockKind::TriggeredSubsystem { model: inner, .. } => {
                let inner_taints: Vec<u64> =
                    (0..inner.num_inports()).map(|i| in_taint(&taints, b, 1 + i)).collect();
                taint_model(inner, &inner_taints, attr);
            }
            BlockKind::Subsystem { model: inner } => {
                let inner_taints: Vec<u64> =
                    (0..inner.num_inports()).map(|i| in_taint(&taints, b, i)).collect();
                taint_model(inner, &inner_taints, attr);
            }
            _ => {}
        }
    }
}

/// Credits statement constants: each `if` condition (and assignment) uses
/// the taints of the chart/function inputs it mentions, falling back to all
/// inputs when it only mentions internal variables (their values derive
/// from inputs over time).
fn credit_function_like(
    attr: &mut [Vec<f64>],
    stmts: &[cftcg_model::expr::Stmt],
    name_taint: &dyn Fn(&str) -> u64,
    fallback: u64,
) {
    for stmt in stmts {
        match stmt {
            cftcg_model::expr::Stmt::Assign(_, value) => {
                credit_guarded_expr(attr, value, name_taint, 0);
            }
            cftcg_model::expr::Stmt::If { cond, then_body, else_body } => {
                credit_guarded_expr(attr, cond, name_taint, fallback);
                credit_function_like(attr, then_body, name_taint, fallback);
                credit_function_like(attr, else_body, name_taint, fallback);
            }
        }
    }
}

fn credit_guarded_expr(
    attr: &mut [Vec<f64>],
    expr: &Expr,
    name_taint: &dyn Fn(&str) -> u64,
    fallback: u64,
) {
    let mut mask = 0;
    for var in expr.free_vars() {
        mask |= name_taint(&var);
    }
    if mask == 0 {
        mask = fallback;
    }
    credit_expr(attr, mask, expr);
}

/// Derives per-inport value ranges from the relevance analysis — the
/// paper's §5 alternative when "testers find it difficult to determine the
/// value ranges for inports": "we can use formal methods to determine them
/// in advance". The range is the hull of the inport's relevant constants,
/// widened by a margin, intersected with the declared type's range.
pub fn suggested_input_ranges(model: &Model) -> Vec<cftcg_fuzz::FieldRange> {
    let attr = relevant_constants(model);
    model
        .inports()
        .into_iter()
        .map(|(_, index, dtype)| {
            let consts = attr.get(index).cloned().unwrap_or_default();
            let (lo, hi) = match (
                consts.iter().copied().reduce(f64::min),
                consts.iter().copied().reduce(f64::max),
            ) {
                (Some(lo), Some(hi)) => {
                    let span = (hi - lo).abs().max(2.0);
                    (lo - span / 2.0, hi + span / 2.0)
                }
                _ => (dtype.min_f64(), dtype.max_f64()),
            };
            cftcg_fuzz::FieldRange::new(lo.max(dtype.min_f64()), hi.min(dtype.max_f64()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{DataType, ModelBuilder, RelOp};

    #[test]
    fn constants_attach_to_the_driving_inport_only() {
        let mut b = ModelBuilder::new("m");
        let a = b.inport("a", DataType::I32);
        let c = b.inport("c", DataType::I32);
        let cmp_a = b.add("cmp_a", BlockKind::Compare { op: RelOp::Eq, constant: 77.0 });
        let cmp_c = b.add("cmp_c", BlockKind::Compare { op: RelOp::Gt, constant: 1234.0 });
        let y0 = b.outport("y0");
        let y1 = b.outport("y1");
        b.wire(a, cmp_a);
        b.wire(c, cmp_c);
        b.wire(cmp_a, y0);
        b.wire(cmp_c, y1);
        let model = b.finish().unwrap();
        let attr = relevant_constants(&model);
        assert!(attr[0].contains(&77.0));
        assert!(!attr[0].contains(&1234.0));
        assert!(attr[1].contains(&1234.0));
        assert!(!attr[1].contains(&77.0));
    }

    #[test]
    fn taints_flow_through_arithmetic_and_delays() {
        use cftcg_model::{InputSign, Value};
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let sum = b.add("sum", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
        let dly = b.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
        let cmp = b.add("cmp", BlockKind::Compare { op: RelOp::Ge, constant: 55.0 });
        let y = b.outport("y");
        b.connect(u, 0, sum, 0);
        b.connect(dly, 0, sum, 1);
        b.connect(sum, 0, dly, 0);
        b.connect(sum, 0, cmp, 0);
        b.wire(cmp, y);
        let model = b.finish().unwrap();
        let attr = relevant_constants(&model);
        assert!(attr[0].contains(&55.0), "feedback loop must not hide the taint");
    }

    #[test]
    fn suggested_ranges_shrink_oversized_domains() {
        let model = cftcg_benchmarks::solar_pv::model();
        let ranges = suggested_input_ranges(&model);
        // PanelID (inport 2) is an int32, but its constraints only involve
        // the labels 1..4 — the derived range must be tiny by comparison.
        let panel_id = ranges[2];
        assert!(panel_id.min >= -100.0 && panel_id.max <= 100.0, "{panel_id:?}");
        // Power's constraints span -1000..5000; the hull plus margin stays
        // within the same order of magnitude.
        let power = ranges[1];
        assert!(power.min >= -20_000.0 && power.max <= 20_000.0, "{power:?}");
        assert!(power.max >= 5_000.0);
    }

    #[test]
    fn solar_pv_panel_id_gets_the_case_labels_not_power_thresholds() {
        let model = cftcg_benchmarks::solar_pv::model();
        let attr = relevant_constants(&model);
        // Inports: Enable(0), Power(1), PanelID(2).
        let panel_id = &attr[2];
        for label in [1.0, 2.0, 3.0, 4.0] {
            assert!(panel_id.contains(&label), "PanelID must know label {label}");
        }
        let power = &attr[1];
        assert!(power.contains(&100.0), "Power must know the charging threshold");
        assert!(power.contains(&4500.0), "Power must know the fault threshold");
        assert!(!panel_id.contains(&4500.0), "the fault threshold is not in PanelID's cone");
    }
}
