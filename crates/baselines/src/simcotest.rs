//! The SimCoTest-like baseline: simulation-based meta-heuristic search.
//!
//! SimCoTest "uses meta-heuristic search to ... maximise the diversity of
//! output signal shapes", generating whole input *signals* and judging them
//! by simulating the model. This reproduction keeps both properties:
//!
//! * inputs are structured signal templates per inport (constant, step,
//!   ramp, pulse, random walk), not raw bytes;
//! * candidates are executed on the **interpretive simulator** — the slow
//!   engine — and kept when their output-signal feature vector is novel
//!   relative to the archive (output diversity search).
//!
//! The crucial systemic property carries over: every candidate costs a full
//! interpretive simulation, so within a wall-clock budget this generator
//! executes orders of magnitude fewer model iterations than the compiled
//! fuzzing loop (the paper: 6 iterations/s vs 26 000+ on SolarPV).

use std::time::{Duration, Instant};

use cftcg_codegen::{TestCase, TupleLayout};
use cftcg_model::{DataType, Model, Value};
use cftcg_sim::Simulator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::Generation;

/// Configuration of the simulation-based search.
#[derive(Debug, Clone)]
pub struct SimCoTestConfig {
    /// RNG seed.
    pub seed: u64,
    /// Signal length in model iterations per candidate.
    pub signal_len: usize,
    /// Wall-clock budget.
    pub budget: Duration,
    /// Minimum normalized feature distance for a candidate to be archived.
    pub novelty_threshold: f64,
    /// Extra per-block engine busy-work, modelling Simulink's much heavier
    /// interpreter (0 = measure our lightweight interpreter as-is). The
    /// default is calibrated so the simulated/compiled speed ratio lands in
    /// the range the paper reports (6 vs 26 000+ iterations/s on SolarPV);
    /// the `speed` bench prints both raw and modelled numbers.
    pub engine_overhead_spins: u32,
}

impl Default for SimCoTestConfig {
    fn default() -> Self {
        SimCoTestConfig {
            seed: 0,
            signal_len: 30,
            budget: Duration::from_secs(10),
            novelty_threshold: 0.25,
            engine_overhead_spins: 120_000,
        }
    }
}

/// One inport's signal template.
#[derive(Debug, Clone, Copy)]
enum SignalShape {
    Constant,
    Step,
    Ramp,
    Pulse,
    RandomWalk,
}

/// Runs the simulation-based generator.
///
/// # Panics
///
/// Panics if `model` fails validation (benchmarks are pre-validated).
pub fn generate(model: &Model, config: &SimCoTestConfig) -> Generation {
    let started = Instant::now();
    let mut sim = Simulator::new(model).expect("benchmark model validates");
    sim.set_engine_overhead(config.engine_overhead_spins);
    let layout = TupleLayout::for_model(model);
    let mut rng = SmallRng::seed_from_u64(config.seed);

    let mut generation = Generation::default();
    let mut archive: Vec<Vec<f64>> = Vec::new();
    // Running per-dimension scale for feature normalization.
    let mut scale: Vec<f64> = Vec::new();

    while started.elapsed() < config.budget {
        let tuples = sample_signal(&mut rng, model, config.signal_len);
        sim.reset();
        let mut features = Vec::new();
        let mut ok = true;
        let mut outputs_acc: Vec<Vec<f64>> = vec![Vec::new(); model.num_outports()];
        for tuple in &tuples {
            match sim.step(tuple) {
                Ok(outs) => {
                    for (acc, v) in outputs_acc.iter_mut().zip(&outs) {
                        acc.push(v.as_f64());
                    }
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            generation.iterations += 1;
        }
        generation.executions += 1;
        if !ok {
            continue;
        }
        for signal in &outputs_acc {
            features.extend(signal_features(signal));
        }
        if scale.len() < features.len() {
            scale.resize(features.len(), 1e-12);
        }
        for (s, &f) in scale.iter_mut().zip(&features) {
            *s = s.max(f.abs()).max(1e-12);
        }
        let normalized: Vec<f64> = features.iter().zip(&scale).map(|(&f, &s)| f / s).collect();
        let novel = archive.is_empty()
            || archive.iter().map(|a| distance(a, &normalized)).fold(f64::INFINITY, f64::min)
                > config.novelty_threshold;
        if novel {
            archive.push(normalized);
            generation.suite.push(TestCase::from_tuples(&layout, &tuples));
            generation.case_times.push(started.elapsed());
        }
    }
    generation.elapsed = started.elapsed();
    generation.notes = format!(
        "{} candidates simulated, {} archived, {:.0} iterations/s",
        generation.executions,
        generation.suite.len(),
        generation.iterations_per_second()
    );
    generation
}

/// Samples one multi-inport signal: a template per inport, materialized into
/// per-iteration tuples.
fn sample_signal(rng: &mut SmallRng, model: &Model, len: usize) -> Vec<Vec<Value>> {
    let inports = model.inports();
    let mut columns: Vec<Vec<Value>> = Vec::with_capacity(inports.len());
    for (_, _, dtype) in &inports {
        columns.push(sample_column(rng, *dtype, len));
    }
    (0..len).map(|k| columns.iter().map(|col| col[k]).collect()).collect()
}

fn sample_column(rng: &mut SmallRng, dtype: DataType, len: usize) -> Vec<Value> {
    let shape = match rng.random_range(0..5u8) {
        0 => SignalShape::Constant,
        1 => SignalShape::Step,
        2 => SignalShape::Ramp,
        3 => SignalShape::Pulse,
        _ => SignalShape::RandomWalk,
    };
    // Mix amplitude scales: real signal generators sample profile
    // parameters from nested ranges, not uniformly over the whole type
    // (a uniform int32 almost never produces small selector values).
    let (scale_lo, scale_hi) = match rng.random_range(0..3u8) {
        0 => (-50.0, 50.0),
        1 => (-5_000.0, 5_000.0),
        _ => (-1e6, 1e6),
    };
    let lo = dtype.min_f64().max(scale_lo);
    let hi = dtype.max_f64().min(scale_hi);
    let a = rng.random_range(lo..=hi);
    let b = rng.random_range(lo..=hi);
    let change = rng.random_range(0..len.max(1));
    let mut walk = a;
    (0..len)
        .map(|k| {
            let x = match shape {
                SignalShape::Constant => a,
                SignalShape::Step => {
                    if k < change {
                        a
                    } else {
                        b
                    }
                }
                SignalShape::Ramp => a + (b - a) * k as f64 / len.max(1) as f64,
                SignalShape::Pulse => {
                    if k % ((change + 2).max(2)) == 0 {
                        b
                    } else {
                        a
                    }
                }
                SignalShape::RandomWalk => {
                    walk += rng.random_range(-1.0..=1.0) * (hi - lo) * 0.05;
                    walk = walk.clamp(lo, hi);
                    walk
                }
            };
            Value::from_f64(x, dtype)
        })
        .collect()
}

/// Output-signal shape features: the statistics SimCoTest's diversity
/// objective discriminates on.
fn signal_features(signal: &[f64]) -> [f64; 5] {
    if signal.is_empty() {
        return [0.0; 5];
    }
    let n = signal.len() as f64;
    let mean = signal.iter().sum::<f64>() / n;
    let min = signal.iter().copied().fold(f64::INFINITY, f64::min);
    let max = signal.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut crossings = 0.0;
    let mut total_variation = 0.0;
    for w in signal.windows(2) {
        if (w[0] - mean).signum() != (w[1] - mean).signum() {
            crossings += 1.0;
        }
        total_variation += (w[1] - w[0]).abs();
    }
    [mean, min, max, crossings, total_variation]
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut acc = 0.0;
    for i in 0..n {
        let d = a[i] - b[i];
        acc += d * d;
    }
    // Dimensions only present in the longer vector count fully.
    acc += a.len().abs_diff(b.len()) as f64;
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{BlockKind, ModelBuilder, RelOp};

    fn small_model() -> Model {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::I16);
        let cmp = b.add("cmp", BlockKind::Compare { op: RelOp::Gt, constant: 100.0 });
        let y = b.outport("y");
        b.wire(u, cmp);
        b.wire(cmp, y);
        b.finish().unwrap()
    }

    #[test]
    fn generates_a_diverse_suite() {
        let model = small_model();
        let config = SimCoTestConfig {
            budget: Duration::from_millis(150),
            seed: 1,
            engine_overhead_spins: 0,
            ..Default::default()
        };
        let generation = generate(&model, &config);
        assert!(generation.executions > 0);
        assert!(!generation.suite.is_empty());
        assert!(generation.suite.len() as u64 <= generation.executions);
        assert_eq!(generation.suite.len(), generation.case_times.len());
    }

    #[test]
    fn novelty_filter_rejects_duplicates() {
        let model = small_model();
        let config = SimCoTestConfig {
            budget: Duration::from_millis(300),
            seed: 2,
            engine_overhead_spins: 0,
            ..Default::default()
        };
        let generation = generate(&model, &config);
        // With a boolean output there are few distinct shapes; the archive
        // must stay far smaller than the candidate count.
        assert!(
            (generation.suite.len() as u64) < generation.executions / 2,
            "{} archived of {} candidates",
            generation.suite.len(),
            generation.executions
        );
    }

    #[test]
    fn engine_overhead_reduces_throughput() {
        let model = small_model();
        let fast = generate(
            &model,
            &SimCoTestConfig {
                budget: Duration::from_millis(120),
                seed: 3,
                engine_overhead_spins: 0,
                ..Default::default()
            },
        );
        let slow = generate(
            &model,
            &SimCoTestConfig {
                budget: Duration::from_millis(120),
                seed: 3,
                engine_overhead_spins: 20_000,
                ..Default::default()
            },
        );
        assert!(
            slow.iterations_per_second() < fast.iterations_per_second() / 2.0,
            "throttle must bite: {} vs {}",
            slow.iterations_per_second(),
            fast.iterations_per_second()
        );
    }

    #[test]
    fn signal_features_discriminate_shapes() {
        let flat = signal_features(&[1.0; 10]);
        let saw = signal_features(&[0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        assert!(distance(&flat, &saw) > 0.5);
        assert_eq!(signal_features(&[]), [0.0; 5]);
    }

    #[test]
    fn sampled_signals_have_declared_types() {
        let model = small_model();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let tuples = sample_signal(&mut rng, &model, 8);
            assert_eq!(tuples.len(), 8);
            for t in &tuples {
                assert_eq!(t.len(), 1);
                assert_eq!(t[0].data_type(), DataType::I16);
            }
        }
    }
}
