//! Generator-output contracts: every tool's emitted test cases must be
//! well-formed and actually reproduce coverage when replayed — the property
//! the whole cross-tool comparison methodology rests on.

use std::time::Duration;

use cftcg_baselines::{fuzz_only, hybrid, simcotest, sldv};
use cftcg_codegen::{compile, replay_suite};
use cftcg_coverage::{BranchBitmap, FullTracker};
use cftcg_model::{BlockKind, DataType, FunctionDef, Model, ModelBuilder, RelOp};

/// A compact model with shallow logic, a two-port constraint, and a small
/// state machine — something every generator can chew on.
fn mixed_model() -> Model {
    let mut b = ModelBuilder::new("mixed");
    let x = b.inport("x", DataType::I16);
    let mode = b.inport("mode", DataType::U8);
    let f = FunctionDef::parse(
        &[("x", DataType::F64), ("mode", DataType::F64)],
        &[("y", DataType::F64)],
        "if (mode == 2 && x > 50) { y = x - 50; } else if (x < -50) { y = -50; } else { y = 0; }",
    )
    .unwrap();
    let x_f = b.add("x_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let mode_f = b.add("mode_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(x, x_f, 0);
    b.feed(mode, mode_f, 0);
    let func = b.add("logic", BlockKind::MatlabFunction { function: f });
    b.feed(x_f, func, 0);
    b.feed(mode_f, func, 1);
    let integ = b.add(
        "integ",
        BlockKind::DiscreteIntegrator {
            gain: 0.5,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(40.0),
        },
    );
    b.wire(func, integ);
    let over = b.add("over", BlockKind::Compare { op: RelOp::Ge, constant: 39.0 });
    b.wire(integ, over);
    let y = b.outport("y");
    let alarm = b.outport("alarm");
    b.wire(integ, y);
    b.wire(over, alarm);
    b.finish().unwrap()
}

/// Replays a suite case by case; every case must hit at least one branch,
/// and cumulative coverage must equal the report's decision numerator.
fn check_suite(compiled: &cftcg_codegen::CompiledModel, suite: &[cftcg_codegen::TestCase]) {
    let tuple = compiled.layout().tuple_size();
    let mut total = FullTracker::new(compiled.map());
    for (i, case) in suite.iter().enumerate() {
        assert!(
            case.bytes.len() >= tuple,
            "case {i} shorter than one tuple ({} bytes)",
            case.bytes.len()
        );
        let mut single = BranchBitmap::new(compiled.map().branch_count());
        let mut exec = cftcg_codegen::Executor::new(compiled);
        exec.run_case(case, &mut single);
        assert!(single.count() > 0, "case {i} exercises nothing");
        cftcg_codegen::replay_case(compiled, case, &mut total);
    }
    let report = replay_suite(compiled, suite);
    assert_eq!(report.decision.covered, total.branch_hits().iter().filter(|&&h| h).count(),);
}

#[test]
fn sldv_witnesses_are_valid() {
    let model = mixed_model();
    let compiled = compile(&model).unwrap();
    let generation = sldv::generate(
        &model,
        &compiled,
        &sldv::SldvConfig { budget: Duration::from_millis(800), ..Default::default() },
    );
    assert!(!generation.suite.is_empty());
    check_suite(&compiled, &generation.suite);
    // The two-port constraint (mode == 2 && x > 50) must be solved.
    let report = replay_suite(&compiled, &generation.suite);
    assert!(
        report.condition.percent() > 50.0,
        "solver should crack the joint constraint: {report}"
    );
}

#[test]
fn simcotest_cases_are_valid() {
    let model = mixed_model();
    let compiled = compile(&model).unwrap();
    let generation = simcotest::generate(
        &model,
        &simcotest::SimCoTestConfig {
            budget: Duration::from_millis(400),
            seed: 3,
            engine_overhead_spins: 0,
            ..Default::default()
        },
    );
    assert!(!generation.suite.is_empty());
    check_suite(&compiled, &generation.suite);
}

#[test]
fn fuzz_only_cases_are_valid() {
    let model = mixed_model();
    let compiled = compile(&model).unwrap();
    let generation = fuzz_only::generate(
        &compiled,
        &fuzz_only::FuzzOnlyConfig { budget: Duration::from_millis(400), seed: 3 },
    );
    // Fuzz-only may legitimately emit nothing on boolean-only models, but
    // this model has real jumps, so it finds something.
    assert!(!generation.suite.is_empty());
    check_suite(&compiled, &generation.suite);
}

#[test]
fn hybrid_cases_are_valid_and_beat_solving_alone() {
    let model = mixed_model();
    let compiled = compile(&model).unwrap();
    let solver_only = sldv::generate(
        &model,
        &compiled,
        &sldv::SldvConfig { budget: Duration::from_millis(200), ..Default::default() },
    );
    let hybrid_gen = hybrid::generate(
        &model,
        &compiled,
        &hybrid::HybridConfig {
            seed: 9,
            budget: Duration::from_millis(1_000),
            ..Default::default()
        },
    );
    check_suite(&compiled, &hybrid_gen.suite);
    let solver_report = replay_suite(&compiled, &solver_only.suite);
    let hybrid_report = replay_suite(&compiled, &hybrid_gen.suite);
    assert!(
        hybrid_report.decision.covered >= solver_report.decision.covered,
        "hybrid must not lose coverage relative to its solving phase"
    );
}

#[test]
fn generation_case_times_are_monotone_for_every_tool() {
    let model = mixed_model();
    let compiled = compile(&model).unwrap();
    let generations = vec![
        sldv::generate(
            &model,
            &compiled,
            &sldv::SldvConfig { budget: Duration::from_millis(300), ..Default::default() },
        ),
        simcotest::generate(
            &model,
            &simcotest::SimCoTestConfig {
                budget: Duration::from_millis(300),
                seed: 1,
                engine_overhead_spins: 0,
                ..Default::default()
            },
        ),
        fuzz_only::generate(
            &compiled,
            &fuzz_only::FuzzOnlyConfig { budget: Duration::from_millis(300), seed: 1 },
        ),
    ];
    for generation in generations {
        assert_eq!(generation.suite.len(), generation.case_times.len());
        for pair in generation.case_times.windows(2) {
            assert!(pair[0] <= pair[1], "case timestamps must be monotone");
        }
        if let Some(&last) = generation.case_times.last() {
            assert!(last <= generation.elapsed + Duration::from_millis(50));
        }
    }
}

#[test]
fn solver_respects_iteration_depth_in_witness_length() {
    let model = mixed_model();
    let compiled = compile(&model).unwrap();
    let config =
        sldv::SldvConfig { max_depth: 3, budget: Duration::from_millis(500), ..Default::default() };
    let generation = sldv::generate(&model, &compiled, &config);
    let tuple = compiled.layout().tuple_size();
    for case in &generation.suite {
        assert!(
            case.bytes.len() <= 3 * tuple,
            "witness longer than the unrolling depth: {} bytes",
            case.bytes.len()
        );
    }
}

#[test]
fn value_encoding_of_witnesses_is_field_aligned() {
    let model = mixed_model();
    let compiled = compile(&model).unwrap();
    let generation = sldv::generate(
        &model,
        &compiled,
        &sldv::SldvConfig { budget: Duration::from_millis(300), ..Default::default() },
    );
    let tsize = compiled.layout().tuple_size();
    for case in &generation.suite {
        assert_eq!(case.bytes.len() % tsize, 0, "witnesses are whole tuples");
        // Every tuple decodes into typed values without panicking.
        for tuple in compiled.layout().split(&case.bytes) {
            let values = compiled.layout().decode(tuple);
            assert_eq!(values.len(), 2);
            assert_eq!(values[0].data_type(), DataType::I16);
            assert_eq!(values[1].data_type(), DataType::U8);
        }
    }
}
