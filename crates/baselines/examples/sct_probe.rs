//! Probes the SimCoTest-like baseline's coverage on the deep-state
//! benchmark models — the calibration loop for its engine-overhead and
//! signal-scale defaults.
//!
//! ```sh
//! cargo run --release -p cftcg-baselines --example sct_probe
//! ```

use cftcg_baselines::simcotest;
use cftcg_codegen::{compile, replay_suite};
use std::time::Duration;
fn main() {
    for name in ["TWC", "UTPC", "SolarPV", "CPUTask"] {
        let model = cftcg_benchmarks::by_name(name).unwrap();
        let compiled = compile(&model).unwrap();
        let g = simcotest::generate(
            &model,
            &simcotest::SimCoTestConfig {
                budget: Duration::from_secs(15),
                seed: 0,
                ..Default::default()
            },
        );
        let r = replay_suite(&compiled, &g.suite);
        println!("{name}: {r}  ({})", g.notes);
    }
}
