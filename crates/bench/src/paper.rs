//! The paper's published numbers, for side-by-side printing in the harness
//! output and EXPERIMENTS.md.

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Model name.
    pub model: &'static str,
    /// Functionality description.
    pub functionality: &'static str,
    /// `#Branch` column.
    pub branches: u32,
    /// `#Block` column.
    pub blocks: u32,
}

/// The paper's Table 2.
pub const TABLE2: [Table2Row; 8] = [
    Table2Row {
        model: "CPUTask",
        functionality: "AutoSAR CPU task dispatch system",
        branches: 107,
        blocks: 275,
    },
    Table2Row {
        model: "AFC",
        functionality: "Engine air-fuel control system",
        branches: 35,
        blocks: 125,
    },
    Table2Row {
        model: "TCP",
        functionality: "TCP three-way handshake protocol",
        branches: 146,
        blocks: 330,
    },
    Table2Row { model: "RAC", functionality: "Robotic arm controller", branches: 179, blocks: 667 },
    Table2Row {
        model: "EVCS",
        functionality: "Electric vehicle charging system",
        branches: 89,
        blocks: 152,
    },
    Table2Row {
        model: "TWC",
        functionality: "Train wheel speed controller",
        branches: 80,
        blocks: 214,
    },
    Table2Row {
        model: "UTPC",
        functionality: "Underwater thruster power control",
        branches: 92,
        blocks: 214,
    },
    Table2Row {
        model: "SolarPV",
        functionality: "Solar PV panel output control",
        branches: 55,
        blocks: 131,
    },
];

/// One tool's row in the paper's Table 3: (DC%, CC%, MCDC%).
pub type Coverage3 = (f64, f64, f64);

/// One model's block of the paper's Table 3: SLDV, SimCoTest, CFTCG.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Model name.
    pub model: &'static str,
    /// SLDV coverage.
    pub sldv: Coverage3,
    /// SimCoTest coverage.
    pub simcotest: Coverage3,
    /// CFTCG coverage.
    pub cftcg: Coverage3,
}

/// The paper's Table 3.
pub const TABLE3: [Table3Row; 8] = [
    Table3Row {
        model: "CPUTask",
        sldv: (89.0, 72.0, 42.0),
        simcotest: (72.0, 56.0, 21.0),
        cftcg: (100.0, 100.0, 100.0),
    },
    Table3Row {
        model: "AFC",
        sldv: (67.0, 64.0, 11.0),
        simcotest: (72.0, 68.0, 11.0),
        cftcg: (83.0, 79.0, 22.0),
    },
    Table3Row {
        model: "TCP",
        sldv: (63.0, 64.0, 33.0),
        simcotest: (82.0, 74.0, 17.0),
        cftcg: (99.0, 96.0, 67.0),
    },
    Table3Row {
        model: "RAC",
        sldv: (64.0, 71.0, 12.0),
        simcotest: (71.0, 76.0, 12.0),
        cftcg: (79.0, 84.0, 38.0),
    },
    Table3Row {
        model: "EVCS",
        sldv: (80.0, 63.0, 21.0),
        simcotest: (80.0, 63.0, 21.0),
        cftcg: (92.0, 93.0, 83.0),
    },
    Table3Row {
        model: "TWC",
        sldv: (46.0, 68.0, 40.0),
        simcotest: (15.0, 57.0, 20.0),
        cftcg: (96.0, 98.0, 90.0),
    },
    Table3Row {
        model: "UTPC",
        sldv: (44.0, 59.0, 44.0),
        simcotest: (40.0, 58.0, 44.0),
        cftcg: (98.0, 100.0, 100.0),
    },
    Table3Row {
        model: "SolarPV",
        sldv: (78.0, 83.0, 57.0),
        simcotest: (74.0, 73.0, 43.0),
        cftcg: (89.0, 95.0, 86.0),
    },
];

/// The paper's headline average improvements (DC, CC, MCDC), in percent.
pub const IMPROVEMENT_VS_SLDV: Coverage3 = (47.2, 38.3, 144.5);
/// The paper's headline average improvements over SimCoTest.
pub const IMPROVEMENT_VS_SIMCOTEST: Coverage3 = (100.8, 44.6, 232.4);

/// The paper's SolarPV throughput observations (iterations per second).
pub const SOLARPV_SIMCOTEST_ITERS_PER_SEC: f64 = 6.0;
/// CFTCG's measured throughput on SolarPV in the paper.
pub const SOLARPV_CFTCG_ITERS_PER_SEC: f64 = 26_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_align_with_benchmark_names() {
        for (row, name) in TABLE2.iter().zip(cftcg_benchmarks::NAMES) {
            assert_eq!(row.model, name);
        }
        for (row, name) in TABLE3.iter().zip(cftcg_benchmarks::NAMES) {
            assert_eq!(row.model, name);
        }
    }

    #[test]
    fn headline_improvements_match_table3_recomputation() {
        // The paper's average rows should be (approximately) recomputable
        // from its own Table 3 — a sanity check on our transcription.
        let dc: Vec<f64> = TABLE3.iter().map(|r| r.cftcg.0).collect();
        let dc_sldv: Vec<f64> = TABLE3.iter().map(|r| r.sldv.0).collect();
        let imp = crate::average_improvement(&dc, &dc_sldv);
        assert!((imp - IMPROVEMENT_VS_SLDV.0).abs() < 8.0, "DC vs SLDV: {imp}");
        let mcdc: Vec<f64> = TABLE3.iter().map(|r| r.cftcg.2).collect();
        let mcdc_sim: Vec<f64> = TABLE3.iter().map(|r| r.simcotest.2).collect();
        let imp = crate::average_improvement(&mcdc, &mcdc_sim);
        assert!((imp - IMPROVEMENT_VS_SIMCOTEST.2).abs() < 25.0, "MCDC vs SimCoTest: {imp}");
    }
}
