//! Regenerates the paper's §4 speed observations on SolarPV:
//!
//! * "SimCoTest can only execute 6 iterations per second, CFTCG achieved a
//!   superfast speed of over 26,000 iterations per second" — we measure the
//!   compiled fuzzing loop, the raw interpreter, and the interpreter with
//!   the calibrated Simulink-engine overhead model;
//! * "its memory usage exceeded 12 GB" — we report the SLDV-like search's
//!   state-space growth against its budget.
//!
//! It also sweeps the sharded parallel engine over worker counts and
//! writes the machine-readable `results/BENCH_parallel.json` (workers vs
//! iterations/s, with the host's core count for context).
//!
//! ```sh
//! cargo run --release -p cftcg-bench --bin speed
//! cargo run --release -p cftcg-bench --bin speed -- --check-regress
//! ```
//!
//! Besides the flat `results/BENCH_parallel.json` snapshot (clobbered per
//! run), every run appends a timestamped record to
//! `results/history/parallel.jsonl`; `--check-regress` gates the new point
//! against the trailing median of that history (>15% throughput drop or
//! any covered-branches drop fails) and exits non-zero on regression.

use std::time::{Duration, Instant};

use cftcg_baselines::sldv;
use cftcg_bench::paper;
use cftcg_codegen::compile;
use cftcg_core::Cftcg;
use cftcg_model::Value;
use cftcg_sim::Simulator;

fn sim_rate(sim: &mut Simulator, budget: Duration) -> f64 {
    let tuple = vec![Value::I8(1), Value::I32(1000), Value::I32(1)];
    let started = Instant::now();
    let mut iters = 0u64;
    while started.elapsed() < budget {
        sim.step(&tuple).expect("solar pv steps");
        iters += 1;
    }
    iters as f64 / started.elapsed().as_secs_f64()
}

fn main() {
    let model = cftcg_benchmarks::solar_pv::model();
    let compiled = compile(&model).expect("solar pv compiles");
    let budget = cftcg_bench::budget().min(Duration::from_secs(3));

    // Compiled model-oriented fuzzing loop (mutation + coverage included).
    let tool = Cftcg::new(&model).expect("solar pv compiles");
    let generation = tool.generate(budget, 0);
    let fuzz_rate = generation.iterations_per_second();

    // Interpretive simulation, raw and with the engine-overhead model.
    let mut sim = Simulator::new(&model).expect("solar pv validates");
    let raw_rate = sim_rate(&mut sim, budget / 2);
    sim.set_engine_overhead(25_000);
    let modeled_rate = sim_rate(&mut sim, budget / 2);
    sim.set_engine_overhead(350_000);
    let calibrated_rate = sim_rate(&mut sim, budget / 2);

    println!("SolarPV iteration throughput:");
    println!("  compiled fuzzing loop : {fuzz_rate:>12.0} iterations/s");
    println!(
        "  interpreter (raw)     : {raw_rate:>12.0} iterations/s  (×{:.0} slower)",
        fuzz_rate / raw_rate
    );
    println!(
        "  interpreter (modelled): {modeled_rate:>12.0} iterations/s  (×{:.0} slower)",
        fuzz_rate / modeled_rate
    );
    println!(
        "  interpreter (paper-calibrated overhead): {calibrated_rate:>8.0} iterations/s  (×{:.0} slower)",
        fuzz_rate / calibrated_rate
    );
    println!(
        "  paper                 : {:>12.0} vs {:.0} iterations/s  (×{:.0})",
        paper::SOLARPV_CFTCG_ITERS_PER_SEC,
        paper::SOLARPV_SIMCOTEST_ITERS_PER_SEC,
        paper::SOLARPV_CFTCG_ITERS_PER_SEC / paper::SOLARPV_SIMCOTEST_ITERS_PER_SEC
    );

    // SLDV state-space growth.
    println!("\nSLDV-like bounded search on SolarPV:");
    for states_budget in [2_000usize, 20_000, 100_000] {
        let config = sldv::SldvConfig {
            state_budget: states_budget,
            budget: Duration::from_secs(5),
            ..Default::default()
        };
        let generation = sldv::generate(&model, &compiled, &config);
        println!("  budget {states_budget:>7} states -> {}", generation.notes);
    }
    println!(
        "  (the paper observed SLDV exceeding 12 GB on this model; the \
         explicit frontier grows the same way until its budget trips)"
    );

    if !parallel_sweep(&tool, budget) {
        eprintln!("speed --check-regress FAILED (see violations above)");
        std::process::exit(1);
    }
}

/// Sweeps the sharded parallel engine over worker counts on SolarPV and
/// writes `results/BENCH_parallel.json`. Numbers are honest wall-clock
/// measurements on this host — on a single-core machine the extra workers
/// time-slice one core and the sweep shows it (see `cores` in the JSON).
/// Each row carries a span-derived phase attribution (`phases`): the share
/// of attributed wall-clock spent executing inputs vs synchronizing shards
/// vs mutating, so scaling losses are diagnosable from the artifact alone.
fn parallel_sweep(tool: &Cftcg, budget: Duration) -> bool {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_workers = cftcg_bench::workers().max(4);
    let mut counts = vec![1usize, 2, 4];
    while counts.last().copied().unwrap_or(0) * 2 <= max_workers {
        counts.push(counts.last().unwrap() * 2);
    }
    counts.dedup();

    if cores == 1 {
        eprintln!(
            "\n*** WARNING: this host exposes only 1 core — the parallel sweep below \
             time-slices a single CPU, so worker counts cannot scale and the \
             throughput ratios are meaningless as a scaling signal. The sweep still \
             runs (phase shares and sync-wait attribution stay valid), but the \
             scaling regression gate is SKIPPED; re-measure on a multi-core host \
             before trusting speedup_vs_1. ***"
        );
    }
    println!("\nSharded parallel fuzzing on SolarPV ({cores} core(s) available):");
    // With CFTCG_STATS_JSONL set, each sweep row also lands in the shared
    // telemetry JSONL stream as a `bench-point` event.
    let telemetry = cftcg_bench::telemetry_from_env();
    let total = tool.compiled().map().branch_count();
    struct Row {
        workers: usize,
        rate: f64,
        execs_per_sec: f64,
        covered: usize,
        exec_pct: f64,
        sync_pct: f64,
        mutation_pct: f64,
        /// Per-worker sync-wait share of span-attributed wall-clock, so
        /// contention (one slow shard stalling every sync round) is visible
        /// from the artifact alone.
        worker_sync_pct: Vec<f64>,
    }
    let mut rows = Vec::new();
    for &workers in &counts {
        // Each row runs with its own span-profiled telemetry registry so
        // the sweep can attribute wall-clock to engine phases (execution
        // vs sync vs mutation) as the worker count grows. Span sampling
        // keeps the probe overhead in the noise.
        let spans = std::sync::Arc::new(cftcg_telemetry::Telemetry::new());
        let observed = tool.clone().with_telemetry(std::sync::Arc::clone(&spans));
        let started = Instant::now();
        let generation = if workers == 1 {
            observed.generate(budget, 0)
        } else {
            observed.generate_parallel(budget, 0, workers)
        };
        let elapsed = started.elapsed().as_secs_f64();
        let rate = generation.iterations_per_second();
        let execs_per_sec = generation.executions as f64 / elapsed.max(1e-9);
        let covered = tool.score(&generation).decision.covered;
        let snap = spans.snapshot();
        let phase = &snap.totals.spans;
        let sync_pct = phase.phase_pct(cftcg_telemetry::SpanKind::SyncWait)
            + phase.phase_pct(cftcg_telemetry::SpanKind::SyncRound);
        let exec_pct = phase.phase_pct(cftcg_telemetry::SpanKind::Execution);
        let mutation_pct = phase.phase_pct(cftcg_telemetry::SpanKind::Mutation);
        // Mutation-yield join: branch goals earned per ms spent mutating,
        // from the same span profile the phase shares come from.
        let yield_note = match snap.goals_per_mutation_ns() {
            Some(per_ns) => format!("  ({:.3} goals/ms-mutation)", per_ns * 1e6),
            None => String::new(),
        };
        println!(
            "  workers {workers:>2}: {rate:>12.0} iterations/s  ({covered} covered)  \
             [exec {exec_pct:.0}% / sync {sync_pct:.0}% / mutate {mutation_pct:.0}%]{yield_note}"
        );
        if let Some(t) = &telemetry {
            t.emit(&cftcg_telemetry::Event::BenchPoint {
                tool: format!("CFTCG x{workers}"),
                model: "SolarPV".to_string(),
                t: elapsed,
                covered,
                total,
            });
        }
        rows.push(Row {
            workers,
            rate,
            execs_per_sec,
            covered,
            exec_pct,
            sync_pct,
            mutation_pct,
            worker_sync_pct: snap.shard_sync_pct.clone(),
        });
    }
    if let Some(t) = &telemetry {
        t.flush();
    }

    let base = rows.first().map_or(1.0, |r| r.rate).max(1e-9);
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            let worker_sync =
                r.worker_sync_pct.iter().map(|p| format!("{p:.1}")).collect::<Vec<_>>().join(", ");
            format!(
                "    {{\"workers\": {}, \"iterations_per_sec\": {:.1}, \
                 \"executions_per_sec\": {:.1}, \"covered_branches\": {}, \
                 \"speedup_vs_1\": {:.3}, \"phases\": {{\"execution_pct\": {:.1}, \
                 \"sync_pct\": {:.1}, \"mutation_pct\": {:.1}, \
                 \"worker_sync_wait_pct\": [{worker_sync}]}}}}",
                r.workers,
                r.rate,
                r.execs_per_sec,
                r.covered,
                r.rate / base,
                r.exec_pct,
                r.sync_pct,
                r.mutation_pct
            )
        })
        .collect();
    // Host metadata (core count, CFTCG_WORKERS override, budget) comes from
    // the telemetry helper so every benchmark artifact self-describes the
    // machine it ran on in the same schema.
    let host = cftcg_telemetry::host_metadata_json(Some(budget.as_millis() as u64));
    let json = format!(
        "{{\n  \"model\": \"SolarPV\",\n  \"cores\": {cores},\n  \
         \"budget_ms\": {},\n  \"host\": {host},\n  \"results\": [\n{}\n  ]\n}}\n",
        budget.as_millis(),
        entries.join(",\n")
    );
    let path = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(path);
    match std::fs::write(path.join("BENCH_parallel.json"), &json) {
        Ok(()) => println!("  wrote results/BENCH_parallel.json"),
        Err(e) => eprintln!("  could not write results/BENCH_parallel.json: {e}"),
    }

    // Append-only history + the optional regression gate: per-worker-count
    // throughput ratio-compared, covered branches absolutely. On a
    // single-core host the scaling gate is skipped (loudly, above): worker
    // counts time-slicing one CPU make the per-count throughput ratios
    // noise, and a gate on noise would flake. The history still records
    // the point, flagged by the host's core count in the artifact.
    let record = cftcg_compare::HistoryRecord {
        t_unix: cftcg_bench::unix_now(),
        bench: "parallel".to_string(),
        throughput: rows.iter().map(|r| (format!("SolarPV/x{}", r.workers), r.rate)).collect(),
        coverage: rows
            .iter()
            .map(|r| (format!("SolarPV/x{}", r.workers), r.covered as f64))
            .collect(),
    };
    if cores == 1 {
        match cftcg_compare::append_history(std::path::Path::new("results"), &record) {
            Ok(path) => println!("  appended history record to {}", path.display()),
            Err(e) => eprintln!("  could not append bench history: {e}"),
        }
        if std::env::args().any(|a| a == "--check-regress") {
            eprintln!("  check-regress: SKIPPED scaling assertion (single-core host)");
        }
        return true;
    }
    cftcg_bench::record_history(&record)
}
