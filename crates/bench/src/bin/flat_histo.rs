//! Static opcode histograms of the flattened benchmark programs — the
//! profile that drives fusion decisions in the flattening back-end (which
//! adjacent op pairs are frequent enough to deserve a fused opcode) — plus
//! the native code-size stats of the JIT tier when this build carries one.
//!
//! ```sh
//! cargo run --release -p cftcg-bench --bin flat_histo [--program N] [model ...]
//! cargo run --release -p cftcg-bench --bin flat_histo -- --divergence [--width N] [model ...]
//! ```
//!
//! `--program 0` selects the instrumented flat program (the default),
//! `--program 1` the probe-stripped variant run under `NullRecorder`,
//! `--program 2` the batch tier's variant (branch/assert probes kept).
//! An out-of-range index is reported per model instead of panicking.
//!
//! `--divergence` switches to the batch-tier divergence profile instead:
//! per model, the *static* guarded-region sizes of the batch program's
//! conditional jumps (how much straight-line code a mixed jump verdict
//! parks behind a mask) and the *dynamic* per-lane divergence rate of a
//! `BatchExecutor` fed random corpus batches (`--width`, default 8) —
//! the fraction of per-lane op executions that fell off the converged
//! row path onto the masked scalar path.

use cftcg_codegen::{BatchExecutor, Engine};
use cftcg_coverage::NullLaneRecorder;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut program: usize = 0;
    let mut divergence = false;
    let mut width: usize = 8;
    let mut requested: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--program" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(n) => program = n,
                None => {
                    eprintln!("--program needs a numeric index (0=probed, 1=noprobe, 2=batch)");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else if args[i] == "--divergence" {
            divergence = true;
            i += 1;
        } else if args[i] == "--width" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => width = n,
                _ => {
                    eprintln!("--width needs a lane count >= 1");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            requested.push(args[i].clone());
            i += 1;
        }
    }

    if divergence {
        divergence_profile(width, &requested);
        return;
    }

    println!(
        "engine: best available = {} (jit {})",
        Engine::best(),
        if Engine::jit_supported() { "supported" } else { "not supported on this build/host" }
    );
    for model in cftcg_benchmarks::all() {
        let name = model.name().to_string();
        if !requested.is_empty() && !requested.iter().any(|m| m == &name) {
            continue;
        }
        let compiled = cftcg_codegen::compile(&model).unwrap();
        let (probed_len, noprobe_len) = compiled.flat_lens();
        let which = if program == 0 { "probed" } else { "noprobe" };
        let Some(histogram) = compiled.flat_histogram_at(program) else {
            println!(
                "{name}: program index {program} out of range (0=probed: {probed_len} ops, \
                 1=noprobe: {noprobe_len} ops)"
            );
            continue;
        };
        let len = if program == 0 { probed_len } else { noprobe_len };
        println!("{name} ({which} program, {len} flat ops):");
        for (op, count) in histogram {
            println!("  {op:<18} {count}");
        }
        println!("  top adjacent pairs:");
        let pairs = compiled.flat_pair_histogram_at(program).expect("index validated above");
        for (pair, count) in &pairs[..pairs.len().min(12)] {
            println!("  {pair:<32} {count}");
        }
        match compiled.jit_stats() {
            Some(stats) => println!(
                "  jit: probed {} blocks / {} bytes, noprobe {} blocks / {} bytes",
                stats.probed_blocks,
                stats.probed_code_bytes,
                stats.noprobe_blocks,
                stats.noprobe_code_bytes
            ),
            None => println!("  jit: unavailable (feature disabled or unsupported host)"),
        }
    }
}

/// Deterministic splitmix64 stream — enough randomness for corpus-shaped
/// input bytes without pulling `rand` into the bin's dependency set.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Corpus-shaped byte: biased towards the branch-flipping extremes the
    /// fuzzer's mutators favour (zeros, 0xFF, small values), so the
    /// dynamic divergence rate reflects fuzzing batches rather than white
    /// noise.
    fn byte(&mut self) -> u8 {
        match self.next() % 4 {
            0 => 0,
            1 => 0xFF,
            2 => (self.next() % 4) as u8,
            _ => (self.next() & 0xFF) as u8,
        }
    }
}

/// The `--divergence` mode: static guarded-region sizes of the batch
/// program's conditional jumps plus the measured per-lane divergence rate
/// of a random-batch run, per benchmark model.
fn divergence_profile(width: usize, requested: &[String]) {
    const BATCH_PROGRAM: usize = 2;
    const ROUNDS: usize = 24;
    const TICKS: usize = 32;

    println!(
        "Batch-tier divergence profile (width {width}, {ROUNDS} random batches x {TICKS} ticks):"
    );
    for model in cftcg_benchmarks::all() {
        let name = model.name().to_string();
        if !requested.is_empty() && !requested.iter().any(|m| m == &name) {
            continue;
        }
        let compiled = cftcg_codegen::compile(&model).unwrap();
        let mut regions =
            compiled.flat_guard_regions(BATCH_PROGRAM).expect("batch program always exists");
        let ops = compiled.flat_lens().1.max(1);
        let guards = regions.len();
        regions.sort_unstable();
        let guarded: usize = regions.iter().sum();
        println!("{name}:");
        if guards == 0 {
            println!("  static : no conditional jumps — lanes cannot diverge");
        } else {
            println!(
                "  static : {guards} conditional guards, region sizes min {} / median {} / \
                 max {} ops ({guarded} guarded op-slots, nested regions counted per guard, \
                 vs {ops} flat ops)",
                regions[0],
                regions[guards / 2],
                regions[guards - 1],
            );
        }

        // Dynamic: random corpus-shaped batches through the real executor.
        let tuple = compiled.layout().tuple_size().max(1);
        let mut vm = BatchExecutor::new(&compiled, width);
        let mut rng = SplitMix(0xC0FF_EE00 ^ name.len() as u64);
        let mut bytes = vec![0u8; tuple];
        for _ in 0..ROUNDS {
            // Fresh cases each round: begin() resets state like the fuzz
            // loop does between batches.
            vm.begin();
            for _ in 0..TICKS {
                for lane in 0..width {
                    for b in bytes.iter_mut() {
                        *b = rng.byte();
                    }
                    vm.load_tuple(lane, &bytes);
                }
                vm.step_tick(&mut NullLaneRecorder);
            }
        }
        let stats = vm.stats();
        let per_tick = stats.divergences as f64 / (stats.ticks.max(1)) as f64;
        let masked_total = stats.masked_dispatches + stats.skipped_dispatches;
        let masked_share = if masked_total == 0 {
            0.0
        } else {
            100.0 * stats.masked_dispatches as f64 / masked_total as f64
        };
        println!(
            "  dynamic: {:.2}% of per-lane op executions on the masked scalar path \
             ({:.2} divergences/tick; masked dispatch occupancy {masked_share:.0}%)",
            100.0 * stats.scalar_lane_fraction(width),
            per_tick,
        );
    }
}
