//! Static opcode histograms of the flattened benchmark programs — the
//! profile that drives fusion decisions in the flattening back-end (which
//! adjacent op pairs are frequent enough to deserve a fused opcode).
//!
//! ```sh
//! cargo run --release -p cftcg-bench --bin flat_histo [model ...]
//! ```

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).collect();
    for model in cftcg_benchmarks::all() {
        let name = model.name().to_string();
        if !requested.is_empty() && !requested.iter().any(|m| m == &name) {
            continue;
        }
        let compiled = cftcg_codegen::compile(&model).unwrap();
        println!("{name} ({} flat ops):", compiled.flat_lens().0);
        for (op, count) in compiled.flat_histogram() {
            println!("  {op:<18} {count}");
        }
        println!("  top adjacent pairs:");
        let pairs = compiled.flat_pair_histogram();
        for (pair, count) in &pairs[..pairs.len().min(12)] {
            println!("  {pair:<32} {count}");
        }
    }
}
