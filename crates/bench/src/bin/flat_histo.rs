//! Static opcode histograms of the flattened benchmark programs — the
//! profile that drives fusion decisions in the flattening back-end (which
//! adjacent op pairs are frequent enough to deserve a fused opcode) — plus
//! the native code-size stats of the JIT tier when this build carries one.
//!
//! ```sh
//! cargo run --release -p cftcg-bench --bin flat_histo [--program N] [model ...]
//! ```
//!
//! `--program 0` selects the instrumented flat program (the default),
//! `--program 1` the probe-stripped variant run under `NullRecorder`.
//! An out-of-range index is reported per model instead of panicking.

use cftcg_codegen::Engine;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut program: usize = 0;
    let mut requested: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--program" {
            match args.get(i + 1).and_then(|v| v.parse().ok()) {
                Some(n) => program = n,
                None => {
                    eprintln!("--program needs a numeric index (0=probed, 1=noprobe)");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            requested.push(args[i].clone());
            i += 1;
        }
    }

    println!(
        "engine: best available = {} (jit {})",
        Engine::best(),
        if Engine::jit_supported() { "supported" } else { "not supported on this build/host" }
    );
    for model in cftcg_benchmarks::all() {
        let name = model.name().to_string();
        if !requested.is_empty() && !requested.iter().any(|m| m == &name) {
            continue;
        }
        let compiled = cftcg_codegen::compile(&model).unwrap();
        let (probed_len, noprobe_len) = compiled.flat_lens();
        let which = if program == 0 { "probed" } else { "noprobe" };
        let Some(histogram) = compiled.flat_histogram_at(program) else {
            println!(
                "{name}: program index {program} out of range (0=probed: {probed_len} ops, \
                 1=noprobe: {noprobe_len} ops)"
            );
            continue;
        };
        let len = if program == 0 { probed_len } else { noprobe_len };
        println!("{name} ({which} program, {len} flat ops):");
        for (op, count) in histogram {
            println!("  {op:<18} {count}");
        }
        println!("  top adjacent pairs:");
        let pairs = compiled.flat_pair_histogram_at(program).expect("index validated above");
        for (pair, count) in &pairs[..pairs.len().min(12)] {
            println!("  {pair:<32} {count}");
        }
        match compiled.jit_stats() {
            Some(stats) => println!(
                "  jit: probed {} blocks / {} bytes, noprobe {} blocks / {} bytes",
                stats.probed_blocks,
                stats.probed_code_bytes,
                stats.noprobe_blocks,
                stats.noprobe_code_bytes
            ),
            None => println!("  jit: unavailable (feature disabled or unsupported host)"),
        }
    }
}
