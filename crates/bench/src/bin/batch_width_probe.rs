//! Width sweep for the batched SoA tier: cases/s at each candidate batch
//! width next to the jit baseline, per bundled benchmark. A tuning tool —
//! the default width in `cftcg_codegen::DEFAULT_BATCH_WIDTH` is justified
//! by this sweep.

use std::time::{Duration, Instant};

use cftcg_codegen::{compile, BatchExecutor, CompiledModel, Executor, TestCase};
use cftcg_coverage::{LaneBitmap, NullRecorder};

const CASE_TICKS: usize = 64;

fn case_for(compiled: &CompiledModel, seed: u64) -> TestCase {
    let size = compiled.layout().tuple_size().max(1);
    let mut x = seed | 1;
    let bytes = (0..size * CASE_TICKS)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    TestCase::new(bytes)
}

fn main() {
    let widths = [4usize, 8, 16, 32, 64];
    let slice = Duration::from_millis(300);
    println!("{:>10} {:>10} | widths {widths:?}", "model", "jit");
    for model in cftcg_benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let mut jit = Executor::new_jit(&compiled);
        let case = case_for(&compiled, 0x5EED_CF7C);
        let mut best_jit = 0.0f64;
        for _ in 0..3 {
            let started = Instant::now();
            let mut n = 0u64;
            while started.elapsed() < slice {
                jit.run_case(&case, &mut NullRecorder);
                n += 1;
            }
            best_jit = best_jit.max(n as f64 / started.elapsed().as_secs_f64());
        }
        print!("{:>10} {:>10.0} |", model.name(), best_jit);
        for &w in &widths {
            let cases: Vec<TestCase> =
                (0..w).map(|i| case_for(&compiled, 0x5EED_CF7C ^ ((i as u64) << 32))).collect();
            let refs: Vec<&[u8]> = cases.iter().map(|c| c.bytes.as_slice()).collect();
            let mut batch = BatchExecutor::new(&compiled, w);
            let mut lanes = LaneBitmap::new(compiled.map().branch_count(), w);
            let mut best = 0.0f64;
            for _ in 0..3 {
                let started = Instant::now();
                let mut n = 0u64;
                while started.elapsed() < slice {
                    lanes.clear();
                    batch.run_cases(&refs, usize::MAX, &mut lanes);
                    n += refs.len() as u64;
                }
                best = best.max(n as f64 / started.elapsed().as_secs_f64());
            }
            let st = batch.stats();
            let per_tick = |n: u64| n as f64 / st.ticks.max(1) as f64;
            print!(
                " w{w}: {:>8.0} (x{:.2}, {:.1}%sc, c/t {:.0}, m/t {:.0}, s/t {:.0}, dv/t {:.1})",
                best,
                best / best_jit,
                100.0 * st.scalar_lane_fraction(w),
                per_tick(st.converged_ops),
                per_tick(st.masked_dispatches),
                per_tick(st.skipped_dispatches),
                per_tick(st.divergences),
            );
        }
        // Identical-case batch at width 8: zero divergence by construction,
        // isolating the converged path's cost from the mask machinery.
        {
            let case = case_for(&compiled, 0x5EED_CF7C);
            let refs: Vec<&[u8]> = (0..8).map(|_| case.bytes.as_slice()).collect();
            let mut batch = BatchExecutor::new(&compiled, 8);
            let mut lanes = LaneBitmap::new(compiled.map().branch_count(), 8);
            let mut best = 0.0f64;
            for _ in 0..3 {
                let started = Instant::now();
                let mut n = 0u64;
                while started.elapsed() < slice {
                    lanes.clear();
                    batch.run_cases(&refs, usize::MAX, &mut lanes);
                    n += refs.len() as u64;
                }
                best = best.max(n as f64 / started.elapsed().as_secs_f64());
            }
            print!(" | same8: {:>8.0} (x{:.2})", best, best / best_jit);
        }
        // Load-only pass at width 8: begin + per-tick tuple decode with no
        // execution, costing out the SoA transpose overhead alone.
        {
            let case = case_for(&compiled, 0x5EED_CF7C);
            let layout = compiled.layout();
            let tuple = layout.tuple_size();
            let ticks = layout.tuple_count(&case.bytes);
            let mut batch = BatchExecutor::new(&compiled, 8);
            let started = Instant::now();
            let mut n = 0u64;
            while started.elapsed() < slice {
                batch.begin();
                for t in 0..ticks {
                    for lane in 0..8 {
                        batch.load_tuple(lane, &case.bytes[t * tuple..(t + 1) * tuple]);
                    }
                }
                n += 8;
            }
            let rate = n as f64 / started.elapsed().as_secs_f64();
            print!(" load-only: {rate:>8.0}");
        }
        println!();
    }
}
