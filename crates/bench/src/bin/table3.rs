//! Regenerates the paper's **Table 3**: Decision / Condition / MCDC
//! coverage of SLDV, SimCoTest, and CFTCG on all eight benchmark models,
//! plus the "Average Improvement" rows.
//!
//! The paper runs every tool for 24 h ("coverage reached a stable state
//! within an hour"); this harness budget-scales via `CFTCG_BUDGET_MS`
//! (default 3000 ms per tool per model) and averages `CFTCG_REPEATS` seeds
//! (default 3; paper: 10).
//!
//! ```sh
//! CFTCG_BUDGET_MS=3000 CFTCG_REPEATS=3 cargo run --release -p cftcg-bench --bin table3
//! ```

use cftcg_bench::{average_improvement, averaged_coverage, paper, Tool};

fn main() {
    let budget = cftcg_bench::budget();
    let repeats = cftcg_bench::repeats();
    println!("Table 3: coverage comparison ({budget:?} per tool per model, {repeats} repeats)\n");
    println!(
        "{:<9} {:<10} {:>5} {:>5} {:>5}   paper: {:>5} {:>5} {:>5}",
        "Model", "Tool", "DC%", "CC%", "MCDC%", "DC%", "CC%", "MCDC%"
    );

    let tools = [Tool::Sldv, Tool::SimCoTest, Tool::Cftcg];
    let mut measured: Vec<[(f64, f64, f64); 3]> = Vec::new();
    for ((model, compiled), row) in
        cftcg_bench::compiled_benchmarks().into_iter().zip(paper::TABLE3)
    {
        let mut per_tool = [(0.0, 0.0, 0.0); 3];
        for (t, &tool) in tools.iter().enumerate() {
            per_tool[t] = averaged_coverage(tool, &model, &compiled, budget, repeats);
            let paper_cov = match tool {
                Tool::Sldv => row.sldv,
                Tool::SimCoTest => row.simcotest,
                _ => row.cftcg,
            };
            println!(
                "{:<9} {:<10} {:>5.0} {:>5.0} {:>5.0}          {:>5.0} {:>5.0} {:>5.0}",
                if t == 0 { model.name() } else { "" },
                tool.name(),
                per_tool[t].0,
                per_tool[t].1,
                per_tool[t].2,
                paper_cov.0,
                paper_cov.1,
                paper_cov.2,
            );
        }
        measured.push(per_tool);
    }

    // Average-improvement rows, like the paper's footer.
    let col = |tool: usize, metric: usize| -> Vec<f64> {
        measured
            .iter()
            .map(|m| match metric {
                0 => m[tool].0,
                1 => m[tool].1,
                _ => m[tool].2,
            })
            .collect()
    };
    println!("\nAverage improvement of CFTCG (ours, paper):");
    for (name, baseline, paper_imp) in [
        ("vs SLDV", 0usize, paper::IMPROVEMENT_VS_SLDV),
        ("vs SimCoTest", 1, paper::IMPROVEMENT_VS_SIMCOTEST),
    ] {
        let dc = average_improvement(&col(2, 0), &col(baseline, 0));
        let cc = average_improvement(&col(2, 1), &col(baseline, 1));
        let mcdc = average_improvement(&col(2, 2), &col(baseline, 2));
        println!(
            "  {name:<13} DC +{dc:.1}% (paper +{:.1}%)  CC +{cc:.1}% (paper +{:.1}%)  \
             MCDC +{mcdc:.1}% (paper +{:.1}%)",
            paper_imp.0, paper_imp.1, paper_imp.2
        );
    }
}
