//! Regenerates the paper's **Figure 7**: Decision Coverage (%) versus time
//! (s) for SLDV, SimCoTest, and CFTCG on each benchmark model, as CSV
//! series (one stanza per model) plus a coarse ASCII sparkline.
//!
//! Pass `--workers N` (or set `CFTCG_WORKERS`) to run the CFTCG series
//! with the sharded parallel engine; the baselines stay sequential.
//!
//! ```sh
//! CFTCG_BUDGET_MS=3000 cargo run --release -p cftcg-bench --bin fig7
//! ```

use cftcg_baselines::coverage_series;
use cftcg_bench::{run_tool_with_workers, Tool};
use cftcg_telemetry::Event;

fn main() {
    let budget = cftcg_bench::budget();
    let workers = cftcg_bench::workers();
    // With CFTCG_STATS_JSONL set, every series point is also logged as a
    // `bench-point` event through the shared telemetry sink, so figure
    // tooling can consume the same JSONL stream as fuzzing campaigns.
    let telemetry = cftcg_bench::telemetry_from_env();
    let tools = [Tool::Sldv, Tool::SimCoTest, Tool::Cftcg];
    for (model, compiled) in cftcg_bench::compiled_benchmarks() {
        let branch_count = compiled.map().branch_count() as f64;
        println!("# model: {} ({} branches)", model.name(), branch_count);
        println!("tool,time_s,decision_coverage_pct");
        let mut finals = Vec::new();
        for tool in tools {
            let generation = run_tool_with_workers(tool, &model, &compiled, budget, 0, workers);
            let series = coverage_series(&compiled, &generation);
            for (at, covered) in &series {
                println!(
                    "{},{:.3},{:.1}",
                    tool.name(),
                    at.as_secs_f64(),
                    100.0 * *covered as f64 / branch_count
                );
                if let Some(t) = &telemetry {
                    t.emit(&Event::BenchPoint {
                        tool: tool.name().to_string(),
                        model: model.name().to_string(),
                        t: at.as_secs_f64(),
                        covered: *covered,
                        total: branch_count as usize,
                    });
                }
            }
            finals.push((tool, series.last().map_or(0, |&(_, c)| c)));
        }
        print!("# finals:");
        for (tool, covered) in finals {
            print!(" {}={:.0}%", tool.name(), 100.0 * covered as f64 / branch_count);
        }
        println!("\n");
    }
    if let Some(t) = &telemetry {
        t.flush();
    }
}
