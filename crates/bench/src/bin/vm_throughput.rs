//! Benchmarks the execution tiers — reference tree walker, optimized flat
//! VM, and (where the build carries it) the native x86-64 JIT — on every
//! bundled benchmark model and writes the machine-readable
//! `results/BENCH_vm.json`: `run_case` iterations/s per engine, the
//! speedups, and the mid-end's per-pass instruction/register reductions.
//!
//! ```sh
//! cargo run --release -p cftcg-bench --bin vm_throughput
//! cargo run --release -p cftcg-bench --bin vm_throughput -- --check
//! ```
//!
//! `--check` additionally enforces the performance contracts and exits
//! nonzero when violated: the flat VM must be at least as fast as the
//! reference walker on *every* model, and at least 2× on SolarPV (the
//! paper's throughput showcase model); when the JIT tier is live, it must
//! additionally be at least as fast as the flat VM on every model and at
//! least 2× on SolarPV. On hosts without the JIT (non-x86-64, or a
//! `--no-default-features` build) the JIT gates are skipped gracefully.
//! The batched SoA tier is always measured (8 distinct cases per pass,
//! fuzz-shaped lane bitmaps) and gated inside its design envelope: on
//! convergent batches (measured scalar-lane fraction ≤ 10%) it must beat
//! the single-case flat VM, and by ≥ 1.5× on SolarPV. The single-case JIT
//! is *not* the batch baseline — native code has no dispatch for the SoA
//! transpose to amortize, and measured jit-vs-batch ratios (recorded per
//! run in the JSON) show the JIT ahead on every bundled model.
//!
//! Besides the flat `results/BENCH_vm.json` snapshot (clobbered per run),
//! every run appends a timestamped record to `results/history/vm.jsonl`;
//! `--check-regress` gates the new point against the trailing median of
//! that history (>15% throughput drop fails) and exits non-zero on
//! regression.

use std::time::{Duration, Instant};

use cftcg_codegen::{compile, BatchExecutor, CompiledModel, Engine, Executor, TestCase};
use cftcg_coverage::{BranchBitmap, LaneBitmap, NullLaneRecorder, NullRecorder};

/// Lanes measured for the batch tier — the fuzz loop's default width.
const BATCH_WIDTH: usize = cftcg_codegen::DEFAULT_BATCH_WIDTH;

/// Ticks per measured case: long enough that per-case reset cost is noise.
const CASE_TICKS: usize = 64;

/// Deterministic pseudo-random case bytes (an xorshift; no RNG dependency
/// in the binary target, and identical streams on every host).
fn case_for(compiled: &CompiledModel, seed: u64) -> TestCase {
    let size = compiled.layout().tuple_size().max(1);
    let mut x = seed | 1;
    let bytes = (0..size * CASE_TICKS)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    TestCase::new(bytes)
}

/// Measurement slices per engine. Engines are measured round-robin (one
/// slice each, repeated) and each engine reports its *best* slice: a
/// transient host slowdown then hits all engines near-equally and the
/// affected slices are discarded symmetrically, stabilizing the ratio.
const ROUNDS: u32 = 4;

/// Whole-case iterations/s of one executor over one `slice` of wall-clock.
fn slice_rate<R: cftcg_coverage::Recorder>(
    exec: &mut Executor<'_>,
    case: &TestCase,
    recorder: &mut R,
    slice: Duration,
) -> f64 {
    let started = Instant::now();
    let mut cases = 0u64;
    while started.elapsed() < slice {
        exec.run_case(case, recorder);
        cases += 1;
    }
    cases as f64 / started.elapsed().as_secs_f64()
}

/// Cases/s of the batch tier over `width` distinct cases per pass, with the
/// per-batch bitmap clear the fuzz loop pays billed inside the loop.
fn batch_slice_rate(
    batch: &mut BatchExecutor<'_>,
    cases: &[&[u8]],
    lanes: &mut LaneBitmap,
    slice: Duration,
) -> f64 {
    let started = Instant::now();
    let mut n = 0u64;
    while started.elapsed() < slice {
        lanes.clear();
        batch.run_cases(cases, usize::MAX, lanes);
        n += cases.len() as u64;
    }
    n as f64 / started.elapsed().as_secs_f64()
}

/// Cases/s of the batch tier with all probes discarded (replay-shaped).
fn batch_noprobe_slice_rate(
    batch: &mut BatchExecutor<'_>,
    cases: &[&[u8]],
    slice: Duration,
) -> f64 {
    let started = Instant::now();
    let mut n = 0u64;
    while started.elapsed() < slice {
        batch.run_cases(cases, usize::MAX, &mut NullLaneRecorder);
        n += cases.len() as u64;
    }
    n as f64 / started.elapsed().as_secs_f64()
}

struct Row {
    model: &'static str,
    reference: f64,
    flat: f64,
    /// Best JIT slice, or `None` when the tier is unavailable on this build.
    jit: Option<f64>,
    batch: f64,
    /// Measured per-lane scalar (masked-path) fraction of the batch run —
    /// deterministic for the fixed case seeds, so gate classification by
    /// divergence is stable across runs.
    batch_scalar: f64,
}

/// Scalar-lane fraction above which a model counts as divergence-heavy and
/// leaves the batch tier's design envelope (convergent batches): the gate
/// does not require batch >= flat there, only the JSON records it.
const BATCH_CONVERGENT_SCALAR_MAX: f64 = 0.10;

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let budget = cftcg_bench::budget().min(Duration::from_secs(2)) / 3;

    println!("run_case throughput, reference tree walker vs optimized flat VM:");
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for model in cftcg_benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let case = case_for(&compiled, 0x5EED_CF7C);
        let branches = compiled.map().branch_count();

        let mut reference = Executor::new_reference(&compiled);
        let mut flat = Executor::new(&compiled);
        let mut noprobe = Executor::new(&compiled);
        let mut jit = Executor::new_jit(&compiled);
        let mut jit_noprobe = Executor::new_jit(&compiled);
        // `new_jit` silently falls back to the flat VM when the tier is
        // unavailable; measure it only when native code actually runs.
        let jit_live = jit.engine() == Engine::Jit;
        // The batch tier runs `BATCH_WIDTH` *distinct* cases per pass —
        // identical lanes would never diverge and flatter the measurement.
        let mut batch = BatchExecutor::new(&compiled, BATCH_WIDTH);
        let batch_cases: Vec<TestCase> =
            (0..BATCH_WIDTH as u64).map(|i| case_for(&compiled, 0x5EED_CF7C ^ (i << 32))).collect();
        let lane_cases: Vec<&[u8]> = batch_cases.iter().map(|c| c.bytes.as_slice()).collect();
        let mut lane_bitmap = LaneBitmap::new(branches, BATCH_WIDTH);
        // Warm-up passes so lazily-faulted pages don't bill the first slice.
        reference.run_case(&case, &mut BranchBitmap::new(branches));
        flat.run_case(&case, &mut BranchBitmap::new(branches));
        noprobe.run_case(&case, &mut NullRecorder);
        if jit_live {
            jit.run_case(&case, &mut BranchBitmap::new(branches));
            jit_noprobe.run_case(&case, &mut NullRecorder);
        }
        batch.run_cases(&lane_cases, usize::MAX, &mut lane_bitmap);

        let slice = budget / ROUNDS;
        let (mut ref_rate, mut flat_rate, mut noprobe_rate) = (0.0f64, 0.0f64, 0.0f64);
        let (mut jit_rate, mut jit_noprobe_rate) = (0.0f64, 0.0f64);
        let (mut batch_rate, mut batch_noprobe_rate) = (0.0f64, 0.0f64);
        for _ in 0..ROUNDS {
            ref_rate = ref_rate.max(slice_rate(
                &mut reference,
                &case,
                &mut BranchBitmap::new(branches),
                slice,
            ));
            flat_rate = flat_rate.max(slice_rate(
                &mut flat,
                &case,
                &mut BranchBitmap::new(branches),
                slice,
            ));
            noprobe_rate =
                noprobe_rate.max(slice_rate(&mut noprobe, &case, &mut NullRecorder, slice));
            if jit_live {
                jit_rate = jit_rate.max(slice_rate(
                    &mut jit,
                    &case,
                    &mut BranchBitmap::new(branches),
                    slice,
                ));
                jit_noprobe_rate = jit_noprobe_rate.max(slice_rate(
                    &mut jit_noprobe,
                    &case,
                    &mut NullRecorder,
                    slice,
                ));
            }
            batch_rate =
                batch_rate.max(batch_slice_rate(&mut batch, &lane_cases, &mut lane_bitmap, slice));
            batch_noprobe_rate =
                batch_noprobe_rate.max(batch_noprobe_slice_rate(&mut batch, &lane_cases, slice));
        }
        let batch_stats = batch.stats();

        let stats = compiled.opt_stats();
        let (flat_ops, noprobe_ops) = compiled.flat_lens();
        let name: &'static str = Box::leak(model.name().to_string().into_boxed_str());
        let jit_col = if jit_live {
            format!(" -> jit {jit_rate:>9.0} (x{:.2})", jit_rate / flat_rate)
        } else {
            String::new()
        };
        let batch_base = if jit_live { jit_rate } else { flat_rate };
        let batch_col = format!(
            " -> batch {batch_rate:>9.0} (x{:.2}, {:.1}% scalar)",
            batch_rate / batch_base,
            100.0 * batch_stats.scalar_lane_fraction(BATCH_WIDTH),
        );
        println!(
            "  {name:>8}: {ref_rate:>9.0} -> {flat_rate:>9.0} cases/s (x{:.2}){jit_col}{batch_col}, \
             noprobe {noprobe_rate:>9.0}; instrs {} -> {} (lvn {}, dce -{}), regs {} -> {}",
            flat_rate / ref_rate,
            stats.instrs_before,
            stats.instrs_after_dce,
            stats.instrs_after_lvn,
            stats.instrs_removed,
            stats.regs_before,
            stats.regs_after,
        );
        let jit_fields = if jit_live {
            format!(
                "\"jit_cases_per_sec\": {jit_rate:.1}, \
                 \"jit_noprobe_cases_per_sec\": {jit_noprobe_rate:.1}, \
                 \"jit_speedup\": {:.3}, ",
                jit_rate / flat_rate
            )
        } else {
            "\"jit_cases_per_sec\": null, \"jit_noprobe_cases_per_sec\": null, \
             \"jit_speedup\": null, "
                .to_string()
        };
        let batch_fields = format!(
            "\"batch_cases_per_sec\": {batch_rate:.1}, \
             \"batch_noprobe_cases_per_sec\": {batch_noprobe_rate:.1}, \
             \"batch_speedup\": {:.3}, \"batch_width\": {BATCH_WIDTH}, \
             \"batch_scalar_fraction\": {:.4}, \"batch_divergences\": {}, ",
            batch_rate / batch_base,
            batch_stats.scalar_lane_fraction(BATCH_WIDTH),
            batch_stats.divergences,
        );
        entries.push(format!(
            "    {{\"model\": \"{name}\", \"reference_cases_per_sec\": {ref_rate:.1}, \
             \"flat_cases_per_sec\": {flat_rate:.1}, \"noprobe_cases_per_sec\": {noprobe_rate:.1}, \
             {jit_fields}{batch_fields}\
             \"speedup\": {:.3}, \"case_ticks\": {CASE_TICKS}, \
             \"opt\": {{\"instrs_before\": {}, \"instrs_after_lvn\": {}, \
             \"instrs_after_dce\": {}, \"instrs_removed\": {}, \"consts_folded\": {}, \
             \"branches_folded\": {}, \"cse_hits\": {}, \"operands_forwarded\": {}, \
             \"bools_reduced\": {}, \"regs_before\": {}, \"regs_after\": {}, \
             \"flat_ops\": {flat_ops}, \"flat_noprobe_ops\": {noprobe_ops}}}}}",
            flat_rate / ref_rate,
            stats.instrs_before,
            stats.instrs_after_lvn,
            stats.instrs_after_dce,
            stats.instrs_removed,
            stats.consts_folded,
            stats.branches_folded,
            stats.cse_hits,
            stats.operands_forwarded,
            stats.bools_reduced,
            stats.regs_before,
            stats.regs_after,
        ));
        rows.push(Row {
            model: name,
            reference: ref_rate,
            flat: flat_rate,
            jit: jit_live.then_some(jit_rate),
            batch: batch_rate,
            batch_scalar: batch_stats.scalar_lane_fraction(BATCH_WIDTH),
        });
    }

    let host = cftcg_telemetry::host_metadata_json(Some(budget.as_millis() as u64));
    let json = format!(
        "{{\n  \"bench\": \"vm_throughput\",\n  \"budget_ms_per_engine\": {},\n  \
         \"engine_best\": \"{}\",\n  \"jit_available\": {},\n  \
         \"host\": {host},\n  \"results\": [\n{}\n  ]\n}}\n",
        budget.as_millis(),
        Engine::best().name(),
        Engine::jit_supported(),
        entries.join(",\n")
    );
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    match std::fs::write(dir.join("BENCH_vm.json"), &json) {
        Ok(()) => println!("  wrote results/BENCH_vm.json"),
        Err(e) => eprintln!("  could not write results/BENCH_vm.json: {e}"),
    }

    // Append-only history + the optional `--check-regress` gate: per-model
    // per-engine throughput. No coverage axis here — this bench measures
    // raw executor speed only.
    let mut throughput = Vec::new();
    for row in &rows {
        throughput.push((format!("{}/ref", row.model), row.reference));
        throughput.push((format!("{}/flat", row.model), row.flat));
        if let Some(jit) = row.jit {
            throughput.push((format!("{}/jit", row.model), jit));
        }
        throughput.push((format!("{}/batch", row.model), row.batch));
    }
    let record = cftcg_compare::HistoryRecord {
        t_unix: cftcg_bench::unix_now(),
        bench: "vm".to_string(),
        throughput,
        coverage: Vec::new(),
    };
    if !cftcg_bench::record_history(&record) {
        eprintln!("vm_throughput --check-regress FAILED (see violations above)");
        std::process::exit(1);
    }

    if check {
        let mut violations = Vec::new();
        for row in &rows {
            if row.flat < row.reference {
                violations.push(format!(
                    "{}: flat VM slower than reference ({:.0} vs {:.0} cases/s)",
                    row.model, row.flat, row.reference
                ));
            }
        }
        if let Some(solar) = rows.iter().find(|r| r.model == "SolarPV") {
            let speedup = solar.flat / solar.reference;
            if speedup < 2.0 {
                violations.push(format!(
                    "SolarPV: optimized VM only x{speedup:.2} over the reference (need >= 2.0)"
                ));
            }
        } else {
            violations.push("SolarPV missing from the benchmark sweep".to_string());
        }
        let jit_checked = rows.iter().any(|r| r.jit.is_some());
        if jit_checked {
            for row in &rows {
                let Some(jit) = row.jit else { continue };
                if jit < row.flat {
                    violations.push(format!(
                        "{}: JIT slower than flat VM ({:.0} vs {:.0} cases/s)",
                        row.model, jit, row.flat
                    ));
                }
            }
            if let Some(solar) = rows.iter().find(|r| r.model == "SolarPV") {
                if let Some(jit) = solar.jit {
                    let speedup = jit / solar.flat;
                    if speedup < 2.0 {
                        violations.push(format!(
                            "SolarPV: JIT only x{speedup:.2} over the flat VM (need >= 2.0)"
                        ));
                    }
                }
            }
        } else {
            println!(
                "vm_throughput --check: JIT tier unavailable on this build/host, \
                 skipping the jit >= flat gates"
            );
        }
        // Batch gates. The batch tier amortizes *interpreter* dispatch
        // over the lanes; the single-case JIT has no dispatch to amortize,
        // so native code stays ahead of the interpreted batch on every
        // bundled model (x0.3-1.0 measured on this host — the jit columns
        // in BENCH_vm.json record it run by run). What the tier must
        // deliver — and what these gates enforce — is its design envelope:
        // convergent batches (measured scalar-lane fraction <= 10%, a
        // deterministic property of the fixed case seeds) must beat the
        // single-case flat VM on every model, and by >= 1.5x on SolarPV
        // (fully convergent, the paper's throughput showcase). Divergent
        // models fall back to measurement-only: the masked path keeps them
        // correct, not fast, and the fuzz loop's default engine remains
        // `Engine::best()` regardless.
        for row in &rows {
            if row.batch_scalar <= BATCH_CONVERGENT_SCALAR_MAX && row.batch < row.flat {
                violations.push(format!(
                    "{}: batch tier slower than the flat VM on a convergent batch \
                     ({:.0} vs {:.0} cases/s, {:.1}% scalar lanes)",
                    row.model,
                    row.batch,
                    row.flat,
                    100.0 * row.batch_scalar
                ));
            }
        }
        if let Some(solar) = rows.iter().find(|r| r.model == "SolarPV") {
            let speedup = solar.batch / solar.flat;
            if speedup < 1.5 {
                violations.push(format!(
                    "SolarPV: batch tier only x{speedup:.2} over the flat VM (need >= 1.5)"
                ));
            }
        }
        if !violations.is_empty() {
            eprintln!("vm_throughput --check FAILED:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        if jit_checked {
            println!(
                "vm_throughput --check passed: flat >= reference and jit >= flat \
                 everywhere, batch >= flat on convergent batches; SolarPV >= 2x \
                 (flat, jit) and batch >= 1.5x flat"
            );
        } else {
            println!(
                "vm_throughput --check passed: flat >= reference everywhere, batch >= \
                 flat on convergent batches; SolarPV >= 2x (flat) and batch >= 1.5x flat"
            );
        }
    }
}
