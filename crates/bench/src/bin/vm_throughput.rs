//! Benchmarks the execution tiers — reference tree walker, optimized flat
//! VM, and (where the build carries it) the native x86-64 JIT — on every
//! bundled benchmark model and writes the machine-readable
//! `results/BENCH_vm.json`: `run_case` iterations/s per engine, the
//! speedups, and the mid-end's per-pass instruction/register reductions.
//!
//! ```sh
//! cargo run --release -p cftcg-bench --bin vm_throughput
//! cargo run --release -p cftcg-bench --bin vm_throughput -- --check
//! ```
//!
//! `--check` additionally enforces the performance contracts and exits
//! nonzero when violated: the flat VM must be at least as fast as the
//! reference walker on *every* model, and at least 2× on SolarPV (the
//! paper's throughput showcase model); when the JIT tier is live, it must
//! additionally be at least as fast as the flat VM on every model and at
//! least 2× on SolarPV. On hosts without the JIT (non-x86-64, or a
//! `--no-default-features` build) the JIT gates are skipped gracefully.
//!
//! Besides the flat `results/BENCH_vm.json` snapshot (clobbered per run),
//! every run appends a timestamped record to `results/history/vm.jsonl`;
//! `--check-regress` gates the new point against the trailing median of
//! that history (>15% throughput drop fails) and exits non-zero on
//! regression.

use std::time::{Duration, Instant};

use cftcg_codegen::{compile, CompiledModel, Engine, Executor, TestCase};
use cftcg_coverage::{BranchBitmap, NullRecorder};

/// Ticks per measured case: long enough that per-case reset cost is noise.
const CASE_TICKS: usize = 64;

/// Deterministic pseudo-random case bytes (an xorshift; no RNG dependency
/// in the binary target, and identical streams on every host).
fn case_for(compiled: &CompiledModel, seed: u64) -> TestCase {
    let size = compiled.layout().tuple_size().max(1);
    let mut x = seed | 1;
    let bytes = (0..size * CASE_TICKS)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    TestCase::new(bytes)
}

/// Measurement slices per engine. Engines are measured round-robin (one
/// slice each, repeated) and each engine reports its *best* slice: a
/// transient host slowdown then hits all engines near-equally and the
/// affected slices are discarded symmetrically, stabilizing the ratio.
const ROUNDS: u32 = 4;

/// Whole-case iterations/s of one executor over one `slice` of wall-clock.
fn slice_rate<R: cftcg_coverage::Recorder>(
    exec: &mut Executor<'_>,
    case: &TestCase,
    recorder: &mut R,
    slice: Duration,
) -> f64 {
    let started = Instant::now();
    let mut cases = 0u64;
    while started.elapsed() < slice {
        exec.run_case(case, recorder);
        cases += 1;
    }
    cases as f64 / started.elapsed().as_secs_f64()
}

struct Row {
    model: &'static str,
    reference: f64,
    flat: f64,
    /// Best JIT slice, or `None` when the tier is unavailable on this build.
    jit: Option<f64>,
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let budget = cftcg_bench::budget().min(Duration::from_secs(2)) / 3;

    println!("run_case throughput, reference tree walker vs optimized flat VM:");
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for model in cftcg_benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let case = case_for(&compiled, 0x5EED_CF7C);
        let branches = compiled.map().branch_count();

        let mut reference = Executor::new_reference(&compiled);
        let mut flat = Executor::new(&compiled);
        let mut noprobe = Executor::new(&compiled);
        let mut jit = Executor::new_jit(&compiled);
        let mut jit_noprobe = Executor::new_jit(&compiled);
        // `new_jit` silently falls back to the flat VM when the tier is
        // unavailable; measure it only when native code actually runs.
        let jit_live = jit.engine() == Engine::Jit;
        // Warm-up passes so lazily-faulted pages don't bill the first slice.
        reference.run_case(&case, &mut BranchBitmap::new(branches));
        flat.run_case(&case, &mut BranchBitmap::new(branches));
        noprobe.run_case(&case, &mut NullRecorder);
        if jit_live {
            jit.run_case(&case, &mut BranchBitmap::new(branches));
            jit_noprobe.run_case(&case, &mut NullRecorder);
        }

        let slice = budget / ROUNDS;
        let (mut ref_rate, mut flat_rate, mut noprobe_rate) = (0.0f64, 0.0f64, 0.0f64);
        let (mut jit_rate, mut jit_noprobe_rate) = (0.0f64, 0.0f64);
        for _ in 0..ROUNDS {
            ref_rate = ref_rate.max(slice_rate(
                &mut reference,
                &case,
                &mut BranchBitmap::new(branches),
                slice,
            ));
            flat_rate = flat_rate.max(slice_rate(
                &mut flat,
                &case,
                &mut BranchBitmap::new(branches),
                slice,
            ));
            noprobe_rate =
                noprobe_rate.max(slice_rate(&mut noprobe, &case, &mut NullRecorder, slice));
            if jit_live {
                jit_rate = jit_rate.max(slice_rate(
                    &mut jit,
                    &case,
                    &mut BranchBitmap::new(branches),
                    slice,
                ));
                jit_noprobe_rate = jit_noprobe_rate.max(slice_rate(
                    &mut jit_noprobe,
                    &case,
                    &mut NullRecorder,
                    slice,
                ));
            }
        }

        let stats = compiled.opt_stats();
        let (flat_ops, noprobe_ops) = compiled.flat_lens();
        let name: &'static str = Box::leak(model.name().to_string().into_boxed_str());
        let jit_col = if jit_live {
            format!(" -> jit {jit_rate:>9.0} (x{:.2})", jit_rate / flat_rate)
        } else {
            String::new()
        };
        println!(
            "  {name:>8}: {ref_rate:>9.0} -> {flat_rate:>9.0} cases/s (x{:.2}){jit_col}, \
             noprobe {noprobe_rate:>9.0}; instrs {} -> {} (lvn {}, dce -{}), regs {} -> {}",
            flat_rate / ref_rate,
            stats.instrs_before,
            stats.instrs_after_dce,
            stats.instrs_after_lvn,
            stats.instrs_removed,
            stats.regs_before,
            stats.regs_after,
        );
        let jit_fields = if jit_live {
            format!(
                "\"jit_cases_per_sec\": {jit_rate:.1}, \
                 \"jit_noprobe_cases_per_sec\": {jit_noprobe_rate:.1}, \
                 \"jit_speedup\": {:.3}, ",
                jit_rate / flat_rate
            )
        } else {
            "\"jit_cases_per_sec\": null, \"jit_noprobe_cases_per_sec\": null, \
             \"jit_speedup\": null, "
                .to_string()
        };
        entries.push(format!(
            "    {{\"model\": \"{name}\", \"reference_cases_per_sec\": {ref_rate:.1}, \
             \"flat_cases_per_sec\": {flat_rate:.1}, \"noprobe_cases_per_sec\": {noprobe_rate:.1}, \
             {jit_fields}\
             \"speedup\": {:.3}, \"case_ticks\": {CASE_TICKS}, \
             \"opt\": {{\"instrs_before\": {}, \"instrs_after_lvn\": {}, \
             \"instrs_after_dce\": {}, \"instrs_removed\": {}, \"consts_folded\": {}, \
             \"branches_folded\": {}, \"cse_hits\": {}, \"operands_forwarded\": {}, \
             \"bools_reduced\": {}, \"regs_before\": {}, \"regs_after\": {}, \
             \"flat_ops\": {flat_ops}, \"flat_noprobe_ops\": {noprobe_ops}}}}}",
            flat_rate / ref_rate,
            stats.instrs_before,
            stats.instrs_after_lvn,
            stats.instrs_after_dce,
            stats.instrs_removed,
            stats.consts_folded,
            stats.branches_folded,
            stats.cse_hits,
            stats.operands_forwarded,
            stats.bools_reduced,
            stats.regs_before,
            stats.regs_after,
        ));
        rows.push(Row {
            model: name,
            reference: ref_rate,
            flat: flat_rate,
            jit: jit_live.then_some(jit_rate),
        });
    }

    let host = cftcg_telemetry::host_metadata_json(Some(budget.as_millis() as u64));
    let json = format!(
        "{{\n  \"bench\": \"vm_throughput\",\n  \"budget_ms_per_engine\": {},\n  \
         \"engine_best\": \"{}\",\n  \"jit_available\": {},\n  \
         \"host\": {host},\n  \"results\": [\n{}\n  ]\n}}\n",
        budget.as_millis(),
        Engine::best().name(),
        Engine::jit_supported(),
        entries.join(",\n")
    );
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    match std::fs::write(dir.join("BENCH_vm.json"), &json) {
        Ok(()) => println!("  wrote results/BENCH_vm.json"),
        Err(e) => eprintln!("  could not write results/BENCH_vm.json: {e}"),
    }

    // Append-only history + the optional `--check-regress` gate: per-model
    // per-engine throughput. No coverage axis here — this bench measures
    // raw executor speed only.
    let mut throughput = Vec::new();
    for row in &rows {
        throughput.push((format!("{}/ref", row.model), row.reference));
        throughput.push((format!("{}/flat", row.model), row.flat));
        if let Some(jit) = row.jit {
            throughput.push((format!("{}/jit", row.model), jit));
        }
    }
    let record = cftcg_compare::HistoryRecord {
        t_unix: cftcg_bench::unix_now(),
        bench: "vm".to_string(),
        throughput,
        coverage: Vec::new(),
    };
    if !cftcg_bench::record_history(&record) {
        eprintln!("vm_throughput --check-regress FAILED (see violations above)");
        std::process::exit(1);
    }

    if check {
        let mut violations = Vec::new();
        for row in &rows {
            if row.flat < row.reference {
                violations.push(format!(
                    "{}: flat VM slower than reference ({:.0} vs {:.0} cases/s)",
                    row.model, row.flat, row.reference
                ));
            }
        }
        if let Some(solar) = rows.iter().find(|r| r.model == "SolarPV") {
            let speedup = solar.flat / solar.reference;
            if speedup < 2.0 {
                violations.push(format!(
                    "SolarPV: optimized VM only x{speedup:.2} over the reference (need >= 2.0)"
                ));
            }
        } else {
            violations.push("SolarPV missing from the benchmark sweep".to_string());
        }
        let jit_checked = rows.iter().any(|r| r.jit.is_some());
        if jit_checked {
            for row in &rows {
                let Some(jit) = row.jit else { continue };
                if jit < row.flat {
                    violations.push(format!(
                        "{}: JIT slower than flat VM ({:.0} vs {:.0} cases/s)",
                        row.model, jit, row.flat
                    ));
                }
            }
            if let Some(solar) = rows.iter().find(|r| r.model == "SolarPV") {
                if let Some(jit) = solar.jit {
                    let speedup = jit / solar.flat;
                    if speedup < 2.0 {
                        violations.push(format!(
                            "SolarPV: JIT only x{speedup:.2} over the flat VM (need >= 2.0)"
                        ));
                    }
                }
            }
        } else {
            println!(
                "vm_throughput --check: JIT tier unavailable on this build/host, \
                 skipping the jit >= flat gates"
            );
        }
        if !violations.is_empty() {
            eprintln!("vm_throughput --check FAILED:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
        if jit_checked {
            println!(
                "vm_throughput --check passed: flat >= reference and jit >= flat everywhere, \
                 SolarPV >= 2x on both tiers"
            );
        } else {
            println!("vm_throughput --check passed: flat >= reference everywhere, SolarPV >= 2x");
        }
    }
}
