//! Ablation study (DESIGN.md A1/A2) for CFTCG's two model-oriented design
//! choices, isolating them from each other and from the feedback mode:
//!
//! * **A1** — iteration-difference-coverage corpus priority vs FIFO;
//! * **A2** — field-aware tuple mutation vs blind byte mutation.
//!
//! ```sh
//! CFTCG_BUDGET_MS=3000 cargo run --release -p cftcg-bench --bin ablation
//! ```

use cftcg_baselines::relevance::suggested_input_ranges;
use cftcg_core::Cftcg;
use cftcg_fuzz::FuzzConfig;

/// A named configuration tweak applied on top of the default fuzzer config.
type Variant = (&'static str, fn(FuzzConfig) -> FuzzConfig);

fn main() {
    let budget = cftcg_bench::budget();
    let repeats = cftcg_bench::repeats();
    let variants: [Variant; 4] = [
        ("full CFTCG", |c| c),
        ("A1: FIFO corpus", |mut c| {
            c.metric_weighted_corpus = false;
            c
        }),
        ("A2: byte mutation", |mut c| {
            c.field_aware = false;
            c
        }),
        ("A1+A2 off", |mut c| {
            c.metric_weighted_corpus = false;
            c.field_aware = false;
            c
        }),
    ];
    println!("Ablation ({budget:?} per variant per model, {repeats} seeds averaged)\n");
    println!("{:<9} {:<18} {:>6} {:>6} {:>6}", "Model", "Variant", "DC%", "CC%", "MCDC%");
    for (model, compiled) in cftcg_bench::compiled_benchmarks() {
        let ranges = suggested_input_ranges(&model);
        // The named ablations plus the §5 extension (derived input ranges).
        let mut rows: Vec<(String, Cftcg)> = Vec::new();
        for (name, tweak) in &variants {
            rows.push((
                (*name).to_string(),
                Cftcg::new(&model)
                    .expect("benchmark compiles")
                    .with_config(tweak(FuzzConfig::default())),
            ));
        }
        rows.push((
            "§5: derived ranges".to_string(),
            Cftcg::new(&model).expect("benchmark compiles").with_input_ranges(ranges),
        ));
        for (i, (name, tool)) in rows.iter().enumerate() {
            let mut acc = (0.0, 0.0, 0.0);
            for seed in 0..repeats {
                let generation = tool.generate(budget, seed);
                let report = cftcg_bench::score(&compiled, &generation);
                acc.0 += report.decision.percent();
                acc.1 += report.condition.percent();
                acc.2 += report.mcdc.percent();
            }
            let n = repeats as f64;
            println!(
                "{:<9} {:<18} {:>5.0} {:>5.0} {:>5.0}",
                if i == 0 { model.name() } else { "" },
                name,
                acc.0 / n,
                acc.1 / n,
                acc.2 / n,
            );
        }
    }
}
