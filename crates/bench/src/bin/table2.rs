//! Regenerates the paper's **Table 2** (benchmark model statistics),
//! printing the reproduction's numbers beside the paper's.
//!
//! ```sh
//! cargo run --release -p cftcg-bench --bin table2
//! ```

use cftcg_bench::paper;

fn main() {
    println!("Table 2: benchmark models (ours vs paper)\n");
    println!(
        "{:<9} {:<34} {:>8} {:>8} {:>8} {:>8}",
        "Model", "Functionality", "#Branch", "(paper)", "#Block", "(paper)"
    );
    for ((model, compiled), row) in
        cftcg_bench::compiled_benchmarks().into_iter().zip(paper::TABLE2)
    {
        println!(
            "{:<9} {:<34} {:>8} {:>8} {:>8} {:>8}",
            model.name(),
            row.functionality,
            compiled.map().branch_count(),
            row.branches,
            model.total_block_count(),
            row.blocks,
        );
    }
    println!(
        "\nNote: branch counts are decision outcomes under this reproduction's \
         instrumentation mapping; block counts exclude the port/line wiring \
         elements Simulink counts as blocks."
    );
}
