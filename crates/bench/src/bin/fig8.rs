//! Regenerates the paper's **Figure 8**: CFTCG versus the "Fuzz Only"
//! method (vanilla fuzzing of the generated code without the
//! model-oriented pieces) on every benchmark model.
//!
//! ```sh
//! CFTCG_BUDGET_MS=3000 cargo run --release -p cftcg-bench --bin fig8
//! ```

use cftcg_bench::{averaged_coverage, Tool};

fn main() {
    let budget = cftcg_bench::budget();
    let repeats = cftcg_bench::repeats();
    println!("Figure 8: CFTCG vs Fuzz Only ({budget:?} per tool per model, {repeats} repeats)\n");
    println!(
        "{:<9} {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "Model", "DC cftcg", "DC fuzz", "CC cftcg", "CC fuzz", "MCDC cftcg", "MCDC fuzz"
    );
    let mut wins = 0;
    let mut total = 0;
    for (model, compiled) in cftcg_bench::compiled_benchmarks() {
        let full = averaged_coverage(Tool::Cftcg, &model, &compiled, budget, repeats);
        let ablated = averaged_coverage(Tool::FuzzOnly, &model, &compiled, budget, repeats);
        println!(
            "{:<9} {:>9.0}% {:>9.0}% | {:>9.0}% {:>9.0}% | {:>9.0}% {:>9.0}%",
            model.name(),
            full.0,
            ablated.0,
            full.1,
            ablated.1,
            full.2,
            ablated.2,
        );
        for (a, b) in [(full.0, ablated.0), (full.1, ablated.1), (full.2, ablated.2)] {
            total += 1;
            if a >= b {
                wins += 1;
            }
        }
    }
    println!(
        "\nCFTCG >= Fuzz Only in {wins}/{total} (model, metric) cells \
         (paper: CFTCG always higher)."
    );
}
