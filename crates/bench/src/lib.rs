#![warn(missing_docs)]

//! Shared experiment-harness plumbing for the CFTCG evaluation binaries.
//!
//! Each binary regenerates one artifact of the paper's Section 4 (see
//! DESIGN.md's per-experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table2` | Table 2 — benchmark model statistics |
//! | `table3` | Table 3 — DC/CC/MCDC per tool per model + average improvements |
//! | `fig7` | Figure 7 — Decision Coverage vs time series per model |
//! | `fig8` | Figure 8 — CFTCG vs "Fuzz Only" |
//! | `speed` | §4 text — iterations/s: compiled loop vs simulation; SLDV memory blow-up |
//! | `ablation` | DESIGN.md A1/A2 — metric-weighted corpus and field-aware mutation |
//!
//! Budgets scale with the `CFTCG_BUDGET_MS` environment variable
//! (wall-clock per tool per model, default 3000) and `CFTCG_REPEATS`
//! (random-strategy repetitions averaged, default 3, paper: 10).

use std::time::Duration;

use cftcg_baselines::{fuzz_only, simcotest, sldv, Generation};
use cftcg_codegen::{compile, replay_suite, CompiledModel};
use cftcg_core::Cftcg;
use cftcg_coverage::CoverageReport;
use cftcg_model::Model;

pub mod paper;

/// Wall-clock budget per tool per model, from `CFTCG_BUDGET_MS` (ms).
pub fn budget() -> Duration {
    let ms = std::env::var("CFTCG_BUDGET_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(3_000);
    Duration::from_millis(ms)
}

/// Number of repetitions for generators with random strategies, from
/// `CFTCG_REPEATS` (the paper repeats 10×).
pub fn repeats() -> u64 {
    std::env::var("CFTCG_REPEATS").ok().and_then(|s| s.parse().ok()).unwrap_or(3)
}

/// Fuzzing worker count for CFTCG runs: `--workers N` on the command line
/// wins, then the `CFTCG_WORKERS` environment variable, default 1
/// (sequential). Zero is clamped to 1.
pub fn workers() -> usize {
    let mut argv = std::env::args();
    let from_argv = loop {
        match argv.next() {
            Some(arg) if arg == "--workers" => {
                break argv.next().and_then(|v| v.parse().ok());
            }
            Some(arg) => {
                if let Some(v) = arg.strip_prefix("--workers=") {
                    break v.parse().ok();
                }
            }
            None => break None,
        }
    };
    from_argv
        .or_else(|| std::env::var("CFTCG_WORKERS").ok().and_then(|s| s.parse().ok()))
        .unwrap_or(1)
        .max(1)
}

/// Records one benchmark observation into the append-only history
/// (`results/history/<bench>.jsonl` — the flat `results/BENCH_*.json`
/// snapshot still gets clobbered per run, but the history accumulates),
/// and, when the binary was invoked with `--check-regress`, gates the new
/// point against the trailing median of the *existing* history first.
///
/// Returns `false` when the gate tripped — the caller should exit
/// non-zero. A missing or incomparable history never fails the gate (first
/// run seeds it), and a broken history file only warns: recording
/// benchmarks must not make a bench run fail for bookkeeping reasons.
pub fn record_history(record: &cftcg_compare::HistoryRecord) -> bool {
    let check = std::env::args().any(|a| a == "--check-regress");
    let dir = std::path::Path::new("results");
    let mut ok = true;
    if check {
        match cftcg_compare::load_history(dir, &record.bench) {
            Ok(history) => {
                let violations =
                    cftcg_compare::check_regress(&history, record, cftcg_compare::DEFAULT_WINDOW);
                for v in &violations {
                    eprintln!("check-regress: {v}");
                }
                if violations.is_empty() {
                    println!(
                        "  check-regress: no regression against {} trailing record(s)",
                        history.len().min(cftcg_compare::DEFAULT_WINDOW)
                    );
                } else {
                    ok = false;
                }
            }
            Err(e) => eprintln!("check-regress: skipping gate, history unreadable: {e}"),
        }
    }
    match cftcg_compare::append_history(dir, record) {
        Ok(path) => println!("  appended history record to {}", path.display()),
        Err(e) => eprintln!("  could not append bench history: {e}"),
    }
    ok
}

/// Unix timestamp (seconds) for history records.
pub fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// An optional shared telemetry registry for bench binaries, from the
/// `CFTCG_STATS_JSONL` environment variable: when set, a registry with a
/// JSONL sink writing to that path is returned and benchmark runs log
/// their campaign/bench events through it. `None` (no overhead) otherwise.
pub fn telemetry_from_env() -> Option<std::sync::Arc<cftcg_telemetry::Telemetry>> {
    let path = std::env::var("CFTCG_STATS_JSONL").ok()?;
    match std::fs::File::create(&path) {
        Ok(file) => Some(std::sync::Arc::new(
            cftcg_telemetry::Telemetry::new().with_jsonl(std::io::BufWriter::new(file)),
        )),
        Err(e) => {
            eprintln!("CFTCG_STATS_JSONL: cannot create {path}: {e}");
            None
        }
    }
}

/// The tools of the Table 3 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tool {
    /// The bounded constraint-solving baseline.
    Sldv,
    /// The simulation-based meta-heuristic baseline.
    SimCoTest,
    /// The paper's tool.
    Cftcg,
    /// The Figure 8 ablation.
    FuzzOnly,
}

impl Tool {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Tool::Sldv => "SLDV",
            Tool::SimCoTest => "SimCoTest",
            Tool::Cftcg => "CFTCG",
            Tool::FuzzOnly => "Fuzz Only",
        }
    }
}

/// Runs one tool once on one model and returns its generation.
pub fn run_tool(
    tool: Tool,
    model: &Model,
    compiled: &CompiledModel,
    budget: Duration,
    seed: u64,
) -> Generation {
    run_tool_with_workers(tool, model, compiled, budget, seed, 1)
}

/// Like [`run_tool`], but runs CFTCG with the sharded parallel engine when
/// `workers > 1`. The baselines are sequential by construction and ignore
/// the worker count.
pub fn run_tool_with_workers(
    tool: Tool,
    model: &Model,
    compiled: &CompiledModel,
    budget: Duration,
    seed: u64,
    workers: usize,
) -> Generation {
    if tool == Tool::Cftcg && workers > 1 {
        return Cftcg::new(model)
            .expect("benchmark model compiles")
            .generate_parallel(budget, seed, workers);
    }
    match tool {
        Tool::Sldv => {
            sldv::generate(model, compiled, &sldv::SldvConfig { budget, ..Default::default() })
        }
        Tool::SimCoTest => simcotest::generate(
            model,
            &simcotest::SimCoTestConfig { budget, seed, ..Default::default() },
        ),
        Tool::Cftcg => Cftcg::new(model).expect("benchmark model compiles").generate(budget, seed),
        Tool::FuzzOnly => {
            fuzz_only::generate(compiled, &fuzz_only::FuzzOnlyConfig { budget, seed })
        }
    }
}

/// Average coverage of a tool over `repeats` seeds (deterministic tools run
/// once). Returns the mean DC/CC/MCDC percentages.
pub fn averaged_coverage(
    tool: Tool,
    model: &Model,
    compiled: &CompiledModel,
    budget: Duration,
    repeats: u64,
) -> (f64, f64, f64) {
    let runs = if tool == Tool::Sldv { 1 } else { repeats };
    let mut acc = (0.0, 0.0, 0.0);
    for seed in 0..runs {
        let generation = run_tool(tool, model, compiled, budget, seed);
        let report = replay_suite(compiled, &generation.suite);
        acc.0 += report.decision.percent();
        acc.1 += report.condition.percent();
        acc.2 += report.mcdc.percent();
    }
    let n = runs as f64;
    (acc.0 / n, acc.1 / n, acc.2 / n)
}

/// Compiles all benchmark models once, in Table 2 order.
pub fn compiled_benchmarks() -> Vec<(Model, CompiledModel)> {
    cftcg_benchmarks::all()
        .into_iter()
        .map(|m| {
            let c = compile(&m).expect("benchmark model compiles");
            (m, c)
        })
        .collect()
}

/// Scores a suite against a compiled model (the common yardstick).
pub fn score(compiled: &CompiledModel, generation: &Generation) -> CoverageReport {
    replay_suite(compiled, &generation.suite)
}

/// Percentage-point-free relative improvement used by the paper's "Average
/// Improvement" rows: mean over models of `(ours - theirs) / theirs`,
/// skipping models where the baseline scored zero.
pub fn average_improvement(ours: &[f64], theirs: &[f64]) -> f64 {
    let mut acc = 0.0;
    let mut n = 0;
    for (&a, &b) in ours.iter().zip(theirs) {
        if b > 0.0 {
            acc += (a - b) / b;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        // ours = 2x theirs -> +100%.
        assert_eq!(average_improvement(&[80.0], &[40.0]), 100.0);
        // zero baselines are skipped.
        assert_eq!(average_improvement(&[80.0, 50.0], &[0.0, 50.0]), 0.0);
        assert_eq!(average_improvement(&[], &[]), 0.0);
    }

    #[test]
    fn tool_names() {
        assert_eq!(Tool::Sldv.name(), "SLDV");
        assert_eq!(Tool::FuzzOnly.name(), "Fuzz Only");
    }

    #[test]
    fn env_defaults() {
        assert!(budget() >= Duration::from_millis(1));
        assert!(repeats() >= 1);
        assert!(workers() >= 1);
    }
}
