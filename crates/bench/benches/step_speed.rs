//! Criterion: per-iteration execution cost of the compiled step program vs
//! the interpretive simulator, for every benchmark model — the
//! microarchitectural basis of the paper's 26 000-vs-6 iterations/s claim.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cftcg_codegen::{compile, Executor};
use cftcg_coverage::{BranchBitmap, NullRecorder};
use cftcg_model::{DataType, Value};
use cftcg_sim::Simulator;

fn input_for(types: &[DataType]) -> Vec<Value> {
    types.iter().enumerate().map(|(i, ty)| Value::from_f64((i as f64 + 1.0) * 7.0, *ty)).collect()
}

fn bench_step(c: &mut Criterion) {
    for model in cftcg_benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let inputs = input_for(compiled.input_types());
        let mut group = c.benchmark_group(format!("step/{}", model.name()));

        let mut exec = Executor::new(&compiled);
        let mut rec = NullRecorder;
        group.bench_function("compiled", |b| {
            b.iter(|| black_box(exec.step(black_box(&inputs), &mut rec)));
        });

        let mut exec = Executor::new(&compiled);
        let mut rec = NullRecorder;
        let mut out = Vec::new();
        group.bench_function("compiled(step_into)", |b| {
            b.iter(|| {
                exec.step_into(black_box(&inputs), &mut out, &mut rec);
                black_box(&out);
            });
        });

        let mut exec = Executor::new(&compiled);
        let mut cov = BranchBitmap::new(compiled.map().branch_count());
        group.bench_function("compiled+bitmap", |b| {
            b.iter(|| {
                cov.clear();
                black_box(exec.step(black_box(&inputs), &mut cov))
            });
        });

        let mut sim = Simulator::new(&model).expect("benchmark validates");
        group.bench_function("interpreted", |b| {
            b.iter(|| black_box(sim.step(black_box(&inputs)).expect("sim step")));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
