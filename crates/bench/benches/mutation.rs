//! Criterion: throughput of the eight tuple-aware mutation strategies
//! (paper Table 1) and of the whole generate-one-input path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cftcg_codegen::{compile, TupleLayout};
use cftcg_fuzz::{FuzzConfig, Fuzzer, MutationKind, Mutator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn solar_layout() -> TupleLayout {
    compile(&cftcg_benchmarks::solar_pv::model()).expect("solar pv compiles").layout().clone()
}

fn bench_strategies(c: &mut Criterion) {
    let layout = solar_layout();
    let mutator = Mutator::new(layout.clone(), 96);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut group = c.benchmark_group("mutation");
    for kind in MutationKind::ALL {
        let mut data = vec![0u8; layout.tuple_size() * 16];
        let other = vec![7u8; layout.tuple_size() * 8];
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                mutator.apply(kind, &mut rng, black_box(&mut data), Some(&other));
                // Keep input size bounded so the benchmark stays stationary.
                data.truncate(layout.tuple_size() * 32);
            });
        });
    }
    group.finish();
}

fn bench_fuzz_loop(c: &mut Criterion) {
    let compiled = compile(&cftcg_benchmarks::solar_pv::model()).expect("compiles");
    c.bench_function("fuzz_loop/solar_pv_100_execs", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut fuzzer = Fuzzer::new(&compiled, FuzzConfig { seed, ..Default::default() });
            black_box(fuzzer.run_executions(100))
        });
    });
}

criterion_group!(benches, bench_strategies, bench_fuzz_loop);
criterion_main!(benches);
