//! Criterion: whole-case execution cost (`Executor::run_case`) of the
//! optimized flat VM vs the reference tree walker, plus the
//! probe-stripped `NullRecorder` fast path — the statistical counterpart
//! to the `vm_throughput` binary's wall-clock sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cftcg_codegen::{compile, CompiledModel, Executor, TestCase};
use cftcg_coverage::{BranchBitmap, NullRecorder};

/// Ticks per case — matches the `vm_throughput` binary so numbers line up.
const CASE_TICKS: usize = 64;

/// Deterministic pseudo-random case bytes (xorshift, same stream as the
/// `vm_throughput` binary).
fn case_for(compiled: &CompiledModel, seed: u64) -> TestCase {
    let size = compiled.layout().tuple_size().max(1);
    let mut x = seed | 1;
    let bytes = (0..size * CASE_TICKS)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x as u8
        })
        .collect();
    TestCase::new(bytes)
}

fn bench_run_case(c: &mut Criterion) {
    for model in cftcg_benchmarks::all() {
        let compiled = compile(&model).expect("benchmark compiles");
        let case = case_for(&compiled, 0x5EED_CF7C);
        let branches = compiled.map().branch_count();
        let mut group = c.benchmark_group(format!("run_case/{}", model.name()));

        let mut exec = Executor::new_reference(&compiled);
        let mut cov = BranchBitmap::new(branches);
        group.bench_function("reference", |b| {
            b.iter(|| black_box(exec.run_case(black_box(&case), &mut cov)));
        });

        let mut exec = Executor::new(&compiled);
        let mut cov = BranchBitmap::new(branches);
        group.bench_function("flat", |b| {
            b.iter(|| black_box(exec.run_case(black_box(&case), &mut cov)));
        });

        let mut exec = Executor::new(&compiled);
        group.bench_function("flat-noprobe", |b| {
            b.iter(|| black_box(exec.run_case(black_box(&case), &mut NullRecorder)));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_run_case);
criterion_main!(benches);
