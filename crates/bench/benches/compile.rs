//! Criterion: fuzzing code generation cost — model validation, schedule
//! conversion, branch instrumentation, and step-IR synthesis per benchmark
//! model, plus XML load/save of the largest model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cftcg_codegen::{compile, emit_c};
use cftcg_model::{load_model, save_model};

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    for model in cftcg_benchmarks::all() {
        group.bench_function(format!("compile/{}", model.name()), |b| {
            b.iter(|| black_box(compile(black_box(&model)).expect("compiles")));
        });
    }
    group.finish();

    let rac = cftcg_benchmarks::rac::model();
    let compiled = compile(&rac).expect("compiles");
    c.bench_function("emit_c/RAC", |b| {
        b.iter(|| black_box(emit_c(black_box(&compiled))));
    });

    let xml = save_model(&rac);
    c.bench_function("xml/save/RAC", |b| b.iter(|| black_box(save_model(black_box(&rac)))));
    c.bench_function("xml/load/RAC", |b| {
        b.iter(|| black_box(load_model(black_box(&xml)).expect("loads")));
    });
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
