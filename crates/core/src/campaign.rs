//! The persisted campaign artifact: one JSON document holding everything
//! the forensic front ends (`cftcg explain`, the HTML campaign explorer)
//! need to reconstruct a finished campaign — the emitted suite with its
//! per-case metadata and raw bytes, the input lineage DAG, and the per-goal
//! first-hit provenance.
//!
//! The document is written by `cftcg fuzz --out DIR` next to the CSV test
//! cases and read back by `cftcg explain` / `cftcg report --html`, possibly
//! on another machine. Serialization is hand-rolled (the workspace builds
//! offline, so no serde) against the same minimal JSON support the
//! telemetry JSONL sinks use; parsing reuses
//! [`cftcg_telemetry::json::Json`]. The executed observations
//! ([`FullTracker`](cftcg_coverage::FullTracker)) are deliberately *not*
//! serialized — the suite bytes are, and replaying them through the
//! compiled model reproduces the tracker exactly, which keeps the artifact
//! small and makes the frontier/score shown by the front ends verifiable
//! from first principles.
//!
//! Numbers are stored as JSON numbers and parsed as `f64`: every value the
//! artifact holds (execution counts, shard-strided lineage ids of
//! `shard * 2^40 + n`) stays far below 2^53, so the round trip is exact.

use std::fmt::Write as _;

use cftcg_coverage::{Goal, InstrumentationMap};
use cftcg_fuzz::{
    Generation, Lineage, LineageOrigin, LineageRecord, MutationKind, SHARD_ID_STRIDE,
};
use cftcg_telemetry::json::{push_json_f64, push_json_str, Json};
use cftcg_telemetry::{SeriesPoint, YieldReport};

/// One emitted test case with its forensic metadata and raw driver bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCase {
    /// Shard-strided lineage id (resolves into [`CampaignArtifact::lineage`]).
    pub id: u64,
    /// Shard that discovered the case.
    pub shard: usize,
    /// Campaign execution index when the case was emitted.
    pub executions: u64,
    /// Cumulative covered branches after this case was emitted.
    pub covered_branches: usize,
    /// Emission wall-clock offset since campaign start, in seconds.
    pub t_s: f64,
    /// The raw fuzz-driver byte stream of the case.
    pub bytes: Vec<u8>,
}

/// First-hit provenance of one covered goal (the serializable projection of
/// [`FirstHit`](cftcg_coverage::FirstHit)).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignHit {
    /// The covered goal.
    pub goal: Goal,
    /// Campaign execution index of the covering input.
    pub executions: u64,
    /// Wall-clock offset of the covering input, in seconds.
    pub elapsed_s: f64,
    /// Shard that discovered the covering input.
    pub shard: usize,
    /// Lineage id of the covering test case.
    pub case: u64,
    /// Mutation-operator chain (Table 1 indices) of the covering input's
    /// final mutation round. Empty for seeds and bootstraps.
    pub ops: Vec<u8>,
}

/// Host identity of the machine a campaign ran on, recorded so `cftcg diff`
/// can flag apples-to-oranges comparisons (different core counts or
/// architectures make throughput-derived numbers incomparable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMeta {
    /// Available hardware parallelism at campaign start.
    pub cores: u64,
    /// Target architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

/// Aggregate cost of one profiled span kind — the serializable projection
/// of [`cftcg_telemetry::SpanReport`] (which borrows its name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSummary {
    /// Span kind name (taxonomy spelling, e.g. `execution`).
    pub name: String,
    /// Spans recorded.
    pub count: u64,
    /// Total attributed wall-clock nanoseconds.
    pub total_ns: u64,
    /// Upper bound of the median latency bucket.
    pub p50_ns: u64,
    /// Upper bound of the 99th-percentile latency bucket.
    pub p99_ns: u64,
}

/// A complete persisted campaign: run identity, the suite with forensics,
/// the lineage DAG, and per-goal provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArtifact {
    /// Model name the campaign ran against.
    pub model: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Worker shard count (1 for sequential runs).
    pub workers: usize,
    /// Total inputs executed.
    pub executions: u64,
    /// Total model iterations executed.
    pub iterations: u64,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_s: f64,
    /// Size of the model's branch-probe universe.
    pub branch_count: usize,
    /// Branches covered by the campaign.
    pub covered_branches: usize,
    /// The emitted suite, in emission order.
    pub cases: Vec<CampaignCase>,
    /// The input lineage DAG, in mint order.
    pub lineage: Vec<LineageRecord>,
    /// Per-goal first-hit provenance, in canonical goal order.
    pub hits: Vec<CampaignHit>,
    /// The telemetry coverage/throughput time series (bounded ring,
    /// oldest first). Empty when the campaign ran without telemetry or the
    /// artifact predates the series schema.
    pub series: Vec<SeriesPoint>,
    /// Resolved execution engine (`ref` / `flat` / `jit`). Attached by the
    /// CLI after the run — never by [`from_generation`](Self::from_generation),
    /// whose output must stay byte-identical across engines. `None` for
    /// artifacts that predate the comparison schema.
    pub engine: Option<String>,
    /// Host identity. CLI-attached like [`engine`](Self::engine); `None`
    /// for pre-comparison artifacts.
    pub host: Option<HostMeta>,
    /// The mutation-yield matrix (per-operator outcome counters, Table-1
    /// order). Part of the deterministic search trajectory, so populated by
    /// [`from_generation`](Self::from_generation) directly. Empty for
    /// generators that record no yields and for pre-comparison artifacts.
    pub yields: Vec<YieldReport>,
    /// Span-profile summary (per-phase wall-clock attribution). Wall-clock
    /// derived, so CLI-attached only when telemetry ran; empty otherwise.
    pub spans: Vec<SpanSummary>,
}

impl CampaignArtifact {
    /// Captures a finished generation as a persistable artifact. Generators
    /// that do not track forensics (empty `suite_meta`, no provenance)
    /// degrade gracefully: case ids fall back to suite indices and the hit
    /// list stays empty.
    pub fn from_generation(
        model: &str,
        seed: u64,
        workers: usize,
        generation: &Generation,
        map: &InstrumentationMap,
    ) -> Self {
        let cases = generation
            .suite
            .iter()
            .enumerate()
            .map(|(i, case)| {
                let meta = generation.suite_meta.get(i);
                CampaignCase {
                    id: meta.map_or(i as u64, |m| m.case),
                    shard: meta.map_or(0, |m| m.shard),
                    executions: meta.map_or(0, |m| m.executions),
                    covered_branches: meta.map_or(0, |m| m.covered_branches),
                    t_s: generation.case_times.get(i).map_or(0.0, |t| t.as_secs_f64()),
                    bytes: case.bytes.clone(),
                }
            })
            .collect();
        let hits = generation.provenance.as_ref().map_or_else(Vec::new, |p| {
            p.covered_goals(map)
                .into_iter()
                .map(|(goal, hit)| CampaignHit {
                    goal,
                    executions: hit.executions,
                    elapsed_s: hit.elapsed.as_secs_f64(),
                    shard: hit.shard,
                    case: hit.case,
                    ops: hit.ops.clone(),
                })
                .collect()
        });
        let covered_branches = generation
            .provenance
            .as_ref()
            .map(|p| p.covered_counts().0)
            .or_else(|| generation.suite_meta.last().map(|m| m.covered_branches))
            .unwrap_or(0);
        CampaignArtifact {
            model: model.to_string(),
            seed,
            workers,
            executions: generation.executions,
            iterations: generation.iterations,
            elapsed_s: generation.elapsed.as_secs_f64(),
            branch_count: map.branch_count(),
            covered_branches,
            cases,
            lineage: generation.lineage.clone(),
            hits,
            // The generation itself carries no wall-clock series; the CLI
            // attaches the registry's ring after the run when telemetry was
            // on (keeping this constructor deterministic for byte-identity
            // tests).
            series: Vec::new(),
            // Engine, host, and span profile are likewise CLI-attached:
            // the same generation must serialize identically whichever
            // engine executed it and whether telemetry observed it.
            engine: None,
            host: None,
            // The yield matrix is part of the search trajectory itself —
            // identical across engines and observation setups — so it is
            // safe to persist here.
            yields: generation.yield_reports(),
            spans: Vec::new(),
        }
    }

    /// The lineage DAG rebuilt for ancestry queries.
    pub fn lineage_dag(&self) -> Lineage {
        Lineage::from_records(self.lineage.clone())
    }

    /// Looks an emitted case up by lineage id.
    pub fn case(&self, id: u64) -> Option<&CampaignCase> {
        self.cases.iter().find(|c| c.id == id)
    }

    /// Serializes the artifact as one JSON document (line-structured:
    /// one case / lineage record / hit per line, for diffability).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n\"model\":");
        push_json_str(&mut out, &self.model);
        let _ = write!(out, ",\n\"seed\":{},\n\"workers\":{}", self.seed, self.workers);
        let _ = write!(
            out,
            ",\n\"executions\":{},\n\"iterations\":{}",
            self.executions, self.iterations
        );
        out.push_str(",\n\"elapsed_s\":");
        push_json_f64(&mut out, self.elapsed_s);
        let _ = write!(
            out,
            ",\n\"branch_count\":{},\n\"covered_branches\":{}",
            self.branch_count, self.covered_branches
        );
        out.push_str(",\n\"cases\":[");
        for (i, case) in self.cases.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"id\":{},\"shard\":{},\"executions\":{},\"covered_branches\":{},\"t_s\":",
                case.id, case.shard, case.executions, case.covered_branches
            );
            push_json_f64(&mut out, case.t_s);
            let _ = write!(out, ",\"bytes\":\"{}\"}}", to_hex(&case.bytes));
        }
        out.push_str("],\n\"lineage\":[");
        for (i, record) in self.lineage.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(out, "{{\"id\":{},\"parent\":", record.id);
            push_opt_u64(&mut out, record.parent);
            out.push_str(",\"crossover\":");
            push_opt_u64(&mut out, record.crossover);
            out.push_str(",\"ops\":[");
            for (j, op) in record.ops.iter().enumerate() {
                let _ = write!(out, "{}{}", if j == 0 { "" } else { "," }, op.index());
            }
            let _ = write!(
                out,
                "],\"origin\":\"{}\",\"shard\":{},\"executions\":{}}}",
                record.origin.tag(),
                record.shard,
                record.executions
            );
        }
        out.push_str("],\n\"hits\":[");
        for (i, hit) in self.hits.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"goal\":");
            push_goal(&mut out, hit.goal);
            let _ = write!(out, ",\"executions\":{},\"elapsed_s\":", hit.executions);
            push_json_f64(&mut out, hit.elapsed_s);
            let _ = write!(out, ",\"shard\":{},\"case\":{},\"ops\":[", hit.shard, hit.case);
            for (j, op) in hit.ops.iter().enumerate() {
                let _ = write!(out, "{}{}", if j == 0 { "" } else { "," }, op);
            }
            out.push_str("]}");
        }
        out.push_str("],\n\"series\":[");
        for (i, point) in self.series.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"t_s\":");
            push_json_f64(&mut out, point.t_s);
            let _ = write!(
                out,
                ",\"executions\":{},\"covered\":{},\"branch_count\":{},\"corpus\":{},\"frontier_open\":{}",
                point.executions, point.covered, point.branch_count, point.corpus,
                point.frontier_open
            );
            out.push_str(",\"execs_per_sec\":");
            push_json_f64(&mut out, point.execs_per_sec);
            out.push('}');
        }
        out.push_str("],\n\"engine\":");
        match &self.engine {
            Some(engine) => push_json_str(&mut out, engine),
            None => out.push_str("null"),
        }
        out.push_str(",\n\"host\":");
        match &self.host {
            Some(host) => {
                let _ = write!(out, "{{\"cores\":{},\"arch\":", host.cores);
                push_json_str(&mut out, &host.arch);
                out.push('}');
            }
            None => out.push_str("null"),
        }
        out.push_str(",\n\"yields\":[");
        for (i, row) in self.yields.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"name\":");
            push_json_str(&mut out, &row.name);
            let _ = write!(
                out,
                ",\"executed\":{},\"new_coverage\":{},\"corpus_insert\":{},\"violation\":{}}}",
                row.executed, row.new_coverage, row.corpus_insert, row.violation
            );
        }
        out.push_str("],\n\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("{\"name\":");
            push_json_str(&mut out, &span.name);
            let _ = write!(
                out,
                ",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                span.count, span.total_ns, span.p50_ns, span.p99_ns
            );
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses an artifact back from [`to_json`](Self::to_json) output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field when the document is
    /// not a valid campaign artifact.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("campaign artifact: {e}"))?;
        let cases = doc
            .get("cases")
            .and_then(Json::as_array)
            .ok_or("campaign artifact: missing `cases` array")?
            .iter()
            .map(parse_case)
            .collect::<Result<Vec<_>, _>>()?;
        let lineage = doc
            .get("lineage")
            .and_then(Json::as_array)
            .ok_or("campaign artifact: missing `lineage` array")?
            .iter()
            .map(parse_lineage_record)
            .collect::<Result<Vec<_>, _>>()?;
        let hits = doc
            .get("hits")
            .and_then(Json::as_array)
            .ok_or("campaign artifact: missing `hits` array")?
            .iter()
            .map(parse_hit)
            .collect::<Result<Vec<_>, _>>()?;
        // Pre-series artifacts simply have no samples — not an error.
        let series = match doc.get("series") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("campaign artifact: `series` is not an array")?
                .iter()
                .map(parse_series_point)
                .collect::<Result<Vec<_>, _>>()?,
        };
        // Comparison-schema fields: artifacts written before `cftcg diff`
        // existed carry none of these and must keep loading.
        let engine = match doc.get("engine") {
            None | Some(Json::Null) => None,
            Some(v) => {
                Some(v.as_str().ok_or("campaign artifact: `engine` is not a string")?.to_string())
            }
        };
        let host = match doc.get("host") {
            None | Some(Json::Null) => None,
            Some(v) => Some(HostMeta {
                cores: field_u64(v, "cores")?,
                arch: v
                    .get("arch")
                    .and_then(Json::as_str)
                    .ok_or("campaign artifact: host missing `arch`")?
                    .to_string(),
            }),
        };
        let yields = match doc.get("yields") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("campaign artifact: `yields` is not an array")?
                .iter()
                .map(parse_yield_row)
                .collect::<Result<Vec<_>, _>>()?,
        };
        let spans = match doc.get("spans") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or("campaign artifact: `spans` is not an array")?
                .iter()
                .map(parse_span_summary)
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(CampaignArtifact {
            model: doc
                .get("model")
                .and_then(Json::as_str)
                .ok_or("campaign artifact: missing `model`")?
                .to_string(),
            seed: field_u64(&doc, "seed")?,
            workers: field_u64(&doc, "workers")? as usize,
            executions: field_u64(&doc, "executions")?,
            iterations: field_u64(&doc, "iterations")?,
            elapsed_s: field_f64(&doc, "elapsed_s")?,
            branch_count: field_u64(&doc, "branch_count")? as usize,
            covered_branches: field_u64(&doc, "covered_branches")? as usize,
            cases,
            lineage,
            hits,
            series,
            engine,
            host,
            yields,
            spans,
        })
    }
}

/// Parses a case reference: the `s<shard>:<n>` form the reports print
/// (see [`cftcg_coverage::format_case_id`]) or a raw decimal lineage id.
pub fn parse_case_id(text: &str) -> Option<u64> {
    if let Some(rest) = text.strip_prefix('s') {
        let (shard, n) = rest.split_once(':')?;
        let shard: u64 = shard.parse().ok()?;
        let n: u64 = n.parse().ok()?;
        (n < SHARD_ID_STRIDE).then(|| shard.checked_mul(SHARD_ID_STRIDE))??.checked_add(n)
    } else {
        text.parse().ok()
    }
}

fn push_opt_u64(out: &mut String, value: Option<u64>) {
    match value {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

fn push_goal(out: &mut String, goal: Goal) {
    let _ = match goal {
        Goal::Outcome(b) => write!(out, "{{\"kind\":\"outcome\",\"index\":{b}}}"),
        Goal::Condition(c, v) => {
            write!(out, "{{\"kind\":\"condition\",\"index\":{c},\"value\":{v}}}")
        }
        Goal::Mcdc(c) => write!(out, "{{\"kind\":\"mcdc\",\"index\":{c}}}"),
    };
}

fn parse_goal(value: &Json) -> Result<Goal, String> {
    let kind = value.get("kind").and_then(Json::as_str).ok_or("hit: missing goal `kind`")?;
    let index = field_u64(value, "index")? as usize;
    match kind {
        "outcome" => Ok(Goal::Outcome(index)),
        "mcdc" => Ok(Goal::Mcdc(index)),
        "condition" => match value.get("value") {
            Some(Json::Bool(v)) => Ok(Goal::Condition(index, *v)),
            _ => Err("hit: condition goal missing boolean `value`".to_string()),
        },
        other => Err(format!("hit: unknown goal kind `{other}`")),
    }
}

fn field_u64(value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("campaign artifact: missing or non-integer `{key}`"))
}

fn field_f64(value: &Json, key: &str) -> Result<f64, String> {
    value
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("campaign artifact: missing or non-numeric `{key}`"))
}

fn opt_field_u64(value: &Json, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            v.as_u64().map(Some).ok_or_else(|| format!("campaign artifact: non-integer `{key}`"))
        }
    }
}

fn parse_case(value: &Json) -> Result<CampaignCase, String> {
    Ok(CampaignCase {
        id: field_u64(value, "id")?,
        shard: field_u64(value, "shard")? as usize,
        executions: field_u64(value, "executions")?,
        covered_branches: field_u64(value, "covered_branches")? as usize,
        t_s: field_f64(value, "t_s")?,
        bytes: from_hex(value.get("bytes").and_then(Json::as_str).ok_or("case: missing `bytes`")?)?,
    })
}

fn parse_lineage_record(value: &Json) -> Result<LineageRecord, String> {
    let ops = value
        .get("ops")
        .and_then(Json::as_array)
        .ok_or("lineage record: missing `ops`")?
        .iter()
        .map(|op| {
            let idx = op.as_u64().ok_or("lineage record: non-integer op index")? as usize;
            MutationKind::ALL
                .get(idx)
                .copied()
                .ok_or_else(|| format!("lineage record: op index {idx} out of Table-1 range"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let origin = match value.get("origin").and_then(Json::as_str) {
        Some("bootstrap") => LineageOrigin::Bootstrap,
        Some("external") => LineageOrigin::External,
        Some("mutant") => LineageOrigin::Mutant,
        Some(other) => return Err(format!("lineage record: unknown origin `{other}`")),
        None => return Err("lineage record: missing `origin`".to_string()),
    };
    Ok(LineageRecord {
        id: field_u64(value, "id")?,
        parent: opt_field_u64(value, "parent")?,
        crossover: opt_field_u64(value, "crossover")?,
        ops,
        origin,
        shard: field_u64(value, "shard")? as usize,
        executions: field_u64(value, "executions")?,
    })
}

fn parse_series_point(value: &Json) -> Result<SeriesPoint, String> {
    Ok(SeriesPoint {
        t_s: field_f64(value, "t_s")?,
        executions: field_u64(value, "executions")?,
        covered: field_u64(value, "covered")? as usize,
        branch_count: field_u64(value, "branch_count")? as usize,
        corpus: field_u64(value, "corpus")?,
        frontier_open: field_u64(value, "frontier_open")? as usize,
        execs_per_sec: field_f64(value, "execs_per_sec")?,
    })
}

fn parse_yield_row(value: &Json) -> Result<YieldReport, String> {
    Ok(YieldReport {
        name: value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("yield row: missing `name`")?
            .to_string(),
        executed: field_u64(value, "executed")?,
        new_coverage: field_u64(value, "new_coverage")?,
        corpus_insert: field_u64(value, "corpus_insert")?,
        violation: field_u64(value, "violation")?,
    })
}

fn parse_span_summary(value: &Json) -> Result<SpanSummary, String> {
    Ok(SpanSummary {
        name: value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("span summary: missing `name`")?
            .to_string(),
        count: field_u64(value, "count")?,
        total_ns: field_u64(value, "total_ns")?,
        p50_ns: field_u64(value, "p50_ns")?,
        p99_ns: field_u64(value, "p99_ns")?,
    })
}

fn parse_hit(value: &Json) -> Result<CampaignHit, String> {
    let ops = value
        .get("ops")
        .and_then(Json::as_array)
        .ok_or("hit: missing `ops`")?
        .iter()
        .map(|op| {
            op.as_u64()
                .filter(|&v| v < MutationKind::ALL.len() as u64)
                .map(|v| v as u8)
                .ok_or("hit: op index out of Table-1 range".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(CampaignHit {
        goal: parse_goal(value.get("goal").ok_or("hit: missing `goal`")?)?,
        executions: field_u64(value, "executions")?,
        elapsed_s: field_f64(value, "elapsed_s")?,
        shard: field_u64(value, "shard")? as usize,
        case: field_u64(value, "case")?,
        ops,
    })
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    if !text.len().is_multiple_of(2) {
        return Err("case: odd-length hex byte string".to_string());
    }
    (0..text.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(text.get(i..i + 2).ok_or("case: non-ASCII hex")?, 16)
                .map_err(|_| format!("case: invalid hex at offset {i}"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    fn sample_artifact() -> CampaignArtifact {
        CampaignArtifact {
            model: "demo \"quoted\"".to_string(),
            seed: 7,
            workers: 2,
            executions: 1234,
            iterations: 5678,
            elapsed_s: 1.25,
            branch_count: 10,
            covered_branches: 8,
            cases: vec![CampaignCase {
                id: SHARD_ID_STRIDE + 3,
                shard: 1,
                executions: 17,
                covered_branches: 4,
                t_s: 0.5,
                bytes: vec![0x00, 0xff, 0x7f],
            }],
            lineage: vec![
                LineageRecord {
                    id: 0,
                    parent: None,
                    crossover: None,
                    ops: vec![],
                    origin: LineageOrigin::Bootstrap,
                    shard: 0,
                    executions: 1,
                },
                LineageRecord {
                    id: SHARD_ID_STRIDE + 3,
                    parent: Some(0),
                    crossover: Some(0),
                    ops: vec![MutationKind::TuplesCrossOver, MutationKind::EraseTuples],
                    origin: LineageOrigin::Mutant,
                    shard: 1,
                    executions: 17,
                },
            ],
            hits: vec![
                CampaignHit {
                    goal: Goal::Outcome(2),
                    executions: 17,
                    elapsed_s: 0.5,
                    shard: 1,
                    case: SHARD_ID_STRIDE + 3,
                    ops: vec![7, 2],
                },
                CampaignHit {
                    goal: Goal::Condition(1, true),
                    executions: 1,
                    elapsed_s: 0.0,
                    shard: 0,
                    case: 0,
                    ops: vec![],
                },
                CampaignHit {
                    goal: Goal::Mcdc(1),
                    executions: 17,
                    elapsed_s: 0.5,
                    shard: 1,
                    case: SHARD_ID_STRIDE + 3,
                    ops: vec![7, 2],
                },
            ],
            series: vec![SeriesPoint {
                t_s: 0.5,
                executions: 17,
                covered: 4,
                branch_count: 10,
                corpus: 2,
                frontier_open: 6,
                execs_per_sec: 34.0,
            }],
            engine: Some("flat".to_string()),
            host: Some(HostMeta { cores: 8, arch: "x86_64".to_string() }),
            yields: vec![YieldReport {
                name: "EraseTuples".to_string(),
                executed: 40,
                new_coverage: 3,
                corpus_insert: 2,
                violation: 0,
            }],
            spans: vec![SpanSummary {
                name: "execution".to_string(),
                count: 17,
                total_ns: 120_000,
                p50_ns: 6_000,
                p99_ns: 20_000,
            }],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let artifact = sample_artifact();
        let json = artifact.to_json();
        let parsed = CampaignArtifact::from_json(&json).expect("round trip parses");
        assert_eq!(parsed, artifact);
        // Serializing the parse reproduces the exact document.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn malformed_documents_are_rejected_with_field_names() {
        assert!(CampaignArtifact::from_json("not json").is_err());
        let err = CampaignArtifact::from_json("{\"model\":\"m\"}").unwrap_err();
        assert!(err.contains("cases"), "{err}");
        let doc =
            sample_artifact().to_json().replace("\"origin\":\"mutant\"", "\"origin\":\"alien\"");
        assert!(CampaignArtifact::from_json(&doc).unwrap_err().contains("alien"));
        let doc = sample_artifact().to_json().replace("\"bytes\":\"00ff7f\"", "\"bytes\":\"00f\"");
        assert!(CampaignArtifact::from_json(&doc).unwrap_err().contains("hex"));
        let doc = sample_artifact().to_json().replace("\"series\":[", "\"series\":{},\"x\":[");
        assert!(CampaignArtifact::from_json(&doc).unwrap_err().contains("series"));
    }

    #[test]
    fn pre_series_documents_still_parse() {
        // Artifacts written before the series schema have no `series` key
        // (and a fortiori none of the comparison-schema keys either); they
        // must load with empty defaults, not fail.
        let mut artifact = sample_artifact();
        let json = artifact.to_json();
        let start = json.find(",\n\"series\":[").expect("series key present");
        let end = json.rfind(']').expect("last array close");
        let legacy = format!("{}{}", &json[..start], &json[end + 1..]);
        let parsed = CampaignArtifact::from_json(&legacy).expect("legacy artifact parses");
        assert!(parsed.series.is_empty());
        assert_eq!(parsed.engine, None);
        assert_eq!(parsed.host, None);
        assert!(parsed.yields.is_empty() && parsed.spans.is_empty());
        artifact.series.clear();
        artifact.engine = None;
        artifact.host = None;
        artifact.yields.clear();
        artifact.spans.clear();
        assert_eq!(parsed, artifact);
    }

    #[test]
    fn null_engine_and_host_round_trip() {
        // A run without telemetry writes `engine`/`host` as null and empty
        // spans; the round trip must preserve that exactly.
        let mut artifact = sample_artifact();
        artifact.engine = None;
        artifact.host = None;
        artifact.spans.clear();
        let json = artifact.to_json();
        assert!(json.contains("\"engine\":null"));
        assert!(json.contains("\"host\":null"));
        let parsed = CampaignArtifact::from_json(&json).expect("round trip parses");
        assert_eq!(parsed, artifact);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn case_id_parsing_accepts_both_forms() {
        assert_eq!(parse_case_id("s0:5"), Some(5));
        assert_eq!(parse_case_id("s3:17"), Some(3 * SHARD_ID_STRIDE + 17));
        assert_eq!(parse_case_id("42"), Some(42));
        assert_eq!(parse_case_id("s1"), None);
        assert_eq!(parse_case_id("sx:1"), None);
        // Round trip with the canonical renderer.
        let id = 2 * SHARD_ID_STRIDE + 9;
        assert_eq!(parse_case_id(&cftcg_coverage::format_case_id(id)), Some(id));
    }

    #[test]
    fn from_generation_captures_forensics_of_a_real_run() {
        let mut b = ModelBuilder::new("sat");
        let u = b.inport("u", DataType::I8);
        let sat = b.add("s", BlockKind::Saturation { lower: -10.0, upper: 10.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        let tool = crate::Cftcg::new(&b.finish().unwrap()).unwrap();
        let generation = tool.generate_executions(2_000, 3);
        let map = tool.compiled().map();
        let artifact = CampaignArtifact::from_generation("sat", 3, 1, &generation, map);

        assert_eq!(artifact.cases.len(), generation.suite.len());
        assert_eq!(artifact.executions, generation.executions);
        assert_eq!(artifact.branch_count, map.branch_count());
        assert!(artifact.covered_branches > 0);
        assert!(!artifact.hits.is_empty(), "a real run covers goals");
        assert!(
            artifact.yields.iter().any(|y| y.executed > 0),
            "a real run records mutation yields"
        );
        assert!(artifact.engine.is_none() && artifact.spans.is_empty(), "CLI-attached only");
        // Every hit's case resolves through the lineage DAG to a root.
        let dag = artifact.lineage_dag();
        for hit in &artifact.hits {
            let chain = dag.chain(hit.case);
            assert!(!chain.is_empty(), "hit case {} missing from lineage", hit.case);
            assert!(chain.last().unwrap().parent.is_none());
        }
        // And the whole artifact survives persistence.
        let parsed = CampaignArtifact::from_json(&artifact.to_json()).unwrap();
        assert_eq!(parsed, artifact);
    }
}
