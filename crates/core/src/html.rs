//! The HTML campaign explorer: one self-contained document (inline CSS,
//! inline SVG, zero JavaScript, zero external requests) that renders a
//! persisted campaign for a human — summary tiles, the coverage-vs-time
//! curve, a per-decision annotated goal listing with first-hit provenance,
//! the frontier table of every open goal with its cause classification,
//! and the suite with full mutation lineage chains.
//!
//! The renderer is a pure function of its inputs and byte-stable: every
//! collection it walks is in a deterministic order (map index order,
//! emission order, canonical goal order), so two renders of the same
//! artifact are identical — which is what the golden-file test in the
//! umbrella crate pins down.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use cftcg_codegen::{replay_case, CompiledModel, TestCase};
use cftcg_coverage::{
    format_case_id, frontier, CoverageReport, FullTracker, Goal, InstrumentationMap, Ratio,
};
use cftcg_fuzz::{format_chain, MutationKind};
use cftcg_trace::{trace_vm_case, ProbeMask, Trace};

use crate::campaign::{CampaignArtifact, CampaignCase, CampaignHit};

/// Renders the campaign explorer. `tracker` must hold the replayed
/// observations of the artifact's suite (the CLI rebuilds it by replaying
/// the embedded case bytes through the compiled model), so the coverage,
/// per-goal status, and frontier shown all derive from the same evidence.
/// The compiled model (not just its instrumentation map) is needed to
/// replay violation witnesses and capture their output waveforms.
pub fn campaign_explorer_html(
    compiled: &CompiledModel,
    artifact: &CampaignArtifact,
    tracker: &FullTracker,
) -> String {
    let map = compiled.map();
    let report = CoverageReport::score(map, tracker);
    let open = frontier(map, tracker);
    let open_goals: HashSet<Goal> = open.iter().map(|e| e.goal).collect();
    let hit_by_goal: HashMap<Goal, &CampaignHit> =
        artifact.hits.iter().map(|h| (h.goal, h)).collect();
    let lineage = artifact.lineage_dag();

    let mut out = String::with_capacity(64 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(out, "<title>CFTCG campaign explorer — {}</title>", esc(&artifact.model));
    out.push_str(STYLE);
    out.push_str("</head>\n<body>\n");
    let _ = writeln!(out, "<h1>CFTCG campaign explorer — {}</h1>", esc(&artifact.model));

    render_summary(&mut out, artifact, &report);
    render_series(&mut out, artifact);
    render_telemetry_series(&mut out, artifact);
    render_goals(&mut out, map, tracker, &open_goals, &hit_by_goal);
    render_frontier(&mut out, &open);
    render_forensics(&mut out, artifact, &lineage);
    render_waveforms(&mut out, compiled, artifact);
    render_cases(&mut out, artifact, &lineage);

    out.push_str("</body>\n</html>\n");
    out
}

const STYLE: &str = "<style>\n\
body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:70rem;color:#1a1a2a;padding:0 1rem}\n\
h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #ccd;padding-bottom:.2rem}\n\
.tiles{display:flex;flex-wrap:wrap;gap:.6rem;margin:1rem 0}\n\
.tile{border:1px solid #ccd;border-radius:6px;padding:.5rem .8rem;background:#f7f8fb}\n\
.tile b{display:block;font-size:1.15rem}.tile span{color:#567;font-size:.8rem}\n\
table{border-collapse:collapse;width:100%;margin:.6rem 0}\n\
th,td{border:1px solid #dde;padding:.25rem .5rem;text-align:left;vertical-align:top}\n\
th{background:#eef0f6}tr.open td{background:#fff4f2}tr.hit td{background:#f4fbf4}\n\
code{background:#eef;padding:0 .2rem;border-radius:3px;font-size:.92em}\n\
.cov{color:#1a7a2a;font-weight:600}.miss{color:#b03030;font-weight:600}\n\
details{margin:.6rem 0}summary{cursor:pointer;font-weight:600}\n\
svg{background:#fbfcff;border:1px solid #ccd;border-radius:6px}\n\
.chain{font-family:ui-monospace,monospace;font-size:.85em;word-break:break-word}\n\
</style>\n";

fn render_summary(out: &mut String, artifact: &CampaignArtifact, report: &CoverageReport) {
    out.push_str("<div class=\"tiles\">\n");
    let mut tile = |value: String, label: &str| {
        let _ = writeln!(out, "<div class=\"tile\"><b>{value}</b><span>{label}</span></div>");
    };
    tile(artifact.seed.to_string(), "seed");
    tile(artifact.workers.to_string(), "workers");
    tile(artifact.executions.to_string(), "inputs executed");
    tile(artifact.iterations.to_string(), "model iterations");
    tile(format!("{:.2}s", artifact.elapsed_s), "wall clock");
    tile(artifact.cases.len().to_string(), "test cases");
    tile(ratio_text(report.decision), "decision coverage");
    tile(ratio_text(report.condition), "condition coverage");
    tile(ratio_text(report.mcdc), "MCDC");
    out.push_str("</div>\n");
}

fn ratio_text(ratio: Ratio) -> String {
    format!("{}/{} ({:.1}%)", ratio.covered, ratio.total, ratio.percent())
}

/// Inline-SVG coverage-vs-time curve built from the per-case emission
/// metadata: each emitted case is one step of the cumulative covered-branch
/// count (the data behind the paper's Figure 7, per campaign).
fn render_series(out: &mut String, artifact: &CampaignArtifact) {
    out.push_str("<h2>Coverage over time</h2>\n");
    if artifact.cases.is_empty() {
        out.push_str("<p>No test cases were emitted.</p>\n");
        return;
    }
    const W: f64 = 680.0;
    const H: f64 = 200.0;
    const PAD: f64 = 42.0;
    let max_t = artifact.cases.iter().map(|c| c.t_s).fold(artifact.elapsed_s, f64::max).max(1e-9);
    let max_c = artifact.branch_count.max(1) as f64;
    let x = |t: f64| PAD + (W - 2.0 * PAD) * (t / max_t);
    let y = |c: f64| H - PAD + (2.0 * PAD - H) * (c / max_c);

    let mut points = String::new();
    let mut last = 0.0f64;
    let _ = write!(points, "{:.1},{:.1}", x(0.0), y(0.0));
    for case in &artifact.cases {
        // Step function: hold the previous level until the case landed.
        let _ = write!(points, " {:.1},{:.1}", x(case.t_s), y(last));
        last = case.covered_branches as f64;
        let _ = write!(points, " {:.1},{:.1}", x(case.t_s), y(last));
    }
    let _ = write!(points, " {:.1},{:.1}", x(max_t), y(last));

    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\" \
         aria-label=\"covered branches over time\">\n\
         <line x1=\"{p}\" y1=\"{yb:.1}\" x2=\"{xe:.1}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <line x1=\"{p}\" y1=\"{yt:.1}\" x2=\"{p}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <text x=\"{p}\" y=\"{H}\" font-size=\"11\" fill=\"#567\">0s</text>\n\
         <text x=\"{xe:.1}\" y=\"{H}\" font-size=\"11\" fill=\"#567\" text-anchor=\"end\">{max_t:.2}s</text>\n\
         <text x=\"4\" y=\"{yt2:.1}\" font-size=\"11\" fill=\"#567\">{branches}</text>\n\
         <text x=\"4\" y=\"{yb:.1}\" font-size=\"11\" fill=\"#567\">0</text>\n\
         <polyline fill=\"none\" stroke=\"#2a6fb0\" stroke-width=\"2\" points=\"{points}\"/>\n\
         </svg>\n",
        p = PAD,
        yb = y(0.0),
        yt = y(max_c),
        yt2 = y(max_c) + 4.0,
        xe = x(max_t),
        branches = artifact.branch_count,
    );
    let _ = writeln!(
        out,
        "<p>{} of {} branch probes covered.</p>",
        artifact.covered_branches, artifact.branch_count
    );
}

/// The telemetry time-series panel: sampled campaign progress (covered
/// branches plus execution rate) from the bounded registry ring persisted
/// into the artifact. Skipped entirely when the campaign ran without
/// telemetry — the per-case curve above is always available.
fn render_telemetry_series(out: &mut String, artifact: &CampaignArtifact) {
    if artifact.series.is_empty() {
        return;
    }
    out.push_str("<h2>Sampled campaign progress</h2>\n");
    const W: f64 = 680.0;
    const H: f64 = 200.0;
    const PAD: f64 = 42.0;
    let series = &artifact.series;
    let max_t = series.iter().map(|p| p.t_s).fold(artifact.elapsed_s, f64::max).max(1e-9);
    let max_c = artifact.branch_count.max(1) as f64;
    let max_rate = series.iter().map(|p| p.execs_per_sec).fold(1e-9, f64::max);
    let x = |t: f64| PAD + (W - 2.0 * PAD) * (t / max_t);
    let y = |frac: f64| H - PAD + (2.0 * PAD - H) * frac;

    let mut coverage = String::new();
    let mut rate = String::new();
    for (i, p) in series.iter().enumerate() {
        let sep = if i == 0 { "" } else { " " };
        let _ = write!(coverage, "{sep}{:.1},{:.1}", x(p.t_s), y(p.covered as f64 / max_c));
        let _ = write!(rate, "{sep}{:.1},{:.1}", x(p.t_s), y(p.execs_per_sec / max_rate));
    }

    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\" \
         aria-label=\"sampled coverage and execution rate over time\">\n\
         <line x1=\"{p}\" y1=\"{yb:.1}\" x2=\"{xe:.1}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <line x1=\"{p}\" y1=\"{yt:.1}\" x2=\"{p}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <text x=\"{p}\" y=\"{H}\" font-size=\"11\" fill=\"#567\">0s</text>\n\
         <text x=\"{xe:.1}\" y=\"{H}\" font-size=\"11\" fill=\"#567\" text-anchor=\"end\">{max_t:.2}s</text>\n\
         <text x=\"4\" y=\"{yt2:.1}\" font-size=\"11\" fill=\"#567\">{branches}</text>\n\
         <text x=\"4\" y=\"{yb:.1}\" font-size=\"11\" fill=\"#567\">0</text>\n\
         <polyline fill=\"none\" stroke=\"#2a6fb0\" stroke-width=\"2\" points=\"{coverage}\"/>\n\
         <polyline fill=\"none\" stroke=\"#b0572a\" stroke-width=\"1.5\" stroke-dasharray=\"4 3\" points=\"{rate}\"/>\n\
         </svg>\n",
        p = PAD,
        yb = y(0.0),
        yt = y(1.0),
        yt2 = y(1.0) + 4.0,
        xe = x(max_t),
        branches = artifact.branch_count,
    );
    let _ = writeln!(
        out,
        "<p>{} telemetry samples; <span style=\"color:#2a6fb0\">covered branches</span> and \
         <span style=\"color:#b0572a\">execution rate</span> (dashed, peak {:.0}/s).</p>",
        series.len(),
        max_rate,
    );
}

/// Per-decision annotated goal listing: every outcome, condition polarity,
/// and MCDC goal of each decision, with covered/open status and first-hit
/// provenance where recorded.
fn render_goals(
    out: &mut String,
    map: &InstrumentationMap,
    tracker: &FullTracker,
    open_goals: &HashSet<Goal>,
    hit_by_goal: &HashMap<Goal, &CampaignHit>,
) {
    out.push_str("<h2>Goals by decision</h2>\n");
    for decision in map.decisions() {
        let total = decision.outcomes.len() + 3 * decision.conditions.len();
        let covered = decision.outcomes.iter().filter(|b| tracker.branch_hit(b.index())).count()
            + decision
                .conditions
                .iter()
                .flat_map(|c| {
                    [
                        !open_goals.contains(&Goal::Condition(c.index(), false)),
                        !open_goals.contains(&Goal::Condition(c.index(), true)),
                        !open_goals.contains(&Goal::Mcdc(c.index())),
                    ]
                })
                .filter(|&v| v)
                .count();
        let _ = writeln!(
            out,
            "<details{}><summary><code>{}</code> — {covered}/{total} goals</summary>",
            if covered < total { " open" } else { "" },
            esc(&decision.label),
        );
        out.push_str("<table>\n<tr><th>goal</th><th>status</th><th>first hit</th></tr>\n");
        for &branch in &decision.outcomes {
            let b = branch.index();
            goal_row(out, map, Goal::Outcome(b), tracker.branch_hit(b), hit_by_goal);
        }
        for &cond in &decision.conditions {
            let c = cond.index();
            for value in [false, true] {
                let goal = Goal::Condition(c, value);
                goal_row(out, map, goal, !open_goals.contains(&goal), hit_by_goal);
            }
            let goal = Goal::Mcdc(c);
            goal_row(out, map, goal, !open_goals.contains(&goal), hit_by_goal);
        }
        out.push_str("</table>\n</details>\n");
    }
}

fn goal_row(
    out: &mut String,
    map: &InstrumentationMap,
    goal: Goal,
    covered: bool,
    hit_by_goal: &HashMap<Goal, &CampaignHit>,
) {
    let hit = hit_by_goal.get(&goal);
    let provenance = match hit {
        Some(h) => format!(
            "<code>{}</code> at execution {} via {}",
            format_case_id(h.case),
            h.executions,
            esc(&op_chain(&h.ops)),
        ),
        None if covered => "—".to_string(),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "<tr class=\"{}\"><td>[{}] {}</td><td class=\"{}\">{}</td><td>{provenance}</td></tr>",
        if covered { "hit" } else { "open" },
        goal.metric(),
        esc(&goal.label(map)),
        if covered { "cov" } else { "miss" },
        if covered { "covered" } else { "open" },
    );
}

/// Operator chain of a first hit rendered with Table-1 names.
fn op_chain(ops: &[u8]) -> String {
    if ops.is_empty() {
        return "seed/bootstrap".to_string();
    }
    ops.iter()
        .map(|&i| MutationKind::ALL.get(i as usize).map_or("?", |k| k.name()))
        .collect::<Vec<_>>()
        .join("+")
}

/// The frontier table: every open goal with its cause classification and
/// the byte-stable detail line from the frontier analyzer.
fn render_frontier(out: &mut String, open: &[cftcg_coverage::FrontierEntry]) {
    let _ = writeln!(out, "<h2>Frontier — {} open goal{}</h2>", open.len(), plural(open.len()));
    if open.is_empty() {
        out.push_str("<p>Every goal of the model is covered.</p>\n");
        return;
    }
    out.push_str("<table>\n<tr><th>metric</th><th>goal</th><th>cause</th><th>detail</th></tr>\n");
    for entry in open {
        let _ = writeln!(
            out,
            "<tr class=\"open\"><td>{}</td><td>{}</td><td><code>{}</code></td><td>{}</td></tr>",
            entry.goal.metric(),
            esc(&entry.label),
            entry.cause.tag(),
            esc(&entry.detail),
        );
    }
    out.push_str("</table>\n");
}

/// Search forensics: which mutation operators actually earned the covered
/// goals (from first-hit provenance chains) and which emitted cases were
/// productive ancestors (from the lineage DAG). The post-mortem counterpart
/// of the live dashboard's yield table.
fn render_forensics(out: &mut String, artifact: &CampaignArtifact, lineage: &cftcg_fuzz::Lineage) {
    out.push_str("<h2>Search forensics</h2>\n");

    out.push_str("<h3>Operator yield at first hit</h3>\n");
    if artifact.hits.is_empty() {
        out.push_str("<p>No first-hit provenance recorded.</p>\n");
    } else {
        let bootstrap = artifact.hits.iter().filter(|h| h.ops.is_empty()).count();
        out.push_str("<table>\n<tr><th>operator</th><th>goals whose first hit used it</th></tr>\n");
        for (i, kind) in MutationKind::ALL.iter().enumerate() {
            let count = artifact.hits.iter().filter(|h| h.ops.contains(&(i as u8))).count();
            if count == 0 {
                continue;
            }
            let _ = writeln!(out, "<tr><td>{}</td><td>{count}</td></tr>", kind.name());
        }
        if bootstrap > 0 {
            let _ = writeln!(out, "<tr><td>seed/bootstrap</td><td>{bootstrap}</td></tr>");
        }
        out.push_str("</table>\n");
    }

    out.push_str("<h3>Productive ancestors</h3>\n");
    let mut rows = Vec::new();
    for case in &artifact.cases {
        let children = lineage.records().iter().filter(|r| r.parent == Some(case.id)).count();
        let goals = artifact.hits.iter().filter(|h| h.case == case.id).count();
        if children == 0 && goals == 0 {
            continue;
        }
        let depth = lineage.chain(case.id).len().saturating_sub(1);
        rows.push((case.id, depth, children, goals));
    }
    if rows.is_empty() {
        out.push_str("<p>No emitted case has recorded descendants or first hits.</p>\n");
        return;
    }
    out.push_str(
        "<table>\n<tr><th>case</th><th>mutation depth</th><th>children minted</th>\
         <th>goals first hit</th></tr>\n",
    );
    for (id, depth, children, goals) in rows {
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td>{depth}</td><td>{children}</td><td>{goals}</td></tr>",
            format_case_id(id),
        );
    }
    out.push_str("</table>\n");
}

/// Violation witnesses to plot at most; the remainder is summarized.
const MAX_WAVEFORM_CASES: usize = 4;

/// Trace-ring bound per plotted witness (records, not ticks): generous
/// enough for every output of every bundled model over the iteration cap,
/// while still bounding a pathological case.
const WAVEFORM_CAPACITY: usize = 1 << 16;

/// Inline output waveforms for every assertion-violating case: each suite
/// case is replayed to see whether it fails an assertion, and the first few
/// witnesses get one step-line plot per model output (the Scope view of the
/// failure). Absent when the model has no assertions or no case violates.
fn render_waveforms(out: &mut String, compiled: &CompiledModel, artifact: &CampaignArtifact) {
    let map = compiled.map();
    if map.assertions().is_empty() {
        return;
    }
    let mut witnesses: Vec<(&CampaignCase, Vec<usize>)> = Vec::new();
    for case in &artifact.cases {
        let mut tracker = FullTracker::new(map);
        replay_case(compiled, &TestCase::new(case.bytes.clone()), &mut tracker);
        let failed: Vec<usize> =
            (0..map.assertions().len()).filter(|&i| tracker.assertion_failures(i) > 0).collect();
        if !failed.is_empty() {
            witnesses.push((case, failed));
        }
    }
    if witnesses.is_empty() {
        return;
    }
    let _ = writeln!(
        out,
        "<h2>Violation waveforms — {} witness case{}</h2>",
        witnesses.len(),
        plural(witnesses.len()),
    );
    if witnesses.len() > MAX_WAVEFORM_CASES {
        let _ = writeln!(out, "<p>Showing the first {MAX_WAVEFORM_CASES} witnesses.</p>");
    }
    let mask = ProbeMask::outputs(compiled);
    for (case, failed) in witnesses.iter().take(MAX_WAVEFORM_CASES) {
        let labels: Vec<String> = failed
            .iter()
            .map(|&i| map.assertions().get(i).cloned().unwrap_or_else(|| format!("#{i}")))
            .collect();
        let _ = writeln!(
            out,
            "<h3><code>{}</code> — violates {}</h3>",
            format_case_id(case.id),
            esc(&labels.join(", ")),
        );
        let trace =
            trace_vm_case(compiled, &TestCase::new(case.bytes.clone()), &mask, WAVEFORM_CAPACITY);
        if trace.dropped() > 0 {
            let _ =
                writeln!(out, "<p>Long case: showing the most recent {} samples.</p>", trace.len());
        }
        render_waveform_svgs(out, &trace);
    }
}

/// One compact step-line SVG per probed signal of a captured trace.
fn render_waveform_svgs(out: &mut String, trace: &Trace) {
    const W: f64 = 680.0;
    const H: f64 = 90.0;
    const PAD: f64 = 42.0;
    let last_tick = trace.records().map(|r| r.tick).max().unwrap_or(0);
    for (k, signal) in trace.signals().iter().enumerate() {
        let series: Vec<(u64, f64)> =
            trace.records().filter(|r| r.signal == k as u32).map(|r| (r.tick, r.value)).collect();
        if series.is_empty() {
            continue;
        }
        let (mut lo, mut hi) = series
            .iter()
            .filter(|(_, v)| v.is_finite())
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, v)| (lo.min(v), hi.max(v)));
        if !lo.is_finite() || !hi.is_finite() {
            (lo, hi) = (0.0, 1.0); // no finite samples: arbitrary fixed frame
        }
        if lo == hi {
            // A flat signal still needs a non-degenerate y range.
            (lo, hi) = (lo - 1.0, hi + 1.0);
        }
        let span = (last_tick.max(1)) as f64;
        let x = |t: u64| PAD + (W - 2.0 * PAD) * (t as f64 / span);
        let y = |v: f64| H - 22.0 + (14.0 - (H - 22.0)) * ((v - lo) / (hi - lo));
        // Step polylines, broken at non-finite samples (NaN/±inf have no
        // plottable y; the gap makes them visible instead of lying).
        let mut segments: Vec<String> = Vec::new();
        let mut current = String::new();
        let mut prev: Option<(u64, f64)> = None;
        for &(t, v) in &series {
            if !v.is_finite() {
                if !current.is_empty() {
                    segments.push(std::mem::take(&mut current));
                }
                prev = None;
                continue;
            }
            if let Some((_, pv)) = prev {
                let _ = write!(current, " {:.1},{:.1}", x(t), y(pv));
            }
            if !current.is_empty() {
                current.push(' ');
            }
            let _ = write!(current, "{:.1},{:.1}", x(t), y(v));
            prev = Some((t, v));
        }
        if !current.is_empty() {
            segments.push(current);
        }
        let _ = writeln!(
            out,
            "<p><code>{}</code> <span class=\"range\">[{lo:.4} .. {hi:.4}]</span></p>",
            esc(&signal.name),
        );
        let _ = write!(
            out,
            "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\" \
             aria-label=\"waveform of {}\">\n\
             <line x1=\"{p}\" y1=\"{yb:.1}\" x2=\"{xe:.1}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
             <text x=\"{p}\" y=\"{H}\" font-size=\"11\" fill=\"#567\">tick 0</text>\n\
             <text x=\"{xe:.1}\" y=\"{H}\" font-size=\"11\" fill=\"#567\" \
             text-anchor=\"end\">tick {last_tick}</text>\n",
            esc(&signal.name),
            p = PAD,
            yb = H - 22.0,
            xe = x(last_tick.max(1)),
        );
        for points in &segments {
            let _ = writeln!(
                out,
                "<polyline fill=\"none\" stroke=\"#b0572a\" stroke-width=\"2\" points=\"{points}\"/>"
            );
        }
        out.push_str("</svg>\n");
    }
}

/// The emitted suite with full mutation lineage chains.
fn render_cases(out: &mut String, artifact: &CampaignArtifact, lineage: &cftcg_fuzz::Lineage) {
    let _ = writeln!(out, "<h2>Test cases — {} emitted</h2>", artifact.cases.len());
    if artifact.cases.is_empty() {
        return;
    }
    out.push_str(
        "<table>\n<tr><th>case</th><th>shard</th><th>execution</th><th>t</th>\
         <th>covered after</th><th>bytes</th><th>lineage</th></tr>\n",
    );
    for case in &artifact.cases {
        let chain = lineage.chain(case.id);
        let chain_text = if chain.is_empty() {
            "(no lineage recorded)".to_string()
        } else {
            format_chain(&chain)
        };
        let _ = writeln!(
            out,
            "<tr><td><code>{}</code></td><td>{}</td><td>{}</td><td>{:.2}s</td>\
             <td>{}</td><td>{}</td><td class=\"chain\">{}</td></tr>",
            format_case_id(case.id),
            case.shard,
            case.executions,
            case.t_s,
            case.covered_branches,
            case.bytes.len(),
            esc(&chain_text),
        );
    }
    out.push_str("</table>\n");
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Escapes text for HTML element content and attribute values.
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{BlockKind, DataType, LogicOp, ModelBuilder, RelOp};

    fn tool() -> crate::Cftcg {
        let mut b = ModelBuilder::new("explorer<&>test");
        let x = b.inport("x", DataType::Bool);
        let z = b.inport("z", DataType::Bool);
        let and = b.add("and", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
        let y = b.outport("y");
        b.feed(x, and, 0);
        b.feed(z, and, 1);
        b.wire(and, y);
        crate::Cftcg::new(&b.finish().unwrap()).unwrap()
    }

    fn render(tool: &crate::Cftcg, executions: u64) -> (CampaignArtifact, String) {
        let generation = tool.generate_executions(executions, 11);
        let map = tool.compiled().map();
        let artifact =
            CampaignArtifact::from_generation("explorer<&>test", 11, 1, &generation, map);
        let mut tracker = FullTracker::new(map);
        for case in &artifact.cases {
            replay_case(tool.compiled(), &TestCase::new(case.bytes.clone()), &mut tracker);
        }
        let html = campaign_explorer_html(tool.compiled(), &artifact, &tracker);
        (artifact, html)
    }

    #[test]
    fn explorer_is_self_contained_and_escaped() {
        let tool = tool();
        let (_, html) = render(&tool, 800);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        // Self-contained: no external fetches, no scripts.
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"));
        // The model name needed escaping and got it.
        assert!(html.contains("explorer&lt;&amp;&gt;test"));
        assert!(!html.contains("explorer<&>test"));
        // All sections render.
        for section in [
            "Coverage over time",
            "Goals by decision",
            "Frontier",
            "Search forensics",
            "Test cases",
        ] {
            assert!(html.contains(section), "missing section {section}");
        }
        assert!(html.contains("Operator yield at first hit"));
        assert!(html.contains("Productive ancestors"));
        // No assertions in the model: the waveform section stays absent.
        assert!(!html.contains("Violation waveforms"));
    }

    #[test]
    fn violation_witnesses_get_waveforms() {
        // The guarded integrator: "output stays below 100", violated by a
        // sustained positive input — which the fuzzer reliably finds.
        let mut b = ModelBuilder::new("guarded");
        let u = b.inport("u", DataType::I8);
        let u_f = b.add("u_f", BlockKind::DataTypeConversion { to: DataType::F64 });
        let integ = b.add(
            "integ",
            BlockKind::DiscreteIntegrator {
                gain: 1.0,
                initial: 0.0,
                lower: Some(-500.0),
                upper: Some(500.0),
            },
        );
        b.wire(u, u_f);
        b.wire(u_f, integ);
        let ok = b.add("ok", BlockKind::Compare { op: RelOp::Lt, constant: 100.0 });
        b.wire(integ, ok);
        let guard = b.add("safety", BlockKind::Assertion);
        b.wire(ok, guard);
        let y = b.outport("y");
        b.wire(integ, y);
        let tool = crate::Cftcg::new(&b.finish().unwrap()).unwrap();

        let generation = tool.generate_executions(3_000, 2);
        assert!(!generation.violations.is_empty(), "the violation must be found");
        let map = tool.compiled().map();
        let artifact = CampaignArtifact::from_generation("guarded", 2, 1, &generation, map);
        let mut tracker = FullTracker::new(map);
        for case in &artifact.cases {
            replay_case(tool.compiled(), &TestCase::new(case.bytes.clone()), &mut tracker);
        }
        let html = campaign_explorer_html(tool.compiled(), &artifact, &tracker);
        assert!(html.contains("Violation waveforms"), "witness section renders");
        assert!(html.contains("safety"), "the failed assertion is named");
        assert!(html.contains("aria-label=\"waveform of"), "an output waveform is plotted");
    }

    #[test]
    fn every_open_goal_appears_with_a_cause() {
        let tool = tool();
        // A tiny budget leaves goals open (at minimum the run is unlikely to
        // demonstrate all MCDC pairs in 30 executions; if it does, the
        // frontier section must say so instead).
        let (artifact, html) = render(&tool, 30);
        let map = tool.compiled().map();
        let mut tracker = FullTracker::new(map);
        for case in &artifact.cases {
            replay_case(tool.compiled(), &TestCase::new(case.bytes.clone()), &mut tracker);
        }
        let open = frontier(map, &tracker);
        if open.is_empty() {
            assert!(html.contains("Every goal of the model is covered."));
        }
        for entry in &open {
            assert!(html.contains(&esc(&entry.label)), "missing open goal {}", entry.label);
            assert!(html.contains(entry.cause.tag()), "missing cause {}", entry.cause.tag());
        }
        // And every covered goal carries its provenance annotation.
        for hit in &artifact.hits {
            assert!(
                html.contains(&format!("<code>{}</code>", format_case_id(hit.case))),
                "missing provenance case {}",
                hit.case
            );
        }
    }

    #[test]
    fn rendering_is_byte_stable() {
        let tool = tool();
        let (artifact, first) = render(&tool, 500);
        let map = tool.compiled().map();
        for _ in 0..3 {
            let mut tracker = FullTracker::new(map);
            for case in &artifact.cases {
                replay_case(tool.compiled(), &TestCase::new(case.bytes.clone()), &mut tracker);
            }
            assert_eq!(campaign_explorer_html(tool.compiled(), &artifact, &tracker), first);
        }
    }
}
