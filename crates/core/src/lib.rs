#![warn(missing_docs)]

//! The CFTCG pipeline — the paper's tool, end to end.
//!
//! [`Cftcg`] wires together the two halves of the paper's Figure 2:
//!
//! 1. **Fuzzing Code Generation** — construction parses and validates the
//!    model, generates the fuzz driver (tuple layout + emitted C), and
//!    compiles the branch-instrumented fuzz code ([`cftcg_codegen`]).
//! 2. **Model Oriented Fuzzing Loop** — [`Cftcg::generate`] runs the
//!    tuple-aware fuzzer with iteration-difference-coverage feedback
//!    ([`cftcg_fuzz`]) under a wall-clock or execution budget.
//!
//! The result is a [`Generation`] (the emitted test suite with timestamps)
//! which [`Cftcg::score`] replays through the instrumented program for the
//! paper's three metrics, and which can be exported to Simulink-style CSV.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg_core::Cftcg;
//! use cftcg_model::{BlockKind, DataType, ModelBuilder};
//!
//! let mut b = ModelBuilder::new("clip");
//! let u = b.inport("u", DataType::I16);
//! let sat = b.add("sat", BlockKind::Saturation { lower: -50.0, upper: 50.0 });
//! let y = b.outport("y");
//! b.wire(u, sat);
//! b.wire(sat, y);
//! let model = b.finish()?;
//!
//! let cftcg = Cftcg::new(&model)?;
//! let generation = cftcg.generate_executions(5_000, 7);
//! let report = cftcg.score(&generation);
//! assert_eq!(report.decision.percent(), 100.0);
//! assert!(cftcg.fuzz_driver_c().contains("FuzzTestOneInput"));
//! # Ok(())
//! # }
//! ```

mod campaign;
mod html;

pub use campaign::{
    parse_case_id, CampaignArtifact, CampaignCase, CampaignHit, HostMeta, SpanSummary,
};
pub use html::campaign_explorer_html;

use std::time::Duration;

use cftcg_codegen::{
    compile, emit_c, emit_driver_c, replay_suite, CompileError, CompiledModel, TestCase,
};
use cftcg_coverage::CoverageReport;
use cftcg_fuzz::{FuzzConfig, Fuzzer, Generation, ParallelFuzzConfig, ParallelFuzzer};
use cftcg_model::Model;

/// A ready-to-fuzz model: the output of CFTCG's code generation stage.
#[derive(Debug, Clone)]
pub struct Cftcg {
    compiled: CompiledModel,
    config: FuzzConfig,
}

impl Cftcg {
    /// Runs fuzzing code generation on a model: validation, fuzz driver
    /// derivation, branch instrumentation, compilation.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the model is invalid.
    pub fn new(model: &Model) -> Result<Self, CompileError> {
        Ok(Cftcg { compiled: compile(model)?, config: FuzzConfig::default() })
    }

    /// Overrides the fuzzing-loop configuration (mutation/corpus/feedback
    /// knobs; the seed is supplied per run).
    pub fn with_config(mut self, config: FuzzConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs per-inport value-range constraints for input mutation — the
    /// paper's §5 extension for taming oversized integer domains. One range
    /// per inport, in port order.
    pub fn with_input_ranges(mut self, ranges: Vec<cftcg_fuzz::FieldRange>) -> Self {
        self.config.input_ranges = Some(ranges);
        self
    }

    /// Attaches a telemetry registry: the fuzzing loop (sequential or
    /// parallel) records counters/histograms into it and emits events to
    /// its sinks. Pure observation — the fuzzing trajectory is unchanged.
    pub fn with_telemetry(mut self, telemetry: std::sync::Arc<cftcg_telemetry::Telemetry>) -> Self {
        self.config.telemetry = Some(telemetry);
        self
    }

    /// Attaches a span-trace buffer: the fuzzing loop records sampled
    /// per-phase trace events (mutation, execution, sync, ...) into it for
    /// Chrome-trace export. Pure observation, like telemetry — the fuzzing
    /// trajectory is unchanged.
    pub fn with_span_trace(mut self, trace: cftcg_telemetry::SpanTrace) -> Self {
        self.config.span_trace = Some(trace);
        self
    }

    /// Arms the plateau watcher: with a telemetry registry attached, a
    /// `plateau` JSONL event fires — with a frontier diff naming the
    /// still-open goals — every time `window` executions pass without a
    /// coverage gain. Pure observation; the fuzzing trajectory is unchanged.
    pub fn with_plateau_window(mut self, window: u64) -> Self {
        self.config.plateau_window = Some(window);
        self
    }

    /// Selects the batched SoA fuzz tier at `width` lanes per pass (`0`
    /// picks [`cftcg_codegen::DEFAULT_BATCH_WIDTH`]). The `CFTCG_ENGINE`
    /// environment override still wins, like every engine preference.
    /// Campaign artifacts are byte-identical to the scalar engines'.
    pub fn with_batch(mut self, width: usize) -> Self {
        self.config.engine = Some(cftcg_codegen::Engine::Batch { width });
        self
    }

    /// Installs a trace hook observing every coverage-earning case the
    /// fuzzing loop emits (`hook(case_bytes, case_id)`). Pure observation —
    /// the hook consumes no fuzzer RNG and fires after emission, so
    /// outcomes are byte-identical with or without it (enforced by test).
    pub fn with_trace_hook(mut self, hook: cftcg_fuzz::TraceHook) -> Self {
        self.config.trace_hook = Some(hook);
        self
    }

    /// The compiled, instrumented model.
    pub fn compiled(&self) -> &CompiledModel {
        &self.compiled
    }

    /// The generated fuzz driver as C source (the paper's Figure 3).
    pub fn fuzz_driver_c(&self) -> String {
        emit_driver_c(&self.compiled)
    }

    /// The instrumented step function as C source (the paper's Figure 4
    /// instrumentation, synthesized).
    pub fn fuzz_code_c(&self) -> String {
        emit_c(&self.compiled)
    }

    /// The execution engine the fuzzing loops will run on, after applying
    /// the `CFTCG_ENGINE` override and unsupported-tier fallback — see
    /// [`FuzzConfig::resolved_engine`].
    pub fn engine(&self) -> cftcg_codegen::Engine {
        self.config.resolved_engine()
    }

    /// Runs the model-oriented fuzzing loop for a wall-clock budget.
    pub fn generate(&self, budget: Duration, seed: u64) -> Generation {
        let mut fuzzer = self.fuzzer(seed);
        let mut generation: Generation = fuzzer.run_for(budget).into();
        generation.notes = format!(
            "CFTCG: {} branches covered of {}",
            fuzzer.covered_branches(),
            self.compiled.map().branch_count()
        );
        generation
    }

    /// Runs the loop for an exact number of input executions
    /// (deterministic given the seed; used by tests and budget-matched
    /// experiments).
    pub fn generate_executions(&self, executions: u64, seed: u64) -> Generation {
        let mut fuzzer = self.fuzzer(seed);
        fuzzer.run_executions(executions).into()
    }

    /// Runs the sharded parallel fuzzing loop across `workers` shards for a
    /// wall-clock budget, merging coverage and corpora on a sync interval.
    /// With `workers == 1` this degrades gracefully to the sequential loop.
    pub fn generate_parallel(&self, budget: Duration, seed: u64, workers: usize) -> Generation {
        let fuzzer = self.parallel_fuzzer(seed, workers);
        let outcome = fuzzer.run_for(budget);
        let covered = outcome.covered_branches;
        let mut generation: Generation = outcome.into();
        generation.notes = format!(
            "CFTCG ({workers} workers): {} branches covered of {}",
            covered,
            self.compiled.map().branch_count()
        );
        generation
    }

    /// Runs the parallel loop for an exact number of executions split
    /// across `workers` shards (deterministic given seed and worker count;
    /// with one worker, byte-identical to [`Cftcg::generate_executions`]).
    pub fn generate_parallel_executions(
        &self,
        executions: u64,
        seed: u64,
        workers: usize,
    ) -> Generation {
        self.parallel_fuzzer(seed, workers).run_executions(executions).into()
    }

    /// Scores a generation's suite with the common replay yardstick.
    pub fn score(&self, generation: &Generation) -> CoverageReport {
        replay_suite(&self.compiled, &generation.suite)
    }

    /// Minimizes a generated suite: shrinks every case to the tuples its
    /// coverage needs, then drops cases contributing no unique coverage.
    /// The result covers the same *branches* (decision outcomes) with far
    /// fewer, shorter cases; condition/MCDC evidence is usually preserved
    /// but is not guaranteed (minimization tracks the branch bitmap only,
    /// like the fuzzing loop itself).
    pub fn minimize(&self, suite: &[TestCase]) -> Vec<TestCase> {
        let shrunk: Vec<TestCase> =
            suite.iter().map(|case| cftcg_fuzz::minimize_case(&self.compiled, case)).collect();
        cftcg_fuzz::minimize_suite(&self.compiled, &shrunk)
    }

    /// Exports a suite to Simulink-replayable CSV documents, one per test
    /// case (the paper's binary→CSV converter).
    pub fn export_csv(&self, suite: &[TestCase]) -> Vec<String> {
        suite
            .iter()
            .map(|case| cftcg_codegen::test_case_to_csv(self.compiled.layout(), case))
            .collect()
    }

    fn fuzzer(&self, seed: u64) -> Fuzzer<'_> {
        Fuzzer::new(&self.compiled, FuzzConfig { seed, ..self.config.clone() })
    }

    fn parallel_fuzzer(&self, seed: u64, workers: usize) -> ParallelFuzzer<'_> {
        ParallelFuzzer::new(
            &self.compiled,
            ParallelFuzzConfig {
                workers,
                fuzz: FuzzConfig { seed, ..self.config.clone() },
                ..ParallelFuzzConfig::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    fn small_pipeline() -> Cftcg {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::I8);
        let sat = b.add("sat", BlockKind::Saturation { lower: -10.0, upper: 10.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        Cftcg::new(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn pipeline_emits_code_and_suite() {
        let cftcg = small_pipeline();
        assert!(cftcg.fuzz_driver_c().contains("dataLen = 1"));
        assert!(cftcg.fuzz_code_c().contains("CoverageStatistics"));
        let generation = cftcg.generate_executions(2_000, 1);
        assert!(!generation.suite.is_empty());
        let report = cftcg.score(&generation);
        assert_eq!(report.decision.percent(), 100.0);
        let csvs = cftcg.export_csv(&generation.suite);
        assert_eq!(csvs.len(), generation.suite.len());
        assert!(csvs[0].starts_with("u\n"));
    }

    #[test]
    fn invalid_model_is_rejected() {
        let mut b = ModelBuilder::new("m");
        b.add("g", BlockKind::Gain { gain: 1.0 });
        assert!(Cftcg::new(&b.finish_unchecked()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let cftcg = small_pipeline();
        let a = cftcg.generate_executions(500, 42);
        let b = cftcg.generate_executions(500, 42);
        assert_eq!(a.suite, b.suite);
    }

    #[test]
    fn parallel_one_worker_matches_sequential_facade() {
        let cftcg = small_pipeline();
        let seq = cftcg.generate_executions(1_000, 11);
        let par = cftcg.generate_parallel_executions(1_000, 11, 1);
        assert_eq!(par.suite, seq.suite);
        assert_eq!(par.executions, seq.executions);
        assert_eq!(par.iterations, seq.iterations);
    }

    #[test]
    fn parallel_generation_scores_like_sequential() {
        let cftcg = small_pipeline();
        let generation = cftcg.generate_parallel_executions(2_000, 3, 2);
        let report = cftcg.score(&generation);
        assert_eq!(report.decision.percent(), 100.0);
    }

    #[test]
    fn pipeline_covers_solar_pv_reasonably_fast() {
        let cftcg = Cftcg::new(&cftcg_benchmarks::solar_pv::model()).unwrap();
        let generation = cftcg.generate_executions(6_000, 5);
        let report = cftcg.score(&generation);
        assert!(
            report.decision.percent() > 50.0,
            "6k executions should cover most of SolarPV, got {}",
            report.decision
        );
    }
}
