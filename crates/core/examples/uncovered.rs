//! Lists the branch probes a CFTCG fuzzing run fails to cover on a
//! benchmark model — the triage loop used while tuning the fuzzer.
//!
//! ```sh
//! cargo run --release -p cftcg-core --example uncovered -- TCP 10000 [seed]
//! ```

use cftcg_codegen::compile;
use cftcg_core::Cftcg;
use cftcg_coverage::FullTracker;
use std::time::Duration;
fn main() {
    let name = std::env::args().nth(1).unwrap_or("TCP".into());
    let ms: u64 = std::env::args().nth(2).map(|s| s.parse().unwrap()).unwrap_or(5000);
    let model = cftcg_benchmarks::by_name(&name).unwrap();
    let compiled = compile(&model).unwrap();
    let tool = Cftcg::new(&model).unwrap();
    let seed: u64 = std::env::args().nth(3).map(|s| s.parse().unwrap()).unwrap_or(0);
    let g = tool.generate(Duration::from_millis(ms), seed);
    let mut tracker = FullTracker::new(compiled.map());
    for case in &g.suite {
        cftcg_codegen::replay_case(&compiled, case, &mut tracker);
    }
    println!(
        "covered {}/{}",
        tracker.branch_hits().iter().filter(|&&h| h).count(),
        compiled.map().branch_count()
    );
    for (i, b) in compiled.map().branches().iter().enumerate() {
        if !tracker.branch_hit(i) {
            println!("  MISS {}", b.label);
        }
    }
}
