//! Property tests: trees in the shape the CFTCG model format uses (text only
//! as an element's only child) round-trip exactly; arbitrary mixed content
//! round-trips modulo surrounding whitespace introduced by indentation.

use cftcg_slimxml::{parse, Document, Element, Node};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z_][a-zA-Z0-9_.-]{0,8}".prop_map(|s| s)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Printable text including characters that need escaping; trimmed and
    // nonblank because the writer re-indents and the parser drops blanks.
    "[ -~]{0,12}[a-zA-Z<>&\"'][ -~]{0,12}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("nonblank", |s| !s.is_empty())
}

fn arb_attrs() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((arb_name(), arb_text()), 0..4)
}

/// Elements whose text appears only as an only-child — the `.mdlx` shape.
fn arb_element(depth: u32) -> BoxedStrategy<Element> {
    let leaf =
        (arb_name(), arb_attrs(), prop::option::of(arb_text())).prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                e.set_attr(k, v); // dedups keys
            }
            if let Some(t) = text {
                e.children.push(Node::Text(t));
            }
            e
        });
    if depth == 0 {
        return leaf.boxed();
    }
    (arb_name(), arb_attrs(), prop::collection::vec(arb_element(depth - 1), 0..4))
        .prop_map(|(name, attrs, children)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                e.set_attr(k, v);
            }
            for child in children {
                e.children.push(Node::Element(child));
            }
            e
        })
        .boxed()
}

fn normalize(e: &Element) -> Element {
    let mut out = Element::new(e.name.clone());
    out.attributes = e.attributes.clone();
    for child in &e.children {
        match child {
            Node::Element(c) => out.children.push(Node::Element(normalize(c))),
            Node::Text(t) => {
                let t = t.trim();
                if !t.is_empty() {
                    out.children.push(Node::Text(t.to_string()));
                }
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn model_shape_roundtrips_exactly(root in arb_element(3)) {
        let doc = Document::new(root.clone());
        let xml = doc.to_xml();
        let parsed = parse(&xml).unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert_eq!(parsed.root, root);
    }

    #[test]
    fn mixed_content_roundtrips_normalized(
        name in arb_name(),
        parts in prop::collection::vec(
            prop_oneof![
                arb_element(1).prop_map(Node::Element),
                arb_text().prop_map(Node::Text),
            ],
            0..5,
        ),
    ) {
        let mut root = Element::new(name);
        let mut last_was_text = false;
        for part in parts {
            let is_text = matches!(part, Node::Text(_));
            if is_text && last_was_text {
                continue; // adjacent text merges on reparse
            }
            last_was_text = is_text;
            root.children.push(part);
        }
        let xml = Document::new(root.clone()).to_xml();
        let parsed = parse(&xml).unwrap_or_else(|e| panic!("reparse failed: {e}\n{xml}"));
        prop_assert_eq!(normalize(&parsed.root), normalize(&root));
    }

    #[test]
    fn parser_never_panics(input in "[ -~\\n]{0,64}") {
        let _ = parse(&input);
    }
}
