//! Indented XML serialization with entity escaping.

use crate::{Element, Node};

/// Appends `element` to `out` indented at `depth` levels (two spaces each).
pub(crate) fn write_element(out: &mut String, element: &Element, depth: usize) {
    indent(out, depth);
    out.push('<');
    out.push_str(&element.name);
    for (key, value) in &element.attributes {
        out.push(' ');
        out.push_str(key);
        out.push_str("=\"");
        escape_into(out, value, true);
        out.push('"');
    }
    if element.children.is_empty() {
        out.push_str("/>\n");
        return;
    }
    // A single text child renders inline: `<a>text</a>`.
    if element.children.len() == 1 {
        if let Node::Text(t) = &element.children[0] {
            out.push('>');
            escape_into(out, t, false);
            out.push_str("</");
            out.push_str(&element.name);
            out.push_str(">\n");
            return;
        }
    }
    out.push_str(">\n");
    for child in &element.children {
        match child {
            Node::Element(e) => write_element(out, e, depth + 1),
            Node::Text(t) => {
                indent(out, depth + 1);
                escape_into(out, t, false);
                out.push('\n');
            }
        }
    }
    indent(out, depth);
    out.push_str("</");
    out.push_str(&element.name);
    out.push_str(">\n");
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(out: &mut String, raw: &str, in_attribute: bool) {
    for c in raw.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attribute => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse, Element};

    #[test]
    fn empty_element_self_closes() {
        assert_eq!(Element::new("a").to_xml(), "<a/>\n");
    }

    #[test]
    fn single_text_child_is_inline() {
        let e = Element::new("a").with_text("hi");
        assert_eq!(e.to_xml(), "<a>hi</a>\n");
    }

    #[test]
    fn nested_elements_indent() {
        let e = Element::new("a").with_child(Element::new("b").with_child(Element::new("c")));
        assert_eq!(e.to_xml(), "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
    }

    #[test]
    fn escaping_round_trips() {
        let e = Element::new("a").with_attr("v", "<&\">'").with_text("a<b&c>d\"e");
        let parsed = parse(&e.to_xml()).unwrap();
        assert_eq!(parsed.root, e);
    }

    #[test]
    fn attribute_order_is_preserved() {
        let e = Element::new("a").with_attr("z", "1").with_attr("a", "2");
        let xml = e.to_xml();
        assert!(xml.find("z=").unwrap() < xml.find("a=").unwrap());
    }
}
