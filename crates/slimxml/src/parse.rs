//! Recursive-descent XML parser.

use std::error::Error;
use std::fmt;

use crate::{Document, Element, Node};

/// Error produced when XML input is malformed.
///
/// Carries a 1-based line and column pointing at the offending byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseXmlError {
    message: String,
    line: usize,
    column: usize,
}

impl ParseXmlError {
    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column of the error.
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for ParseXmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl Error for ParseXmlError {}

/// Parses an XML document from a string.
///
/// Whitespace-only text between elements is discarded; any text node with
/// non-whitespace content is kept verbatim (entities decoded).
///
/// # Errors
///
/// Returns [`ParseXmlError`] on malformed input: mismatched tags, unclosed
/// elements, bad entities, stray content after the root element, and so on.
///
/// ```
/// # use cftcg_slimxml::parse;
/// let err = parse("<a><b></a>").unwrap_err();
/// assert!(err.message().contains("mismatched"));
/// ```
pub fn parse(input: &str) -> Result<Document, ParseXmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let has_declaration = p.saw_declaration;
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if !p.at_end() {
        return Err(p.error("content after root element"));
    }
    Ok(Document { has_declaration, root })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    saw_declaration: bool,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0, saw_declaration: false }
    }

    fn error(&self, message: impl Into<String>) -> ParseXmlError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        ParseXmlError { message: message.into(), line, column }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseXmlError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{s}`")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips the XML declaration if present.
    fn skip_prolog(&mut self) -> Result<(), ParseXmlError> {
        self.skip_whitespace();
        if self.eat("<?xml") {
            self.saw_declaration = true;
            loop {
                if self.eat("?>") {
                    break;
                }
                if self.bump().is_none() {
                    return Err(self.error("unterminated xml declaration"));
                }
            }
        }
        Ok(())
    }

    /// Skips whitespace and comments between top-level constructs.
    fn skip_misc(&mut self) -> Result<(), ParseXmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseXmlError> {
        self.expect("<!--")?;
        loop {
            if self.eat("-->") {
                return Ok(());
            }
            if self.bump().is_none() {
                return Err(self.error("unterminated comment"));
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseXmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':';
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        // Safety of from_utf8: we only consumed ASCII bytes.
        Ok(String::from_utf8(self.bytes[start..self.pos].to_vec()).expect("ascii name"))
    }

    fn parse_element(&mut self) -> Result<Element, ParseXmlError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.pos += 1;
                    self.parse_children(&mut element)?;
                    return Ok(element);
                }
                Some(_) => {
                    let (key, value) = self.parse_attribute()?;
                    if element.attr(&key).is_some() {
                        return Err(self.error(format!("duplicate attribute `{key}`")));
                    }
                    element.attributes.push((key, value));
                }
                None => return Err(self.error("unterminated start tag")),
            }
        }
    }

    fn parse_attribute(&mut self) -> Result<(String, String), ParseXmlError> {
        let key = self.parse_name()?;
        self.skip_whitespace();
        self.expect("=")?;
        self.skip_whitespace();
        let quote = match self.bump() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.error("expected quoted attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(b) if b == quote => {
                    self.pos += 1;
                    return Ok((key, value));
                }
                Some(b'&') => value.push(self.parse_entity()?),
                Some(b'<') => return Err(self.error("`<` not allowed in attribute value")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' || b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    value.push_str(self.str_slice(start));
                }
                None => return Err(self.error("unterminated attribute value")),
            }
        }
    }

    fn str_slice(&self, start: usize) -> &str {
        std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("")
    }

    fn parse_children(&mut self, parent: &mut Element) -> Result<(), ParseXmlError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(format!("unclosed element `{}`", parent.name))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        flush_text(&mut text, parent);
                        self.expect("</")?;
                        let name = self.parse_name()?;
                        if name != parent.name {
                            return Err(self.error(format!(
                                "mismatched closing tag: expected `</{}>`, found `</{}>`",
                                parent.name, name
                            )));
                        }
                        self.skip_whitespace();
                        self.expect(">")?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.skip_comment()?;
                    } else if self.starts_with("<![CDATA[") {
                        self.expect("<![CDATA[")?;
                        let start = self.pos;
                        loop {
                            if self.starts_with("]]>") {
                                text.push_str(self.str_slice(start));
                                self.expect("]]>")?;
                                break;
                            }
                            if self.bump().is_none() {
                                return Err(self.error("unterminated CDATA section"));
                            }
                        }
                    } else {
                        flush_text(&mut text, parent);
                        let child = self.parse_element()?;
                        parent.children.push(Node::Element(child));
                    }
                }
                Some(b'&') => text.push(self.parse_entity()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    text.push_str(self.str_slice(start));
                }
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, ParseXmlError> {
        self.expect("&")?;
        if self.eat("#") {
            let radix = if self.eat("x") { 16 } else { 10 };
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b';') {
                self.pos += 1;
            }
            let digits = self.str_slice(start).to_string();
            self.expect(";")?;
            let code = u32::from_str_radix(&digits, radix)
                .map_err(|_| self.error(format!("bad character reference `&#{digits};`")))?;
            return char::from_u32(code)
                .ok_or_else(|| self.error(format!("invalid character code {code}")));
        }
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b != b';') {
            self.pos += 1;
        }
        let name = self.str_slice(start).to_string();
        self.expect(";")?;
        match name.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "quot" => Ok('"'),
            "apos" => Ok('\''),
            other => Err(self.error(format!("unknown entity `&{other};`"))),
        }
    }
}

fn flush_text(text: &mut String, parent: &mut Element) {
    if !text.trim().is_empty() {
        parent.children.push(Node::Text(std::mem::take(text)));
    } else {
        text.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let doc = parse("<a/>").unwrap();
        assert_eq!(doc.root, Element::new("a"));
        assert!(!doc.has_declaration);
    }

    #[test]
    fn parses_declaration() {
        let doc = parse("<?xml version=\"1.0\"?>\n<a/>").unwrap();
        assert!(doc.has_declaration);
    }

    #[test]
    fn parses_attributes_both_quote_styles() {
        let doc = parse("<a x=\"1\" y='two'/>").unwrap();
        assert_eq!(doc.root.attr("x"), Some("1"));
        assert_eq!(doc.root.attr("y"), Some("two"));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let err = parse("<a x=\"1\" x=\"2\"/>").unwrap_err();
        assert!(err.message().contains("duplicate"));
    }

    #[test]
    fn parses_nested_elements() {
        let doc = parse("<a><b><c/></b><b/></a>").unwrap();
        assert_eq!(doc.root.children_named("b").count(), 2);
        assert!(doc.root.child("b").unwrap().child("c").is_some());
    }

    #[test]
    fn preserves_nonblank_text() {
        let doc = parse("<a>hello <b/>world</a>").unwrap();
        let texts: Vec<_> = doc.root.children.iter().filter_map(Node::as_text).collect();
        assert_eq!(texts, vec!["hello ", "world"]);
    }

    #[test]
    fn drops_whitespace_only_text() {
        let doc = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn decodes_entities() {
        let doc = parse("<a v=\"&lt;&gt;&amp;&quot;&apos;\">&#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root.attr("v"), Some("<>&\"'"));
        assert_eq!(doc.root.text(), "AB");
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = parse("<a>&bogus;</a>").unwrap_err();
        assert!(err.message().contains("unknown entity"));
    }

    #[test]
    fn parses_comments_and_cdata() {
        let doc = parse("<!-- top --><a><!-- in --><![CDATA[1 < 2]]></a>").unwrap();
        assert_eq!(doc.root.text(), "1 < 2");
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message().contains("mismatched"));
        assert_eq!(err.line(), 1);
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message().contains("after root"));
    }

    #[test]
    fn rejects_unclosed_element() {
        let err = parse("<a><b>").unwrap_err();
        assert!(err.message().contains("unclosed"));
    }

    #[test]
    fn error_position_is_tracked() {
        let err = parse("<a>\n  <b x=>\n</a>").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.column() > 1);
        let shown = err.to_string();
        assert!(shown.contains("2:"), "{shown}");
    }

    #[test]
    fn parses_unicode_text() {
        let doc = parse("<a>héllo → wörld</a>").unwrap();
        assert_eq!(doc.root.text(), "héllo → wörld");
    }
}
