#![warn(missing_docs)]

//! A minimal, dependency-free XML parser and writer.
//!
//! This crate stands in for the TinyXML library that the CFTCG paper uses to
//! load Simulink model files. It supports the subset of XML that the CFTCG
//! model format (`.mdlx`) needs:
//!
//! * elements with attributes (single- or double-quoted),
//! * nested elements and text content,
//! * XML declarations (`<?xml ...?>`), comments, and CDATA sections,
//! * the five predefined entities plus decimal/hex character references.
//!
//! It intentionally omits DTDs, namespaces-aware processing, and processing
//! instructions beyond the leading declaration.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg_slimxml::{parse, Element};
//!
//! let doc = parse("<model name=\"demo\"><block kind=\"Sum\"/></model>")?;
//! assert_eq!(doc.root.name, "model");
//! assert_eq!(doc.root.attr("name"), Some("demo"));
//!
//! let roundtrip = parse(&doc.to_xml())?;
//! assert_eq!(roundtrip.root, doc.root);
//!
//! let built = Element::new("model")
//!     .with_attr("name", "demo")
//!     .with_child(Element::new("block").with_attr("kind", "Sum"));
//! assert_eq!(built, doc.root);
//! # Ok(())
//! # }
//! ```

mod parse;
mod write;

pub use parse::{parse, ParseXmlError};

/// A parsed XML document: the optional declaration plus a single root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// `true` when the source began with an `<?xml ...?>` declaration.
    pub has_declaration: bool,
    /// The document's root element.
    pub root: Element,
}

impl Document {
    /// Wraps a root element into a document that serializes with a
    /// declaration.
    ///
    /// ```
    /// use cftcg_slimxml::{Document, Element};
    /// let doc = Document::new(Element::new("model"));
    /// assert!(doc.to_xml().starts_with("<?xml"));
    /// ```
    pub fn new(root: Element) -> Self {
        Document { has_declaration: true, root }
    }

    /// Serializes the document, indented with two spaces per level.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        if self.has_declaration {
            out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        }
        write::write_element(&mut out, &self.root, 0);
        out
    }
}

/// One node in the document tree: either a child element or a run of text.
///
/// Whitespace-only text between elements is dropped during parsing; mixed
/// content that actually carries non-whitespace text is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Decoded character data (entities already resolved).
    Text(String),
}

impl Node {
    /// Returns the contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        }
    }

    /// Returns the contained text, if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Element(_) => None,
            Node::Text(t) => Some(t),
        }
    }
}

/// An XML element: a name, ordered attributes, and ordered child nodes.
///
/// Attribute order is preserved so that serialization is deterministic and
/// diffs on model files stay readable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in source/insertion order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in source/insertion order.
    pub children: Vec<Node>,
}

impl Element {
    /// Creates an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Adds (or replaces) an attribute, builder style.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(key, value);
        self
    }

    /// Appends a child element, builder style.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Appends a text node, builder style.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Sets an attribute, replacing any previous value for the same key.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.attributes.push((key, value));
        }
    }

    /// Looks up an attribute value by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attributes.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Returns the first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Iterates over all child elements (skipping text nodes).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Iterates over child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenates the element's direct text content, trimmed.
    ///
    /// ```
    /// # use cftcg_slimxml::parse;
    /// let doc = parse("<a> hi </a>").unwrap();
    /// assert_eq!(doc.root.text(), "hi");
    /// ```
    pub fn text(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            if let Node::Text(t) = child {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Serializes just this element (no declaration), indented.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        write::write_element(&mut out, self, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_query() {
        let e = Element::new("model")
            .with_attr("name", "m")
            .with_attr("rate", "1")
            .with_child(Element::new("block").with_attr("kind", "Sum"))
            .with_child(Element::new("block").with_attr("kind", "Gain"));
        assert_eq!(e.attr("name"), Some("m"));
        assert_eq!(e.attr("rate"), Some("1"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.children_named("block").count(), 2);
        assert_eq!(e.child("block").unwrap().attr("kind"), Some("Sum"));
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.attr("k"), Some("2"));
    }

    #[test]
    fn document_serializes_with_declaration() {
        let doc = Document::new(Element::new("root"));
        let xml = doc.to_xml();
        assert!(xml.starts_with("<?xml version=\"1.0\""));
        assert!(xml.contains("<root/>"));
    }

    #[test]
    fn text_concatenation_is_trimmed() {
        let doc = parse("<a>  one <b/> two  </a>").unwrap();
        assert_eq!(doc.root.text(), "one  two");
    }

    #[test]
    fn node_accessors() {
        let e = Node::Element(Element::new("x"));
        let t = Node::Text("y".into());
        assert!(e.as_element().is_some());
        assert!(e.as_text().is_none());
        assert!(t.as_element().is_none());
        assert_eq!(t.as_text(), Some("y"));
    }
}
