#![warn(missing_docs)]

//! The eight benchmark models of the CFTCG paper's Table 2.
//!
//! The paper evaluates on proprietary industrial models; this crate rebuilds
//! each one from its described functionality, preserving the property the
//! evaluation depends on — *deep internal state reachable only through
//! specific input sequences*:
//!
//! | model | functionality | signature deep-state logic |
//! |---|---|---|
//! | [`cputask`] | AutoSAR CPU task dispatch | branches that fire only when the task queue is completely full |
//! | [`afc`] | engine air-fuel control | mostly-numeric maps with a handful of mode branches |
//! | [`tcp`] | TCP three-way handshake | 11-state connection chart with sequence-number guards |
//! | [`rac`] | robotic arm controller | three joint servo subsystems + motion sequencing chart |
//! | [`evcs`] | EV charging system | charge-session chart with SoC/temperature interlocks |
//! | [`twc`] | train wheel speed controller | slip detection needing *sustained* slip to escalate |
//! | [`utpc`] | underwater thruster power control | emergency surfacing needing a sustained leak at depth |
//! | [`solar_pv`] | solar PV panel output control | per-panel charge-state charts addressed by panel id |
//!
//! [`all`] returns every model; [`by_name`] fetches one. Each model is a
//! plain [`cftcg_model::Model`]: validate it, simulate it, compile it, fuzz
//! it.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let model = cftcg_benchmarks::solar_pv::model();
//! model.validate()?;
//! assert_eq!(model.num_inports(), 3); // Enable, Power, PanelID
//! # Ok(())
//! # }
//! ```

pub mod afc;
pub mod cputask;
pub mod evcs;
pub mod rac;
pub mod solar_pv;
pub mod tcp;
pub mod twc;
pub mod utpc;

pub(crate) mod helpers;

use cftcg_model::Model;

/// Names of all benchmark models, in the paper's Table 2 order.
pub const NAMES: [&str; 8] = ["CPUTask", "AFC", "TCP", "RAC", "EVCS", "TWC", "UTPC", "SolarPV"];

/// Builds all eight benchmark models, in Table 2 order.
pub fn all() -> Vec<Model> {
    vec![
        cputask::model(),
        afc::model(),
        tcp::model(),
        rac::model(),
        evcs::model(),
        twc::model(),
        utpc::model(),
        solar_pv::model(),
    ]
}

/// Builds one benchmark model by its Table 2 name.
pub fn by_name(name: &str) -> Option<Model> {
    Some(match name {
        "CPUTask" => cputask::model(),
        "AFC" => afc::model(),
        "TCP" => tcp::model(),
        "RAC" => rac::model(),
        "EVCS" => evcs::model(),
        "TWC" => twc::model(),
        "UTPC" => utpc::model(),
        "SolarPV" => solar_pv::model(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate() {
        for model in all() {
            model.validate().unwrap_or_else(|e| panic!("{}: {e}", model.name()));
        }
    }

    #[test]
    fn names_match_models() {
        for (name, model) in NAMES.iter().zip(all()) {
            assert_eq!(model.name(), *name);
            assert_eq!(by_name(name).unwrap().name(), *name);
        }
        assert!(by_name("Nope").is_none());
    }

    #[test]
    fn all_models_have_io() {
        for model in all() {
            assert!(model.num_inports() > 0, "{} has no inputs", model.name());
            assert!(model.num_outports() > 0, "{} has no outputs", model.name());
            assert!(model.has_state(), "{} has no internal state", model.name());
        }
    }

    #[test]
    fn xml_roundtrip_for_every_benchmark() {
        for model in all() {
            let xml = cftcg_model::save_model(&model);
            let reloaded =
                cftcg_model::load_model(&xml).unwrap_or_else(|e| panic!("{}: {e}", model.name()));
            assert_eq!(reloaded, model, "{} xml roundtrip", model.name());
        }
    }
}
