//! **AFC** — an engine air-fuel control system.
//!
//! The smallest Table 2 model (35 branches, 125 blocks): mostly numeric —
//! a 2-D base fuel map over RPM × throttle, transient enrichment from the
//! throttle derivative, and a closed-loop O2 trim integrator — with a
//! handful of mode branches (cold-start open loop, over-speed fuel cut,
//! lean/rich classification).

use cftcg_model::{
    BlockKind, DataType, InputSign, LogicOp, Model, ModelBuilder, ProductOp, RelOp, Value,
};

/// Builds the AFC benchmark model.
///
/// Inports: `RPM` (`uint16`), `Throttle` (`uint8`, percent), `O2`
/// (`int16`, millivolt error around stoichiometric), `CoolantTemp`
/// (`int8`, °C).
pub fn model() -> Model {
    let mut b = ModelBuilder::new("AFC");
    let rpm = b.inport("RPM", DataType::U16);
    let throttle = b.inport("Throttle", DataType::U8);
    let o2 = b.inport("O2", DataType::I16);
    let temp = b.inport("CoolantTemp", DataType::I8);

    let rpm_f = b.add("rpm_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let thr_f = b.add("thr_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let o2_f = b.add("o2_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let temp_f = b.add("temp_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(rpm, rpm_f, 0);
    b.feed(throttle, thr_f, 0);
    b.feed(o2, o2_f, 0);
    b.feed(temp, temp_f, 0);

    // Base fuel map (injector ms ×100) over RPM × throttle.
    let base_map = b.add(
        "base_map",
        BlockKind::Lookup2D {
            row_breaks: vec![500.0, 1500.0, 3000.0, 5000.0, 7000.0],
            col_breaks: vec![0.0, 25.0, 50.0, 75.0, 100.0],
            values: vec![
                vec![120.0, 180.0, 260.0, 340.0, 400.0],
                vec![140.0, 220.0, 320.0, 420.0, 500.0],
                vec![160.0, 260.0, 380.0, 520.0, 640.0],
                vec![180.0, 300.0, 460.0, 640.0, 800.0],
                vec![200.0, 340.0, 540.0, 760.0, 960.0],
            ],
        },
    );
    b.feed(rpm_f, base_map, 0);
    b.feed(thr_f, base_map, 1);

    // Transient enrichment: positive throttle derivative adds fuel.
    let thr_prev = b.add("thr_prev", BlockKind::UnitDelay { initial: Value::F64(0.0) });
    b.wire(thr_f, thr_prev);
    let thr_rate =
        b.add("thr_rate", BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus] });
    b.feed(thr_f, thr_rate, 0);
    b.feed(thr_prev, thr_rate, 1);
    let pump_zone = b.add("pump_zone", BlockKind::DeadZone { start: -100.0, end: 2.0 });
    b.wire(thr_rate, pump_zone);
    let pump_gain = b.add("pump_gain", BlockKind::Gain { gain: 3.0 });
    b.wire(pump_zone, pump_gain);

    // Closed-loop O2 trim: integrate the error, limited authority.
    let o2_gain = b.add("o2_gain", BlockKind::Gain { gain: 0.002 });
    b.wire(o2_f, o2_gain);
    let trim = b.add(
        "trim",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(-40.0),
            upper: Some(40.0),
        },
    );
    b.wire(o2_gain, trim);

    // Mode logic: closed loop only when warm and not at wide-open throttle.
    let warm = b.add("warm", BlockKind::Compare { op: RelOp::Ge, constant: 60.0 });
    b.feed(temp_f, warm, 0);
    let not_wot = b.add("not_wot", BlockKind::Compare { op: RelOp::Lt, constant: 90.0 });
    b.feed(thr_f, not_wot, 0);
    let closed_loop = b.add("closed_loop", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(warm, closed_loop, 0);
    b.feed(not_wot, closed_loop, 1);
    let zero = b.constant("zero", Value::F64(0.0));
    let trim_sel =
        b.add("trim_sel", BlockKind::Switch { criterion: cftcg_model::SwitchCriterion::NotZero });
    b.feed(trim, trim_sel, 0);
    b.feed(closed_loop, trim_sel, 1);
    b.feed(zero, trim_sel, 2);

    // Cold-start enrichment: scales base fuel up below 20 °C.
    let cold_curve = b.add(
        "cold_curve",
        BlockKind::Lookup1D {
            breakpoints: vec![-40.0, 0.0, 20.0, 60.0],
            values: vec![1.4, 1.25, 1.1, 1.0],
        },
    );
    b.feed(temp_f, cold_curve, 0);

    // Total pulse = base × cold + pump + trim, fuel-cut on over-rev.
    let enriched = b.add("enriched", BlockKind::Product { ops: vec![ProductOp::Mul; 3] });
    let one = b.constant("one", Value::F64(1.0));
    b.feed(base_map, enriched, 0);
    b.feed(cold_curve, enriched, 1);
    b.feed(one, enriched, 2);
    let pulse_sum = b.add("pulse_sum", BlockKind::Sum { signs: vec![InputSign::Plus; 3] });
    b.feed(enriched, pulse_sum, 0);
    b.feed(pump_gain, pulse_sum, 1);
    b.feed(trim_sel, pulse_sum, 2);
    let over_rev = b.add("over_rev", BlockKind::Compare { op: RelOp::Gt, constant: 6500.0 });
    b.feed(rpm_f, over_rev, 0);
    let fuel_cut =
        b.add("fuel_cut", BlockKind::Switch { criterion: cftcg_model::SwitchCriterion::NotZero });
    b.feed(zero, fuel_cut, 0);
    b.feed(over_rev, fuel_cut, 1);
    b.feed(pulse_sum, fuel_cut, 2);
    let pulse_sat = b.add("pulse_sat", BlockKind::Saturation { lower: 0.0, upper: 1200.0 });
    b.wire(fuel_cut, pulse_sat);

    // Mixture classification for diagnostics.
    let rich = b.add("rich", BlockKind::Compare { op: RelOp::Gt, constant: 100.0 });
    let lean = b.add("lean", BlockKind::Compare { op: RelOp::Lt, constant: -100.0 });
    b.feed(o2_f, rich, 0);
    b.feed(o2_f, lean, 0);
    let rich_i = b.add("rich_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    let lean_i = b.add("lean_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.wire(rich, rich_i);
    b.wire(lean, lean_i);
    let mix = b.add("mix", BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus] });
    b.feed(rich_i, mix, 0);
    b.feed(lean_i, mix, 1);

    // Outputs.
    let pulse_u16 = b.add("pulse_u16", BlockKind::DataTypeConversion { to: DataType::U16 });
    b.wire(pulse_sat, pulse_u16);
    let pulse = b.outport("InjectorPulse");
    b.wire(pulse_u16, pulse);
    let cl = b.outport("ClosedLoop");
    b.wire(closed_loop, cl);
    let mix_out = b.outport("Mixture");
    b.feed(mix, mix_out, 0);

    b.finish().expect("AFC validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    fn inputs(rpm: u16, thr: u8, o2: i16, temp: i8) -> Vec<Value> {
        vec![Value::U16(rpm), Value::U8(thr), Value::I16(o2), Value::I8(temp)]
    }

    #[test]
    fn more_throttle_means_more_fuel() {
        let mut sim = Simulator::new(&model()).unwrap();
        let low = sim.step(&inputs(2000, 10, 0, 80)).unwrap()[0].as_f64();
        sim.reset();
        let high = sim.step(&inputs(2000, 80, 0, 80)).unwrap()[0].as_f64();
        assert!(high > low, "throttle must increase fuel: {high} vs {low}");
    }

    #[test]
    fn cold_engine_runs_open_loop_and_rich() {
        let mut sim = Simulator::new(&model()).unwrap();
        let out = sim.step(&inputs(2000, 30, 0, -10)).unwrap();
        assert_eq!(out[1], Value::Bool(false), "cold engine is open loop");
        let cold_pulse = out[0].as_f64();
        sim.reset();
        let warm_pulse = sim.step(&inputs(2000, 30, 0, 80)).unwrap()[0].as_f64();
        assert!(cold_pulse > warm_pulse, "cold start must enrich");
    }

    #[test]
    fn over_rev_cuts_fuel() {
        let mut sim = Simulator::new(&model()).unwrap();
        let out = sim.step(&inputs(7000, 50, 0, 80)).unwrap();
        assert_eq!(out[0], Value::U16(0), "fuel cut above 6500 rpm");
    }

    #[test]
    fn o2_trim_integrates_when_closed_loop() {
        let mut sim = Simulator::new(&model()).unwrap();
        // Skip the tip-in transient (the accelerator pump fires on the very
        // first sample because the throttle delay starts at zero).
        sim.step(&inputs(2000, 30, 500, 80)).unwrap();
        // Lean error: trim climbs step by step.
        let first = sim.step(&inputs(2000, 30, 500, 80)).unwrap()[0].as_f64();
        for _ in 0..20 {
            sim.step(&inputs(2000, 30, 500, 80)).unwrap();
        }
        let later = sim.step(&inputs(2000, 30, 500, 80)).unwrap()[0].as_f64();
        assert!(later > first, "trim must add fuel under lean error");
    }

    #[test]
    fn transient_enrichment_on_tip_in() {
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..3 {
            sim.step(&inputs(2000, 20, 0, 80)).unwrap();
        }
        let steady = sim.step(&inputs(2000, 20, 0, 80)).unwrap()[0].as_f64();
        let tip_in = sim.step(&inputs(2000, 60, 0, 80)).unwrap()[0].as_f64();
        // Tip-in: base fuel rises AND the accelerator-pump term adds more
        // than the steady map difference alone.
        sim.reset();
        for _ in 0..4 {
            sim.step(&inputs(2000, 60, 0, 80)).unwrap();
        }
        let steady_60 = sim.step(&inputs(2000, 60, 0, 80)).unwrap()[0].as_f64();
        assert!(tip_in > steady_60, "pump shot: {tip_in} vs steady {steady_60}");
        assert!(steady_60 > steady);
    }

    #[test]
    fn mixture_classification() {
        let mut sim = Simulator::new(&model()).unwrap();
        assert_eq!(sim.step(&inputs(2000, 30, 500, 80)).unwrap()[2], Value::I32(1));
        assert_eq!(sim.step(&inputs(2000, 30, -500, 80)).unwrap()[2], Value::I32(-1));
        assert_eq!(sim.step(&inputs(2000, 30, 0, 80)).unwrap()[2], Value::I32(0));
    }

    #[test]
    fn compiles_as_the_smallest_model() {
        let compiled = compile(&model()).unwrap();
        let branches = compiled.map().branch_count();
        assert!((20..90).contains(&branches), "branch count {branches} out of expected range");
    }
}
