//! **TCP** — the TCP three-way handshake protocol engine.
//!
//! A connection-state chart covering the full RFC 793 lifecycle (`Closed`,
//! `Listen`, `SynSent`, `SynRcvd`, `Established`, `FinWait1`, `FinWait2`,
//! `CloseWait`, `Closing`, `LastAck`, `TimeWait`), with sequence-number
//! matching in the guards (`ack_in == snd_seq + 1`), an RST escape from
//! every connected state, a retransmission counter, and a TIME-WAIT timer.
//! The multi-condition guards make this the benchmark with the richest
//! Condition/MCDC goal set, matching its Table 2 row (146 branches).

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, LogicOp, Model, ModelBuilder, RelOp, State, Transition, Value,
};

/// Builds the connection chart.
fn connection_chart() -> Chart {
    let mut chart = Chart::new();
    for name in ["syn", "ack", "fin", "rst"] {
        chart.inputs.push((name.into(), DataType::Bool));
    }
    chart.inputs.push(("seq_in".into(), DataType::F64));
    chart.inputs.push(("ack_in".into(), DataType::F64));
    chart.inputs.push(("open_cmd".into(), DataType::Bool));
    chart.inputs.push(("listen_cmd".into(), DataType::Bool));
    chart.inputs.push(("close_cmd".into(), DataType::Bool));
    chart.outputs.push(("state_id".into(), DataType::I32));
    chart.outputs.push(("snd_syn".into(), DataType::Bool));
    chart.outputs.push(("snd_ack".into(), DataType::Bool));
    chart.outputs.push(("snd_fin".into(), DataType::Bool));
    chart.outputs.push(("resets".into(), DataType::I32));
    chart.variables.push(("snd_seq".into(), DataType::F64, Value::F64(0.0)));
    chart.variables.push(("rcv_seq".into(), DataType::F64, Value::F64(0.0)));
    chart.variables.push(("retries".into(), DataType::I32, Value::I32(0)));
    chart.variables.push(("wait_timer".into(), DataType::I32, Value::I32(0)));

    let mut add_state = |name: &str, id: i32, during: &str| {
        chart.add_state(
            State::new(name)
                .with_entry(
                    parse_stmts(&format!(
                        "state_id = {id}; snd_syn = false; snd_ack = false; snd_fin = false;"
                    ))
                    .unwrap(),
                )
                .with_during(if during.is_empty() {
                    Vec::new()
                } else {
                    parse_stmts(during).unwrap()
                }),
        )
    };
    let closed = add_state("Closed", 0, "");
    let listen = add_state("Listen", 1, "");
    let syn_sent = add_state("SynSent", 2, "snd_syn = true; retries = retries + 1;");
    let syn_rcvd = add_state("SynRcvd", 3, "snd_syn = true; snd_ack = true;");
    let established = add_state("Established", 4, "snd_ack = true;");
    let fin_wait1 = add_state("FinWait1", 5, "snd_fin = true;");
    let fin_wait2 = add_state("FinWait2", 6, "");
    let close_wait = add_state("CloseWait", 7, "snd_ack = true;");
    let closing = add_state("Closing", 8, "");
    let last_ack = add_state("LastAck", 9, "snd_fin = true;");
    let time_wait = add_state("TimeWait", 10, "wait_timer = wait_timer + 1;");
    chart.initial = closed;

    let t = |from, to, guard: &str, action: &str| {
        let mut tr = Transition::new(from, to, parse_expr(guard).unwrap());
        if !action.is_empty() {
            tr = tr.with_action(parse_stmts(action).unwrap());
        }
        tr
    };
    // Active/passive open.
    chart.add_transition(t(closed, syn_sent, "open_cmd", "snd_seq = 100; retries = 0;"));
    chart.add_transition(t(closed, listen, "listen_cmd && !open_cmd", ""));
    // Passive handshake.
    chart.add_transition(t(listen, syn_rcvd, "syn && !rst", "rcv_seq = seq_in; snd_seq = 100;"));
    chart.add_transition(t(listen, closed, "close_cmd || rst", ""));
    chart.add_transition(t(syn_rcvd, established, "ack && !syn && ack_in == snd_seq + 1", ""));
    chart.add_transition(t(syn_rcvd, listen, "rst", "resets = resets + 1;"));
    // Active handshake (simultaneous-open included).
    chart.add_transition(t(
        syn_sent,
        established,
        "syn && ack && ack_in == snd_seq + 1",
        "rcv_seq = seq_in;",
    ));
    chart.add_transition(t(syn_sent, syn_rcvd, "syn && !ack", "rcv_seq = seq_in;"));
    chart.add_transition(t(
        syn_sent,
        closed,
        "rst || close_cmd || retries > 5",
        "resets = resets + 1;",
    ));
    // Teardown, both directions.
    chart.add_transition(t(established, fin_wait1, "close_cmd", ""));
    chart.add_transition(t(established, close_wait, "fin && !rst", "rcv_seq = seq_in;"));
    chart.add_transition(t(established, closed, "rst", "resets = resets + 1;"));
    chart.add_transition(t(fin_wait1, closing, "fin && !ack", ""));
    chart.add_transition(t(
        fin_wait1,
        time_wait,
        "fin && ack && ack_in == snd_seq + 1",
        "wait_timer = 0;",
    ));
    chart.add_transition(t(fin_wait1, fin_wait2, "ack && ack_in == snd_seq + 1", ""));
    chart.add_transition(t(fin_wait1, closed, "rst", "resets = resets + 1;"));
    chart.add_transition(t(fin_wait2, time_wait, "fin", "wait_timer = 0;"));
    chart.add_transition(t(fin_wait2, closed, "rst", "resets = resets + 1;"));
    chart.add_transition(t(close_wait, last_ack, "close_cmd", ""));
    chart.add_transition(t(close_wait, closed, "rst", "resets = resets + 1;"));
    chart.add_transition(t(closing, time_wait, "ack && ack_in == snd_seq + 1", "wait_timer = 0;"));
    chart.add_transition(t(closing, closed, "rst", "resets = resets + 1;"));
    chart.add_transition(t(last_ack, closed, "ack && ack_in == snd_seq + 1", ""));
    chart.add_transition(t(last_ack, closed, "rst", "resets = resets + 1;"));
    // 2MSL timer.
    chart.add_transition(t(time_wait, closed, "wait_timer >= 3", ""));
    chart
}

/// Builds the TCP benchmark model.
///
/// Inports: `Flags` (`uint8` bitfield: 1 = SYN, 2 = ACK, 4 = FIN, 8 = RST),
/// `SeqIn` (`uint32`), `AckIn` (`uint32`), `AppCmd` (`uint8`: 1 = open,
/// 2 = listen, 3 = close).
pub fn model() -> Model {
    let mut b = ModelBuilder::new("TCP");
    let flags = b.inport("Flags", DataType::U8);
    let seq_in = b.inport("SeqIn", DataType::U32);
    let ack_in = b.inport("AckIn", DataType::U32);
    let app_cmd = b.inport("AppCmd", DataType::U8);

    // Flag extraction: bit tests via mod/compare chains (no bit ops in the
    // block set, like real Simulink models decode bitfields). Work in
    // double precision so the divide-by-bit keeps its fraction.
    let flags_f = b.add("flags_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(flags, flags_f, 0);
    let mut bit = |name: &str, bit_value: f64| {
        let half =
            b.add(format!("{name}_scale"), BlockKind::Gain { gain: 1.0 / (2.0 * bit_value) });
        let frac =
            b.add(format!("{name}_frac"), BlockKind::Math { func: cftcg_model::MathFunc::Floor });
        let odd =
            b.add(format!("{name}_odd"), BlockKind::Math { func: cftcg_model::MathFunc::Rem });
        let two = b.constant(format!("{name}_two"), Value::F64(2.0));
        let set = b.add(format!("{name}_set"), BlockKind::Compare { op: RelOp::Ge, constant: 1.0 });
        // floor(flags / bit) % 2 >= 1
        let descale = b.add(format!("{name}_descale"), BlockKind::Gain { gain: 2.0 });
        b.feed(flags_f, half, 0);
        b.wire(half, descale);
        b.wire(descale, frac);
        b.feed(frac, odd, 0);
        b.feed(two, odd, 1);
        b.wire(odd, set);
        set
    };
    let syn = bit("syn", 1.0);
    let ack = bit("ack", 2.0);
    let fin = bit("fin", 4.0);
    let rst = bit("rst", 8.0);

    // App command decode.
    let open_cmd = b.add("open_cmd", BlockKind::Compare { op: RelOp::Eq, constant: 1.0 });
    let listen_cmd = b.add("listen_cmd", BlockKind::Compare { op: RelOp::Eq, constant: 2.0 });
    let close_cmd = b.add("close_cmd", BlockKind::Compare { op: RelOp::Eq, constant: 3.0 });
    for probe in [open_cmd, listen_cmd, close_cmd] {
        b.feed(app_cmd, probe, 0);
    }

    let seq_f = b.add("seq_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let ack_f = b.add("ack_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(seq_in, seq_f, 0);
    b.feed(ack_in, ack_f, 0);

    let conn = b.add("connection", BlockKind::Chart { chart: connection_chart() });
    for (port, src) in
        [syn, ack, fin, rst, seq_f, ack_f, open_cmd, listen_cmd, close_cmd].into_iter().enumerate()
    {
        b.connect(src, 0, conn, port);
    }

    // Segment validity checks (combinational, for condition coverage).
    let syn_fin = b.add("bad_syn_fin", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(syn, syn_fin, 0);
    b.feed(fin, syn_fin, 1);
    let any_flag = b.add("any_flag", BlockKind::Logic { op: LogicOp::Or, inputs: 4 });
    for (i, f) in [syn, ack, fin, rst].into_iter().enumerate() {
        b.feed(f, any_flag, i);
    }
    let malformed = b.add("malformed", BlockKind::Logic { op: LogicOp::Or, inputs: 2 });
    let rst_syn = b.add("rst_with_syn", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(rst, rst_syn, 0);
    b.feed(syn, rst_syn, 1);
    b.feed(syn_fin, malformed, 0);
    b.feed(rst_syn, malformed, 1);
    let bad_count = b.add(
        "bad_count",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(1e6),
        },
    );
    let bad_f = b.add("bad_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.wire(malformed, bad_f);
    b.wire(bad_f, bad_count);

    // Outputs: connection state, outgoing flag byte, reset count,
    // malformed-segment count, connection-established strobe.
    let state = b.outport("State");
    b.connect(conn, 0, state, 0);
    let mut flag_byte = |src: cftcg_model::BlockId, port: usize, weight: f64, name: &str| {
        let cast = b.add(format!("{name}_f"), BlockKind::DataTypeConversion { to: DataType::F64 });
        b.connect(src, port, cast, 0);
        let gain = b.add(format!("{name}_w"), BlockKind::Gain { gain: weight });
        b.wire(cast, gain);
        gain
    };
    let w_syn = flag_byte(conn, 1, 1.0, "osyn");
    let w_ack = flag_byte(conn, 2, 2.0, "oack");
    let w_fin = flag_byte(conn, 3, 4.0, "ofin");
    let flags_sum =
        b.add("flags_sum", BlockKind::Sum { signs: vec![cftcg_model::InputSign::Plus; 3] });
    b.feed(w_syn, flags_sum, 0);
    b.feed(w_ack, flags_sum, 1);
    b.feed(w_fin, flags_sum, 2);
    let flags_u8 = b.add("flags_u8", BlockKind::DataTypeConversion { to: DataType::U8 });
    b.wire(flags_sum, flags_u8);
    let snd_flags = b.outport("SndFlags");
    b.wire(flags_u8, snd_flags);
    let resets = b.outport("Resets");
    b.connect(conn, 4, resets, 0);
    let bad = b.outport("Malformed");
    let bad_i = b.add("bad_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.wire(bad_count, bad_i);
    b.wire(bad_i, bad);
    let established = b.add("established", BlockKind::Compare { op: RelOp::Eq, constant: 4.0 });
    b.connect(conn, 0, established, 0);
    let est = b.outport("Established");
    b.wire(established, est);

    b.finish().expect("TCP validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    const SYN: u8 = 1;
    const ACK: u8 = 2;
    const FIN: u8 = 4;
    const RST: u8 = 8;

    fn inputs(flags: u8, seq: u32, ack: u32, cmd: u8) -> Vec<Value> {
        vec![Value::U8(flags), Value::U32(seq), Value::U32(ack), Value::U8(cmd)]
    }

    fn state_of(out: &[Value]) -> i32 {
        match out[0] {
            Value::I32(s) => s,
            other => panic!("state output {other:?}"),
        }
    }

    #[test]
    fn passive_three_way_handshake() {
        let mut sim = Simulator::new(&model()).unwrap();
        assert_eq!(state_of(&sim.step(&inputs(0, 0, 0, 2)).unwrap()), 1); // Listen
        assert_eq!(state_of(&sim.step(&inputs(SYN, 500, 0, 0)).unwrap()), 3); // SynRcvd
                                                                              // ACK with the correct acknowledgement number completes it.
        let out = sim.step(&inputs(ACK, 501, 101, 0)).unwrap();
        assert_eq!(state_of(&out), 4); // Established
        assert_eq!(out[4], Value::Bool(true));
    }

    #[test]
    fn wrong_ack_number_stalls_handshake() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(0, 0, 0, 2)).unwrap(); // Listen
        sim.step(&inputs(SYN, 500, 0, 0)).unwrap(); // SynRcvd (snd_seq = 100)
        let out = sim.step(&inputs(ACK, 501, 999, 0)).unwrap(); // bad ack
        assert_eq!(state_of(&out), 3, "must stay in SynRcvd on a bad ack");
    }

    #[test]
    fn active_open_and_full_teardown() {
        let mut sim = Simulator::new(&model()).unwrap();
        assert_eq!(state_of(&sim.step(&inputs(0, 0, 0, 1)).unwrap()), 2); // SynSent
        assert_eq!(state_of(&sim.step(&inputs(SYN | ACK, 7, 101, 0)).unwrap()), 4);
        assert_eq!(state_of(&sim.step(&inputs(0, 0, 0, 3)).unwrap()), 5); // FinWait1
        assert_eq!(state_of(&sim.step(&inputs(FIN | ACK, 8, 101, 0)).unwrap()), 10); // TimeWait
        for _ in 0..3 {
            sim.step(&inputs(0, 0, 0, 0)).unwrap();
        }
        let out = sim.step(&inputs(0, 0, 0, 0)).unwrap();
        assert_eq!(state_of(&out), 0, "2MSL timer must close the connection");
    }

    #[test]
    fn rst_aborts_from_established() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(0, 0, 0, 1)).unwrap();
        sim.step(&inputs(SYN | ACK, 7, 101, 0)).unwrap();
        let out = sim.step(&inputs(RST, 0, 0, 0)).unwrap();
        assert_eq!(state_of(&out), 0);
        assert_eq!(out[2], Value::I32(1), "reset must be counted");
    }

    #[test]
    fn malformed_segments_are_counted() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(SYN | FIN, 0, 0, 0)).unwrap();
        sim.step(&inputs(SYN | RST, 0, 0, 0)).unwrap();
        // The counter integrator publishes its pre-update state, so the
        // two malformed segments are visible one step later.
        let out = sim.step(&inputs(0, 0, 0, 0)).unwrap();
        assert_eq!(out[3], Value::I32(2));
    }

    #[test]
    fn compiles_with_rich_condition_set() {
        let compiled = compile(&model()).unwrap();
        let map = compiled.map();
        assert!(
            (70..320).contains(&map.branch_count()),
            "branch count {} out of range",
            map.branch_count()
        );
        assert!(map.condition_count() > 30, "want many MCDC goals");
    }
}
