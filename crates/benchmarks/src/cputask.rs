//! **CPUTask** — an AutoSAR-style CPU task dispatch system.
//!
//! The paper singles this model out: "it has an internal task queue. Some
//! branches are only triggered when the task queue is fullfilled. This
//! triggering condition is very stringent" — SLDV drowns in the state
//! space and SimCoTest cannot simulate enough iterations, while CFTCG fills
//! the queue in seconds via repeated-tuple mutation.
//!
//! Inports: `Cmd` (`uint8`: 1 = submit, 2 = complete, 3 = flush, other =
//! idle), `TaskID` (`uint8`), `Priority` (`uint8`). The ready queue is a
//! bounded counter with per-level occupancy branches; the *queue full*
//! branch (and the overflow drop counter behind it) fires only after eight
//! uncompleted submissions. A dispatcher chart tracks `Idle / Running /
//! Preempted` with priority-based preemption.

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, Model, ModelBuilder, RelOp, State, Transition, Value,
};

use crate::helpers::const_action;

/// Queue capacity; the deep branch needs all eight slots occupied.
pub const QUEUE_DEPTH: usize = 8;

/// Builds the queue-manager chart: tracks queue length, drops on overflow.
fn queue_chart() -> Chart {
    let mut chart = Chart::new();
    chart.inputs.push(("submit".into(), DataType::Bool));
    chart.inputs.push(("complete".into(), DataType::Bool));
    chart.inputs.push(("flush".into(), DataType::Bool));
    chart.outputs.push(("len".into(), DataType::I32));
    chart.outputs.push(("dropped".into(), DataType::I32));
    chart.outputs.push(("overflowed".into(), DataType::Bool));
    let depth = QUEUE_DEPTH;
    let normal = chart.add_state(
        State::new("Normal").with_entry(parse_stmts("overflowed = false;").unwrap()).with_during(
            parse_stmts(&format!(
                "if (flush) {{ len = 0; }} else {{ \
                       if (submit && len < {depth}) {{ len = len + 1; }} \
                       if (complete && len > 0) {{ len = len - 1; }} }}"
            ))
            .unwrap(),
        ),
    );
    let full = chart.add_state(
        State::new("Full").with_entry(parse_stmts("overflowed = true;").unwrap()).with_during(
            parse_stmts(
                "if (submit) { dropped = dropped + 1; } \
                     if (complete && len > 0) { len = len - 1; } \
                     if (flush) { len = 0; }",
            )
            .unwrap(),
        ),
    );
    chart.initial = normal;
    chart.add_transition(Transition::new(
        normal,
        full,
        parse_expr(&format!("len >= {depth} && submit")).unwrap(),
    ));
    chart.add_transition(Transition::new(
        full,
        normal,
        parse_expr(&format!("len < {depth}")).unwrap(),
    ));
    chart
}

/// Builds the dispatcher chart: which task runs, with preemption.
fn dispatcher_chart() -> Chart {
    let mut chart = Chart::new();
    chart.inputs.push(("submit".into(), DataType::Bool));
    chart.inputs.push(("complete".into(), DataType::Bool));
    chart.inputs.push(("prio".into(), DataType::F64));
    chart.inputs.push(("task".into(), DataType::F64));
    chart.inputs.push(("qlen".into(), DataType::I32));
    chart.outputs.push(("running".into(), DataType::I32));
    chart.outputs.push(("run_prio".into(), DataType::I32));
    chart.outputs.push(("preemptions".into(), DataType::I32));
    let idle = chart.add_state(
        State::new("Idle").with_entry(parse_stmts("running = 0; run_prio = -1;").unwrap()),
    );
    let running = chart
        .add_state(State::new("Running").with_during(parse_stmts("running = running;").unwrap()));
    let preempted = chart.add_state(
        State::new("Preempted").with_entry(parse_stmts("preemptions = preemptions + 1;").unwrap()),
    );
    chart.initial = idle;
    chart.add_transition(
        Transition::new(idle, running, parse_expr("submit || qlen > 0").unwrap())
            .with_action(parse_stmts("running = task; run_prio = prio;").unwrap()),
    );
    chart.add_transition(
        Transition::new(running, preempted, parse_expr("submit && prio > run_prio").unwrap())
            .with_action(parse_stmts("running = task; run_prio = prio;").unwrap()),
    );
    chart.add_transition(Transition::new(
        running,
        idle,
        parse_expr("complete && qlen <= 1").unwrap(),
    ));
    chart.add_transition(Transition::new(preempted, running, parse_expr("true").unwrap()));
    chart
}

/// Builds the CPUTask benchmark model.
pub fn model() -> Model {
    let mut b = ModelBuilder::new("CPUTask");
    let cmd = b.inport("Cmd", DataType::U8);
    let task_id = b.inport("TaskID", DataType::U8);
    let priority = b.inport("Priority", DataType::U8);

    // Command decode (Figure 4(c): SwitchCase + action subsystems).
    let decode = b.add(
        "cmd_decode",
        BlockKind::SwitchCase { cases: vec![vec![1], vec![2], vec![3]], has_default: true },
    );
    b.feed(cmd, decode, 0);
    let names = ["submit_cmd", "complete_cmd", "flush_cmd", "idle_cmd"];
    let mut pulses = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let v = Value::Bool(i < 3);
        let act = b.add(*name, const_action(&format!("{name}_m"), v));
        b.connect(decode, i, act, 0);
        pulses.push(act);
    }
    // One merged "command seen" strobe per class: submit/complete/flush are
    // separate booleans gated by which action fired this step.
    let is_submit = b.add("is_submit", BlockKind::Compare { op: RelOp::Eq, constant: 1.0 });
    let is_complete = b.add("is_complete", BlockKind::Compare { op: RelOp::Eq, constant: 2.0 });
    let is_flush = b.add("is_flush", BlockKind::Compare { op: RelOp::Eq, constant: 3.0 });
    for probe in [is_submit, is_complete, is_flush] {
        b.feed(cmd, probe, 0);
    }
    // Keep the decoded strobes observable so the action subsystems are live.
    let strobe_merge = b.add("strobe_merge", BlockKind::Merge { inputs: 4 });
    for (i, &p) in pulses.iter().enumerate() {
        b.connect(p, 0, strobe_merge, i);
    }
    let strobe_sink = b.add("strobe_sink", BlockKind::Terminator);
    b.wire(strobe_merge, strobe_sink);

    // Queue manager.
    let queue = b.add("queue", BlockKind::Chart { chart: queue_chart() });
    b.feed(is_submit, queue, 0);
    b.feed(is_complete, queue, 1);
    b.feed(is_flush, queue, 2);

    // Per-level occupancy monitors: one decision per queue level, each
    // deeper level reachable only with more outstanding submissions.
    let mut level_flags = Vec::new();
    for level in 1..=QUEUE_DEPTH {
        let cmp = b.add(
            format!("level_ge_{level}"),
            BlockKind::Compare { op: RelOp::Ge, constant: level as f64 },
        );
        b.connect(queue, 0, cmp, 0);
        level_flags.push(cmp);
    }
    // Load classification from the level flags.
    let mut load = b.add("load0", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.feed(level_flags[0], load, 0);
    for (i, &flag) in level_flags.iter().enumerate().skip(1) {
        let as_i = b.add(format!("lvl_i{i}"), BlockKind::DataTypeConversion { to: DataType::I32 });
        b.feed(flag, as_i, 0);
        let sum = b.add(
            format!("load_sum{i}"),
            BlockKind::Sum { signs: vec![cftcg_model::InputSign::Plus; 2] },
        );
        b.feed(load, sum, 0);
        b.feed(as_i, sum, 1);
        load = sum;
    }

    // Dispatcher.
    let prio_f = b.add("prio_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let task_f = b.add("task_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(priority, prio_f, 0);
    b.feed(task_id, task_f, 0);
    let dispatcher = b.add("dispatcher", BlockKind::Chart { chart: dispatcher_chart() });
    b.feed(is_submit, dispatcher, 0);
    b.feed(is_complete, dispatcher, 1);
    b.feed(prio_f, dispatcher, 2);
    b.feed(task_f, dispatcher, 3);
    b.connect(queue, 0, dispatcher, 4);

    // Watchdog: consecutive steps at full load trip a starvation alarm.
    let full_flag = *level_flags.last().expect("levels exist");
    let starve_timer = b.add(
        "starve_timer",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(100.0),
        },
    );
    let full_signed = b
        .add("full_signed", BlockKind::Switch { criterion: cftcg_model::SwitchCriterion::NotZero });
    let one = b.constant("one_c", Value::F64(1.0));
    let neg = b.constant("neg_c", Value::F64(-4.0));
    b.feed(one, full_signed, 0);
    b.feed(full_flag, full_signed, 1);
    b.feed(neg, full_signed, 2);
    b.wire(full_signed, starve_timer);
    let starved = b.add("starved", BlockKind::Compare { op: RelOp::Ge, constant: 6.0 });
    b.wire(starve_timer, starved);

    // Outputs.
    let running = b.outport("Running");
    let qlen = b.outport("QueueLen");
    let dropped = b.outport("Dropped");
    let loadc = b.outport("LoadClass");
    let starve = b.outport("Starved");
    b.connect(dispatcher, 0, running, 0);
    b.connect(queue, 0, qlen, 0);
    b.connect(queue, 1, dropped, 0);
    b.feed(load, loadc, 0);
    b.feed(starved, starve, 0);

    b.finish().expect("CPUTask validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    fn inputs(cmd: u8, task: u8, prio: u8) -> Vec<Value> {
        vec![Value::U8(cmd), Value::U8(task), Value::U8(prio)]
    }

    #[test]
    fn queue_fills_drops_and_drains() {
        let mut sim = Simulator::new(&model()).unwrap();
        // Fill the queue with 8 submissions.
        for i in 0..8 {
            let out = sim.step(&inputs(1, i, 5)).unwrap();
            assert_eq!(out[1], Value::I32(i64::from(i) as i32 + 1), "len after submit {i}");
        }
        // Ninth submission: queue full -> enters Full, drop counted next.
        sim.step(&inputs(1, 9, 5)).unwrap();
        let out = sim.step(&inputs(1, 10, 5)).unwrap();
        assert_eq!(out[2], Value::I32(1), "overflow submission must be dropped");
        // Complete drains.
        let out = sim.step(&inputs(2, 0, 0)).unwrap();
        assert_eq!(out[1], Value::I32(7));
    }

    #[test]
    fn flush_empties_queue() {
        let mut sim = Simulator::new(&model()).unwrap();
        for i in 0..5 {
            sim.step(&inputs(1, i, 1)).unwrap();
        }
        let out = sim.step(&inputs(3, 0, 0)).unwrap();
        assert_eq!(out[1], Value::I32(0));
    }

    #[test]
    fn preemption_by_higher_priority() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(1, 10, 3)).unwrap(); // Idle -> Running(task 10)
        let out = sim.step(&inputs(1, 20, 9)).unwrap(); // higher prio preempts
        assert_eq!(out[0], Value::I32(20));
        // Equal priority does not preempt.
        let out = sim.step(&inputs(1, 30, 9)).unwrap();
        assert_eq!(out[0], Value::I32(20));
    }

    #[test]
    fn starvation_alarm_needs_sustained_full_queue() {
        let mut sim = Simulator::new(&model()).unwrap();
        for i in 0..20 {
            let out = sim.step(&inputs(1, i, 1)).unwrap();
            if i < 13 {
                assert_eq!(out[4], Value::Bool(false), "alarm too early at step {i}");
            }
        }
        let out = sim.step(&inputs(1, 99, 1)).unwrap();
        assert_eq!(out[4], Value::Bool(true), "sustained full queue must alarm");
    }

    #[test]
    fn compiles_with_queue_depth_branches() {
        let compiled = compile(&model()).unwrap();
        let branches = compiled.map().branch_count();
        assert!((60..250).contains(&branches), "branch count {branches} out of expected range");
    }
}
