//! **RAC** — a three-joint robotic arm controller, the largest Table 2
//! model (667 blocks, 179 branches in the paper).
//!
//! Three identical joint servo subsystems (dead-zone error shaping,
//! proportional command with saturation and slew limiting, a position
//! integrator with travel limits, limit-switch monitors, and a servo-lag
//! fault relay) are sequenced by a motion coordinator chart
//! (`Init / Home / Pick / Lift / Move / Place / Retreat / EStop`). The
//! controller only advances when *all* joints report "at target", so deep
//! phases require long, coordinated input sequences.

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, InputSign, LogicOp, Model, ModelBuilder, RelOp, State, Transition,
    Value,
};

/// Travel limits per joint (degrees).
const TRAVEL: [(f64, f64); 3] = [(-170.0, 170.0), (-120.0, 120.0), (-90.0, 90.0)];

/// Builds one joint servo subsystem.
fn joint_model(k: usize) -> Model {
    let (lo, hi) = TRAVEL[k];
    let mut b = ModelBuilder::new(format!("Joint{k}"));
    let target = b.inport("target", DataType::F64);
    let enable = b.inport("enable", DataType::Bool);
    let speed = b.inport("speed", DataType::F64);

    // Servo error with a small dead zone.
    let err = b.add("err", BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus] });
    let dz = b.add("err_dz", BlockKind::DeadZone { start: -0.5, end: 0.5 });
    let p_gain = b.add("p_gain", BlockKind::Gain { gain: 0.4 });
    // Speed-scaled command saturation.
    let cmd_sat = b.add("cmd_sat", BlockKind::Saturation { lower: -10.0, upper: 10.0 });
    let speed_scale =
        b.add("speed_scale", BlockKind::Product { ops: vec![cftcg_model::ProductOp::Mul; 3] });
    let norm = b.constant("speed_norm", Value::F64(1.0 / 255.0));
    // Enable gate.
    let gate = b
        .add("enable_gate", BlockKind::Switch { criterion: cftcg_model::SwitchCriterion::NotZero });
    let zero = b.constant("zero", Value::F64(0.0));
    // Slew limit and plant.
    let slew = b.add("slew", BlockKind::RateLimiter { rising: 2.0, falling: 2.0 });
    let plant = b.add(
        "position",
        BlockKind::DiscreteIntegrator { gain: 0.5, initial: 0.0, lower: Some(lo), upper: Some(hi) },
    );

    b.feed(target, err, 0);
    b.feed(plant, err, 1);
    b.wire(err, dz);
    b.wire(dz, p_gain);
    b.feed(p_gain, speed_scale, 0);
    b.feed(speed, speed_scale, 1);
    b.feed(norm, speed_scale, 2);
    b.wire(speed_scale, cmd_sat);
    b.feed(cmd_sat, gate, 0);
    b.feed(enable, gate, 1);
    b.feed(zero, gate, 2);
    b.wire(gate, slew);
    b.wire(slew, plant);

    // Monitors: at-target, near-limit, servo-lag fault.
    let abs_err = b.add("abs_err", BlockKind::Abs);
    b.wire(err, abs_err);
    let at_target = b.add("at_target_cmp", BlockKind::Compare { op: RelOp::Lt, constant: 1.5 });
    b.wire(abs_err, at_target);
    let near_hi = b.add("near_hi", BlockKind::Compare { op: RelOp::Ge, constant: hi - 5.0 });
    let near_lo = b.add("near_lo", BlockKind::Compare { op: RelOp::Le, constant: lo + 5.0 });
    b.feed(plant, near_hi, 0);
    b.feed(plant, near_lo, 0);
    let near_limit = b.add("near_limit_or", BlockKind::Logic { op: LogicOp::Or, inputs: 2 });
    b.feed(near_hi, near_limit, 0);
    b.feed(near_lo, near_limit, 1);
    // Stall fault: the servo is commanding motion but the position is not
    // changing (e.g. the joint is jammed against its travel limit) for a
    // sustained run of steps.
    let pos_prev = b.add("pos_prev", BlockKind::UnitDelay { initial: Value::F64(0.0) });
    b.wire(plant, pos_prev);
    let vel = b.add("vel", BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus] });
    b.feed(plant, vel, 0);
    b.feed(pos_prev, vel, 1);
    let abs_vel = b.add("abs_vel", BlockKind::Abs);
    b.wire(vel, abs_vel);
    let frozen = b.add("frozen", BlockKind::Compare { op: RelOp::Lt, constant: 0.05 });
    b.wire(abs_vel, frozen);
    let abs_cmd = b.add("abs_cmd", BlockKind::Abs);
    b.wire(gate, abs_cmd);
    let pushing = b.add("pushing", BlockKind::Compare { op: RelOp::Gt, constant: 3.0 });
    b.wire(abs_cmd, pushing);
    let stalled = b.add("stalled", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(pushing, stalled, 0);
    b.feed(frozen, stalled, 1);
    let stall_sig =
        b.add("stall_sig", BlockKind::Switch { criterion: cftcg_model::SwitchCriterion::NotZero });
    let plus_one = b.constant("plus_one", Value::F64(1.0));
    let minus_two = b.constant("minus_two", Value::F64(-2.0));
    b.feed(plus_one, stall_sig, 0);
    b.feed(stalled, stall_sig, 1);
    b.feed(minus_two, stall_sig, 2);
    let stall_timer = b.add(
        "stall_timer",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(50.0),
        },
    );
    b.wire(stall_sig, stall_timer);
    let fault_bool = b.add("fault_bool", BlockKind::Compare { op: RelOp::Ge, constant: 25.0 });
    b.wire(stall_timer, fault_bool);

    let pos = b.outport("pos");
    let at = b.outport("at_target");
    let fault = b.outport("fault");
    let near = b.outport("near_limit");
    b.wire(plant, pos);
    b.wire(at_target, at);
    b.wire(fault_bool, fault);
    b.wire(near_limit, near);
    b.finish().expect("joint model validates")
}

/// Per-phase joint targets: (t1, t2, t3, gripper closed).
const POSES: [(&str, f64, f64, f64, bool); 6] = [
    ("Home", 0.0, 0.0, 0.0, false),
    ("Pick", 90.0, 45.0, -30.0, false),
    ("Lift", 90.0, 10.0, -30.0, true),
    ("Move", -90.0, 10.0, 30.0, true),
    ("Place", -90.0, 45.0, 30.0, true),
    ("Retreat", -90.0, 10.0, 0.0, false),
];

/// Builds the motion coordinator chart.
fn coordinator_chart() -> Chart {
    let mut chart = Chart::new();
    chart.inputs.push(("start".into(), DataType::Bool));
    chart.inputs.push(("all_at".into(), DataType::Bool));
    chart.inputs.push(("estop".into(), DataType::Bool));
    chart.inputs.push(("any_fault".into(), DataType::Bool));
    chart.inputs.push(("reset".into(), DataType::Bool));
    chart.outputs.push(("t1".into(), DataType::F64));
    chart.outputs.push(("t2".into(), DataType::F64));
    chart.outputs.push(("t3".into(), DataType::F64));
    chart.outputs.push(("grip".into(), DataType::Bool));
    chart.outputs.push(("phase".into(), DataType::I32));
    chart.outputs.push(("cycles".into(), DataType::I32));
    chart.variables.push(("settle".into(), DataType::I32, Value::I32(0)));

    let init = chart
        .add_state(State::new("Init").with_entry(parse_stmts("phase = 0; grip = false;").unwrap()));
    let mut pose_states = Vec::new();
    for (i, (name, t1, t2, t3, grip)) in POSES.iter().enumerate() {
        let s = chart.add_state(
            State::new(*name)
                .with_entry(
                    parse_stmts(&format!(
                        "phase = {}; t1 = {t1}; t2 = {t2}; t3 = {t3}; grip = {grip}; settle = 0;",
                        i + 1
                    ))
                    .unwrap(),
                )
                .with_during(
                    parse_stmts("if (all_at) { settle = settle + 1; } else { settle = 0; }")
                        .unwrap(),
                ),
        );
        pose_states.push(s);
    }
    let estop = chart.add_state(
        State::new("EStop").with_entry(parse_stmts("phase = 9; grip = false;").unwrap()),
    );
    chart.initial = init;

    chart.add_transition(Transition::new(init, pose_states[0], parse_expr("start").unwrap()));
    // Phase advance needs the arm settled for two consecutive steps.
    for w in pose_states.windows(2) {
        chart.add_transition(Transition::new(
            w[0],
            w[1],
            parse_expr("all_at && settle >= 2").unwrap(),
        ));
    }
    // Cycle completion: Retreat back to Pick.
    chart.add_transition(
        Transition::new(
            pose_states[5],
            pose_states[1],
            parse_expr("all_at && settle >= 2").unwrap(),
        )
        .with_action(parse_stmts("cycles = cycles + 1;").unwrap()),
    );
    // Safety: fault or E-stop from any operating state.
    for &s in std::iter::once(&init).chain(&pose_states) {
        chart.add_transition(Transition::new(s, estop, parse_expr("estop || any_fault").unwrap()));
    }
    chart.add_transition(Transition::new(
        estop,
        init,
        parse_expr("reset && !estop && !any_fault").unwrap(),
    ));
    chart
}

/// Builds the RAC benchmark model.
///
/// Inports: `Cmd` (`uint8`: 1 = start, 2 = reset), `Speed` (`uint8`),
/// `EStop` (`boolean`), `ManualNudge` (`int16`, added to joint 1's target
/// for jog testing).
pub fn model() -> Model {
    let mut b = ModelBuilder::new("RAC");
    let cmd = b.inport("Cmd", DataType::U8);
    let speed = b.inport("Speed", DataType::U8);
    let estop = b.inport("EStop", DataType::Bool);
    let nudge = b.inport("ManualNudge", DataType::I16);

    let start = b.add("start", BlockKind::Compare { op: RelOp::Eq, constant: 1.0 });
    let reset = b.add("reset", BlockKind::Compare { op: RelOp::Eq, constant: 2.0 });
    b.feed(cmd, start, 0);
    b.feed(cmd, reset, 0);

    let coord = b.add("coordinator", BlockKind::Chart { chart: coordinator_chart() });
    let speed_f = b.add("speed_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(speed, speed_f, 0);

    // Joint 1 target = coordinator target + manual nudge (saturated).
    let nudge_f = b.add("nudge_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(nudge, nudge_f, 0);
    let nudge_sat = b.add("nudge_sat", BlockKind::Saturation { lower: -20.0, upper: 20.0 });
    b.wire(nudge_f, nudge_sat);
    let t1_sum = b.add("t1_sum", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
    b.connect(coord, 0, t1_sum, 0);
    b.feed(nudge_sat, t1_sum, 1);

    // Enable = not in EStop phase.
    let in_estop = b.add("in_estop", BlockKind::Compare { op: RelOp::Eq, constant: 9.0 });
    b.connect(coord, 4, in_estop, 0);
    let enabled = b.add("enabled", BlockKind::Logic { op: LogicOp::Not, inputs: 1 });
    b.feed(in_estop, enabled, 0);

    // The three joints.
    let mut joints = Vec::new();
    for k in 0..3 {
        let joint = b.add(
            format!("joint{}", k + 1),
            BlockKind::Subsystem { model: Box::new(joint_model(k)) },
        );
        match k {
            0 => b.feed(t1_sum, joint, 0),
            1 => b.connect(coord, 1, joint, 0),
            _ => b.connect(coord, 2, joint, 0),
        }
        b.feed(enabled, joint, 1);
        b.feed(speed_f, joint, 2);
        joints.push(joint);
    }

    // Aggregated monitors.
    let all_at = b.add("all_at", BlockKind::Logic { op: LogicOp::And, inputs: 3 });
    let any_fault = b.add("any_fault", BlockKind::Logic { op: LogicOp::Or, inputs: 3 });
    let any_limit = b.add("any_limit", BlockKind::Logic { op: LogicOp::Or, inputs: 3 });
    for (i, &j) in joints.iter().enumerate() {
        b.connect(j, 1, all_at, i);
        b.connect(j, 2, any_fault, i);
        b.connect(j, 3, any_limit, i);
    }
    // Break the coordinator <-> joints algebraic loop with unit delays on
    // the monitor signals, as the real model would.
    let all_at_d = b.add("all_at_d", BlockKind::UnitDelay { initial: Value::Bool(false) });
    let any_fault_d = b.add("any_fault_d", BlockKind::UnitDelay { initial: Value::Bool(false) });
    b.wire(all_at, all_at_d);
    b.wire(any_fault, any_fault_d);
    b.feed(start, coord, 0);
    b.feed(all_at_d, coord, 1);
    b.feed(estop, coord, 2);
    b.feed(any_fault_d, coord, 3);
    b.feed(reset, coord, 4);

    // Gripper cycle counter via edge detection.
    let grip_edge =
        b.add("grip_edge", BlockKind::EdgeDetect { kind: cftcg_model::EdgeKind::Rising });
    b.connect(coord, 3, grip_edge, 0);
    let grip_f = b.add("grip_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.wire(grip_edge, grip_f);
    let grips = b.add(
        "grips",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(1e6),
        },
    );
    b.wire(grip_f, grips);

    // Outputs.
    for (k, &j) in joints.iter().enumerate() {
        let cast =
            b.add(format!("pos{}_i16", k + 1), BlockKind::DataTypeConversion { to: DataType::I16 });
        b.connect(j, 0, cast, 0);
        let out = b.outport(format!("Pos{}", k + 1));
        b.wire(cast, out);
    }
    let phase = b.outport("Phase");
    b.connect(coord, 4, phase, 0);
    let cycles = b.outport("Cycles");
    b.connect(coord, 5, cycles, 0);
    let grips_i = b.add("grips_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.wire(grips, grips_i);
    let grips_out = b.outport("Grips");
    b.wire(grips_i, grips_out);
    let limit_out = b.outport("NearLimit");
    b.wire(any_limit, limit_out);

    b.finish().expect("RAC validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    fn inputs(cmd: u8, speed: u8, estop: bool, nudge: i16) -> Vec<Value> {
        vec![Value::U8(cmd), Value::U8(speed), Value::Bool(estop), Value::I16(nudge)]
    }

    fn phase_of(out: &[Value]) -> i32 {
        match out[3] {
            Value::I32(p) => p,
            other => panic!("phase output {other:?}"),
        }
    }

    #[test]
    fn arm_sequences_through_pick_cycle() {
        let mut sim = Simulator::new(&model()).unwrap();
        let mut out = sim.step(&inputs(1, 255, false, 0)).unwrap();
        assert_eq!(phase_of(&out), 1, "start must enter Home");
        let mut seen = vec![1];
        for _ in 0..600 {
            out = sim.step(&inputs(0, 255, false, 0)).unwrap();
            let p = phase_of(&out);
            if seen.last() != Some(&p) {
                seen.push(p);
            }
        }
        assert!(
            seen.starts_with(&[1, 2, 3, 4, 5, 6]),
            "phases must advance in order, saw {seen:?}"
        );
    }

    #[test]
    fn estop_freezes_and_reset_recovers() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(1, 255, false, 0)).unwrap();
        let out = sim.step(&inputs(0, 255, true, 0)).unwrap();
        assert_eq!(phase_of(&out), 9, "estop must trip");
        let p1 = out[0].as_f64();
        // Position must not move while estopped.
        let out = sim.step(&inputs(0, 255, true, 0)).unwrap();
        assert_eq!(out[0].as_f64(), p1);
        let out = sim.step(&inputs(2, 255, false, 0)).unwrap();
        assert_eq!(phase_of(&out), 0, "reset must return to Init");
    }

    #[test]
    fn zero_speed_never_reaches_target() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(1, 0, false, 0)).unwrap();
        for _ in 0..100 {
            let out = sim.step(&inputs(0, 0, false, 0)).unwrap();
            // Home pose targets 0 and positions start at 0, so Home
            // completes even at zero speed; Pick (phase 2) can never settle.
            assert!(phase_of(&out) <= 2);
        }
        let mut sim2 = Simulator::new(&model()).unwrap();
        sim2.step(&inputs(1, 255, false, 0)).unwrap();
        let mut best = 0;
        for _ in 0..200 {
            let out = sim2.step(&inputs(0, 255, false, 0)).unwrap();
            best = best.max(phase_of(&out));
        }
        assert!(best >= 3, "full speed should pass Pick, reached {best}");
    }

    #[test]
    fn nudge_is_saturated_into_position() {
        let mut sim = Simulator::new(&model()).unwrap();
        // No start command: the coordinator stays in Init (targets 0), so
        // joint 1 tracks only the saturated nudge.
        for _ in 0..80 {
            sim.step(&inputs(0, 255, false, 30_000)).unwrap();
        }
        let out = sim.step(&inputs(0, 255, false, 30_000)).unwrap();
        let p1 = out[0].as_f64();
        assert!(p1 <= 25.0, "nudge must be clamped to +20, got {p1}");
        assert!(p1 >= 15.0, "nudge should pull joint 1 up, got {p1}");
    }

    #[test]
    fn compiles_at_expected_scale() {
        let m = model();
        let compiled = compile(&m).unwrap();
        let branches = compiled.map().branch_count();
        assert!((90..350).contains(&branches), "branch count {branches} out of expected range");
        assert!(m.total_block_count() > 100, "RAC should be the largest model");
    }
}
