//! **EVCS** — an electric vehicle charging system.
//!
//! A charge-session chart (`Idle / Authenticate / Precharge / FastCharge /
//! TrickleCharge / Complete / Error`) gated by plug detection and an
//! authentication code, with a SoC-dependent current limit (1-D lookup), a
//! grid-power cap, and a thermal model whose over-temperature interlock
//! aborts the session.

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, LogicOp, MinMaxOp, Model, ModelBuilder, RelOp, State, Transition,
    Value,
};

/// The charge-session chart.
fn session_chart() -> Chart {
    let mut chart = Chart::new();
    chart.inputs.push(("plugged".into(), DataType::Bool));
    chart.inputs.push(("auth_ok".into(), DataType::Bool));
    chart.inputs.push(("soc".into(), DataType::F64));
    chart.inputs.push(("overtemp".into(), DataType::Bool));
    chart.inputs.push(("grid_ok".into(), DataType::Bool));
    chart.outputs.push(("mode".into(), DataType::I32));
    chart.outputs.push(("demand".into(), DataType::F64));
    chart.outputs.push(("faults".into(), DataType::I32));
    chart.variables.push(("auth_timer".into(), DataType::I32, Value::I32(0)));

    let idle = chart
        .add_state(State::new("Idle").with_entry(parse_stmts("mode = 0; demand = 0;").unwrap()));
    let auth = chart.add_state(
        State::new("Authenticate")
            .with_entry(parse_stmts("mode = 1; auth_timer = 0;").unwrap())
            .with_during(parse_stmts("auth_timer = auth_timer + 1;").unwrap()),
    );
    let precharge = chart.add_state(
        State::new("Precharge").with_entry(parse_stmts("mode = 2; demand = 10;").unwrap()),
    );
    let fast = chart.add_state(
        State::new("FastCharge")
            .with_entry(parse_stmts("mode = 3;").unwrap())
            .with_during(parse_stmts("demand = 100;").unwrap()),
    );
    let trickle = chart.add_state(
        State::new("TrickleCharge")
            .with_entry(parse_stmts("mode = 4;").unwrap())
            .with_during(parse_stmts("demand = 15;").unwrap()),
    );
    let complete = chart.add_state(
        State::new("Complete").with_entry(parse_stmts("mode = 5; demand = 0;").unwrap()),
    );
    let error = chart.add_state(
        State::new("Error")
            .with_entry(parse_stmts("mode = 6; demand = 0; faults = faults + 1;").unwrap()),
    );
    chart.initial = idle;

    // Safety escapes are added first: unplugging or overheating beats any
    // progress transition.
    for s in [auth, precharge, fast, trickle, complete] {
        chart.add_transition(Transition::new(s, idle, parse_expr("!plugged").unwrap()));
    }
    for s in [precharge, fast, trickle] {
        chart.add_transition(Transition::new(s, error, parse_expr("overtemp").unwrap()));
    }
    chart.add_transition(Transition::new(idle, auth, parse_expr("plugged").unwrap()));
    chart.add_transition(Transition::new(auth, precharge, parse_expr("auth_ok").unwrap()));
    chart.add_transition(Transition::new(
        auth,
        error,
        parse_expr("auth_timer > 5 && !auth_ok").unwrap(),
    ));
    chart.add_transition(Transition::new(
        precharge,
        fast,
        parse_expr("soc < 80 && grid_ok").unwrap(),
    ));
    chart.add_transition(Transition::new(precharge, trickle, parse_expr("soc >= 80").unwrap()));
    chart.add_transition(Transition::new(fast, trickle, parse_expr("soc >= 80").unwrap()));
    chart.add_transition(Transition::new(fast, precharge, parse_expr("!grid_ok").unwrap()));
    chart.add_transition(Transition::new(trickle, complete, parse_expr("soc >= 99").unwrap()));
    chart.add_transition(Transition::new(
        error,
        idle,
        parse_expr("!plugged && !overtemp").unwrap(),
    ));
    chart
}

/// Builds the EVCS benchmark model.
///
/// Inports: `PlugIn` (`boolean`), `AuthCode` (`uint16`, codes 4000–4999
/// authorize), `BatterySoC` (`uint8`, percent), `GridPower` (`int32`,
/// available kW×10).
pub fn model() -> Model {
    let mut b = ModelBuilder::new("EVCS");
    let plug = b.inport("PlugIn", DataType::Bool);
    let auth_code = b.inport("AuthCode", DataType::U16);
    let soc = b.inport("BatterySoC", DataType::U8);
    let grid = b.inport("GridPower", DataType::I32);

    let code_ge = b.add("code_ge", BlockKind::Compare { op: RelOp::Ge, constant: 4000.0 });
    let code_lt = b.add("code_lt", BlockKind::Compare { op: RelOp::Lt, constant: 5000.0 });
    b.feed(auth_code, code_ge, 0);
    b.feed(auth_code, code_lt, 0);
    let auth_ok = b.add("auth_ok", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(code_ge, auth_ok, 0);
    b.feed(code_lt, auth_ok, 1);
    let soc_f = b.add("soc_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(soc, soc_f, 0);
    let grid_ok = b.add("grid_ok", BlockKind::Compare { op: RelOp::Ge, constant: 200.0 });
    b.feed(grid, grid_ok, 0);

    // Thermal model: temperature integrates (current - cooling), with the
    // interlock relay giving hysteresis around the trip point.
    let temp = b.add(
        "temp",
        BlockKind::DiscreteIntegrator {
            gain: 0.02,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(150.0),
        },
    );
    let overtemp_relay = b.add(
        "overtemp",
        BlockKind::Relay {
            on_threshold: 90.0,
            off_threshold: 60.0,
            on_output: 1.0,
            off_output: 0.0,
        },
    );
    b.wire(temp, overtemp_relay);
    let overtemp_bool =
        b.add("overtemp_bool", BlockKind::DataTypeConversion { to: DataType::Bool });
    b.wire(overtemp_relay, overtemp_bool);

    let session = b.add("session", BlockKind::Chart { chart: session_chart() });
    b.feed(plug, session, 0);
    b.feed(auth_ok, session, 1);
    b.feed(soc_f, session, 2);
    b.feed(overtemp_bool, session, 3);
    b.feed(grid_ok, session, 4);

    // Current limiting: min(demand, SoC-derate curve, grid cap / 4).
    let soc_limit = b.add(
        "soc_limit",
        BlockKind::Lookup1D {
            breakpoints: vec![0.0, 20.0, 50.0, 80.0, 95.0, 100.0],
            values: vec![40.0, 100.0, 100.0, 60.0, 20.0, 5.0],
        },
    );
    b.feed(soc_f, soc_limit, 0);
    let grid_f = b.add("grid_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(grid, grid_f, 0);
    let grid_cap = b.add("grid_cap", BlockKind::Gain { gain: 0.25 });
    b.wire(grid_f, grid_cap);
    let grid_cap_sat = b.add("grid_cap_sat", BlockKind::Saturation { lower: 0.0, upper: 120.0 });
    b.wire(grid_cap, grid_cap_sat);
    let current = b.add("current", BlockKind::MinMax { op: MinMaxOp::Min, inputs: 3 });
    b.connect(session, 1, current, 0);
    b.feed(soc_limit, current, 1);
    b.feed(grid_cap_sat, current, 2);

    // Thermal feedback: heating proportional to current minus fixed cooling.
    let heat = b.add(
        "heat",
        BlockKind::Sum { signs: vec![cftcg_model::InputSign::Plus, cftcg_model::InputSign::Minus] },
    );
    let cooling = b.constant("cooling", Value::F64(8.0));
    b.feed(current, heat, 0);
    b.feed(cooling, heat, 1);
    b.wire(heat, temp);

    // Energy meter.
    let meter = b.add(
        "meter",
        BlockKind::DiscreteIntegrator {
            gain: 0.1,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(1e9),
        },
    );
    b.feed(current, meter, 0);

    // Ready lamp: plugged and not in error and authenticated path healthy.
    let in_error = b.add("in_error", BlockKind::Compare { op: RelOp::Eq, constant: 6.0 });
    b.connect(session, 0, in_error, 0);
    let not_error = b.add("not_error", BlockKind::Logic { op: LogicOp::Not, inputs: 1 });
    b.feed(in_error, not_error, 0);
    let ready = b.add("ready", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(plug, ready, 0);
    b.feed(not_error, ready, 1);

    // Outputs.
    let mode = b.outport("Mode");
    b.connect(session, 0, mode, 0);
    let amps = b.add("amps_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.feed(current, amps, 0);
    let current_out = b.outport("CurrentLimit");
    b.wire(amps, current_out);
    let energy = b.add("energy_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.wire(meter, energy);
    let energy_out = b.outport("Energy");
    b.wire(energy, energy_out);
    let faults = b.outport("Faults");
    b.connect(session, 2, faults, 0);
    let ready_out = b.outport("Ready");
    b.wire(ready, ready_out);

    b.finish().expect("EVCS validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    fn inputs(plug: bool, code: u16, soc: u8, grid: i32) -> Vec<Value> {
        vec![Value::Bool(plug), Value::U16(code), Value::U8(soc), Value::I32(grid)]
    }

    fn mode_of(out: &[Value]) -> i32 {
        match out[0] {
            Value::I32(m) => m,
            other => panic!("mode output {other:?}"),
        }
    }

    #[test]
    fn full_session_reaches_fast_charge() {
        let mut sim = Simulator::new(&model()).unwrap();
        assert_eq!(mode_of(&sim.step(&inputs(true, 0, 40, 1000)).unwrap()), 1);
        assert_eq!(mode_of(&sim.step(&inputs(true, 4242, 40, 1000)).unwrap()), 2);
        let out = sim.step(&inputs(true, 4242, 40, 1000)).unwrap();
        assert_eq!(mode_of(&out), 3, "low SoC with grid power must fast-charge");
        assert!(out[4].is_truthy(), "ready lamp on");
    }

    #[test]
    fn bad_auth_times_out_to_error() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(true, 1, 40, 1000)).unwrap(); // -> Authenticate
        for _ in 0..6 {
            sim.step(&inputs(true, 1, 40, 1000)).unwrap();
        }
        let out = sim.step(&inputs(true, 1, 40, 1000)).unwrap();
        assert_eq!(mode_of(&out), 6, "failed auth must error out");
        assert_eq!(out[3], Value::I32(1));
    }

    #[test]
    fn high_soc_goes_to_trickle_then_complete() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(true, 4242, 85, 1000)).unwrap();
        sim.step(&inputs(true, 4242, 85, 1000)).unwrap();
        let out = sim.step(&inputs(true, 4242, 85, 1000)).unwrap();
        assert_eq!(mode_of(&out), 4, "high SoC must trickle");
        let out = sim.step(&inputs(true, 4242, 99, 1000)).unwrap();
        assert_eq!(mode_of(&out), 5, "full battery completes");
    }

    #[test]
    fn sustained_fast_charge_trips_overtemp() {
        let mut sim = Simulator::new(&model()).unwrap();
        let mut tripped = false;
        for _ in 0..300 {
            let out = sim.step(&inputs(true, 4242, 30, 2000)).unwrap();
            if mode_of(&out) == 6 {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "sustained 100A charge must overheat eventually");
    }

    #[test]
    fn current_respects_grid_cap() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(true, 4242, 30, 250)).unwrap();
        sim.step(&inputs(true, 4242, 30, 250)).unwrap();
        let out = sim.step(&inputs(true, 4242, 30, 250)).unwrap();
        let amps = out[1].as_f64();
        assert!(amps <= 62.5 + 1.0, "grid cap 250*0.25 must bind, got {amps}");
    }

    #[test]
    fn unplug_returns_to_idle() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(true, 4242, 30, 1000)).unwrap();
        sim.step(&inputs(true, 4242, 30, 1000)).unwrap();
        let out = sim.step(&inputs(false, 0, 30, 1000)).unwrap();
        assert_eq!(mode_of(&out), 0);
    }

    #[test]
    fn compiles_at_expected_scale() {
        let compiled = compile(&model()).unwrap();
        let branches = compiled.map().branch_count();
        assert!((50..220).contains(&branches), "branch count {branches} out of expected range");
    }
}
