//! **UTPC** — an underwater thruster power controller.
//!
//! Power delivery is limited by depth (pressure derating via a 1-D lookup),
//! battery voltage (browns out below threshold), and cavitation detection
//! (commanded thrust far above what the water column supports). The mode
//! chart (`Off / Ramp / Run / Derate / Emergency`) contains the model's
//! deep branch: *emergency surfacing* requires a leak detected **and**
//! sustained for several iterations while deeper than 50 m — the paper saw
//! this model's coverage jump only "at around 917 seconds".

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, LogicOp, MinMaxOp, Model, ModelBuilder, RelOp, State, Transition,
    Value,
};

/// The thruster mode chart.
fn mode_chart() -> Chart {
    let mut chart = Chart::new();
    chart.inputs.push(("enable".into(), DataType::Bool));
    chart.inputs.push(("cmd".into(), DataType::F64));
    chart.inputs.push(("leak".into(), DataType::Bool));
    chart.inputs.push(("deep".into(), DataType::Bool));
    chart.inputs.push(("volt_ok".into(), DataType::Bool));
    chart.outputs.push(("mode".into(), DataType::I32));
    chart.outputs.push(("authority".into(), DataType::F64));
    chart.variables.push(("leak_timer".into(), DataType::I32, Value::I32(0)));
    chart.variables.push(("ramp".into(), DataType::F64, Value::F64(0.0)));

    let off = chart.add_state(
        State::new("Off")
            .with_entry(parse_stmts("mode = 0; authority = 0; ramp = 0;").unwrap())
            .with_during(parse_stmts("leak_timer = 0;").unwrap()),
    );
    let rampup = chart.add_state(
        State::new("Ramp")
            .with_entry(parse_stmts("mode = 1;").unwrap())
            .with_during(parse_stmts("ramp = ramp + 0.1; authority = ramp;").unwrap()),
    );
    let run = chart.add_state(
        State::new("Run").with_entry(parse_stmts("mode = 2; authority = 1;").unwrap()).with_during(
            parse_stmts("if (leak) { leak_timer = leak_timer + 1; } else { leak_timer = 0; }")
                .unwrap(),
        ),
    );
    let derate = chart.add_state(
        State::new("Derate")
            .with_entry(parse_stmts("mode = 3; authority = 0.5;").unwrap())
            .with_during(
                parse_stmts("if (leak) { leak_timer = leak_timer + 1; } else { leak_timer = 0; }")
                    .unwrap(),
            ),
    );
    let emergency = chart.add_state(
        State::new("Emergency").with_entry(parse_stmts("mode = 4; authority = 1;").unwrap()),
    );
    chart.initial = off;

    chart.add_transition(Transition::new(off, rampup, parse_expr("enable && cmd > 5").unwrap()));
    chart.add_transition(Transition::new(rampup, run, parse_expr("ramp >= 1").unwrap()));
    chart.add_transition(Transition::new(rampup, off, parse_expr("!enable").unwrap()));
    chart.add_transition(Transition::new(run, derate, parse_expr("!volt_ok").unwrap()));
    chart.add_transition(Transition::new(run, off, parse_expr("!enable || cmd < 1").unwrap()));
    chart.add_transition(Transition::new(derate, run, parse_expr("volt_ok").unwrap()));
    chart.add_transition(Transition::new(derate, off, parse_expr("!enable").unwrap()));
    // The deep branch: a leak sustained for 10 iterations while deep.
    for s in [run, derate] {
        chart.add_transition(Transition::new(
            s,
            emergency,
            parse_expr("leak && deep && leak_timer >= 10").unwrap(),
        ));
    }
    chart.add_transition(Transition::new(emergency, off, parse_expr("!deep && !leak").unwrap()));
    chart
}

/// Builds the UTPC benchmark model.
///
/// Inports: `ThrustCmd` (`int16`, signed percent ×1), `Depth` (`uint16`,
/// meters), `BatteryV` (`uint8`, decivolts), `Leak` (`boolean`),
/// `Enable` (`boolean`).
pub fn model() -> Model {
    let mut b = ModelBuilder::new("UTPC");
    let cmd = b.inport("ThrustCmd", DataType::I16);
    let depth = b.inport("Depth", DataType::U16);
    let volts = b.inport("BatteryV", DataType::U8);
    let leak = b.inport("Leak", DataType::Bool);
    let enable = b.inport("Enable", DataType::Bool);

    let cmd_f = b.add("cmd_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let depth_f = b.add("depth_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let volts_f = b.add("volts_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(cmd, cmd_f, 0);
    b.feed(depth, depth_f, 0);
    b.feed(volts, volts_f, 0);

    let cmd_abs = b.add("cmd_abs", BlockKind::Abs);
    b.wire(cmd_f, cmd_abs);
    let volt_ok = b.add("volt_ok", BlockKind::Compare { op: RelOp::Ge, constant: 110.0 });
    b.feed(volts_f, volt_ok, 0);
    let deep = b.add("deep", BlockKind::Compare { op: RelOp::Ge, constant: 50.0 });
    b.feed(depth_f, deep, 0);

    let ctl = b.add("mode_ctl", BlockKind::Chart { chart: mode_chart() });
    b.feed(enable, ctl, 0);
    b.feed(cmd_abs, ctl, 1);
    b.feed(leak, ctl, 2);
    b.feed(deep, ctl, 3);
    b.feed(volt_ok, ctl, 4);

    // Depth derating map: full power down to 30 m, tapering to 30% at 200 m.
    let depth_limit = b.add(
        "depth_limit",
        BlockKind::Lookup1D {
            breakpoints: vec![0.0, 30.0, 80.0, 150.0, 200.0],
            values: vec![100.0, 100.0, 70.0, 45.0, 30.0],
        },
    );
    b.feed(depth_f, depth_limit, 0);

    // Battery derating: linear with decivolts above brown-out.
    let volt_margin = b.add("volt_margin", BlockKind::Bias { bias: -100.0 });
    b.feed(volts_f, volt_margin, 0);
    let volt_gain = b.add("volt_gain", BlockKind::Gain { gain: 2.0 });
    b.wire(volt_margin, volt_gain);
    let volt_limit = b.add("volt_limit", BlockKind::Saturation { lower: 0.0, upper: 100.0 });
    b.wire(volt_gain, volt_limit);

    // Effective limit = min(depth, battery) × chart authority.
    let hard_limit = b.add("hard_limit", BlockKind::MinMax { op: MinMaxOp::Min, inputs: 2 });
    b.feed(depth_limit, hard_limit, 0);
    b.feed(volt_limit, hard_limit, 1);
    let effective =
        b.add("effective", BlockKind::Product { ops: vec![cftcg_model::ProductOp::Mul; 3] });
    let pct = b.constant("pct", Value::F64(0.01));
    b.feed(hard_limit, effective, 0);
    b.connect(ctl, 1, effective, 1);
    b.feed(pct, effective, 2);

    // Commanded power clipped by the effective limit, slew-limited.
    let scaled_cmd =
        b.add("scaled_cmd", BlockKind::Product { ops: vec![cftcg_model::ProductOp::Mul; 2] });
    b.feed(cmd_f, scaled_cmd, 0);
    b.feed(effective, scaled_cmd, 1);
    let out_sat = b.add("out_sat", BlockKind::Saturation { lower: -100.0, upper: 100.0 });
    b.wire(scaled_cmd, out_sat);
    let out_slew = b.add("out_slew", BlockKind::RateLimiter { rising: 8.0, falling: 8.0 });
    b.wire(out_sat, out_slew);

    // Cavitation monitor: high commanded power in shallow water.
    let shallow = b.add("shallow", BlockKind::Compare { op: RelOp::Lt, constant: 5.0 });
    b.feed(depth_f, shallow, 0);
    let hot = b.add("hot", BlockKind::Compare { op: RelOp::Gt, constant: 80.0 });
    b.feed(cmd_abs, hot, 0);
    let cavitating = b.add("cavitating", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
    b.feed(shallow, cavitating, 0);
    b.feed(hot, cavitating, 1);
    let cav_f = b.add("cav_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.wire(cavitating, cav_f);
    let cav_count = b.add(
        "cav_count",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(1e6),
        },
    );
    b.wire(cav_f, cav_count);

    // Outputs.
    let mode = b.outport("Mode");
    b.connect(ctl, 0, mode, 0);
    let power_i = b.add("power_i", BlockKind::DataTypeConversion { to: DataType::I16 });
    b.wire(out_slew, power_i);
    let power = b.outport("Power");
    b.wire(power_i, power);
    let cav_i = b.add("cav_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.wire(cav_count, cav_i);
    let cav = b.outport("CavitationEvents");
    b.wire(cav_i, cav);

    b.finish().expect("UTPC validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    fn inputs(cmd: i16, depth: u16, volts: u8, leak: bool, enable: bool) -> Vec<Value> {
        vec![
            Value::I16(cmd),
            Value::U16(depth),
            Value::U8(volts),
            Value::Bool(leak),
            Value::Bool(enable),
        ]
    }

    fn mode_of(out: &[Value]) -> i32 {
        match out[0] {
            Value::I32(m) => m,
            other => panic!("mode output {other:?}"),
        }
    }

    #[test]
    fn ramp_then_run() {
        let mut sim = Simulator::new(&model()).unwrap();
        assert_eq!(mode_of(&sim.step(&inputs(50, 10, 130, false, true)).unwrap()), 1);
        let mut mode = 1;
        for _ in 0..15 {
            mode = mode_of(&sim.step(&inputs(50, 10, 130, false, true)).unwrap());
        }
        assert_eq!(mode, 2, "ramp must complete into Run");
    }

    #[test]
    fn low_battery_derates_and_recovers() {
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..15 {
            sim.step(&inputs(50, 10, 130, false, true)).unwrap();
        }
        let out = sim.step(&inputs(50, 10, 90, false, true)).unwrap();
        assert_eq!(mode_of(&out), 3, "brown-out must derate");
        let out = sim.step(&inputs(50, 10, 130, false, true)).unwrap();
        assert_eq!(mode_of(&out), 2);
    }

    #[test]
    fn emergency_needs_sustained_leak_at_depth() {
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..15 {
            sim.step(&inputs(50, 100, 130, false, true)).unwrap();
        }
        // Leak at depth, but intermittent: never escalates.
        for _ in 0..8 {
            let out = sim.step(&inputs(50, 100, 130, true, true)).unwrap();
            assert_ne!(mode_of(&out), 4);
        }
        sim.step(&inputs(50, 100, 130, false, true)).unwrap(); // timer resets
                                                               // Sustained leak: escalates after 10 consecutive leak iterations.
        let mut fired_at = None;
        for k in 0..20 {
            let out = sim.step(&inputs(50, 100, 130, true, true)).unwrap();
            if mode_of(&out) == 4 {
                fired_at = Some(k);
                break;
            }
        }
        let k = fired_at.expect("sustained leak at depth must trigger Emergency");
        assert!(k >= 9, "needs ~10 sustained iterations, fired at {k}");
    }

    #[test]
    fn leak_in_shallow_water_does_not_surface() {
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..15 {
            sim.step(&inputs(50, 10, 130, false, true)).unwrap();
        }
        for _ in 0..25 {
            let out = sim.step(&inputs(50, 10, 130, true, true)).unwrap();
            assert_ne!(mode_of(&out), 4, "shallow leak must not trigger Emergency");
        }
    }

    #[test]
    fn depth_derates_power() {
        let mut sim = Simulator::new(&model()).unwrap();
        let run = |sim: &mut Simulator, depth: u16| {
            for _ in 0..60 {
                sim.step(&inputs(100, depth, 130, false, true)).unwrap();
            }
            sim.step(&inputs(100, depth, 130, false, true)).unwrap()[1].as_f64()
        };
        let shallow_power = run(&mut sim, 10);
        sim.reset();
        let deep_power = run(&mut sim, 200);
        assert!(
            deep_power < shallow_power,
            "depth must derate power: {deep_power} vs {shallow_power}"
        );
    }

    #[test]
    fn cavitation_events_count() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(90, 2, 130, false, true)).unwrap();
        sim.step(&inputs(90, 2, 130, false, true)).unwrap();
        let out = sim.step(&inputs(90, 2, 130, false, true)).unwrap();
        assert_eq!(out[2], Value::I32(2), "two completed cavitation steps counted");
    }

    #[test]
    fn compiles_at_expected_scale() {
        let compiled = compile(&model()).unwrap();
        let branches = compiled.map().branch_count();
        assert!((50..190).contains(&branches), "branch count {branches} out of expected range");
    }
}
