//! **SolarPV** — the solar PV panel energy output control system, the
//! paper's running example (its Figure 1, driver Figure 3).
//!
//! The system "interfaces with multiple solar PV panels concurrently and
//! adjusts the method of electrical energy storage based on the electrical
//! energy output power of the panels", with "an extensive array of charging
//! states for each PV panel". Here: four panel subsystems, each holding its
//! own charge-state chart (`Off / Charging / Full / Fault`) and a limited
//! energy store; commands are addressed per panel through the `PanelID`
//! inport exactly like the driver in the paper's Figure 3
//! (`int8 Enable, int32 Power, int32 PanelID`).

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, InputSign, LogicOp, Model, ModelBuilder, RelOp, State, Transition,
    Value,
};

use crate::helpers::const_action;

/// Number of panels managed by the controller.
pub const PANELS: usize = 4;

/// Builds one panel's inner model: power conditioning, the charge-state
/// chart, and the energy store.
fn panel_model(k: usize) -> Model {
    let mut chart = Chart::new();
    chart.inputs.push(("p".into(), DataType::F64));
    chart.outputs.push(("rate".into(), DataType::F64));
    chart.outputs.push(("status".into(), DataType::I32));
    chart.variables.push(("level".into(), DataType::F64, Value::F64(0.0)));
    let off = chart
        .add_state(State::new("Off").with_entry(parse_stmts("status = 0; rate = 0;").unwrap()));
    let charging = chart.add_state(
        State::new("Charging")
            .with_entry(parse_stmts("status = 1;").unwrap())
            .with_during(parse_stmts("level = level + p * 0.001; rate = p * 0.9;").unwrap()),
    );
    let full = chart.add_state(
        State::new("Full")
            .with_entry(parse_stmts("status = 2; rate = 0;").unwrap())
            .with_during(parse_stmts("level = level - 0.1;").unwrap()),
    );
    let fault = chart
        .add_state(State::new("Fault").with_entry(parse_stmts("status = 3; rate = 0;").unwrap()));
    chart.initial = off;
    chart.add_transition(Transition::new(off, fault, parse_expr("p < -500").unwrap()));
    chart.add_transition(Transition::new(off, charging, parse_expr("p > 100").unwrap()));
    chart.add_transition(Transition::new(charging, fault, parse_expr("p > 4500").unwrap()));
    chart.add_transition(Transition::new(charging, full, parse_expr("level >= 50").unwrap()));
    chart.add_transition(Transition::new(charging, off, parse_expr("p < 10").unwrap()));
    chart.add_transition(Transition::new(
        full,
        charging,
        parse_expr("level < 45 && p > 100").unwrap(),
    ));
    chart.add_transition(Transition::new(fault, off, parse_expr("p == 0").unwrap()));

    let mut b = ModelBuilder::new(format!("Panel{k}"));
    let power = b.inport("power", DataType::I32);
    let to_f = b.add("to_f64", BlockKind::DataTypeConversion { to: DataType::F64 });
    let sat = b.add("power_sat", BlockKind::Saturation { lower: -1000.0, upper: 5000.0 });
    let ctl = b.add("charge_ctl", BlockKind::Chart { chart });
    let store = b.add(
        "energy_store",
        BlockKind::DiscreteIntegrator {
            gain: 0.01,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(1000.0),
        },
    );
    let energy = b.outport("energy");
    let status = b.outport("status");
    b.wire(power, to_f);
    b.wire(to_f, sat);
    b.wire(sat, ctl);
    b.connect(ctl, 0, store, 0);
    b.wire(store, energy);
    b.connect(ctl, 1, status, 0);
    b.finish().expect("panel model validates")
}

/// Builds the SolarPV benchmark model.
///
/// Inports (matching the paper's Figure 3 driver): `Enable` (`int8`),
/// `Power` (`int32`), `PanelID` (`int32`). Outports: `Ret` (`int32`, total
/// stored energy) and `Status` (`int32`, the addressed panel's state).
pub fn model() -> Model {
    let mut b = ModelBuilder::new("SolarPV");
    let enable = b.inport("Enable", DataType::I8);
    let power = b.inport("Power", DataType::I32);
    let panel_id = b.inport("PanelID", DataType::I32);

    // Per-panel gating: panel k runs while Enable != 0 and PanelID == k.
    let mut panel_blocks = Vec::new();
    for k in 1..=PANELS {
        let is_k =
            b.add(format!("is_panel{k}"), BlockKind::Compare { op: RelOp::Eq, constant: k as f64 });
        let gate = b.add(format!("gate{k}"), BlockKind::Logic { op: LogicOp::And, inputs: 2 });
        let panel = b.add(
            format!("panel{k}"),
            BlockKind::EnabledSubsystem { model: Box::new(panel_model(k)) },
        );
        b.feed(panel_id, is_k, 0);
        b.feed(enable, gate, 0);
        b.feed(is_k, gate, 1);
        b.feed(gate, panel, 0);
        b.feed(power, panel, 1);
        panel_blocks.push(panel);
    }

    // Total stored energy across panels.
    let total = b.add("total_energy", BlockKind::Sum { signs: vec![InputSign::Plus; PANELS] });
    for (i, &panel) in panel_blocks.iter().enumerate() {
        b.connect(panel, 0, total, i);
    }
    let to_i32 = b.add("ret_cast", BlockKind::DataTypeConversion { to: DataType::I32 });
    let ret = b.outport("Ret");
    b.wire(total, to_i32);
    b.wire(to_i32, ret);

    // Status readback for the addressed panel (SwitchCase dispatch — the
    // Figure 4(c) instrumentation mode).
    let dispatch = b.add(
        "status_dispatch",
        BlockKind::SwitchCase {
            cases: (1..=PANELS as i64).map(|k| vec![k]).collect(),
            has_default: true,
        },
    );
    b.feed(panel_id, dispatch, 0);
    let mut readers = Vec::new();
    for (i, &panel) in panel_blocks.iter().enumerate() {
        let reader = b.add(
            format!("read_status{}", i + 1),
            crate::helpers::passthrough_action(&format!("ReadStatus{}", i + 1), DataType::I32),
        );
        b.connect(dispatch, i, reader, 0);
        b.connect(panel, 1, reader, 1);
        readers.push(reader);
    }
    let bad_id = b.add("bad_id", const_action("BadPanelId", Value::I32(-1)));
    b.connect(dispatch, PANELS, bad_id, 0);
    readers.push(bad_id);
    let merge = b.add("status_merge", BlockKind::Merge { inputs: readers.len() });
    for (i, &r) in readers.iter().enumerate() {
        b.connect(r, 0, merge, i);
    }
    let status = b.outport("Status");
    b.wire(merge, status);

    b.finish().expect("SolarPV validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    fn inputs(enable: i8, power: i32, id: i32) -> Vec<Value> {
        vec![Value::I8(enable), Value::I32(power), Value::I32(id)]
    }

    #[test]
    fn matches_figure_3_driver_layout() {
        let compiled = compile(&model()).unwrap();
        assert_eq!(compiled.layout().tuple_size(), 9); // the paper's dataLen = 9
    }

    #[test]
    fn charging_accumulates_energy_per_panel() {
        let mut sim = Simulator::new(&model()).unwrap();
        // Drive panel 2 into Charging with moderate power (stays below the
        // Full threshold), then let it accumulate.
        for _ in 0..50 {
            sim.step(&inputs(1, 150, 2)).unwrap();
        }
        let out = sim.step(&inputs(1, 150, 2)).unwrap();
        let ret = out[0].as_f64();
        assert!(ret > 0.0, "stored energy should grow, got {ret}");
        assert_eq!(out[1], Value::I32(1), "panel 2 should report Charging");
        // Panel 3 never addressed: still Off.
        let out = sim.step(&inputs(0, 0, 3)).unwrap();
        assert_eq!(out[1], Value::I32(0));
    }

    #[test]
    fn fault_state_reachable_and_recoverable() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(1, 5000, 1)).unwrap(); // sat clamps to 5000; Off->Charging? p>100 yes
        sim.step(&inputs(1, 5000, 1)).unwrap(); // Charging -> Fault (p > 4500)
        let out = sim.step(&inputs(1, 5000, 1)).unwrap();
        assert_eq!(out[1], Value::I32(3), "panel 1 should be in Fault");
        sim.step(&inputs(1, 0, 1)).unwrap(); // Fault -> Off on p == 0
        let out = sim.step(&inputs(1, 0, 1)).unwrap();
        assert_eq!(out[1], Value::I32(0));
    }

    #[test]
    fn unknown_panel_id_reports_minus_one() {
        let mut sim = Simulator::new(&model()).unwrap();
        let out = sim.step(&inputs(1, 100, 77)).unwrap();
        assert_eq!(out[1], Value::I32(-1));
    }

    #[test]
    fn disabled_panels_hold_state() {
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..20 {
            sim.step(&inputs(1, 3000, 1)).unwrap();
        }
        let charged = sim.step(&inputs(1, 3000, 1)).unwrap()[0].as_f64();
        // Enable low: energy must not change.
        for _ in 0..10 {
            let out = sim.step(&inputs(0, 3000, 1)).unwrap();
            assert_eq!(out[0].as_f64(), charged);
        }
    }

    #[test]
    fn compiles_with_substantial_instrumentation() {
        let compiled = compile(&model()).unwrap();
        let branches = compiled.map().branch_count();
        assert!((40..200).contains(&branches), "branch count {branches} out of expected range");
        assert!(model().total_block_count() > 50);
    }
}
