//! **TWC** — a train wheel speed controller (wheel-slide protection).
//!
//! Computes the slip ratio between wheel and reference (train) speed and
//! escalates through an anti-slip chart (`Normal / SlipWatch / Braking /
//! Recovery / Emergency`). The paper observed a coverage jump for this
//! model "at around 41 seconds": the emergency branch requires *sustained*
//! slip over many consecutive iterations, which random short inputs almost
//! never produce — exactly the deep-state logic rebuilt here (`slip_timer`
//! must climb past a threshold while slip persists).

use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, Model, ModelBuilder, RelOp, State, Transition, Value,
};

/// The anti-slip escalation chart.
fn antislip_chart() -> Chart {
    let mut chart = Chart::new();
    chart.inputs.push(("slip".into(), DataType::F64));
    chart.inputs.push(("brake_req".into(), DataType::F64));
    chart.outputs.push(("phase".into(), DataType::I32));
    chart.outputs.push(("brake_scale".into(), DataType::F64));
    chart.outputs.push(("sander".into(), DataType::Bool));
    chart.variables.push(("slip_timer".into(), DataType::I32, Value::I32(0)));
    chart.variables.push(("recover_timer".into(), DataType::I32, Value::I32(0)));

    let normal = chart.add_state(
        State::new("Normal")
            .with_entry(
                parse_stmts("phase = 0; brake_scale = 1; sander = false; slip_timer = 0;").unwrap(),
            )
            .with_during(parse_stmts("slip_timer = 0;").unwrap()),
    );
    let watch = chart.add_state(
        State::new("SlipWatch").with_entry(parse_stmts("phase = 1;").unwrap()).with_during(
            parse_stmts(
                "if (slip > 0.1) { slip_timer = slip_timer + 1; } \
                     else { slip_timer = 0; }",
            )
            .unwrap(),
        ),
    );
    let braking = chart.add_state(
        State::new("Braking")
            .with_entry(parse_stmts("phase = 2; brake_scale = 0.4;").unwrap())
            .with_during(
                parse_stmts(
                    "if (slip > 0.1) { slip_timer = slip_timer + 1; } \
                     else { slip_timer = slip_timer - 1; }",
                )
                .unwrap(),
            ),
    );
    let recovery = chart.add_state(
        State::new("Recovery")
            .with_entry(
                parse_stmts("phase = 3; brake_scale = 0.7; recover_timer = 0; slip_timer = 0;")
                    .unwrap(),
            )
            .with_during(parse_stmts("recover_timer = recover_timer + 1;").unwrap()),
    );
    let emergency = chart.add_state(
        State::new("Emergency")
            .with_entry(parse_stmts("phase = 4; brake_scale = 0.2; sander = true;").unwrap()),
    );
    chart.initial = normal;

    chart.add_transition(Transition::new(normal, watch, parse_expr("slip > 0.1").unwrap()));
    chart.add_transition(Transition::new(
        watch,
        braking,
        parse_expr("slip > 0.2 || slip_timer >= 3").unwrap(),
    ));
    chart.add_transition(Transition::new(watch, normal, parse_expr("slip < 0.05").unwrap()));
    // The deep branch: sustained heavy slip while braking.
    chart.add_transition(Transition::new(
        braking,
        emergency,
        parse_expr("slip > 0.35 && slip_timer >= 12").unwrap(),
    ));
    chart.add_transition(Transition::new(braking, recovery, parse_expr("slip < 0.08").unwrap()));
    chart.add_transition(Transition::new(
        recovery,
        normal,
        parse_expr("recover_timer >= 4 && slip < 0.05").unwrap(),
    ));
    chart.add_transition(Transition::new(recovery, braking, parse_expr("slip > 0.15").unwrap()));
    chart.add_transition(Transition::new(
        emergency,
        recovery,
        parse_expr("slip < 0.02 && brake_req < 10").unwrap(),
    ));
    chart
}

/// Builds the TWC benchmark model.
///
/// Inports: `WheelSpeed` (`uint16`, 0.1 km/h units), `TrainSpeed`
/// (`uint16`, 0.1 km/h), `BrakeDemand` (`uint8`, percent).
pub fn model() -> Model {
    let mut b = ModelBuilder::new("TWC");
    let wheel = b.inport("WheelSpeed", DataType::U16);
    let train = b.inport("TrainSpeed", DataType::U16);
    let demand = b.inport("BrakeDemand", DataType::U8);

    let wheel_f = b.add("wheel_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    let train_f = b.add("train_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(wheel, wheel_f, 0);
    b.feed(train, train_f, 0);

    // Speed sensor filtering: two-step moving window via unit delays.
    let wheel_d1 = b.add("wheel_d1", BlockKind::UnitDelay { initial: Value::F64(0.0) });
    b.wire(wheel_f, wheel_d1);
    let wheel_avg =
        b.add("wheel_avg", BlockKind::Sum { signs: vec![cftcg_model::InputSign::Plus; 2] });
    b.feed(wheel_f, wheel_avg, 0);
    b.feed(wheel_d1, wheel_avg, 1);
    let wheel_half = b.add("wheel_half", BlockKind::Gain { gain: 0.5 });
    b.wire(wheel_avg, wheel_half);

    // Slip ratio (train - wheel) / max(train, 10): sliding wheels lag the
    // train during braking.
    let diff = b.add(
        "diff",
        BlockKind::Sum { signs: vec![cftcg_model::InputSign::Plus, cftcg_model::InputSign::Minus] },
    );
    b.feed(train_f, diff, 0);
    b.feed(wheel_half, diff, 1);
    let floor10 = b.constant("floor10", Value::F64(10.0));
    let denom = b.add("denom", BlockKind::MinMax { op: cftcg_model::MinMaxOp::Max, inputs: 2 });
    b.feed(train_f, denom, 0);
    b.feed(floor10, denom, 1);
    let ratio = b.add(
        "ratio",
        BlockKind::Product { ops: vec![cftcg_model::ProductOp::Mul, cftcg_model::ProductOp::Div] },
    );
    b.feed(diff, ratio, 0);
    b.feed(denom, ratio, 1);
    let slip = b.add("slip_sat", BlockKind::Saturation { lower: -1.0, upper: 1.0 });
    b.wire(ratio, slip);

    let demand_f = b.add("demand_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.feed(demand, demand_f, 0);

    let ctl = b.add("antislip", BlockKind::Chart { chart: antislip_chart() });
    b.feed(slip, ctl, 0);
    b.feed(demand_f, ctl, 1);

    // Brake command: demand × chart scale, slew-limited, saturated.
    let cmd = b.add("brake_cmd", BlockKind::Product { ops: vec![cftcg_model::ProductOp::Mul; 3] });
    let pct = b.constant("pct", Value::F64(0.01));
    b.feed(demand_f, cmd, 0);
    b.connect(ctl, 1, cmd, 1);
    b.feed(pct, cmd, 2);
    let cmd_slew = b.add("cmd_slew", BlockKind::RateLimiter { rising: 0.08, falling: 0.2 });
    b.wire(cmd, cmd_slew);
    let cmd_sat = b.add("cmd_sat", BlockKind::Saturation { lower: 0.0, upper: 1.0 });
    b.wire(cmd_slew, cmd_sat);

    // Wheel-flat risk monitor: *repeated* slip episodes (entries into the
    // Braking phase) within a window indicate a developing wheel flat.
    // A single long slide — which constant test signals produce — counts
    // as one episode only; reaching the alarm needs structured slip/grip
    // cycling.
    let in_braking = b.add("in_braking", BlockKind::Compare { op: RelOp::Eq, constant: 2.0 });
    b.connect(ctl, 0, in_braking, 0);
    let episode_edge =
        b.add("episode_edge", BlockKind::EdgeDetect { kind: cftcg_model::EdgeKind::Rising });
    b.wire(in_braking, episode_edge);
    let episode_f = b.add("episode_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.wire(episode_edge, episode_f);
    // Episodes accumulate fast and leak slowly, so only clustered episodes
    // reach the alarm threshold.
    let leak_bias = b.constant("leak_bias", Value::F64(-0.02));
    let episode_sig =
        b.add("episode_sig", BlockKind::Sum { signs: vec![cftcg_model::InputSign::Plus; 2] });
    b.feed(episode_f, episode_sig, 0);
    b.feed(leak_bias, episode_sig, 1);
    let episodes = b.add(
        "episodes",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(6.0),
        },
    );
    b.wire(episode_sig, episodes);
    let flat_risk = b.add("flat_risk", BlockKind::Compare { op: RelOp::Ge, constant: 2.5 });
    b.wire(episodes, flat_risk);

    // Sanding usage counter.
    let sand_edge =
        b.add("sand_edge", BlockKind::EdgeDetect { kind: cftcg_model::EdgeKind::Rising });
    b.connect(ctl, 2, sand_edge, 0);
    let sand_f = b.add("sand_f", BlockKind::DataTypeConversion { to: DataType::F64 });
    b.wire(sand_edge, sand_f);
    let sand_count = b.add(
        "sand_count",
        BlockKind::DiscreteIntegrator {
            gain: 1.0,
            initial: 0.0,
            lower: Some(0.0),
            upper: Some(1e6),
        },
    );
    b.wire(sand_f, sand_count);

    // Outputs.
    let phase = b.outport("Phase");
    b.connect(ctl, 0, phase, 0);
    let brake_pct = b.add("brake_pct", BlockKind::Gain { gain: 100.0 });
    b.wire(cmd_sat, brake_pct);
    let brake_u8 = b.add("brake_u8", BlockKind::DataTypeConversion { to: DataType::U8 });
    b.wire(brake_pct, brake_u8);
    let brake_out = b.outport("BrakeCmd");
    b.wire(brake_u8, brake_out);
    let slip_milli = b.add("slip_milli", BlockKind::Gain { gain: 1000.0 });
    b.wire(slip, slip_milli);
    let slip_i = b.add("slip_i", BlockKind::DataTypeConversion { to: DataType::I16 });
    b.wire(slip_milli, slip_i);
    let slip_out = b.outport("SlipMilli");
    b.wire(slip_i, slip_out);
    let sands_i = b.add("sands_i", BlockKind::DataTypeConversion { to: DataType::I32 });
    b.wire(sand_count, sands_i);
    let sands = b.outport("SandUses");
    b.wire(sands_i, sands);
    let flat_out = b.outport("WheelFlatRisk");
    b.wire(flat_risk, flat_out);

    b.finish().expect("TWC validates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_codegen::compile;
    use cftcg_sim::Simulator;

    fn inputs(wheel: u16, train: u16, demand: u8) -> Vec<Value> {
        vec![Value::U16(wheel), Value::U16(train), Value::U8(demand)]
    }

    fn phase_of(out: &[Value]) -> i32 {
        match out[0] {
            Value::I32(p) => p,
            other => panic!("phase output {other:?}"),
        }
    }

    #[test]
    fn no_slip_stays_normal() {
        let mut sim = Simulator::new(&model()).unwrap();
        // Let the two-sample speed filter settle (the first sample reads a
        // spurious 50% slip against the zero-initialized delay).
        for _ in 0..3 {
            sim.step(&inputs(1000, 1000, 50)).unwrap();
        }
        for _ in 0..20 {
            let out = sim.step(&inputs(1000, 1000, 50)).unwrap();
            assert_eq!(phase_of(&out), 0);
        }
    }

    #[test]
    fn slip_escalates_to_braking() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(1000, 1000, 80)).unwrap(); // prime the filter
                                                    // Wheel locks up: 25% slip.
        sim.step(&inputs(750, 1000, 80)).unwrap(); // Normal -> SlipWatch
        let out = sim.step(&inputs(750, 1000, 80)).unwrap(); // slip > 0.2 -> Braking
        assert_eq!(phase_of(&out), 2);
    }

    #[test]
    fn emergency_needs_sustained_heavy_slip() {
        let mut sim = Simulator::new(&model()).unwrap();
        sim.step(&inputs(1000, 1000, 100)).unwrap();
        let mut reached_emergency_at = None;
        for k in 0..40 {
            let out = sim.step(&inputs(400, 1000, 100)).unwrap(); // 60% slip
            if phase_of(&out) == 4 {
                reached_emergency_at = Some(k);
                break;
            }
        }
        let k = reached_emergency_at.expect("sustained slip must reach Emergency");
        assert!(k >= 12, "emergency requires >= 12 sustained-slip steps, fired at {k}");
    }

    #[test]
    fn brief_slip_never_reaches_emergency() {
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..3 {
            sim.step(&inputs(1000, 1000, 100)).unwrap(); // settle the filter
        }
        for cycle in 0..30 {
            // 5 steps of slip, then grip restored: timer resets via Recovery.
            for _ in 0..5 {
                let out = sim.step(&inputs(400, 1000, 100)).unwrap();
                assert_ne!(phase_of(&out), 4, "cycle {cycle} must not reach Emergency");
            }
            for _ in 0..6 {
                let out = sim.step(&inputs(1000, 1000, 100)).unwrap();
                assert_ne!(phase_of(&out), 4);
            }
        }
    }

    #[test]
    fn braking_reduces_brake_command() {
        let mut sim = Simulator::new(&model()).unwrap();
        // Reach steady full braking with no slip.
        for _ in 0..30 {
            sim.step(&inputs(1000, 1000, 100)).unwrap();
        }
        let normal_cmd = sim.step(&inputs(1000, 1000, 100)).unwrap()[1].as_f64();
        // Now slip: anti-slip must release brake pressure.
        for _ in 0..30 {
            sim.step(&inputs(500, 1000, 100)).unwrap();
        }
        let slipping_cmd = sim.step(&inputs(500, 1000, 100)).unwrap()[1].as_f64();
        assert!(
            slipping_cmd < normal_cmd,
            "anti-slip must release brakes: {slipping_cmd} vs {normal_cmd}"
        );
    }

    #[test]
    fn wheel_flat_risk_needs_repeated_episodes() {
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..3 {
            sim.step(&inputs(1000, 1000, 100)).unwrap();
        }
        // One long continuous slide: a single episode, no flat risk.
        for _ in 0..40 {
            let out = sim.step(&inputs(400, 1000, 100)).unwrap();
            assert_eq!(out[4], Value::Bool(false), "one episode must not alarm");
        }
        // Clustered slip/grip cycles: repeated episodes trip the alarm.
        let mut sim = Simulator::new(&model()).unwrap();
        for _ in 0..3 {
            sim.step(&inputs(1000, 1000, 100)).unwrap();
        }
        let mut tripped = false;
        'outer: for _ in 0..8 {
            for _ in 0..5 {
                let out = sim.step(&inputs(400, 1000, 100)).unwrap();
                if out[4].is_truthy() {
                    tripped = true;
                    break 'outer;
                }
            }
            for _ in 0..7 {
                let out = sim.step(&inputs(1000, 1000, 100)).unwrap();
                if out[4].is_truthy() {
                    tripped = true;
                    break 'outer;
                }
            }
        }
        assert!(tripped, "clustered slip episodes must raise the flat risk");
    }

    #[test]
    fn compiles_at_expected_scale() {
        let compiled = compile(&model()).unwrap();
        let branches = compiled.map().branch_count();
        assert!((40..180).contains(&branches), "branch count {branches} out of expected range");
    }
}
