//! Shared construction snippets for the benchmark models.

use cftcg_model::{BlockKind, ModelBuilder, Value};

/// An action subsystem that outputs a single constant when its action
/// fires — the standard body for `SwitchCase`/`If` routing.
pub fn const_action(name: &str, value: Value) -> BlockKind {
    let mut b = ModelBuilder::new(name);
    let c = b.add("value", BlockKind::Constant { value });
    let y = b.outport("out");
    b.wire(c, y);
    BlockKind::ActionSubsystem { model: Box::new(b.finish().expect("const action body validates")) }
}

/// An action subsystem that forwards its single data input unchanged.
pub fn passthrough_action(name: &str, dtype: cftcg_model::DataType) -> BlockKind {
    let mut b = ModelBuilder::new(name);
    let u = b.inport("u", dtype);
    let y = b.outport("out");
    b.wire(u, y);
    BlockKind::ActionSubsystem {
        model: Box::new(b.finish().expect("passthrough action body validates")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::DataType;

    #[test]
    fn helper_bodies_validate() {
        assert!(matches!(const_action("a", Value::F64(1.0)), BlockKind::ActionSubsystem { .. }));
        assert!(matches!(
            passthrough_action("p", DataType::I32),
            BlockKind::ActionSubsystem { .. }
        ));
    }
}
