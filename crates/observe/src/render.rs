//! Endpoint bodies: the JSON snapshot and the HTML dashboard.
//!
//! Both render from one [`TelemetrySnapshot`], so every number on a page
//! comes from the same registry lock acquisition — a dashboard refresh can
//! never show executions from one instant next to coverage from another.

use std::fmt::Write;

use cftcg_telemetry::json::{push_json_f64, push_json_str};
use cftcg_telemetry::{CorpusSeedReport, SeriesPoint, SpanKind, TelemetrySnapshot};

/// The `/snapshot` body: campaign totals, coverage, span attribution,
/// operator attribution, and the retained time series, as one JSON object.
pub(crate) fn snapshot_json(model: &str, snap: &TelemetrySnapshot) -> String {
    let t = &snap.totals;
    let covered = snap.covered;
    let branch_count = snap.branch_count;
    let frontier_open = branch_count.saturating_sub(covered);
    let coverage_pct =
        if branch_count == 0 { 0.0 } else { 100.0 * covered as f64 / branch_count as f64 };
    let elapsed_s = snap.elapsed.as_secs_f64();
    // Rate from the latest series window when available (reflects *current*
    // throughput); whole-campaign average otherwise.
    let execs_per_sec = match snap.series.last() {
        Some(point) => point.execs_per_sec,
        None if elapsed_s > 0.0 => t.executions as f64 / elapsed_s,
        None => 0.0,
    };

    let mut out = String::with_capacity(2048);
    out.push_str("{\"model\":");
    push_json_str(&mut out, model);
    out.push_str(",\"elapsed_s\":");
    push_json_f64(&mut out, elapsed_s);
    let _ = write!(
        out,
        ",\"executions\":{},\"iterations\":{},\"discoveries\":{},\"violations\":{}",
        t.executions, t.iterations, t.discoveries, t.violations
    );
    let _ = write!(
        out,
        ",\"corpus_size\":{},\"corpus_inserts\":{},\"corpus_evictions\":{}",
        snap.corpus_size, t.corpus_inserts, t.corpus_evictions
    );
    let _ = write!(out, ",\"covered\":{covered},\"branch_count\":{branch_count}");
    out.push_str(",\"coverage_pct\":");
    push_json_f64(&mut out, coverage_pct);
    let _ = write!(out, ",\"frontier_open\":{frontier_open}");
    out.push_str(",\"execs_per_sec\":");
    push_json_f64(&mut out, execs_per_sec);
    out.push_str(",\"last_sync_ms\":");
    push_json_f64(&mut out, snap.last_sync_ms);

    out.push_str(",\"shard_rates\":[");
    for (i, rate) in snap.shard_rates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_f64(&mut out, *rate);
    }
    out.push(']');

    match snap.jit_code_bytes {
        Some(bytes) => {
            let _ = write!(out, ",\"jit_code_bytes\":{bytes}");
        }
        None => out.push_str(",\"jit_code_bytes\":null"),
    }
    match snap.jit_compile_ns {
        Some(ns) => {
            let _ = write!(out, ",\"jit_compile_ns\":{ns}");
        }
        None => out.push_str(",\"jit_compile_ns\":null"),
    }
    match &snap.batch {
        Some(b) => {
            let _ = write!(
                out,
                ",\"batch\":{{\"width\":{},\"rounds\":{},\"commits\":{},\"abandons\":{},\
                 \"scalar_lane_fraction\":",
                b.width, b.rounds, b.commits, b.abandons
            );
            push_json_f64(&mut out, b.scalar_lane_fraction);
            out.push('}');
        }
        None => out.push_str(",\"batch\":null"),
    }

    out.push_str(",\"spans\":[");
    let mut first = true;
    for kind in SpanKind::ALL {
        let h = t.spans.histogram(kind);
        if h.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"pct\":",
            kind.name(),
            h.count(),
            h.sum(),
            h.quantile_upper_bound(0.5),
            h.quantile_upper_bound(0.99),
        );
        push_json_f64(&mut out, t.spans.phase_pct(kind));
        out.push('}');
    }
    out.push(']');

    out.push_str(",\"operators\":[");
    for (i, op) in snap.operator_reports().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, &op.name);
        let _ = write!(
            out,
            ",\"executions\":{},\"coverage_earning\":{}}}",
            op.executions, op.coverage_earning
        );
    }
    out.push(']');

    out.push_str(",\"yields\":[");
    for (i, row) in snap.yield_reports().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(&mut out, &row.name);
        let _ = write!(
            out,
            ",\"executed\":{},\"new_coverage\":{},\"corpus_insert\":{},\"violation\":{}}}",
            row.executed, row.new_coverage, row.corpus_insert, row.violation
        );
    }
    out.push(']');

    out.push_str(",\"goals_per_second\":");
    push_json_f64(&mut out, snap.goals_per_second());
    match snap.goals_per_mutation_ns() {
        Some(rate) => {
            out.push_str(",\"goals_per_mutation_ns\":");
            push_json_f64(&mut out, rate);
        }
        None => out.push_str(",\"goals_per_mutation_ns\":null"),
    }

    out.push_str(",\"corpus_seeds\":[");
    for (i, seed) in snap.corpus_seeds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"size_bytes\":{},\"metric\":{},\"new_branches\":{},\"energy\":{},\
             \"selections\":{},\"children\":{},\"descendant_goals\":{},\"age_executions\":{}}}",
            seed.id,
            seed.size_bytes,
            seed.metric,
            seed.new_branches,
            seed.energy,
            seed.selections,
            seed.children,
            seed.descendant_goals,
            seed.age_executions,
        );
    }
    out.push(']');

    let _ = write!(out, ",\"plateaus\":{}", snap.plateaus);
    match &snap.last_plateau {
        Some(plateau) => {
            out.push_str(",\"plateau\":{\"t_s\":");
            push_json_f64(&mut out, plateau.t);
            let _ =
                write!(out, ",\"executions\":{},\"open\":{}}}", plateau.executions, plateau.open);
        }
        None => out.push_str(",\"plateau\":null"),
    }

    out.push_str(",\"series\":[");
    for (i, point) in snap.series.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_series_point(&mut out, point);
    }
    out.push_str("]}");
    out
}

fn push_series_point(out: &mut String, point: &SeriesPoint) {
    out.push_str("{\"t_s\":");
    push_json_f64(out, point.t_s);
    let _ = write!(
        out,
        ",\"executions\":{},\"covered\":{},\"branch_count\":{},\"corpus\":{},\"frontier_open\":{},\"execs_per_sec\":",
        point.executions, point.covered, point.branch_count, point.corpus, point.frontier_open
    );
    push_json_f64(out, point.execs_per_sec);
    out.push('}');
}

/// Shared page chrome, matching the offline campaign explorer's styling so
/// the live dashboard and the post-mortem report read as one tool.
const STYLE: &str = "<style>\n\
body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:70rem;color:#1a1a2a;padding:0 1rem}\n\
h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem;border-bottom:1px solid #ccd;padding-bottom:.2rem}\n\
.tiles{display:flex;flex-wrap:wrap;gap:.6rem;margin:1rem 0}\n\
.tile{border:1px solid #ccd;border-radius:6px;padding:.5rem .8rem;background:#f7f8fb}\n\
.tile b{display:block;font-size:1.15rem}.tile span{color:#567;font-size:.8rem}\n\
table{border-collapse:collapse;width:100%;margin:.6rem 0}\n\
th,td{border:1px solid #dde;padding:.25rem .5rem;text-align:left}\n\
th{background:#eef0f6}\n\
svg{background:#fbfcff;border:1px solid #ccd;border-radius:6px}\n\
.banner{border:1px solid #c98;border-radius:6px;background:#fdf3ec;color:#742;padding:.5rem .8rem;margin:1rem 0}\n\
.bar{color:#2a6fb0;letter-spacing:-1px}\n\
footer{color:#567;font-size:.8rem;margin-top:2rem}\n\
</style>\n";

/// The `/` body: a self-refreshing dashboard — summary tiles, the
/// coverage-vs-time curve, and the span phase table.
pub(crate) fn dashboard_html(model: &str, snap: &TelemetrySnapshot) -> String {
    let covered = snap.covered;
    let branch_count = snap.branch_count;
    let coverage_pct =
        if branch_count == 0 { 0.0 } else { 100.0 * covered as f64 / branch_count as f64 };
    let execs_per_sec = match snap.series.last() {
        Some(point) => point.execs_per_sec,
        None if snap.elapsed.as_secs_f64() > 0.0 => {
            snap.totals.executions as f64 / snap.elapsed.as_secs_f64()
        }
        None => 0.0,
    };

    let mut out = String::with_capacity(8192);
    out.push_str("<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    out.push_str("<meta http-equiv=\"refresh\" content=\"2\">\n");
    let _ = writeln!(out, "<title>cftcg observatory — {}</title>", escape_html(model));
    out.push_str(STYLE);
    out.push_str("</head><body>\n");
    let _ = writeln!(out, "<h1>cftcg observatory — {}</h1>", escape_html(model));

    out.push_str("<div class=\"tiles\">\n");
    let mut tile = |value: String, label: &str| {
        let _ = writeln!(out, "<div class=\"tile\"><b>{value}</b><span>{label}</span></div>");
    };
    tile(format!("{:.1}s", snap.elapsed.as_secs_f64()), "elapsed");
    tile(snap.totals.executions.to_string(), "inputs executed");
    tile(format!("{execs_per_sec:.0}/s"), "execution rate");
    tile(format!("{covered}/{branch_count} ({coverage_pct:.1}%)"), "branch coverage");
    tile(branch_count.saturating_sub(covered).to_string(), "open frontier");
    tile(snap.corpus_size.to_string(), "corpus entries");
    tile(snap.totals.violations.to_string(), "violations");
    tile(format!("{:.2}/s", snap.goals_per_second()), "goal rate");
    if let Some(bytes) = snap.jit_code_bytes {
        tile(format!("{:.1} KiB", bytes as f64 / 1024.0), "JIT code");
    }
    if let Some(batch) = &snap.batch {
        tile(format!("{} lanes", batch.width), "batch width");
        tile(format!("{:.1}%", 100.0 * batch.scalar_lane_fraction), "batch divergence");
        tile(batch.abandons.to_string(), "batch abandons");
    }
    out.push_str("</div>\n");

    if let Some(plateau) = &snap.last_plateau {
        let _ = writeln!(
            out,
            "<div class=\"banner\"><b>search plateau</b> — {} quiet window(s) so far; \
             last fired at {} executions (t={:.1}s) with {} goal(s) still open. \
             See <a href=\"/snapshot\">/snapshot</a> and the JSONL event log for the frontier diff.</div>",
            snap.plateaus, plateau.executions, plateau.t, plateau.open
        );
    }

    render_series_svg(&mut out, &snap.series, branch_count);
    render_span_table(&mut out, snap);
    render_search_health(&mut out, snap);

    out.push_str(
        "<footer>live: <a href=\"/metrics\">/metrics</a> (Prometheus) · \
         <a href=\"/snapshot\">/snapshot</a> (JSON) · \
         <a href=\"/diff\">/diff</a> (latest campaign diff) · page refreshes every 2s</footer>\n",
    );
    out.push_str("</body></html>\n");
    out
}

/// Inline-SVG coverage-vs-time curve from the retained series ring — the
/// live counterpart of the campaign explorer's post-mortem chart (same
/// geometry and palette).
fn render_series_svg(out: &mut String, series: &[SeriesPoint], branch_count: usize) {
    out.push_str("<h2>Coverage over time</h2>\n");
    if series.is_empty() {
        out.push_str("<p>No samples yet — the series fills as sync rounds land.</p>\n");
        return;
    }
    const W: f64 = 680.0;
    const H: f64 = 200.0;
    const PAD: f64 = 42.0;
    let max_t = series.iter().map(|p| p.t_s).fold(1e-9, f64::max);
    let max_c = branch_count.max(1) as f64;
    let x = |t: f64| PAD + (W - 2.0 * PAD) * (t / max_t);
    let y = |c: f64| H - PAD + (2.0 * PAD - H) * (c / max_c);

    let mut points = String::new();
    let _ = write!(points, "{:.1},{:.1}", x(0.0), y(0.0));
    for point in series {
        let _ = write!(points, " {:.1},{:.1}", x(point.t_s), y(point.covered as f64));
    }

    let _ = write!(
        out,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\" \
         aria-label=\"covered branches over time\">\n\
         <line x1=\"{p}\" y1=\"{yb:.1}\" x2=\"{xe:.1}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <line x1=\"{p}\" y1=\"{yt:.1}\" x2=\"{p}\" y2=\"{yb:.1}\" stroke=\"#99a\"/>\n\
         <text x=\"{p}\" y=\"{H}\" font-size=\"11\" fill=\"#567\">0s</text>\n\
         <text x=\"{xe:.1}\" y=\"{H}\" font-size=\"11\" fill=\"#567\" text-anchor=\"end\">{max_t:.1}s</text>\n\
         <text x=\"4\" y=\"{yt2:.1}\" font-size=\"11\" fill=\"#567\">{branch_count}</text>\n\
         <text x=\"4\" y=\"{yb:.1}\" font-size=\"11\" fill=\"#567\">0</text>\n\
         <polyline fill=\"none\" stroke=\"#2a6fb0\" stroke-width=\"2\" points=\"{points}\"/>\n\
         </svg>\n",
        p = PAD,
        yb = y(0.0),
        yt = y(max_c),
        yt2 = y(max_c) + 4.0,
        xe = x(max_t),
    );
    let last = &series[series.len() - 1];
    let _ = writeln!(
        out,
        "<p>{} samples retained; latest: {} covered at t={:.1}s.</p>",
        series.len(),
        last.covered,
        last.t_s
    );
}

/// Where campaign time goes: one row per non-empty span kind.
fn render_span_table(out: &mut String, snap: &TelemetrySnapshot) {
    let spans = &snap.totals.spans;
    out.push_str("<h2>Phase attribution</h2>\n");
    if spans.is_empty() {
        out.push_str("<p>No spans recorded yet.</p>\n");
        return;
    }
    out.push_str(
        "<table><tr><th>phase</th><th>count</th><th>total</th><th>share</th>\
         <th>p50</th><th>p99</th></tr>\n",
    );
    for kind in SpanKind::ALL {
        let h = spans.histogram(kind);
        if h.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.1}%</td><td>{}</td><td>{}</td></tr>",
            kind.name(),
            h.count(),
            format_ns(h.sum()),
            spans.phase_pct(kind),
            format_ns(h.quantile_upper_bound(0.5)),
            format_ns(h.quantile_upper_bound(0.99)),
        );
    }
    out.push_str("</table>\n");
}

/// The "Search health" panel: per-operator yield table, the corpus age
/// histogram, and the mutation-time goal rate — the live view of where the
/// search's effort goes and whether it is still paying off.
fn render_search_health(out: &mut String, snap: &TelemetrySnapshot) {
    out.push_str("<h2>Search health</h2>\n");

    let yields = snap.yield_reports();
    if yields.iter().all(|row| row.executed == 0) {
        out.push_str("<p>No mutation yields recorded yet.</p>\n");
    } else {
        out.push_str(
            "<table><tr><th>operator</th><th>executed</th><th>new coverage</th>\
             <th>corpus insert</th><th>violation</th><th>hit rate</th></tr>\n",
        );
        for row in &yields {
            let hit_rate = if row.executed == 0 {
                0.0
            } else {
                100.0 * row.new_coverage as f64 / row.executed as f64
            };
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{hit_rate:.2}%</td></tr>",
                escape_html(&row.name),
                row.executed,
                row.new_coverage,
                row.corpus_insert,
                row.violation,
            );
        }
        out.push_str("</table>\n");
        if let Some(rate) = snap.goals_per_mutation_ns() {
            let _ = writeln!(
                out,
                "<p>goal rate: {:.2} goals/s wall-clock; {:.3} goals per ms spent mutating.</p>",
                snap.goals_per_second(),
                rate * 1e6
            );
        }
    }

    render_corpus_age_histogram(out, &snap.corpus_seeds);
}

/// Corpus age distribution: equal-width buckets over the age range with
/// text bars. A corpus whose mass sits in the oldest buckets has stopped
/// committing children — the visual signature of a plateau.
fn render_corpus_age_histogram(out: &mut String, seeds: &[CorpusSeedReport]) {
    out.push_str("<h3>Corpus age</h3>\n");
    if seeds.is_empty() {
        out.push_str("<p>No corpus forensics published yet.</p>\n");
        return;
    }
    const BUCKETS: usize = 8;
    const BAR_CELLS: usize = 24;
    let max_age = seeds.iter().map(|s| s.age_executions).max().unwrap_or(0);
    let width = (max_age / BUCKETS as u64 + 1).max(1);
    let mut counts = [0usize; BUCKETS];
    for seed in seeds {
        counts[((seed.age_executions / width) as usize).min(BUCKETS - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    out.push_str("<table><tr><th>age (executions)</th><th>seeds</th><th></th></tr>\n");
    for (i, count) in counts.iter().enumerate() {
        let lo = i as u64 * width;
        let hi = lo + width;
        let cells = (count * BAR_CELLS).div_ceil(peak).min(BAR_CELLS);
        let _ = writeln!(
            out,
            "<tr><td>{lo}–{hi}</td><td>{count}</td><td><span class=\"bar\">{}</span></td></tr>",
            "▮".repeat(if *count == 0 { 0 } else { cells }),
        );
    }
    out.push_str("</table>\n");
    let selections: u64 = seeds.iter().map(|s| s.selections).sum();
    let goals: u64 = seeds.iter().map(|s| s.descendant_goals).sum();
    let _ = writeln!(
        out,
        "<p>{} seed(s) under schedule; {selections} selections; {goals} descendant goal(s) credited.</p>",
        seeds.len()
    );
}

/// Human-scale duration: picks ns/µs/ms/s by magnitude.
fn format_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_telemetry::json::Json;
    use cftcg_telemetry::{Event, ShardStats, Telemetry};

    fn populated_snapshot() -> TelemetrySnapshot {
        let t = Telemetry::new();
        t.set_operator_labels(&["FlipBits", "InsertTuple"]);
        t.emit(&Event::CampaignStart {
            model: "M".into(),
            seed: 1,
            workers: 2,
            budget_ms: Some(1_000),
            branch_count: 20,
        });
        let mut stats = ShardStats::new(2);
        stats.executions = 500;
        stats.spans.record(SpanKind::Execution, 1_500);
        stats.spans.record(SpanKind::Mutation, 500);
        stats.yields.record(0, cftcg_telemetry::YieldOutcome::Executed);
        stats.yields.record(0, cftcg_telemetry::YieldOutcome::NewCoverage);
        stats.yields.record(1, cftcg_telemetry::YieldOutcome::Executed);
        t.merge_shard(0, &stats, 5);
        t.emit(&Event::NewCoverage { shard: 0, executions: 500, covered: 8, total: 20, t: 0.2 });
        t.set_corpus_seeds(
            0,
            vec![
                CorpusSeedReport {
                    id: 1,
                    size_bytes: 16,
                    metric: 3,
                    new_branches: 1,
                    energy: 36,
                    selections: 9,
                    children: 2,
                    descendant_goals: 4,
                    age_executions: 480,
                },
                CorpusSeedReport {
                    id: 2,
                    size_bytes: 8,
                    metric: 1,
                    new_branches: 0,
                    energy: 2,
                    selections: 1,
                    children: 0,
                    descendant_goals: 0,
                    age_executions: 40,
                },
            ],
        );
        t.snapshot()
    }

    #[test]
    fn snapshot_json_parses_and_carries_spans_and_series() {
        let snap = populated_snapshot();
        let body = snapshot_json("M&M", &snap);
        let parsed = Json::parse(&body).expect("snapshot JSON parses");
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("M&M"));
        assert_eq!(parsed.get("executions").unwrap().as_u64(), Some(500));
        assert_eq!(parsed.get("covered").unwrap().as_u64(), Some(8));
        assert_eq!(parsed.get("frontier_open").unwrap().as_u64(), Some(12));
        let spans = parsed.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 2, "two non-empty span kinds");
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("mutation"));
        let pct: f64 = spans.iter().map(|s| s.get("pct").unwrap().as_f64().unwrap()).sum();
        assert!((pct - 100.0).abs() < 1e-6, "phase shares partition: {pct}");
        let series = parsed.get("series").unwrap().as_array().unwrap();
        assert!(!series.is_empty(), "merge_shard sampled the series");
        assert!(series[0].get("t_s").is_some());
    }

    #[test]
    fn snapshot_json_carries_search_forensics() {
        let snap = populated_snapshot();
        let body = snapshot_json("M", &snap);
        let parsed = Json::parse(&body).expect("snapshot JSON parses");

        let yields = parsed.get("yields").unwrap().as_array().unwrap();
        assert_eq!(yields.len(), 2, "one row per labeled operator");
        assert_eq!(yields[0].get("name").unwrap().as_str(), Some("FlipBits"));
        assert_eq!(yields[0].get("executed").unwrap().as_u64(), Some(1));
        assert_eq!(yields[0].get("new_coverage").unwrap().as_u64(), Some(1));
        assert_eq!(yields[1].get("executed").unwrap().as_u64(), Some(1));
        assert_eq!(yields[1].get("new_coverage").unwrap().as_u64(), Some(0));

        assert!(parsed.get("goals_per_second").unwrap().as_f64().unwrap() >= 0.0);
        // covered=8 over 500ns of mutation spans.
        let per_ns = parsed.get("goals_per_mutation_ns").unwrap().as_f64().unwrap();
        assert!((per_ns - 8.0 / 500.0).abs() < 1e-12, "joins the span profile: {per_ns}");

        let seeds = parsed.get("corpus_seeds").unwrap().as_array().unwrap();
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0].get("id").unwrap().as_u64(), Some(1));
        assert_eq!(seeds[0].get("selections").unwrap().as_u64(), Some(9));
        assert_eq!(seeds[0].get("descendant_goals").unwrap().as_u64(), Some(4));
        assert_eq!(seeds[0].get("age_executions").unwrap().as_u64(), Some(480));

        assert_eq!(parsed.get("plateaus").unwrap().as_u64(), Some(0));
        assert!(parsed.get("plateau").is_some(), "plateau key present (null)");
    }

    #[test]
    fn snapshot_json_folds_plateau_events() {
        let t = Telemetry::new();
        t.emit(&Event::Plateau {
            shard: 0,
            executions: 2_000,
            window: 500,
            covered: 7,
            total: 12,
            open: 5,
            frontier: Vec::new(),
            t: 1.25,
        });
        let body = snapshot_json("M", &t.snapshot());
        let parsed = Json::parse(&body).expect("snapshot JSON parses");
        assert_eq!(parsed.get("plateaus").unwrap().as_u64(), Some(1));
        let plateau = parsed.get("plateau").unwrap();
        assert_eq!(plateau.get("executions").unwrap().as_u64(), Some(2_000));
        assert_eq!(plateau.get("open").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn dashboard_renders_curve_and_span_table() {
        let snap = populated_snapshot();
        let html = dashboard_html("Tiny<PV>", &snap);
        assert!(html.contains("Tiny&lt;PV&gt;"), "model name is escaped");
        assert!(html.contains("<polyline"), "series curve rendered");
        assert!(html.contains("Phase attribution"));
        assert!(html.contains("<td>execution</td>"));
        assert!(html.contains("http-equiv=\"refresh\""));
    }

    #[test]
    fn dashboard_renders_the_search_health_panel() {
        let snap = populated_snapshot();
        let html = dashboard_html("PV", &snap);
        assert!(html.contains("Search health"));
        assert!(html.contains("<td>FlipBits</td>"), "yield table row: {html}");
        assert!(html.contains("100.00%"), "FlipBits hit rate");
        assert!(html.contains("Corpus age"), "age histogram present");
        assert!(html.contains("2 seed(s) under schedule"));
        assert!(!html.contains("search plateau"), "no banner before a plateau fires");
    }

    #[test]
    fn dashboard_shows_a_plateau_banner() {
        let t = Telemetry::new();
        t.emit(&Event::Plateau {
            shard: 0,
            executions: 4_000,
            window: 1_000,
            covered: 9,
            total: 12,
            open: 3,
            frontier: Vec::new(),
            t: 2.0,
        });
        let html = dashboard_html("PV", &t.snapshot());
        assert!(html.contains("search plateau"), "banner rendered: {html}");
        assert!(html.contains("4000 executions"));
        assert!(html.contains("3 goal(s) still open"));
    }

    #[test]
    fn dashboard_degrades_gracefully_when_empty() {
        let t = Telemetry::new();
        let html = dashboard_html("Empty", &t.snapshot());
        assert!(html.contains("No samples yet"));
        assert!(html.contains("No spans recorded yet"));
        assert!(html.contains("No mutation yields recorded yet"));
        assert!(html.contains("No corpus forensics published yet"));
    }

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(12), "12ns");
        assert_eq!(format_ns(1_500), "1.5µs");
        assert_eq!(format_ns(2_500_000), "2.5ms");
        assert_eq!(format_ns(3_210_000_000), "3.21s");
    }
}
