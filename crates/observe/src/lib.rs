#![warn(missing_docs)]

//! # Live campaign observatory
//!
//! A tiny, dependency-free HTTP server that exposes a *running* fuzzing
//! campaign's telemetry registry on three endpoints:
//!
//! | path | content | purpose |
//! |---|---|---|
//! | `/metrics` | Prometheus text exposition | scrapeable by any Prometheus-compatible collector |
//! | `/snapshot` | JSON | one consistent point-in-time view: totals, coverage, spans, time series |
//! | `/` | HTML | self-refreshing dashboard with an inline-SVG coverage-vs-time curve |
//! | `/diff` | HTML | the latest `cftcg diff` / `cftcg ab` report (`results/diff_latest.html`) |
//! | `/healthz` | `ok` | liveness probe for supervisors and CI smoke jobs |
//!
//! The observatory is read-only: any method other than `GET` gets a
//! `405 Method Not Allowed` (with an `Allow: GET` header), and a request
//! line that is not even `METHOD TARGET ...` gets a `400 Bad Request`.
//!
//! The server is deliberately primitive — std-only TCP, blocking I/O, one
//! thread per connection — because its job is a handful of requests per
//! second from a human or one scraper, not production traffic. The accept
//! loop polls a non-blocking listener so [`ObserveServer::shutdown`] (and
//! `Drop`) can stop it without an extra wake-up connection.
//!
//! **Determinism.** The observatory only *reads* the shared
//! [`Telemetry`] registry (every render boils down to
//! [`Telemetry::snapshot`]); it never feeds anything back into the fuzzing
//! loop. Attaching it to a campaign therefore cannot change the generated
//! suite — the workers=1 byte-identity invariant holds with the server
//! running (`tests/observatory_byte_identity.rs` in the workspace root
//! enforces this).
//!
//! ```no_run
//! use std::sync::Arc;
//! use cftcg_observe::{Observatory, ObserveServer};
//! use cftcg_telemetry::Telemetry;
//!
//! let telemetry = Arc::new(Telemetry::new());
//! let observatory = Observatory::new(Arc::clone(&telemetry), "SolarPV");
//! let server = ObserveServer::bind("127.0.0.1:0", observatory).unwrap();
//! println!("dashboard at http://{}/", server.local_addr());
//! // ... run the campaign ...
//! server.shutdown();
//! ```

mod render;

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cftcg_telemetry::Telemetry;

/// The read-only view the endpoints render: the shared telemetry registry
/// plus campaign identity. Cloning shares the registry.
#[derive(Clone)]
pub struct Observatory {
    telemetry: Arc<Telemetry>,
    model: String,
}

impl Observatory {
    /// An observatory over `telemetry` for a campaign on `model`.
    pub fn new(telemetry: Arc<Telemetry>, model: impl Into<String>) -> Self {
        Observatory { telemetry, model: model.into() }
    }

    /// The model name shown on the dashboard.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The `/metrics` body: live Prometheus text exposition.
    pub fn metrics_text(&self) -> String {
        self.telemetry.prometheus_text()
    }

    /// The `/snapshot` body: one consistent JSON view of the campaign.
    pub fn snapshot_json(&self) -> String {
        render::snapshot_json(&self.model, &self.telemetry.snapshot())
    }

    /// The `/` body: the self-refreshing HTML dashboard.
    pub fn dashboard_html(&self) -> String {
        render::dashboard_html(&self.model, &self.telemetry.snapshot())
    }
}

/// A running observatory HTTP server. Dropping it stops the accept loop.
pub struct ObserveServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Per-connection socket timeout: a stalled client must not pin a thread.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Upper bound on the request head we are willing to buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

impl ObserveServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9000"`, or port `0` for an ephemeral
    /// port — read it back with [`local_addr`](Self::local_addr)) and starts
    /// serving `observatory` in a background thread.
    pub fn bind(addr: impl ToSocketAddrs, observatory: Observatory) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept + flag polling: shutdown needs no wake-up
        // connection and no platform-specific socket trickery.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("cftcg-observe".into())
            .spawn(move || accept_loop(listener, observatory, stop))?;
        Ok(ObserveServer { addr, shutdown, accept_thread: Some(accept_thread) })
    }

    /// The actually-bound address (resolves port `0` requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread. In-flight
    /// connection threads finish their single response and exit on their
    /// own (every response closes the connection).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObserveServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, observatory: Observatory, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let view = observatory.clone();
                // Thread-per-connection: the expected load is one human
                // browser tab plus at most one scraper.
                let _ = std::thread::Builder::new()
                    .name("cftcg-observe-conn".into())
                    .spawn(move || handle_connection(stream, &view));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            // Transient accept errors (ECONNABORTED etc.): back off, retry.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves exactly one request and closes the connection.
fn handle_connection(mut stream: TcpStream, observatory: &Observatory) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let parsed = parse_target(&request_line);
    let (status, content_type, body) = match parsed {
        Target::Get("/") | Target::Get("/index.html") => {
            ("200 OK", "text/html; charset=utf-8", observatory.dashboard_html())
        }
        Target::Get("/metrics") => {
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", observatory.metrics_text())
        }
        Target::Get("/snapshot") => ("200 OK", "application/json", observatory.snapshot_json()),
        Target::Get("/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".into()),
        // The latest `cftcg diff`/`cftcg ab` HTML report, mirrored to disk
        // by the CLI. Read per request: a diff run while the observatory is
        // up is served without restarting anything.
        Target::Get("/diff") => match std::fs::read_to_string("results/diff_latest.html") {
            Ok(html) => ("200 OK", "text/html; charset=utf-8", html),
            Err(_) => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no diff report yet; run `cftcg diff <model> <a/campaign.json> \
                 <b/campaign.json>` to generate results/diff_latest.html\n"
                    .into(),
            ),
        },
        Target::Get(_) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /, /metrics, /snapshot, /diff, /healthz\n".into(),
        ),
        Target::MethodNotAllowed => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed; the observatory is read-only (GET)\n".into(),
        ),
        Target::Malformed => {
            ("400 Bad Request", "text/plain; charset=utf-8", "bad request\n".into())
        }
    };
    let allow = if matches!(parsed, Target::MethodNotAllowed) { "Allow: GET\r\n" } else { "" };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\n{allow}Content-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Reads up to the end of the request head and returns the request line.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(str::to_string)
}

/// The routing view of a request line.
#[derive(Clone, Copy)]
enum Target<'a> {
    /// `GET <target>`: the query-stripped target to route.
    Get(&'a str),
    /// Syntactically a request, but the method is not `GET` → 405.
    MethodNotAllowed,
    /// Not even `METHOD TARGET ...` → 400.
    Malformed,
}

/// Extracts the request target from `GET <target> HTTP/1.x` (query strings
/// are ignored; only `GET` is served).
fn parse_target(request_line: &str) -> Target<'_> {
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next();
    let Some(target) = parts.next() else {
        return Target::Malformed;
    };
    if method != Some("GET") {
        return Target::MethodNotAllowed;
    }
    Target::Get(target.split('?').next().unwrap_or(target))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_telemetry::{Event, ShardStats};

    fn test_observatory() -> Observatory {
        let t = Arc::new(Telemetry::new());
        t.emit(&Event::CampaignStart {
            model: "TestModel".into(),
            seed: 7,
            workers: 1,
            budget_ms: None,
            branch_count: 12,
        });
        let mut stats = ShardStats::new(4);
        stats.executions = 1000;
        stats.iterations = 5000;
        t.merge_shard(0, &stats, 3);
        t.emit(&Event::NewCoverage { shard: 0, executions: 1000, covered: 9, total: 12, t: 0.1 });
        Observatory::new(t, "TestModel")
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_three_endpoints_on_an_ephemeral_port() {
        let server = ObserveServer::bind("127.0.0.1:0", test_observatory()).expect("bind");
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port resolved");

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "metrics head: {head}");
        assert!(body.contains("cftcg_executions_total 1000"), "metrics body:\n{body}");
        assert!(body.contains("cftcg_covered_branches 9"));

        let (head, body) = get(addr, "/snapshot");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(head.contains("application/json"));
        let parsed = cftcg_telemetry::json::Json::parse(&body).expect("snapshot is valid JSON");
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("TestModel"));
        assert_eq!(parsed.get("executions").unwrap().as_u64(), Some(1000));
        assert_eq!(parsed.get("covered").unwrap().as_u64(), Some(9));
        assert_eq!(parsed.get("frontier_open").unwrap().as_u64(), Some(3));

        let (head, body) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(body.contains("<title>cftcg observatory"));
        assert!(body.contains("TestModel"));

        server.shutdown();
    }

    #[test]
    fn unknown_paths_get_404_and_non_get_gets_405() {
        let server = ObserveServer::bind("127.0.0.1:0", test_observatory()).expect("bind");
        let addr = server.local_addr();
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "404 head: {head}");

        // A well-formed non-GET request is a method problem, not a routing
        // problem: 405 plus the Allow header naming the one served method.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "POST head: {response}");
        assert!(response.contains("\r\nAllow: GET\r\n"), "Allow header present: {response}");

        // A request line without a target is simply malformed.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GARBAGE\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "malformed head: {response}");
    }

    #[test]
    fn diff_route_serves_the_mirrored_report_or_a_hint() {
        let server = ObserveServer::bind("127.0.0.1:0", test_observatory()).expect("bind");
        let addr = server.local_addr();
        // The CLI mirrors reports to results/diff_latest.html relative to
        // the working directory; absent file → 404 with the recipe.
        let mirror = std::path::Path::new("results/diff_latest.html");
        if !mirror.exists() {
            let (head, body) = get(addr, "/diff");
            assert!(head.starts_with("HTTP/1.1 404"), "no-report head: {head}");
            assert!(body.contains("cftcg diff"), "hint names the command: {body}");
        }
        std::fs::create_dir_all("results").unwrap();
        std::fs::write(mirror, "<!DOCTYPE html><html><body>diff-report</body></html>").unwrap();
        let (head, body) = get(addr, "/diff");
        assert!(head.starts_with("HTTP/1.1 200"), "report head: {head}");
        assert!(head.contains("text/html"));
        assert!(body.contains("diff-report"));
        let _ = std::fs::remove_file(mirror);
        let _ = std::fs::remove_dir("results");
    }

    #[test]
    fn healthz_answers_ok_for_liveness_probes() {
        let server = ObserveServer::bind("127.0.0.1:0", test_observatory()).expect("bind");
        let (head, body) = get(server.local_addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "healthz head: {head}");
        assert_eq!(body, "ok\n");
    }

    #[test]
    fn query_strings_are_ignored_when_routing() {
        let server = ObserveServer::bind("127.0.0.1:0", test_observatory()).expect("bind");
        let (head, _) = get(server.local_addr(), "/metrics?refresh=1");
        assert!(head.starts_with("HTTP/1.1 200"));
    }
}
