//! Frontier analysis: *why* each uncovered goal is still open.
//!
//! The scorer says a goal is uncovered; the frontier says what is blocking
//! it, in terms an engineer staring at the model can act on — "this Switch
//! was never reached", "this guard has only ever been false", "the closest
//! recorded evaluation pair for this MCDC goal also flips two other
//! conditions". This is the information a hybrid follow-up (e.g. handing
//! open branches to a bounded model checker) consumes, and what the HTML
//! campaign explorer's frontier table renders.
//!
//! [`frontier`] partitions the goal universe exactly: a goal appears in its
//! output iff [`CoverageReport::score`](crate::CoverageReport::score) counts
//! it uncovered, so `covered + frontier = total` per metric. Output order
//! and text are byte-stable (evaluation vectors are sorted before any pair
//! search or rendering).

use std::fmt;

use crate::map::{DecisionInfo, InstrumentationMap};
use crate::provenance::Goal;
use crate::recorder::FullTracker;
use crate::report::{eval_index, mcdc_demonstrated_for};

/// Why an uncovered goal is still open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontierCause {
    /// No outcome of the goal's decision ever executed: the decision is
    /// unreachable so far (dead region, or guarded by other open goals).
    DecisionNeverReached,
    /// The decision executed, but only the listed outcome indices were ever
    /// taken; this outcome never was.
    OutcomeUntaken {
        /// Outcome indices (within the decision) that *were* taken.
        taken: Vec<usize>,
    },
    /// The condition was never evaluated with either polarity.
    ConditionNeverEvaluated,
    /// The condition evaluated, but only ever to `stuck_at`.
    ConditionStuckAt {
        /// The single polarity observed.
        stuck_at: bool,
    },
    /// MCDC: the owning decision has no recorded evaluations.
    McdcDecisionNeverReached,
    /// MCDC: across every recorded evaluation vector the condition's bit
    /// held the same value, so no flipping pair can exist yet.
    McdcConditionNeverVaried {
        /// The constant bit value.
        stuck_at: bool,
    },
    /// MCDC: an evaluation pair differing *only* in this condition exists,
    /// but both evaluations produced the same outcome — flipping the
    /// condition alone did not affect the decision (masked by the decision
    /// logic, at least on the observed vectors).
    McdcOutcomeInsensitive {
        /// One vector of the closest same-outcome pair.
        vector: u64,
        /// Its partner (`vector` with this condition's bit flipped, plus
        /// any extra differing bits when no single-bit pair was recorded).
        partner: u64,
        /// The outcome both evaluations produced.
        outcome: u32,
    },
    /// MCDC: the closest outcome-flipping pair that toggles this condition
    /// also toggles other conditions — those extra bits block a unique-cause
    /// demonstration.
    McdcBlockedPair {
        /// First vector of the closest pair.
        vector_a: u64,
        /// Outcome of the first evaluation.
        outcome_a: u32,
        /// Second vector.
        vector_b: u64,
        /// Outcome of the second evaluation.
        outcome_b: u32,
        /// Mask of the *extra* condition bits that also differ (never
        /// includes this condition's own bit).
        extra_bits: u64,
    },
}

impl FrontierCause {
    /// Short classification tag for tables.
    pub fn tag(&self) -> &'static str {
        match self {
            FrontierCause::DecisionNeverReached => "decision-never-reached",
            FrontierCause::OutcomeUntaken { .. } => "outcome-untaken",
            FrontierCause::ConditionNeverEvaluated => "condition-never-evaluated",
            FrontierCause::ConditionStuckAt { .. } => "condition-stuck",
            FrontierCause::McdcDecisionNeverReached => "mcdc-decision-never-reached",
            FrontierCause::McdcConditionNeverVaried { .. } => "mcdc-condition-never-varied",
            FrontierCause::McdcOutcomeInsensitive { .. } => "mcdc-outcome-insensitive",
            FrontierCause::McdcBlockedPair { .. } => "mcdc-blocked-pair",
        }
    }
}

/// One uncovered goal with its cause classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierEntry {
    /// The open goal.
    pub goal: Goal,
    /// Goal label resolved to the model block path.
    pub label: String,
    /// Why the goal is open.
    pub cause: FrontierCause,
    /// Human-readable elaboration (observed pair, blocking condition
    /// labels, …). Byte-stable across runs.
    pub detail: String,
}

impl fmt::Display for FrontierEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} — {}: {}", self.goal.metric(), self.label, self.cause.tag(), self.detail)
    }
}

/// Classifies every uncovered goal of `tracker` against `map`, in canonical
/// goal order (outcomes, condition polarities, MCDC).
///
/// # Panics
///
/// Panics if `tracker` was not built from `map`.
pub fn frontier(map: &InstrumentationMap, tracker: &FullTracker) -> Vec<FrontierEntry> {
    assert_eq!(tracker.branch_hits().len(), map.branch_count(), "tracker does not match map");
    let mut entries = Vec::new();

    for (b, info) in map.branches().iter().enumerate() {
        if tracker.branch_hit(b) {
            continue;
        }
        let decision = map.decision(info.decision);
        let taken: Vec<usize> = decision
            .outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| tracker.branch_hit(o.index()))
            .map(|(i, _)| i)
            .collect();
        let (cause, detail) = if taken.is_empty() {
            (
                FrontierCause::DecisionNeverReached,
                format!("decision `{}` never executed", decision.label),
            )
        } else {
            let names: Vec<&str> = taken
                .iter()
                .map(|&i| map.branches()[decision.outcomes[i].index()].label.as_str())
                .collect();
            let detail = format!(
                "decision reached, but only outcome{} {} taken",
                if names.len() == 1 { "" } else { "s" },
                names.iter().map(|n| format!("`{n}`")).collect::<Vec<_>>().join(", ")
            );
            (FrontierCause::OutcomeUntaken { taken }, detail)
        };
        entries.push(FrontierEntry {
            goal: Goal::Outcome(b),
            label: Goal::Outcome(b).label(map),
            cause,
            detail,
        });
    }

    for (c, info) in map.conditions().iter().enumerate() {
        for value in [false, true] {
            if tracker.condition_seen(c, value) {
                continue;
            }
            let (cause, detail) = if tracker.condition_seen(c, !value) {
                (
                    FrontierCause::ConditionStuckAt { stuck_at: !value },
                    format!("condition `{}` only ever evaluated {}", info.label, !value),
                )
            } else {
                (
                    FrontierCause::ConditionNeverEvaluated,
                    format!("condition `{}` never evaluated", info.label),
                )
            };
            entries.push(FrontierEntry {
                goal: Goal::Condition(c, value),
                label: Goal::Condition(c, value).label(map),
                cause,
                detail,
            });
        }
    }

    for (d, decision) in map.decisions().iter().enumerate() {
        if decision.conditions.is_empty() {
            continue;
        }
        let demonstrated = mcdc_demonstrated_for(tracker.decision_evals(d), decision);
        let evals = tracker.decision_evals_sorted(d);
        for (bit, (&cond, shown)) in decision.conditions.iter().zip(demonstrated).enumerate() {
            if shown {
                continue;
            }
            let c = cond.index();
            let (cause, detail) = classify_mcdc(map, decision, &evals, bit);
            entries.push(FrontierEntry {
                goal: Goal::Mcdc(c),
                label: Goal::Mcdc(c).label(map),
                cause,
                detail,
            });
        }
    }

    entries
}

/// Classifies one open MCDC goal (condition at `bit` of `decision`) from
/// the decision's sorted evaluations.
fn classify_mcdc(
    map: &InstrumentationMap,
    decision: &DecisionInfo,
    evals: &[(u64, u32)],
    bit: usize,
) -> (FrontierCause, String) {
    let mask = 1u64 << bit;
    if evals.is_empty() {
        return (
            FrontierCause::McdcDecisionNeverReached,
            format!("decision `{}` has no recorded evaluations", decision.label),
        );
    }
    if evals.iter().all(|&(v, _)| v & mask == 0) || evals.iter().all(|&(v, _)| v & mask != 0) {
        let stuck_at = evals[0].0 & mask != 0;
        return (
            FrontierCause::McdcConditionNeverVaried { stuck_at },
            format!(
                "condition bit held {stuck_at} across all {} recorded evaluation{}",
                evals.len(),
                if evals.len() == 1 { "" } else { "s" }
            ),
        );
    }

    // The bit varied. Check single-bit pairs first: if a `v ^ mask` partner
    // was recorded, the goal can only be open because both sides produced
    // the same outcome.
    let index = eval_index(evals.iter().copied());
    for &(v, o) in evals {
        if v & mask != 0 {
            continue; // visit each unordered pair once, from its bit=0 side
        }
        let partner = v ^ mask;
        if index.get(&partner).is_some_and(|&seen| seen & (1u8 << o.min(1)) != 0) {
            return (
                FrontierCause::McdcOutcomeInsensitive { vector: v, partner, outcome: o },
                format!(
                    "flipping only this condition ({} vs {}) left the outcome at {o}",
                    render_vector(v, decision.conditions.len()),
                    render_vector(partner, decision.conditions.len()),
                ),
            );
        }
    }

    // No single-bit pair. Find the closest bit-differing pair, preferring
    // outcome-flipping pairs, then fewest extra bits, then the smallest
    // vectors — a total order, so the report is deterministic.
    let mut best: Option<(bool, u32, u64, u32, u64, u32)> = None;
    for (i, &(v1, o1)) in evals.iter().enumerate() {
        for &(v2, o2) in &evals[i + 1..] {
            if (v1 ^ v2) & mask == 0 {
                continue;
            }
            let extra = (v1 ^ v2) & !mask;
            let key = (o1 == o2, extra.count_ones(), v1, o1, v2, o2);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
    }
    let (same_outcome, _, v1, o1, v2, o2) =
        best.expect("bit varies, so a bit-differing pair exists");
    let extra = (v1 ^ v2) & !mask;
    let blockers: Vec<&str> = decision
        .conditions
        .iter()
        .enumerate()
        .filter(|&(i, _)| extra & (1u64 << i) != 0)
        .map(|(_, c)| map.conditions()[c.index()].label.as_str())
        .collect();
    let width = decision.conditions.len();
    if same_outcome {
        (
            FrontierCause::McdcOutcomeInsensitive { vector: v1, partner: v2, outcome: o1 },
            format!(
                "closest pair {} vs {} (also flips `{}`) kept the outcome at {o1}",
                render_vector(v1, width),
                render_vector(v2, width),
                blockers.join("`, `"),
            ),
        )
    } else {
        (
            FrontierCause::McdcBlockedPair {
                vector_a: v1,
                outcome_a: o1,
                vector_b: v2,
                outcome_b: o2,
                extra_bits: extra,
            },
            format!(
                "closest outcome-flipping pair {}→{o1} vs {}→{o2} differs in {} extra bit{}: `{}`",
                render_vector(v1, width),
                render_vector(v2, width),
                extra.count_ones(),
                if extra.count_ones() == 1 { "" } else { "s" },
                blockers.join("`, `"),
            ),
        )
    }
}

/// Renders an evaluation vector as `width` condition bits, LSB (condition
/// 0) first, e.g. `TFF` for vector 0b001 over three conditions.
fn render_vector(vector: u64, width: usize) -> String {
    (0..width.max(1)).map(|i| if vector & (1u64 << i) != 0 { 'T' } else { 'F' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{BranchId, ConditionId, DecisionId, MapBuilder};
    use crate::recorder::Recorder;
    use crate::report::CoverageReport;

    fn and_map() -> InstrumentationMap {
        let mut b = MapBuilder::new();
        let d = b.begin_decision("and");
        b.add_outcome(d, "true");
        b.add_outcome(d, "false");
        b.add_condition(d, "a");
        b.add_condition(d, "b");
        b.finish()
    }

    fn eval_and(tracker: &mut FullTracker, a: bool, b: bool) {
        let outcome = a && b;
        tracker.condition(ConditionId(0), a);
        tracker.condition(ConditionId(1), b);
        tracker.decision_eval(
            DecisionId(0),
            u64::from(a) | (u64::from(b) << 1),
            u32::from(outcome),
        );
        tracker.branch(if outcome { BranchId(0) } else { BranchId(1) });
    }

    fn causes(entries: &[FrontierEntry]) -> Vec<(Goal, &'static str)> {
        entries.iter().map(|e| (e.goal, e.cause.tag())).collect()
    }

    #[test]
    fn empty_tracker_reports_everything_unreached() {
        let map = and_map();
        let tracker = FullTracker::new(&map);
        let entries = frontier(&map, &tracker);
        assert_eq!(
            causes(&entries),
            vec![
                (Goal::Outcome(0), "decision-never-reached"),
                (Goal::Outcome(1), "decision-never-reached"),
                (Goal::Condition(0, false), "condition-never-evaluated"),
                (Goal::Condition(0, true), "condition-never-evaluated"),
                (Goal::Condition(1, false), "condition-never-evaluated"),
                (Goal::Condition(1, true), "condition-never-evaluated"),
                (Goal::Mcdc(0), "mcdc-decision-never-reached"),
                (Goal::Mcdc(1), "mcdc-decision-never-reached"),
            ]
        );
    }

    #[test]
    fn one_sided_run_classifies_stuck_goals() {
        let map = and_map();
        let mut tracker = FullTracker::new(&map);
        eval_and(&mut tracker, true, true);
        let entries = frontier(&map, &tracker);
        assert_eq!(
            causes(&entries),
            vec![
                (Goal::Outcome(1), "outcome-untaken"),
                (Goal::Condition(0, false), "condition-stuck"),
                (Goal::Condition(1, false), "condition-stuck"),
                (Goal::Mcdc(0), "mcdc-condition-never-varied"),
                (Goal::Mcdc(1), "mcdc-condition-never-varied"),
            ]
        );
        assert!(entries[0].detail.contains("only outcome `true` taken"));
        assert_eq!(entries[1].cause, FrontierCause::ConditionStuckAt { stuck_at: true });
    }

    #[test]
    fn two_bit_flip_reports_blocked_pair_with_blocker_label() {
        let map = and_map();
        let mut tracker = FullTracker::new(&map);
        // (T,T)=T vs (F,F)=F: outcome flips but both bits differ, so each
        // condition's closest pair is blocked by the other.
        eval_and(&mut tracker, true, true);
        eval_and(&mut tracker, false, false);
        let entries = frontier(&map, &tracker);
        let mcdc_a = entries.iter().find(|e| e.goal == Goal::Mcdc(0)).unwrap();
        assert_eq!(
            mcdc_a.cause,
            FrontierCause::McdcBlockedPair {
                vector_a: 0b00,
                outcome_a: 0,
                vector_b: 0b11,
                outcome_b: 1,
                extra_bits: 0b10,
            }
        );
        assert!(mcdc_a.detail.contains("1 extra bit"), "{}", mcdc_a.detail);
        assert!(mcdc_a.detail.contains("`b`"), "{}", mcdc_a.detail);
        assert!(mcdc_a.detail.contains("FF→0 vs TT→1"), "{}", mcdc_a.detail);
    }

    #[test]
    fn masked_condition_reports_outcome_insensitive() {
        let mut b = MapBuilder::new();
        let d = b.begin_decision("or");
        b.add_outcome(d, "true");
        b.add_outcome(d, "false");
        b.add_condition(d, "a");
        b.add_condition(d, "b");
        let map = b.finish();
        let mut tracker = FullTracker::new(&map);
        // a || b with b stuck true: flipping `a` alone never changes the
        // outcome on the observed vectors.
        for a in [false, true] {
            let outcome = true;
            tracker.condition(ConditionId(0), a);
            tracker.condition(ConditionId(1), true);
            tracker.decision_eval(DecisionId(0), u64::from(a) | 0b10, u32::from(outcome));
            tracker.branch(BranchId(0));
        }
        let entries = frontier(&map, &tracker);
        let mcdc_a = entries.iter().find(|e| e.goal == Goal::Mcdc(0)).unwrap();
        assert_eq!(
            mcdc_a.cause,
            FrontierCause::McdcOutcomeInsensitive { vector: 0b10, partner: 0b11, outcome: 1 }
        );
        assert!(mcdc_a.detail.contains("FT"), "{}", mcdc_a.detail);
    }

    #[test]
    fn frontier_partitions_the_goal_universe_against_score() {
        let map = and_map();
        let mut tracker = FullTracker::new(&map);
        eval_and(&mut tracker, true, true);
        eval_and(&mut tracker, false, true);
        let report = CoverageReport::score(&map, &tracker);
        let entries = frontier(&map, &tracker);
        let open_d = entries.iter().filter(|e| matches!(e.goal, Goal::Outcome(_))).count();
        let open_c = entries.iter().filter(|e| matches!(e.goal, Goal::Condition(..))).count();
        let open_m = entries.iter().filter(|e| matches!(e.goal, Goal::Mcdc(_))).count();
        assert_eq!(report.decision.covered + open_d, report.decision.total);
        assert_eq!(report.condition.covered + open_c, report.condition.total);
        assert_eq!(report.mcdc.covered + open_m, report.mcdc.total);
    }

    #[test]
    fn frontier_output_is_byte_stable() {
        let map = and_map();
        let mut tracker = FullTracker::new(&map);
        eval_and(&mut tracker, true, false);
        eval_and(&mut tracker, false, true);
        eval_and(&mut tracker, false, false);
        let render = |t: &FullTracker| {
            frontier(&map, t).iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n")
        };
        let first = render(&tracker);
        for _ in 0..8 {
            // Rebuild the tracker so HashSet iteration order gets a fresh
            // chance to differ.
            let mut t = FullTracker::new(&map);
            eval_and(&mut t, false, false);
            eval_and(&mut t, false, true);
            eval_and(&mut t, true, false);
            assert_eq!(render(&t), first);
        }
    }

    #[test]
    fn render_vector_is_lsb_first() {
        assert_eq!(render_vector(0b01, 3), "TFF");
        assert_eq!(render_vector(0b110, 3), "FTT");
        assert_eq!(render_vector(0, 0), "F");
    }
}
