#![warn(missing_docs)]

//! Model-level coverage infrastructure for CFTCG.
//!
//! The paper instruments the generated code with `CoverageStatistics()`
//! probes (Figure 4) and measures three metrics over executed test suites
//! (Section 4): **Decision Coverage**, **Condition Coverage**, and
//! **MCDC**. This crate provides:
//!
//! * the [`InstrumentationMap`] that `cftcg-codegen` populates while
//!   converting a model — every *decision* (a selection point with ≥ 2
//!   outcomes), every *outcome* (one branch probe each, the slots of
//!   Algorithm 1's `branchCount`-long arrays), and every *condition*
//!   (a leaf boolean operand contributing to a boolean decision);
//! * [`Recorder`], the probe interface called by executing code, with two
//!   implementations: the fuzz-loop-fast [`BranchBitmap`] (just the
//!   per-iteration branch array of Algorithm 1) and the replay-time
//!   [`FullTracker`] that additionally records condition values and
//!   decision evaluation vectors;
//! * [`CoverageReport`], the DC/CC/MCDC percentages computed from a
//!   [`FullTracker`] — the common yardstick every generator in this
//!   reproduction is scored with, like the paper replaying CSV test cases
//!   through Simulink's coverage tool.
//!
//! # Decision/condition model
//!
//! The mapping from blocks to decisions follows Simulink's coverage
//! semantics as summarized in the paper's Figure 4:
//!
//! | instrumented construct | outcomes | conditions |
//! |---|---|---|
//! | Logic block output | 2 | one per input |
//! | Relational / Compare / EdgeDetect | 2 | 1 |
//! | Switch control | 2 | 1 |
//! | MultiportSwitch | one per case | 0 |
//! | If block action dispatch | one per action (incl. else) | 0 |
//! | each If condition expression | 2 | its leaf conditions |
//! | SwitchCase dispatch | one per case (incl. default) | 0 |
//! | Saturation / DeadZone / Relay / RateLimiter / Backlash limits | 2 each | 1 each |
//! | MATLAB Function / chart-action `if` | 2 | leaf conditions |
//! | chart transition guard | 2 | leaf conditions |
//! | Enabled / Triggered subsystem activation | 2 | 1 |
//!
//! MCDC uses the unique-cause criterion: condition *c* of decision *d* is
//! demonstrated when two recorded evaluations of *d* differ only in *c* and
//! produce different outcomes. Conditions are fully evaluated (expressions
//! in this IR are side-effect-free), so masking from `&&`/`||`
//! short-circuiting does not hide vectors.

mod frontier;
mod lanes;
mod map;
mod provenance;
mod recorder;
mod report;

pub use frontier::{frontier, FrontierCause, FrontierEntry};
pub use lanes::{LaneBitmap, LaneRecorder, NullLaneRecorder};
pub use map::{
    AssertionId, BranchId, BranchInfo, ConditionId, ConditionInfo, DecisionId, DecisionInfo,
    InstrumentationMap, MapBuilder,
};
pub use provenance::{format_case_id, FirstHit, Goal, ProvenanceTracker};
pub use recorder::{BranchBitmap, FullTracker, NullRecorder, Recorder};
pub use report::{detailed_report, CoverageReport, Ratio};
