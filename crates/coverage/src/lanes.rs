//! Lane-strided probe recorders for the batched execution tier.
//!
//! The batch VM executes N test cases per pass through the flat program,
//! so every probe event carries a *lane* index alongside the probe id.
//! [`LaneRecorder`] is the batched counterpart of [`crate::Recorder`]: the event
//! set matches what the fuzz loop's per-case recorder observes — branch
//! hits, comparison operands (TORC), and assertion verdicts. Condition and
//! decision events have no lane-strided form because the batch tier runs a
//! program variant with those probes stripped; cases that need full MCDC
//! observation are replayed on the single-case engines.

use crate::map::{AssertionId, BranchId};

/// Receives probe events from the batched VM, one lane per executing case.
///
/// The observation promises mirror [`crate::Recorder`]'s: a promise of `false`
/// lets the VM skip both the callback and the argument plumbing feeding
/// it. Implementations that retain an event class must leave its promise
/// `true`.
pub trait LaneRecorder {
    /// Whether [`LaneRecorder::branch`] retains anything.
    const OBSERVES_PROBES: bool = true;
    /// Whether [`LaneRecorder::compare`] retains anything.
    const OBSERVES_COMPARES: bool = true;
    /// Whether [`LaneRecorder::assertion`] retains anything.
    const OBSERVES_ASSERTIONS: bool = true;

    /// Lane `lane` executed branch probe `id`.
    fn branch(&mut self, lane: usize, id: BranchId);

    /// A converged probe: every lane flagged in `live` executed branch
    /// probe `id` this dispatch. Implementations with row-shaped storage
    /// (see [`LaneBitmap`]) override this with a branchless row write.
    fn branch_row(&mut self, id: BranchId, live: &[bool]) {
        for (lane, &lv) in live.iter().enumerate() {
            if lv {
                self.branch(lane, id);
            }
        }
    }

    /// A converged two-way probe: each lane in `live` executed `then_id`
    /// when its `cond` slot is non-zero, `else_id` otherwise. Row-shaped
    /// implementations override this with two branchless masked writes.
    fn branch_select_row(
        &mut self,
        then_id: BranchId,
        else_id: BranchId,
        cond: &[f64],
        live: &[bool],
    ) {
        for (lane, (&c, &lv)) in cond.iter().zip(live).enumerate() {
            if lv {
                self.branch(lane, if c != 0.0 { then_id } else { else_id });
            }
        }
    }

    /// Lane `lane` executed a comparison with the given operands.
    fn compare(&mut self, lane: usize, lhs: f64, rhs: f64) {
        let _ = (lane, lhs, rhs);
    }

    /// Lane `lane` evaluated assertion `id` with the given result.
    fn assertion(&mut self, lane: usize, id: AssertionId, passed: bool) {
        let _ = (lane, id, passed);
    }
}

/// Discards every lane event — the pure-throughput benchmark recorder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullLaneRecorder;

impl LaneRecorder for NullLaneRecorder {
    const OBSERVES_PROBES: bool = false;
    const OBSERVES_COMPARES: bool = false;
    const OBSERVES_ASSERTIONS: bool = false;

    fn branch(&mut self, _lane: usize, _id: BranchId) {}
}

/// The batched fuzz loop's branch bitmap: one flag per (branch, lane)
/// pair, laid out lane-minor (`flags[branch * width + lane]`) so a probe
/// that fires across every lane of a converged batch writes `width`
/// adjacent bytes — the lane-strided generalization of
/// [`crate::Recorder::branch_flags`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneBitmap {
    width: usize,
    branches: usize,
    bits: Vec<bool>,
}

impl LaneBitmap {
    /// A cleared bitmap for `branches` probes across `width` lanes.
    pub fn new(branches: usize, width: usize) -> Self {
        LaneBitmap { width, branches, bits: vec![false; branches * width] }
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of branch slots per lane.
    pub fn branches(&self) -> usize {
        self.branches
    }

    /// Clears every lane's flags.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    /// Whether `lane` hit branch `branch`.
    pub fn get(&self, lane: usize, branch: usize) -> bool {
        self.bits[branch * self.width + lane]
    }

    /// Number of branches `lane` hit.
    pub fn lane_count(&self, lane: usize) -> usize {
        (0..self.branches).filter(|&b| self.bits[b * self.width + lane]).count()
    }

    /// Copies `lane`'s column into a dense per-case bitmap (sized
    /// `branches`), the shape the single-case fuzz accounting consumes.
    ///
    /// # Panics
    ///
    /// Panics when `out` does not have exactly `branches` slots.
    pub fn extract_lane(&self, lane: usize, out: &mut crate::BranchBitmap) {
        use crate::recorder::Recorder as _;
        assert_eq!(out.len(), self.branches, "bitmap length mismatch");
        for b in 0..self.branches {
            if self.bits[b * self.width + lane] {
                out.branch(BranchId(b as u32));
            }
        }
    }
}

impl LaneRecorder for LaneBitmap {
    const OBSERVES_COMPARES: bool = false;
    const OBSERVES_ASSERTIONS: bool = false;

    fn branch(&mut self, lane: usize, id: BranchId) {
        self.bits[id.index() * self.width + lane] = true;
    }

    fn branch_row(&mut self, id: BranchId, live: &[bool]) {
        let base = id.index() * self.width;
        for (slot, &lv) in self.bits[base..base + live.len()].iter_mut().zip(live) {
            *slot |= lv;
        }
    }

    fn branch_select_row(
        &mut self,
        then_id: BranchId,
        else_id: BranchId,
        cond: &[f64],
        live: &[bool],
    ) {
        let tb = then_id.index() * self.width;
        let eb = else_id.index() * self.width;
        for (l, (&c, &lv)) in cond.iter().zip(live).enumerate() {
            let taken = c != 0.0;
            self.bits[tb + l] |= lv && taken;
            self.bits[eb + l] |= lv && !taken;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_bitmap_isolates_lanes() {
        let mut bm = LaneBitmap::new(3, 4);
        bm.branch(0, BranchId(1));
        bm.branch(2, BranchId(1));
        bm.branch(2, BranchId(2));
        assert!(bm.get(0, 1));
        assert!(!bm.get(1, 1));
        assert_eq!(bm.lane_count(0), 1);
        assert_eq!(bm.lane_count(1), 0);
        assert_eq!(bm.lane_count(2), 2);
        bm.clear();
        assert_eq!(bm.lane_count(2), 0);
    }

    #[test]
    fn extract_lane_matches_single_case_bitmap() {
        let mut bm = LaneBitmap::new(4, 2);
        bm.branch(1, BranchId(0));
        bm.branch(1, BranchId(3));
        bm.branch(0, BranchId(2));
        let mut dense = crate::BranchBitmap::new(4);
        bm.extract_lane(1, &mut dense);
        assert_eq!(dense.set_indices().collect::<Vec<_>>(), vec![0, 3]);
        let mut dense0 = crate::BranchBitmap::new(4);
        bm.extract_lane(0, &mut dense0);
        assert_eq!(dense0.set_indices().collect::<Vec<_>>(), vec![2]);
    }
}
