//! Per-goal provenance: *which input first earned each coverage goal*.
//!
//! The scoring side of this crate answers "how much is covered"
//! ([`CoverageReport`]); this module answers the forensic follow-up the
//! paper's evaluation tables beg for — for every Decision / Condition /
//! MCDC goal, **which** test case demonstrated it first, at what execution
//! index, on which shard, and through which mutation chain. The tracker is
//! fed one coverage-earning input at a time (each with its own per-case
//! [`FullTracker`] observations) and retains first-hit-wins metadata per
//! goal; merging two trackers keeps the hit with the smaller
//! `(executions, shard, case)` key, the same deterministic order the
//! parallel coordinator processes candidates in.

use std::time::Duration;

use crate::map::InstrumentationMap;
use crate::recorder::FullTracker;
use crate::report::mcdc_demonstrated_for;

/// One coverage goal of the paper's three metrics.
///
/// The goal universe of a model is fixed by its [`InstrumentationMap`]:
/// one [`Goal::Outcome`] per branch probe (Decision Coverage), two
/// [`Goal::Condition`]s per condition (Condition Coverage: each polarity),
/// and one [`Goal::Mcdc`] per condition (MCDC independence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Goal {
    /// Decision outcome `branch index` executed at least once.
    Outcome(usize),
    /// Condition `index` observed with the given value.
    Condition(usize, bool),
    /// Condition `index` shown to independently affect its decision.
    Mcdc(usize),
}

impl Goal {
    /// Every goal of `map`, in canonical order (outcomes, then condition
    /// polarities, then MCDC) — the fixed partition universe.
    pub fn all(map: &InstrumentationMap) -> Vec<Goal> {
        let mut goals = Vec::with_capacity(map.branch_count() + 3 * map.condition_count());
        goals.extend((0..map.branch_count()).map(Goal::Outcome));
        for c in 0..map.condition_count() {
            goals.push(Goal::Condition(c, false));
            goals.push(Goal::Condition(c, true));
        }
        goals.extend((0..map.condition_count()).map(Goal::Mcdc));
        goals
    }

    /// Human-readable goal label resolved against the map (block path plus
    /// the goal-specific qualifier).
    pub fn label(self, map: &InstrumentationMap) -> String {
        match self {
            Goal::Outcome(b) => {
                let info = &map.branches()[b];
                format!("decision outcome `{}`", info.label)
            }
            Goal::Condition(c, value) => {
                format!("condition `{}` = {value}", map.conditions()[c].label)
            }
            Goal::Mcdc(c) => format!("MCDC `{}`", map.conditions()[c].label),
        }
    }

    /// Short metric tag: `D` (decision outcome), `C` (condition polarity),
    /// or `MCDC`.
    pub fn metric(self) -> &'static str {
        match self {
            Goal::Outcome(_) => "D",
            Goal::Condition(..) => "C",
            Goal::Mcdc(_) => "MCDC",
        }
    }
}

/// First-hit metadata of one covered goal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirstHit {
    /// Campaign execution index when the covering input ran (in parallel
    /// campaigns, the coordinator's global estimate at acceptance).
    pub executions: u64,
    /// Wall-clock offset of the covering input since campaign start.
    pub elapsed: Duration,
    /// Shard that discovered the input (0 for sequential runs).
    pub shard: usize,
    /// Lineage id of the covering test case (see `cftcg-fuzz`'s lineage
    /// DAG; resolves to the full mutation ancestry).
    pub case: u64,
    /// Mutation-operator indices (Table 1 order) applied in the final
    /// mutation step that produced the input. Empty for seeds/bootstraps.
    pub ops: Vec<u8>,
}

impl FirstHit {
    /// Deterministic merge key: earlier execution wins, ties broken by
    /// shard then case id.
    fn key(&self) -> (u64, usize, u64) {
        (self.executions, self.shard, self.case)
    }
}

/// Accumulates per-goal first-hit provenance across a campaign.
///
/// Feed it one coverage-earning case at a time via [`absorb`]
/// (`ProvenanceTracker::absorb`); it owns the cumulative [`FullTracker`]
/// union of everything absorbed, so the frontier and score derived from
/// [`tracker`](Self::tracker) are always consistent with the recorded
/// provenance partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvenanceTracker {
    tracker: FullTracker,
    outcome_hits: Vec<Option<FirstHit>>,
    condition_hits: Vec<[Option<FirstHit>; 2]>,
    mcdc_hits: Vec<Option<FirstHit>>,
}

impl ProvenanceTracker {
    /// Creates an empty tracker sized for `map`.
    pub fn new(map: &InstrumentationMap) -> Self {
        ProvenanceTracker {
            tracker: FullTracker::new(map),
            outcome_hits: vec![None; map.branch_count()],
            condition_hits: vec![[None, None]; map.condition_count()],
            mcdc_hits: vec![None; map.condition_count()],
        }
    }

    /// The cumulative observations of every absorbed case.
    pub fn tracker(&self) -> &FullTracker {
        &self.tracker
    }

    /// Absorbs one executed case: `case_tracker` holds the observations of
    /// that input alone (recorded from freshly initialized model state).
    /// Every goal the case covers that the campaign had not covered before
    /// is credited to `hit`; returns the newly covered goals in canonical
    /// order.
    pub fn absorb(
        &mut self,
        map: &InstrumentationMap,
        case_tracker: &FullTracker,
        hit: &FirstHit,
    ) -> Vec<Goal> {
        let mut new_goals = Vec::new();
        for b in 0..map.branch_count() {
            if case_tracker.branch_hit(b) && self.outcome_hits[b].is_none() {
                self.outcome_hits[b] = Some(hit.clone());
                new_goals.push(Goal::Outcome(b));
            }
        }
        for c in 0..map.condition_count() {
            for value in [false, true] {
                if case_tracker.condition_seen(c, value)
                    && self.condition_hits[c][usize::from(value)].is_none()
                {
                    self.condition_hits[c][usize::from(value)] = Some(hit.clone());
                    new_goals.push(Goal::Condition(c, value));
                }
            }
        }
        self.tracker.merge(case_tracker);
        // MCDC is a pair property: the case may complete an independence
        // pair begun by an earlier input, so recheck every decision whose
        // evaluation set this case touched, against the cumulative union.
        for (d, info) in map.decisions().iter().enumerate() {
            if info.conditions.is_empty() || case_tracker.decision_evals(d).is_empty() {
                continue;
            }
            let demonstrated = mcdc_demonstrated_for(self.tracker.decision_evals(d), info);
            for (cond, shown) in info.conditions.iter().zip(demonstrated) {
                let slot = &mut self.mcdc_hits[cond.index()];
                if shown && slot.is_none() {
                    *slot = Some(hit.clone());
                    new_goals.push(Goal::Mcdc(cond.index()));
                }
            }
        }
        new_goals.sort();
        new_goals
    }

    /// First-hit metadata of a goal, `None` while it is still open.
    pub fn first_hit(&self, goal: Goal) -> Option<&FirstHit> {
        match goal {
            Goal::Outcome(b) => self.outcome_hits.get(b)?.as_ref(),
            Goal::Condition(c, value) => self.condition_hits.get(c)?[usize::from(value)].as_ref(),
            Goal::Mcdc(c) => self.mcdc_hits.get(c)?.as_ref(),
        }
    }

    /// Every covered goal with its provenance, in canonical goal order.
    pub fn covered_goals(&self, map: &InstrumentationMap) -> Vec<(Goal, &FirstHit)> {
        Goal::all(map)
            .into_iter()
            .filter_map(|goal| self.first_hit(goal).map(|hit| (goal, hit)))
            .collect()
    }

    /// Number of covered goals per metric as `(decision, condition, mcdc)`.
    pub fn covered_counts(&self) -> (usize, usize, usize) {
        let d = self.outcome_hits.iter().filter(|h| h.is_some()).count();
        let c = self.condition_hits.iter().flatten().filter(|h| h.is_some()).count();
        let m = self.mcdc_hits.iter().filter(|h| h.is_some()).count();
        (d, c, m)
    }

    /// Merges another tracker's provenance into this one. For goals both
    /// sides covered, the hit with the smaller `(executions, shard, case)`
    /// key wins — the same deterministic first-hit order the parallel
    /// coordinator uses when folding shard reports.
    ///
    /// # Panics
    ///
    /// Panics when the trackers were built from different maps.
    pub fn merge(&mut self, other: &ProvenanceTracker) {
        self.tracker.merge(&other.tracker);
        let pick = |mine: &mut Option<FirstHit>, theirs: &Option<FirstHit>| {
            if let Some(t) = theirs {
                if mine.as_ref().is_none_or(|m| t.key() < m.key()) {
                    *mine = Some(t.clone());
                }
            }
        };
        assert_eq!(self.outcome_hits.len(), other.outcome_hits.len(), "tracker shape mismatch");
        for (mine, theirs) in self.outcome_hits.iter_mut().zip(&other.outcome_hits) {
            pick(mine, theirs);
        }
        for (mine, theirs) in self.condition_hits.iter_mut().zip(&other.condition_hits) {
            pick(&mut mine[0], &theirs[0]);
            pick(&mut mine[1], &theirs[1]);
        }
        for (mine, theirs) in self.mcdc_hits.iter_mut().zip(&other.mcdc_hits) {
            pick(mine, theirs);
        }
    }
}

/// Renders a lineage id compactly as `s<shard>:<n>` using the shard-stride
/// encoding shared with `cftcg-fuzz` (ids are `shard * 2^40 + n`).
pub fn format_case_id(id: u64) -> String {
    const STRIDE: u64 = 1 << 40;
    format!("s{}:{}", id / STRIDE, id % STRIDE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{BranchId, ConditionId, DecisionId, MapBuilder};
    use crate::recorder::Recorder;

    fn and_map() -> InstrumentationMap {
        let mut b = MapBuilder::new();
        let d = b.begin_decision("and");
        b.add_outcome(d, "true");
        b.add_outcome(d, "false");
        b.add_condition(d, "a");
        b.add_condition(d, "b");
        b.finish()
    }

    fn case(map: &InstrumentationMap, a: bool, b: bool) -> FullTracker {
        let mut t = FullTracker::new(map);
        let outcome = a && b;
        t.condition(ConditionId(0), a);
        t.condition(ConditionId(1), b);
        t.decision_eval(DecisionId(0), u64::from(a) | (u64::from(b) << 1), u32::from(outcome));
        t.branch(if outcome { BranchId(0) } else { BranchId(1) });
        t
    }

    fn hit(executions: u64, shard: usize, case: u64) -> FirstHit {
        FirstHit {
            executions,
            elapsed: Duration::from_millis(executions),
            shard,
            case,
            ops: vec![0],
        }
    }

    #[test]
    fn absorb_credits_first_hits_only() {
        let map = and_map();
        let mut p = ProvenanceTracker::new(&map);

        let new = p.absorb(&map, &case(&map, true, true), &hit(1, 0, 0));
        assert_eq!(new, vec![Goal::Outcome(0), Goal::Condition(0, true), Goal::Condition(1, true)]);

        // Second (T,T) case adds nothing.
        assert!(p.absorb(&map, &case(&map, true, true), &hit(2, 0, 1)).is_empty());

        // (F,T) flips the outcome and completes the MCDC pair for `a`.
        let new = p.absorb(&map, &case(&map, false, true), &hit(3, 0, 2));
        assert_eq!(new, vec![Goal::Outcome(1), Goal::Condition(0, false), Goal::Mcdc(0)]);
        assert_eq!(p.first_hit(Goal::Mcdc(0)).unwrap().executions, 3);
        assert_eq!(p.first_hit(Goal::Outcome(0)).unwrap().executions, 1);
        assert_eq!(p.covered_counts(), (2, 3, 1));
    }

    #[test]
    fn merge_prefers_earlier_hits() {
        let map = and_map();
        let mut a = ProvenanceTracker::new(&map);
        a.absorb(&map, &case(&map, true, true), &hit(10, 0, 5));
        let mut b = ProvenanceTracker::new(&map);
        b.absorb(&map, &case(&map, true, true), &hit(4, 1, 7));

        a.merge(&b);
        assert_eq!(a.first_hit(Goal::Outcome(0)).unwrap().executions, 4);
        // Shard breaks execution-count ties.
        let mut c = ProvenanceTracker::new(&map);
        c.absorb(&map, &case(&map, true, true), &hit(4, 0, 9));
        a.merge(&c);
        assert_eq!(a.first_hit(Goal::Outcome(0)).unwrap().shard, 0);
    }

    #[test]
    fn merge_completes_mcdc_pairs_across_trackers() {
        let map = and_map();
        let mut left = ProvenanceTracker::new(&map);
        left.absorb(&map, &case(&map, true, true), &hit(1, 0, 0));
        let mut right = ProvenanceTracker::new(&map);
        right.absorb(&map, &case(&map, false, true), &hit(2, 1, 0));

        // Neither side alone demonstrated MCDC; the merged tracker holds
        // both vectors but merge() does not invent a first hit for the pair
        // (no single absorbed case completed it on either side).
        left.merge(&right);
        assert!(left.first_hit(Goal::Mcdc(0)).is_none());
        // A subsequent absorb against the merged union completes it.
        let new = left.absorb(&map, &case(&map, false, true), &hit(3, 0, 4));
        assert_eq!(new, vec![Goal::Mcdc(0)]);
    }

    #[test]
    fn covered_goals_are_in_canonical_order() {
        let map = and_map();
        let mut p = ProvenanceTracker::new(&map);
        p.absorb(&map, &case(&map, false, true), &hit(1, 0, 0));
        p.absorb(&map, &case(&map, true, true), &hit(2, 0, 1));
        let goals: Vec<Goal> = p.covered_goals(&map).into_iter().map(|(g, _)| g).collect();
        let mut sorted = goals.clone();
        sorted.sort();
        assert_eq!(goals, sorted);
    }

    #[test]
    fn goal_labels_resolve_block_paths() {
        let map = and_map();
        assert_eq!(Goal::Outcome(0).label(&map), "decision outcome `true`");
        assert_eq!(Goal::Condition(1, false).label(&map), "condition `b` = false");
        assert_eq!(Goal::Mcdc(0).label(&map), "MCDC `a`");
        assert_eq!(Goal::Mcdc(0).metric(), "MCDC");
    }

    #[test]
    fn case_id_formatting_uses_shard_stride() {
        assert_eq!(format_case_id(5), "s0:5");
        assert_eq!(format_case_id((3 << 40) + 17), "s3:17");
    }
}
