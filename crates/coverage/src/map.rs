//! The instrumentation map: the static description of every probe the code
//! generator inserted, against which recorded hits are scored.

use std::fmt;

/// Index of one branch probe — one decision *outcome*. These are the slots
/// of the `g_CurrCov` / `g_TotalCov` arrays in the paper's Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BranchId(pub u32);

impl BranchId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "br{}", self.0)
    }
}

/// Index of one decision (a selection point with two or more outcomes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DecisionId(pub u32);

impl DecisionId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DecisionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dec{}", self.0)
    }
}

/// Index of one condition (a leaf boolean operand of a boolean decision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConditionId(pub u32);

impl ConditionId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ConditionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cond{}", self.0)
    }
}

/// Static description of one decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionInfo {
    /// Human-readable location, e.g. `"SolarPV/charge_switch"`.
    pub label: String,
    /// Whether this decision survives as a *jump* in optimized generated
    /// code. Boolean blocks, relational/compare blocks, and edge detectors
    /// compile branchless under `-O2` (the paper's "Fuzz Only" analysis:
    /// "the boolean operations did not have jump instruction and not
    /// instrumented"), so a code-level fuzzer cannot observe them.
    pub code_level: bool,
    /// The branch probes of this decision's outcomes, in outcome order.
    pub outcomes: Vec<BranchId>,
    /// The conditions feeding this decision (empty for multi-outcome
    /// dispatch decisions), in vector-bit order.
    pub conditions: Vec<ConditionId>,
}

/// Static description of one branch probe (a decision outcome).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchInfo {
    /// Human-readable outcome label, e.g. `"SolarPV/sw: pass-first"`.
    pub label: String,
    /// The owning decision.
    pub decision: DecisionId,
    /// This outcome's index within the decision.
    pub outcome: usize,
}

/// Static description of one condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConditionInfo {
    /// Human-readable label, e.g. `"guard(count > 5)"`.
    pub label: String,
    /// The owning decision.
    pub decision: DecisionId,
    /// The condition's bit position in the decision's evaluation vector.
    pub bit: usize,
}

/// Index of one run-time assertion (Simulink Assertion block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AssertionId(pub u32);

impl AssertionId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AssertionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assert{}", self.0)
    }
}

/// The full static instrumentation table for one compiled model.
///
/// Built once per model by `cftcg-codegen`'s branch instrumentation pass;
/// immutable afterwards.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstrumentationMap {
    branches: Vec<BranchInfo>,
    decisions: Vec<DecisionInfo>,
    conditions: Vec<ConditionInfo>,
    assertions: Vec<String>,
}

impl InstrumentationMap {
    /// Number of branch probes — the paper's `branchCount` and the
    /// `#Branch` column of its Table 2.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Number of decisions.
    pub fn decision_count(&self) -> usize {
        self.decisions.len()
    }

    /// Number of conditions.
    pub fn condition_count(&self) -> usize {
        self.conditions.len()
    }

    /// All branch probes, indexed by [`BranchId`].
    pub fn branches(&self) -> &[BranchInfo] {
        &self.branches
    }

    /// All decisions, indexed by [`DecisionId`].
    pub fn decisions(&self) -> &[DecisionInfo] {
        &self.decisions
    }

    /// All conditions, indexed by [`ConditionId`].
    pub fn conditions(&self) -> &[ConditionInfo] {
        &self.conditions
    }

    /// Looks up a decision.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this map.
    pub fn decision(&self, id: DecisionId) -> &DecisionInfo {
        &self.decisions[id.index()]
    }

    /// Looks up a branch probe.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this map.
    pub fn branch(&self, id: BranchId) -> &BranchInfo {
        &self.branches[id.index()]
    }

    /// Number of run-time assertions.
    pub fn assertion_count(&self) -> usize {
        self.assertions.len()
    }

    /// Assertion labels, indexed by [`AssertionId`].
    pub fn assertions(&self) -> &[String] {
        &self.assertions
    }

    /// Per-branch visibility to a *code-level* fuzzer: `false` for outcomes
    /// of branchless decisions (see [`DecisionInfo::code_level`]). This is
    /// the feedback mask of the paper's "Fuzz Only" baseline.
    pub fn code_level_mask(&self) -> Vec<bool> {
        self.branches.iter().map(|b| self.decisions[b.decision.index()].code_level).collect()
    }
}

/// Incrementally builds an [`InstrumentationMap`] during code generation.
///
/// ```
/// use cftcg_coverage::MapBuilder;
///
/// let mut b = MapBuilder::new();
/// let dec = b.begin_decision("m/switch");
/// let pass = b.add_outcome(dec, "pass-first");
/// let block = b.add_outcome(dec, "pass-third");
/// let cond = b.add_condition(dec, "control >= 0");
/// let map = b.finish();
/// assert_eq!(map.branch_count(), 2);
/// assert_eq!(map.decision(dec).outcomes, vec![pass, block]);
/// assert_eq!(map.decision(dec).conditions, vec![cond]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MapBuilder {
    map: InstrumentationMap,
}

impl MapBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new decision and returns its id.
    pub fn begin_decision(&mut self, label: impl Into<String>) -> DecisionId {
        self.begin_decision_with(label, true)
    }

    /// Opens a decision that optimized generated code evaluates *without a
    /// jump* (boolean/relational blocks), invisible to code-level coverage.
    pub fn begin_branchless_decision(&mut self, label: impl Into<String>) -> DecisionId {
        self.begin_decision_with(label, false)
    }

    fn begin_decision_with(&mut self, label: impl Into<String>, code_level: bool) -> DecisionId {
        let id = DecisionId(self.map.decisions.len() as u32);
        self.map.decisions.push(DecisionInfo {
            label: label.into(),
            code_level,
            outcomes: Vec::new(),
            conditions: Vec::new(),
        });
        id
    }

    /// Adds an outcome (branch probe) to a decision and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `decision` was not returned by this builder.
    pub fn add_outcome(&mut self, decision: DecisionId, label: impl Into<String>) -> BranchId {
        let id = BranchId(self.map.branches.len() as u32);
        let info = &mut self.map.decisions[decision.index()];
        self.map.branches.push(BranchInfo {
            label: label.into(),
            decision,
            outcome: info.outcomes.len(),
        });
        info.outcomes.push(id);
        id
    }

    /// Adds a condition to a decision and returns its id. Conditions occupy
    /// successive bits of the decision's MCDC evaluation vector.
    ///
    /// # Panics
    ///
    /// Panics if `decision` was not returned by this builder, or if the
    /// decision already has 64 conditions (the vector is a `u64`).
    pub fn add_condition(&mut self, decision: DecisionId, label: impl Into<String>) -> ConditionId {
        let id = ConditionId(self.map.conditions.len() as u32);
        let info = &mut self.map.decisions[decision.index()];
        assert!(info.conditions.len() < 64, "decision has too many conditions for a u64 vector");
        self.map.conditions.push(ConditionInfo {
            label: label.into(),
            decision,
            bit: info.conditions.len(),
        });
        info.conditions.push(id);
        id
    }

    /// Registers a run-time assertion and returns its id.
    pub fn add_assertion(&mut self, label: impl Into<String>) -> AssertionId {
        let id = AssertionId(self.map.assertions.len() as u32);
        self.map.assertions.push(label.into());
        id
    }

    /// Finalizes the map.
    pub fn finish(self) -> InstrumentationMap {
        self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = MapBuilder::new();
        let d0 = b.begin_decision("a");
        let d1 = b.begin_decision("b");
        let o0 = b.add_outcome(d0, "t");
        let o1 = b.add_outcome(d1, "t");
        let o2 = b.add_outcome(d0, "f");
        let c0 = b.add_condition(d1, "x");
        let map = b.finish();
        assert_eq!((d0.index(), d1.index()), (0, 1));
        assert_eq!((o0.index(), o1.index(), o2.index()), (0, 1, 2));
        assert_eq!(c0.index(), 0);
        assert_eq!(map.decision(d0).outcomes, vec![o0, o2]);
        assert_eq!(map.branch(o2).outcome, 1);
        assert_eq!(map.branch(o1).decision, d1);
        assert_eq!(map.conditions()[0].bit, 0);
    }

    #[test]
    fn counts() {
        let mut b = MapBuilder::new();
        let d = b.begin_decision("d");
        b.add_outcome(d, "a");
        b.add_outcome(d, "b");
        b.add_outcome(d, "c");
        b.add_condition(d, "c1");
        b.add_condition(d, "c2");
        let map = b.finish();
        assert_eq!(map.branch_count(), 3);
        assert_eq!(map.decision_count(), 1);
        assert_eq!(map.condition_count(), 2);
        assert_eq!(map.conditions()[1].bit, 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(BranchId(3).to_string(), "br3");
        assert_eq!(DecisionId(1).to_string(), "dec1");
        assert_eq!(ConditionId(0).to_string(), "cond0");
    }

    #[test]
    fn empty_map() {
        let map = MapBuilder::new().finish();
        assert_eq!(map.branch_count(), 0);
        assert_eq!(map.decision_count(), 0);
        assert_eq!(map.condition_count(), 0);
    }
}
