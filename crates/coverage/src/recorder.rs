//! Probe recorders: the runtime half of `CoverageStatistics()`.

use std::collections::HashSet;

use crate::map::{AssertionId, BranchId, ConditionId, DecisionId, InstrumentationMap};

/// Receives probe events from executing instrumented code.
///
/// The compiled step program calls these methods; implementations choose
/// what to retain. Methods other than [`Recorder::branch`] default to no-ops
/// so the fuzz-loop-fast bitmap only pays for what it uses.
pub trait Recorder {
    /// Whether this recorder observes probe events at all.
    ///
    /// When `false`, every probe method — [`Recorder::branch`],
    /// [`Recorder::condition`], [`Recorder::decision_eval`],
    /// [`Recorder::compare`], [`Recorder::assertion`] — is promised to be a
    /// no-op, and the VM is free to run a program variant with probe
    /// instructions stripped entirely (the replay/minimization fast path).
    /// Implementations that retain *any* event must leave this `true`.
    const OBSERVES_PROBES: bool = true;

    /// Promise that [`Recorder::condition`] is a no-op for this type.
    ///
    /// These per-event promises are the native back-end's trampoline seam:
    /// the JIT compiles probe ops as calls through a per-recorder vtable,
    /// and an event class promised away gets a null vtable slot, letting
    /// the generated code skip both the callback *and* the argument
    /// recomputation feeding it. Leave the default `true` whenever the
    /// method is overridden; promising away a retained event silently
    /// loses coverage observations.
    const OBSERVES_CONDITIONS: bool = true;

    /// Promise that [`Recorder::decision_eval`] is a no-op for this type
    /// (see [`Recorder::OBSERVES_CONDITIONS`]).
    const OBSERVES_DECISIONS: bool = true;

    /// Promise that [`Recorder::compare`] is a no-op for this type
    /// (see [`Recorder::OBSERVES_CONDITIONS`]).
    const OBSERVES_COMPARES: bool = true;

    /// Promise that [`Recorder::assertion`] is a no-op for this type
    /// (see [`Recorder::OBSERVES_CONDITIONS`]).
    const OBSERVES_ASSERTIONS: bool = true;

    /// A branch probe (decision outcome) was executed.
    fn branch(&mut self, id: BranchId);

    /// Dense branch-flags seam for native back-ends.
    ///
    /// A recorder whose [`Recorder::branch`] is observationally identical
    /// to `flags[id.index()] = true` over a dense `bool` array may expose
    /// that array here; the JIT then records branch probes as direct byte
    /// stores into it instead of calling back. The exposed buffer must
    /// stay valid and un-moved across any interleaving of this recorder's
    /// other event methods for the duration of a run, and must span every
    /// branch id of the executing program (callers fall back to
    /// [`Recorder::branch`] when it is too short). Default: no fast path.
    fn branch_flags(&mut self) -> Option<&mut [bool]> {
        None
    }

    /// A condition evaluated to `value`.
    fn condition(&mut self, id: ConditionId, value: bool) {
        let _ = (id, value);
    }

    /// A boolean decision was evaluated with the given condition bit
    /// `vector` and `outcome` (0 = false branch, 1 = true branch).
    fn decision_eval(&mut self, id: DecisionId, vector: u64, outcome: u32) {
        let _ = (id, vector, outcome);
    }

    /// A comparison executed with the given operands — LibFuzzer's
    /// table-of-recent-compares (TORC) hook, which the fuzzer mines for
    /// dictionary values that crack exact-match guards.
    fn compare(&mut self, lhs: f64, rhs: f64) {
        let _ = (lhs, rhs);
    }

    /// A run-time assertion evaluated with the given result (`false` is a
    /// violation — Simulink's Assertion block in warn-and-continue mode).
    fn assertion(&mut self, id: AssertionId, passed: bool) {
        let _ = (id, passed);
    }
}

/// Discards every event. Useful for pure-throughput benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    /// Discarding everything means the VM may skip probes altogether.
    const OBSERVES_PROBES: bool = false;
    const OBSERVES_CONDITIONS: bool = false;
    const OBSERVES_DECISIONS: bool = false;
    const OBSERVES_COMPARES: bool = false;
    const OBSERVES_ASSERTIONS: bool = false;

    fn branch(&mut self, _id: BranchId) {}
}

/// The per-iteration branch bitmap of the paper's Algorithm 1
/// (`g_CurrCov`): one flag per branch probe, cleared before every model
/// iteration by the fuzz driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchBitmap {
    bits: Vec<bool>,
}

impl BranchBitmap {
    /// Creates a cleared bitmap with `branch_count` slots.
    pub fn new(branch_count: usize) -> Self {
        BranchBitmap { bits: vec![false; branch_count] }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` when the bitmap has no slots.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Clears all flags (start of a model iteration, Algorithm 1 line 11).
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    /// Whether branch `i` was hit this iteration.
    pub fn get(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Raw slice access for bulk operations.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }

    /// Number of branches hit this iteration.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Number of positions where `self` and `other` differ — the
    /// per-iteration term of the paper's *Iteration Difference Coverage*
    /// metric (Algorithm 1 lines 17–18).
    ///
    /// # Panics
    ///
    /// Panics when the bitmaps have different lengths.
    pub fn diff_count(&self, other: &BranchBitmap) -> usize {
        assert_eq!(self.bits.len(), other.bits.len(), "bitmap length mismatch");
        self.bits.iter().zip(&other.bits).filter(|(a, b)| a != b).count()
    }

    /// ORs this iteration's hits into `total`, returning how many branches
    /// were newly covered (Algorithm 1 lines 14–16).
    ///
    /// # Panics
    ///
    /// Panics when the bitmaps have different lengths.
    pub fn merge_into(&self, total: &mut BranchBitmap) -> usize {
        assert_eq!(self.bits.len(), total.bits.len(), "bitmap length mismatch");
        let mut new_hits = 0;
        for (curr, tot) in self.bits.iter().zip(&mut total.bits) {
            if *curr && !*tot {
                *tot = true;
                new_hits += 1;
            }
        }
        new_hits
    }

    /// Copies another bitmap's flags into this one (Algorithm 1 line 19,
    /// `lastCov = g_CurrCov`).
    ///
    /// # Panics
    ///
    /// Panics when the bitmaps have different lengths.
    pub fn copy_from(&mut self, other: &BranchBitmap) {
        assert_eq!(self.bits.len(), other.bits.len(), "bitmap length mismatch");
        self.bits.copy_from_slice(&other.bits);
    }

    /// ORs `other`'s flags into this bitmap, returning how many were newly
    /// set here. The mirror of [`merge_into`](Self::merge_into), used by the
    /// parallel coordinator to fold worker shard bitmaps into `g_TotalCov`.
    ///
    /// # Panics
    ///
    /// Panics when the bitmaps have different lengths.
    pub fn merge_from(&mut self, other: &BranchBitmap) -> usize {
        other.merge_into(self)
    }

    /// How many branches are set in `self` but not in `baseline` — the
    /// non-mutating "would this be new coverage?" query the coordinator runs
    /// before deciding whether to broadcast a candidate corpus entry.
    ///
    /// # Panics
    ///
    /// Panics when the bitmaps have different lengths.
    pub fn new_vs(&self, baseline: &BranchBitmap) -> usize {
        assert_eq!(self.bits.len(), baseline.bits.len(), "bitmap length mismatch");
        self.bits.iter().zip(&baseline.bits).filter(|(s, b)| **s && !**b).count()
    }

    /// Indices of the set branches, ascending.
    pub fn set_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().filter_map(|(i, &b)| b.then_some(i))
    }

    /// Clears every flag whose `mask` slot is `false` (code-level feedback
    /// mode restricts coverage to non-model-level probes).
    ///
    /// # Panics
    ///
    /// Panics when `mask` has a different length.
    pub fn retain_mask(&mut self, mask: &[bool]) {
        assert_eq!(self.bits.len(), mask.len(), "bitmap length mismatch");
        for (bit, &keep) in self.bits.iter_mut().zip(mask) {
            *bit &= keep;
        }
    }
}

impl Recorder for BranchBitmap {
    /// Branch hits are all a bitmap retains.
    const OBSERVES_CONDITIONS: bool = false;
    const OBSERVES_DECISIONS: bool = false;
    const OBSERVES_COMPARES: bool = false;
    const OBSERVES_ASSERTIONS: bool = false;

    fn branch(&mut self, id: BranchId) {
        self.bits[id.index()] = true;
    }

    fn branch_flags(&mut self) -> Option<&mut [bool]> {
        Some(&mut self.bits)
    }
}

/// Cap on distinct evaluation vectors retained per decision. Industrial
/// coverage tools bound this too; beyond the cap additional vectors cannot
/// demonstrate many new MCDC pairs in practice.
const MAX_VECTORS_PER_DECISION: usize = 1024;

/// The replay-time recorder: retains everything needed to score Decision,
/// Condition, and MCDC coverage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FullTracker {
    branch_hits: Vec<bool>,
    /// `[false-seen, true-seen]` per condition.
    condition_values: Vec<[bool; 2]>,
    /// Distinct `(vector, outcome)` evaluations per decision.
    decision_vectors: Vec<HashSet<(u64, u32)>>,
    /// Violation counts per assertion.
    assertion_failures: Vec<u64>,
}

impl FullTracker {
    /// Creates an empty tracker sized for `map`.
    pub fn new(map: &InstrumentationMap) -> Self {
        FullTracker {
            branch_hits: vec![false; map.branch_count()],
            condition_values: vec![[false; 2]; map.condition_count()],
            decision_vectors: vec![HashSet::new(); map.decision_count()],
            assertion_failures: vec![0; map.assertion_count()],
        }
    }

    /// Violation count of assertion `i`.
    pub fn assertion_failures(&self, i: usize) -> u64 {
        self.assertion_failures[i]
    }

    /// Whether branch `i` has ever been hit.
    pub fn branch_hit(&self, i: usize) -> bool {
        self.branch_hits[i]
    }

    /// Slice of per-branch hit flags.
    pub fn branch_hits(&self) -> &[bool] {
        &self.branch_hits
    }

    /// Whether condition `i` has been observed with `value`.
    pub fn condition_seen(&self, i: usize, value: bool) -> bool {
        self.condition_values[i][usize::from(value)]
    }

    /// The recorded `(vector, outcome)` evaluations of decision `i`.
    pub fn decision_evals(&self, i: usize) -> &HashSet<(u64, u32)> {
        &self.decision_vectors[i]
    }

    /// The recorded evaluations of decision `i` in ascending `(vector,
    /// outcome)` order. The backing store is a `HashSet` whose iteration
    /// order varies run to run; every rendered report must use this accessor
    /// so its output is byte-stable.
    pub fn decision_evals_sorted(&self, i: usize) -> Vec<(u64, u32)> {
        let mut evals: Vec<(u64, u32)> = self.decision_vectors[i].iter().copied().collect();
        evals.sort_unstable();
        evals
    }

    /// Merges another tracker's observations into this one (used to union
    /// coverage across repeated runs).
    ///
    /// # Panics
    ///
    /// Panics when the trackers were built from different maps.
    pub fn merge(&mut self, other: &FullTracker) {
        assert_eq!(self.branch_hits.len(), other.branch_hits.len(), "tracker shape mismatch");
        for (a, b) in self.assertion_failures.iter_mut().zip(&other.assertion_failures) {
            *a += b;
        }
        for (a, b) in self.branch_hits.iter_mut().zip(&other.branch_hits) {
            *a |= b;
        }
        for (a, b) in self.condition_values.iter_mut().zip(&other.condition_values) {
            a[0] |= b[0];
            a[1] |= b[1];
        }
        for (a, b) in self.decision_vectors.iter_mut().zip(&other.decision_vectors) {
            if a.len() < MAX_VECTORS_PER_DECISION {
                a.extend(b.iter().copied());
            }
        }
    }
}

impl Recorder for FullTracker {
    /// Comparison operands feed the fuzzer's dictionary, not coverage.
    const OBSERVES_COMPARES: bool = false;

    fn branch(&mut self, id: BranchId) {
        self.branch_hits[id.index()] = true;
    }

    fn branch_flags(&mut self) -> Option<&mut [bool]> {
        Some(&mut self.branch_hits)
    }

    fn condition(&mut self, id: ConditionId, value: bool) {
        self.condition_values[id.index()][usize::from(value)] = true;
    }

    fn decision_eval(&mut self, id: DecisionId, vector: u64, outcome: u32) {
        let set = &mut self.decision_vectors[id.index()];
        if set.len() < MAX_VECTORS_PER_DECISION {
            set.insert((vector, outcome));
        }
    }

    fn assertion(&mut self, id: AssertionId, passed: bool) {
        if !passed {
            self.assertion_failures[id.index()] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapBuilder;

    #[test]
    fn bitmap_basics() {
        let mut bm = BranchBitmap::new(4);
        assert_eq!(bm.len(), 4);
        assert!(!bm.is_empty());
        bm.branch(BranchId(1));
        bm.branch(BranchId(3));
        assert!(bm.get(1));
        assert!(!bm.get(0));
        assert_eq!(bm.count(), 2);
        bm.clear();
        assert_eq!(bm.count(), 0);
    }

    #[test]
    fn bitmap_diff_and_merge() {
        let mut a = BranchBitmap::new(4);
        let mut b = BranchBitmap::new(4);
        a.branch(BranchId(0));
        a.branch(BranchId(1));
        b.branch(BranchId(1));
        b.branch(BranchId(2));
        assert_eq!(a.diff_count(&b), 2); // positions 0 and 2 differ

        let mut total = BranchBitmap::new(4);
        assert_eq!(a.merge_into(&mut total), 2);
        assert_eq!(b.merge_into(&mut total), 1); // only branch 2 is new
        assert_eq!(total.count(), 3);

        let mut last = BranchBitmap::new(4);
        last.copy_from(&a);
        assert_eq!(last.diff_count(&a), 0);
    }

    #[test]
    fn bitmap_merge_from_and_delta_queries() {
        let mut a = BranchBitmap::new(5);
        let mut b = BranchBitmap::new(5);
        a.branch(BranchId(0));
        a.branch(BranchId(2));
        b.branch(BranchId(2));
        b.branch(BranchId(4));

        assert_eq!(a.new_vs(&b), 1); // only branch 0
        assert_eq!(b.new_vs(&a), 1); // only branch 4
        assert_eq!(a.set_indices().collect::<Vec<_>>(), vec![0, 2]);

        let mut total = a.clone();
        assert_eq!(total.merge_from(&b), 1);
        assert_eq!(total.set_indices().collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(total.merge_from(&b), 0, "second merge adds nothing");
        assert_eq!(a.new_vs(&total), 0, "total dominates a");
    }

    #[test]
    fn bitmap_retain_mask_clears_unmasked() {
        let mut bm = BranchBitmap::new(4);
        bm.branch(BranchId(0));
        bm.branch(BranchId(1));
        bm.branch(BranchId(3));
        bm.retain_mask(&[true, false, true, false]);
        assert_eq!(bm.set_indices().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bitmap_length_mismatch_panics() {
        let a = BranchBitmap::new(3);
        let b = BranchBitmap::new(4);
        let _ = a.diff_count(&b);
    }

    #[test]
    fn full_tracker_records_everything() {
        let mut mb = MapBuilder::new();
        let d = mb.begin_decision("d");
        let t = mb.add_outcome(d, "true");
        mb.add_outcome(d, "false");
        let c = mb.add_condition(d, "c0");
        let map = mb.finish();

        let mut tracker = FullTracker::new(&map);
        tracker.branch(t);
        tracker.condition(c, true);
        tracker.decision_eval(d, 0b1, 1);
        assert!(tracker.branch_hit(0));
        assert!(!tracker.branch_hit(1));
        assert!(tracker.condition_seen(0, true));
        assert!(!tracker.condition_seen(0, false));
        assert!(tracker.decision_evals(0).contains(&(1, 1)));
    }

    #[test]
    fn tracker_merge_unions() {
        let mut mb = MapBuilder::new();
        let d = mb.begin_decision("d");
        let t = mb.add_outcome(d, "true");
        let f = mb.add_outcome(d, "false");
        let c = mb.add_condition(d, "c0");
        let map = mb.finish();

        let mut a = FullTracker::new(&map);
        a.branch(t);
        a.condition(c, true);
        a.decision_eval(d, 1, 1);
        let mut b = FullTracker::new(&map);
        b.branch(f);
        b.condition(c, false);
        b.decision_eval(d, 0, 0);

        a.merge(&b);
        assert!(a.branch_hit(0) && a.branch_hit(1));
        assert!(a.condition_seen(0, false) && a.condition_seen(0, true));
        assert_eq!(a.decision_evals(0).len(), 2);
    }

    #[test]
    fn null_recorder_ignores_everything() {
        let mut r = NullRecorder;
        r.branch(BranchId(0));
        r.condition(ConditionId(0), true);
        r.decision_eval(DecisionId(0), 0, 0);
    }
}
