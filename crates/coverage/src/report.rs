//! Scoring: turning recorded observations into the paper's three metrics.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::map::{DecisionInfo, InstrumentationMap};
use crate::recorder::FullTracker;

/// A covered/total pair with percentage helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ratio {
    /// Items covered.
    pub covered: usize,
    /// Items in total.
    pub total: usize,
}

impl Ratio {
    /// Creates a ratio.
    pub fn new(covered: usize, total: usize) -> Self {
        Ratio { covered, total }
    }

    /// Percentage in `[0, 100]`. An empty total counts as fully covered,
    /// matching how coverage tools report models without such goals.
    pub fn percent(self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.covered as f64 / self.total as f64
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}% ({}/{})", self.percent(), self.covered, self.total)
    }
}

/// Decision / Condition / MCDC coverage of one measured run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageReport {
    /// Decision Coverage: executed decision outcomes over all outcomes.
    pub decision: Ratio,
    /// Condition Coverage: observed condition values over `2 × conditions`.
    pub condition: Ratio,
    /// Modified Condition/Decision Coverage: conditions shown to
    /// independently affect their decision, over all conditions.
    pub mcdc: Ratio,
}

impl CoverageReport {
    /// Scores a tracker against its instrumentation map.
    ///
    /// # Panics
    ///
    /// Panics if `tracker` was not built from `map`.
    pub fn score(map: &InstrumentationMap, tracker: &FullTracker) -> Self {
        assert_eq!(tracker.branch_hits().len(), map.branch_count(), "tracker does not match map");
        // Decision Coverage: every branch probe is one decision outcome.
        let decision =
            Ratio::new(tracker.branch_hits().iter().filter(|&&h| h).count(), map.branch_count());

        // Condition Coverage: each condition must be seen false and true.
        let mut cond_covered = 0;
        for i in 0..map.condition_count() {
            cond_covered += usize::from(tracker.condition_seen(i, false));
            cond_covered += usize::from(tracker.condition_seen(i, true));
        }
        let condition = Ratio::new(cond_covered, 2 * map.condition_count());

        // MCDC (unique cause): condition demonstrated when two evaluations
        // of its decision differ only in that condition's bit and flip the
        // outcome.
        let mut mcdc_covered = 0;
        for (d, info) in map.decisions().iter().enumerate() {
            mcdc_covered += mcdc_demonstrated_for(tracker.decision_evals(d), info)
                .into_iter()
                .filter(|&shown| shown)
                .count();
        }
        let mcdc = Ratio::new(mcdc_covered, map.condition_count());

        CoverageReport { decision, condition, mcdc }
    }
}

/// Indexes a decision's recorded evaluations as `vector -> outcome bitset`
/// (bit 0 = outcome 0 seen, bit 1 = outcome 1 seen). Shared by the MCDC
/// scorer and the frontier analyzer; lets the unique-cause pair search probe
/// `vector ^ mask` in O(1) instead of scanning all pairs.
pub(crate) fn eval_index(evals: impl IntoIterator<Item = (u64, u32)>) -> HashMap<u64, u8> {
    let mut seen: HashMap<u64, u8> = HashMap::new();
    for (vector, outcome) in evals {
        *seen.entry(vector).or_insert(0) |= 1u8 << outcome.min(1);
    }
    seen
}

/// Per-condition MCDC status of one decision, aligned with
/// `info.conditions`: `true` when some recorded evaluation pair differs only
/// in that condition's bit and flips the outcome. O(E) in the number of
/// recorded evaluations: each vector probes its `vector ^ mask` partner in
/// the [`eval_index`].
pub(crate) fn mcdc_demonstrated_for(evals: &HashSet<(u64, u32)>, info: &DecisionInfo) -> Vec<bool> {
    if info.conditions.is_empty() {
        return Vec::new();
    }
    let index = eval_index(evals.iter().copied());
    info.conditions
        .iter()
        .enumerate()
        .map(|(bit, _)| {
            let mask = 1u64 << bit;
            evals.iter().any(|&(vector, outcome)| {
                let partner_outcomes = index.get(&(vector ^ mask)).copied().unwrap_or(0);
                // Demonstrated when the partner vector was seen with the
                // opposite outcome.
                partner_outcomes & (1u8 << (1 - outcome.min(1))) != 0
            })
        })
        .collect()
}

/// Renders a human-readable annotated coverage listing: every decision with
/// its outcome/condition status, uncovered goals marked. The textual
/// analogue of the HTML reports coverage tools generate.
///
/// ```
/// use cftcg_coverage::{detailed_report, FullTracker, MapBuilder};
/// let mut b = MapBuilder::new();
/// let d = b.begin_decision("m/sw");
/// b.add_outcome(d, "pass");
/// b.add_outcome(d, "block");
/// let map = b.finish();
/// let tracker = FullTracker::new(&map);
/// let text = detailed_report(&map, &tracker);
/// assert!(text.contains("[ ] pass"));
/// ```
pub fn detailed_report(map: &InstrumentationMap, tracker: &FullTracker) -> String {
    use std::fmt::Write as _;
    let report = CoverageReport::score(map, tracker);
    let mut out = String::new();
    let _ = writeln!(out, "coverage summary: {report}");
    for (d, decision) in map.decisions().iter().enumerate() {
        let covered = decision.outcomes.iter().filter(|&&o| tracker.branch_hit(o.index())).count();
        let _ = writeln!(
            out,
            "decision {d}: {} ({covered}/{} outcomes)",
            decision.label,
            decision.outcomes.len()
        );
        for &outcome in &decision.outcomes {
            let hit = tracker.branch_hit(outcome.index());
            let info = &map.branches()[outcome.index()];
            // Show only the outcome-specific suffix when the label repeats
            // the decision label.
            let label = info
                .label
                .strip_prefix(&decision.label)
                .map(|s| s.trim_start_matches([':', ' ']))
                .filter(|s| !s.is_empty())
                .unwrap_or(&info.label);
            let _ = writeln!(out, "  [{}] {label}", if hit { 'x' } else { ' ' });
        }
        let mcdc = mcdc_demonstrated_for(tracker.decision_evals(d), decision);
        for (&cond, shown) in decision.conditions.iter().zip(mcdc) {
            let i = cond.index();
            let f = tracker.condition_seen(i, false);
            let t = tracker.condition_seen(i, true);
            let _ = writeln!(
                out,
                "  condition {}: false {} / true {} / MCDC {}",
                map.conditions()[i].label,
                if f { "seen" } else { "MISSING" },
                if t { "seen" } else { "MISSING" },
                if shown { "demonstrated" } else { "not demonstrated" },
            );
        }
    }
    out
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decision {:.0}%, condition {:.0}%, MCDC {:.0}%",
            self.decision.percent(),
            self.condition.percent(),
            self.mcdc.percent()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MapBuilder;
    use crate::recorder::Recorder;

    /// One boolean decision `a && b` with two outcomes and two conditions.
    fn and_map() -> InstrumentationMap {
        let mut b = MapBuilder::new();
        let d = b.begin_decision("and");
        b.add_outcome(d, "true");
        b.add_outcome(d, "false");
        b.add_condition(d, "a");
        b.add_condition(d, "b");
        b.finish()
    }

    /// Records one evaluation of `a && b` into the tracker.
    fn eval_and(tracker: &mut FullTracker, a: bool, b: bool) {
        use crate::map::{BranchId, ConditionId, DecisionId};
        let outcome = a && b;
        tracker.condition(ConditionId(0), a);
        tracker.condition(ConditionId(1), b);
        let vector = u64::from(a) | (u64::from(b) << 1);
        tracker.decision_eval(DecisionId(0), vector, u32::from(outcome));
        tracker.branch(if outcome { BranchId(0) } else { BranchId(1) });
    }

    #[test]
    fn empty_run_scores_zero() {
        let map = and_map();
        let tracker = FullTracker::new(&map);
        let report = CoverageReport::score(&map, &tracker);
        assert_eq!(report.decision, Ratio::new(0, 2));
        assert_eq!(report.condition, Ratio::new(0, 4));
        assert_eq!(report.mcdc, Ratio::new(0, 2));
    }

    #[test]
    fn single_eval_covers_one_outcome() {
        let map = and_map();
        let mut tracker = FullTracker::new(&map);
        eval_and(&mut tracker, true, true);
        let report = CoverageReport::score(&map, &tracker);
        assert_eq!(report.decision, Ratio::new(1, 2));
        assert_eq!(report.condition, Ratio::new(2, 4)); // a=T, b=T seen
        assert_eq!(report.mcdc, Ratio::new(0, 2)); // no pair yet
    }

    #[test]
    fn mcdc_pairs_demonstrate_independence() {
        let map = and_map();
        let mut tracker = FullTracker::new(&map);
        // (T,T) vs (F,T): only `a` flips, outcome flips -> a demonstrated.
        eval_and(&mut tracker, true, true);
        eval_and(&mut tracker, false, true);
        let report = CoverageReport::score(&map, &tracker);
        assert_eq!(report.mcdc, Ratio::new(1, 2));
        // (T,F) completes the pair for `b` against (T,T).
        eval_and(&mut tracker, true, false);
        let report = CoverageReport::score(&map, &tracker);
        assert_eq!(report.decision, Ratio::new(2, 2));
        assert_eq!(report.condition, Ratio::new(4, 4));
        assert_eq!(report.mcdc, Ratio::new(2, 2));
    }

    #[test]
    fn differing_in_two_bits_does_not_demonstrate() {
        let map = and_map();
        let mut tracker = FullTracker::new(&map);
        // (T,T)=T vs (F,F)=F differ in both bits: demonstrates neither.
        eval_and(&mut tracker, true, true);
        eval_and(&mut tracker, false, false);
        let report = CoverageReport::score(&map, &tracker);
        assert_eq!(report.mcdc, Ratio::new(0, 2));
    }

    #[test]
    fn multi_outcome_decision_has_no_mcdc_goal() {
        let mut b = MapBuilder::new();
        let d = b.begin_decision("dispatch");
        let o0 = b.add_outcome(d, "case1");
        b.add_outcome(d, "case2");
        b.add_outcome(d, "default");
        let map = b.finish();
        let mut tracker = FullTracker::new(&map);
        tracker.branch(o0);
        let report = CoverageReport::score(&map, &tracker);
        assert_eq!(report.decision, Ratio::new(1, 3));
        assert_eq!(report.condition.total, 0);
        assert_eq!(report.condition.percent(), 100.0);
        assert_eq!(report.mcdc.total, 0);
    }

    #[test]
    fn ratio_display() {
        let r = Ratio::new(1, 3);
        assert_eq!(r.to_string(), "33.3% (1/3)");
        let report = CoverageReport {
            decision: Ratio::new(1, 2),
            condition: Ratio::new(1, 4),
            mcdc: Ratio::new(0, 2),
        };
        assert_eq!(report.to_string(), "decision 50%, condition 25%, MCDC 0%");
    }
}
