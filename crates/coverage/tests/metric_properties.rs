//! Property tests on the coverage metrics: invariants that must hold for
//! any sequence of recorded observations.

use std::collections::HashSet;
use std::time::Duration;

use cftcg_coverage::{
    frontier, BranchBitmap, BranchId, ConditionId, CoverageReport, DecisionId, FirstHit,
    FullTracker, Goal, MapBuilder, ProvenanceTracker, Recorder,
};
use proptest::prelude::*;

/// Builds a map with one boolean decision of `n` conditions.
fn bool_map(n: usize) -> cftcg_coverage::InstrumentationMap {
    let mut b = MapBuilder::new();
    let d = b.begin_decision("d");
    b.add_outcome(d, "true");
    b.add_outcome(d, "false");
    for i in 0..n {
        b.add_condition(d, format!("c{i}"));
    }
    b.finish()
}

/// Records one AND-evaluation over the given condition values.
fn record(tracker: &mut FullTracker, values: &[bool]) {
    let outcome = values.iter().all(|&v| v);
    let mut vector = 0u64;
    for (i, &v) in values.iter().enumerate() {
        tracker.condition(ConditionId(i as u32), v);
        if v {
            vector |= 1 << i;
        }
    }
    tracker.decision_eval(DecisionId(0), vector, u32::from(outcome));
    tracker.branch(if outcome { BranchId(0) } else { BranchId(1) });
}

proptest! {
    /// Coverage is monotone: recording more evaluations never decreases any
    /// of the three metrics.
    #[test]
    fn metrics_are_monotone(
        evals in prop::collection::vec(prop::collection::vec(any::<bool>(), 3), 1..24),
    ) {
        let map = bool_map(3);
        let mut tracker = FullTracker::new(&map);
        let mut last = CoverageReport::score(&map, &tracker);
        for eval in &evals {
            record(&mut tracker, eval);
            let now = CoverageReport::score(&map, &tracker);
            prop_assert!(now.decision.covered >= last.decision.covered);
            prop_assert!(now.condition.covered >= last.condition.covered);
            prop_assert!(now.mcdc.covered >= last.mcdc.covered);
            last = now;
        }
    }

    /// MCDC for a condition implies that condition has full condition
    /// coverage (both values seen) and the decision has both outcomes.
    #[test]
    fn mcdc_implies_condition_and_decision_coverage(
        evals in prop::collection::vec(prop::collection::vec(any::<bool>(), 2), 1..16),
    ) {
        let map = bool_map(2);
        let mut tracker = FullTracker::new(&map);
        for eval in &evals {
            record(&mut tracker, eval);
        }
        let report = CoverageReport::score(&map, &tracker);
        if report.mcdc.covered > 0 {
            prop_assert_eq!(report.decision.covered, 2, "MCDC needs both outcomes");
        }
        prop_assert!(report.mcdc.covered * 2 <= report.condition.covered + 2);
    }

    /// Tracker merge equals recording the union of observations.
    #[test]
    fn merge_is_union(
        a in prop::collection::vec(prop::collection::vec(any::<bool>(), 3), 0..12),
        b in prop::collection::vec(prop::collection::vec(any::<bool>(), 3), 0..12),
    ) {
        let map = bool_map(3);
        let mut ta = FullTracker::new(&map);
        for e in &a {
            record(&mut ta, e);
        }
        let mut tb = FullTracker::new(&map);
        for e in &b {
            record(&mut tb, e);
        }
        let mut combined = FullTracker::new(&map);
        for e in a.iter().chain(&b) {
            record(&mut combined, e);
        }
        ta.merge(&tb);
        let merged = CoverageReport::score(&map, &ta);
        let direct = CoverageReport::score(&map, &combined);
        prop_assert_eq!(merged, direct);
    }

    /// The branch bitmap's diff/merge algebra is consistent:
    /// `diff(a, b) == diff(b, a)` and merging is idempotent.
    #[test]
    fn bitmap_algebra(
        a_hits in prop::collection::vec(any::<bool>(), 16),
        b_hits in prop::collection::vec(any::<bool>(), 16),
    ) {
        let mut a = BranchBitmap::new(16);
        let mut b = BranchBitmap::new(16);
        for (i, (&ha, &hb)) in a_hits.iter().zip(&b_hits).enumerate() {
            if ha {
                a.branch(BranchId(i as u32));
            }
            if hb {
                b.branch(BranchId(i as u32));
            }
        }
        prop_assert_eq!(a.diff_count(&b), b.diff_count(&a));
        let mut total = BranchBitmap::new(16);
        let first = a.merge_into(&mut total);
        prop_assert_eq!(first, a.count());
        let again = a.merge_into(&mut total);
        prop_assert_eq!(again, 0, "merging twice adds nothing");
        let from_b = b.merge_into(&mut total);
        prop_assert_eq!(total.count(), a.count() + from_b);
    }

    /// Forensic partition: after any campaign (sequence of absorbed cases),
    /// every goal of the universe is in *exactly one* of
    /// {covered-with-provenance, frontier}, and the partition counts
    /// reproduce `CoverageReport::score` per metric.
    #[test]
    fn provenance_and_frontier_partition_the_goal_universe(
        evals in prop::collection::vec(prop::collection::vec(any::<bool>(), 3), 0..20),
    ) {
        let map = bool_map(3);
        let mut provenance = ProvenanceTracker::new(&map);
        for (i, eval) in evals.iter().enumerate() {
            let mut case = FullTracker::new(&map);
            record(&mut case, eval);
            let hit = FirstHit {
                executions: i as u64 + 1,
                elapsed: Duration::from_millis(i as u64),
                shard: 0,
                case: i as u64,
                ops: vec![],
            };
            provenance.absorb(&map, &case, &hit);
        }

        let open: HashSet<Goal> =
            frontier(&map, provenance.tracker()).into_iter().map(|e| e.goal).collect();
        for goal in Goal::all(&map) {
            prop_assert!(
                provenance.first_hit(goal).is_some() != open.contains(&goal),
                "goal {goal:?} must be in exactly one partition"
            );
        }

        let report = CoverageReport::score(&map, provenance.tracker());
        let (d, c, m) = provenance.covered_counts();
        prop_assert_eq!(d, report.decision.covered);
        prop_assert_eq!(c, report.condition.covered);
        prop_assert_eq!(m, report.mcdc.covered);
        let open_d = open.iter().filter(|g| matches!(g, Goal::Outcome(_))).count();
        let open_c = open.iter().filter(|g| matches!(g, Goal::Condition(..))).count();
        let open_m = open.iter().filter(|g| matches!(g, Goal::Mcdc(_))).count();
        prop_assert_eq!(d + open_d, report.decision.total);
        prop_assert_eq!(c + open_c, report.condition.total);
        prop_assert_eq!(m + open_m, report.mcdc.total);
    }

    /// `merge_from` is commutative (as a set union), idempotent, and
    /// consistent with the `new_vs` delta query — the invariants the
    /// parallel coordinator's global-coverage fold relies on.
    #[test]
    fn merge_from_is_commutative_and_idempotent(
        a_hits in prop::collection::vec(any::<bool>(), 24),
        b_hits in prop::collection::vec(any::<bool>(), 24),
    ) {
        let mut a = BranchBitmap::new(24);
        let mut b = BranchBitmap::new(24);
        for (i, (&ha, &hb)) in a_hits.iter().zip(&b_hits).enumerate() {
            if ha {
                a.branch(BranchId(i as u32));
            }
            if hb {
                b.branch(BranchId(i as u32));
            }
        }

        // Commutative: a ∪ b == b ∪ a.
        let mut ab = a.clone();
        let gained_b = ab.merge_from(&b);
        let mut ba = b.clone();
        let gained_a = ba.merge_from(&a);
        prop_assert_eq!(&ab, &ba);

        // The reported gain matches the non-mutating delta query.
        prop_assert_eq!(gained_b, b.new_vs(&a));
        prop_assert_eq!(gained_a, a.new_vs(&b));

        // Idempotent: merging either operand again adds nothing.
        let before = ab.clone();
        prop_assert_eq!(ab.merge_from(&a), 0);
        prop_assert_eq!(ab.merge_from(&b), 0);
        prop_assert_eq!(&ab, &before);

        // The union dominates both operands.
        prop_assert_eq!(a.new_vs(&ab), 0);
        prop_assert_eq!(b.new_vs(&ab), 0);
    }
}
