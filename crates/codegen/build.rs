//! Computes the `cftcg_jit` cfg: the native back-end is only viable when
//! the `jit` feature is on AND the target is x86-64 Linux (the emitter
//! produces System V x86-64 code and allocates executable pages with raw
//! Linux syscalls). Everything else falls back to the flat VM.

fn main() {
    println!("cargo:rustc-check-cfg=cfg(cftcg_jit)");
    let feature = std::env::var_os("CARGO_FEATURE_JIT").is_some();
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    let os = std::env::var("CARGO_CFG_TARGET_OS").unwrap_or_default();
    if feature && arch == "x86_64" && os == "linux" {
        println!("cargo:rustc-cfg=cftcg_jit");
    }
}
