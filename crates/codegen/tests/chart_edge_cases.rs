//! Differential tests for chart corner cases: single-state charts,
//! unconditional and self-loop transitions, action/entry ordering, typed
//! chart variables, and priority shadowing.

use cftcg_codegen::{compile, Executor};
use cftcg_coverage::NullRecorder;
use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{BlockKind, Chart, DataType, Model, ModelBuilder, State, Transition, Value};
use cftcg_sim::Simulator;

fn chart_model(chart: Chart) -> Model {
    let n_in = chart.inputs.len();
    let n_out = chart.outputs.len();
    let mut b = ModelBuilder::new("m");
    let blk = b.add("chart", BlockKind::Chart { chart });
    for i in 0..n_in {
        let u = b.inport(format!("u{i}"), DataType::F64);
        b.connect(u, 0, blk, i);
    }
    for i in 0..n_out {
        let y = b.outport(format!("y{i}"));
        b.connect(blk, i, y, 0);
    }
    b.finish().expect("chart model validates")
}

fn assert_equivalent(model: &Model, steps: &[Vec<Value>]) {
    let mut sim = Simulator::new(model).unwrap();
    let compiled = compile(model).unwrap();
    let mut exec = Executor::new(&compiled);
    let mut rec = NullRecorder;
    let mut actual = Vec::new();
    for (k, inputs) in steps.iter().enumerate() {
        let expected = sim.step(inputs).unwrap();
        exec.step_into(inputs, &mut actual, &mut rec);
        assert_eq!(expected, actual, "diverged at step {k} on inputs {inputs:?}");
    }
}

fn f64_steps(xs: &[f64]) -> Vec<Vec<Value>> {
    xs.iter().map(|&x| vec![Value::F64(x)]).collect()
}

#[test]
fn single_state_chart_runs_during_every_step() {
    let mut chart = Chart::new();
    chart.inputs.push(("u".into(), DataType::F64));
    chart.outputs.push(("acc".into(), DataType::F64));
    chart.states.push(State::new("Only").with_during(parse_stmts("acc = acc + u;").unwrap()));
    let model = chart_model(chart);
    assert_equivalent(&model, &f64_steps(&[1.0, 2.0, 3.0, -4.0]));
}

#[test]
fn unconditional_transitions_ping_pong() {
    let mut chart = Chart::new();
    chart.inputs.push(("u".into(), DataType::F64));
    chart.outputs.push(("which".into(), DataType::I32));
    let a = chart.add_state(State::new("A").with_entry(parse_stmts("which = 1;").unwrap()));
    let b = chart.add_state(State::new("B").with_entry(parse_stmts("which = 2;").unwrap()));
    chart.initial = a;
    chart.add_transition(Transition::unconditional(a, b));
    chart.add_transition(Transition::unconditional(b, a));
    let model = chart_model(chart);
    // Alternates every step; both engines must agree on the phase.
    let mut sim = Simulator::new(&model).unwrap();
    let out = sim.step(&[Value::F64(0.0)]).unwrap();
    assert_eq!(out[0], Value::I32(2), "A fires immediately into B");
    assert_equivalent(&model, &f64_steps(&[0.0, 0.0, 0.0, 0.0, 0.0]));
}

#[test]
fn self_loop_runs_action_and_entry_each_firing() {
    let mut chart = Chart::new();
    chart.inputs.push(("go".into(), DataType::F64));
    chart.outputs.push(("entries".into(), DataType::I32));
    chart.outputs.push(("actions".into(), DataType::I32));
    let s =
        chart.add_state(State::new("S").with_entry(parse_stmts("entries = entries + 1;").unwrap()));
    chart.initial = s;
    chart.add_transition(
        Transition::new(s, s, parse_expr("go > 0").unwrap())
            .with_action(parse_stmts("actions = actions + 1;").unwrap()),
    );
    let model = chart_model(chart);
    let mut sim = Simulator::new(&model).unwrap();
    // Init runs entry once; each firing runs action then entry again.
    let out = sim.step(&[Value::F64(1.0)]).unwrap();
    assert_eq!(out[0], Value::I32(2));
    assert_eq!(out[1], Value::I32(1));
    let out = sim.step(&[Value::F64(0.0)]).unwrap();
    assert_eq!(out[0], Value::I32(2), "no firing, no entry");
    assert_equivalent(&model, &f64_steps(&[1.0, 0.0, 1.0, 1.0, 0.0]));
}

#[test]
fn transition_priority_shadows_later_guards() {
    let mut chart = Chart::new();
    chart.inputs.push(("u".into(), DataType::F64));
    chart.outputs.push(("tag".into(), DataType::I32));
    let start = chart.add_state(State::new("Start"));
    let first = chart.add_state(State::new("First").with_entry(parse_stmts("tag = 1;").unwrap()));
    let second = chart.add_state(State::new("Second").with_entry(parse_stmts("tag = 2;").unwrap()));
    chart.initial = start;
    // Both guards true for u = 7; the first added must win.
    chart.add_transition(Transition::new(start, first, parse_expr("u > 5").unwrap()));
    chart.add_transition(Transition::new(start, second, parse_expr("u > 2").unwrap()));
    let model = chart_model(chart);
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[Value::F64(7.0)]).unwrap()[0], Value::I32(1));
    // And the lower-priority one fires when only it is enabled.
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[Value::F64(3.0)]).unwrap()[0], Value::I32(2));
    assert_equivalent(&model, &f64_steps(&[7.0, 3.0, 1.0]));
}

#[test]
fn action_updates_are_visible_to_target_entry() {
    let mut chart = Chart::new();
    chart.inputs.push(("u".into(), DataType::F64));
    chart.outputs.push(("y".into(), DataType::F64));
    chart.variables.push(("v".into(), DataType::F64, Value::F64(0.0)));
    let a = chart.add_state(State::new("A"));
    let b = chart.add_state(State::new("B").with_entry(parse_stmts("y = v * 10;").unwrap()));
    chart.initial = a;
    chart.add_transition(
        Transition::new(a, b, parse_expr("u > 0").unwrap())
            .with_action(parse_stmts("v = u + 1;").unwrap()),
    );
    let model = chart_model(chart);
    let mut sim = Simulator::new(&model).unwrap();
    let out = sim.step(&[Value::F64(4.0)]).unwrap();
    assert_eq!(out[0], Value::F64(50.0), "entry must see the action's write");
    assert_equivalent(&model, &f64_steps(&[4.0, 0.0]));
}

#[test]
fn typed_chart_variables_saturate_on_assignment() {
    let mut chart = Chart::new();
    chart.inputs.push(("u".into(), DataType::F64));
    chart.outputs.push(("narrow".into(), DataType::I8));
    let s = chart.add_state(State::new("S").with_during(parse_stmts("narrow = u;").unwrap()));
    chart.initial = s;
    let model = chart_model(chart);
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[Value::F64(1000.0)]).unwrap()[0], Value::I8(127));
    assert_eq!(sim.step(&[Value::F64(-1000.0)]).unwrap()[0], Value::I8(-128));
    assert_equivalent(&model, &f64_steps(&[1000.0, -1000.0, 5.4, f64::NAN]));
}

#[test]
fn chart_initial_entry_runs_once_before_first_step() {
    let mut chart = Chart::new();
    chart.inputs.push(("u".into(), DataType::F64));
    chart.outputs.push(("y".into(), DataType::I32));
    chart.variables.push(("boot".into(), DataType::I32, Value::I32(41)));
    let s = chart.add_state(
        State::new("S")
            .with_entry(parse_stmts("boot = boot + 1; y = boot;").unwrap())
            .with_during(parse_stmts("y = boot;").unwrap()),
    );
    chart.initial = s;
    let model = chart_model(chart);
    let mut sim = Simulator::new(&model).unwrap();
    // Entry ran at init: boot = 42, published on the first step's during.
    assert_eq!(sim.step(&[Value::F64(0.0)]).unwrap()[0], Value::I32(42));
    assert_equivalent(&model, &f64_steps(&[0.0, 0.0]));
}
