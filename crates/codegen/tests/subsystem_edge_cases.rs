//! Differential tests for conditionally-executed subsystem corner cases:
//! nesting, frozen inner state, held outputs of multi-output subsystems,
//! and merge resolution order.

use cftcg_codegen::{compile, Executor};
use cftcg_coverage::NullRecorder;
use cftcg_model::expr::parse_expr;
use cftcg_model::{BlockKind, DataType, EdgeKind, InputSign, Model, ModelBuilder, Value};
use cftcg_sim::Simulator;

fn assert_equivalent(model: &Model, steps: &[Vec<Value>]) {
    let mut sim = Simulator::new(model).unwrap();
    let compiled = compile(model).unwrap();
    let mut exec = Executor::new(&compiled);
    let mut rec = NullRecorder;
    let mut actual = Vec::new();
    for (k, inputs) in steps.iter().enumerate() {
        let expected = sim.step(inputs).unwrap();
        exec.step_into(inputs, &mut actual, &mut rec);
        assert_eq!(expected, actual, "diverged at step {k} on inputs {inputs:?}");
    }
}

/// An accumulator inner model (one data input, one output).
fn accumulator() -> Model {
    let mut b = ModelBuilder::new("acc");
    let u = b.inport("u", DataType::F64);
    let sum = b.add("sum", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
    let dly = b.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
    let y = b.outport("y");
    b.connect(u, 0, sum, 0);
    b.connect(dly, 0, sum, 1);
    b.connect(sum, 0, dly, 0);
    b.connect(sum, 0, y, 0);
    b.finish().unwrap()
}

#[test]
fn enabled_inside_enabled_freezes_independently() {
    // outer enable gates an inner enabled subsystem with its own gate.
    let mut inner_host = ModelBuilder::new("inner_host");
    let gate2 = inner_host.inport("gate2", DataType::Bool);
    let data = inner_host.inport("data", DataType::F64);
    let sub =
        inner_host.add("inner", BlockKind::EnabledSubsystem { model: Box::new(accumulator()) });
    let y = inner_host.outport("y");
    inner_host.feed(gate2, sub, 0);
    inner_host.feed(data, sub, 1);
    inner_host.wire(sub, y);
    let inner_host = inner_host.finish().unwrap();

    let mut b = ModelBuilder::new("outer");
    let g1 = b.inport("g1", DataType::Bool);
    let g2 = b.inport("g2", DataType::Bool);
    let u = b.inport("u", DataType::F64);
    let sub = b.add("outer_sub", BlockKind::EnabledSubsystem { model: Box::new(inner_host) });
    let y = b.outport("y");
    b.feed(g1, sub, 0);
    b.feed(g2, sub, 1);
    b.feed(u, sub, 2);
    b.wire(sub, y);
    let model = b.finish().unwrap();

    let tt = |g1, g2, u| vec![Value::Bool(g1), Value::Bool(g2), Value::F64(u)];
    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&tt(true, true, 5.0)).unwrap()[0], Value::F64(5.0));
    // Inner gate off: accumulator frozen, output held at 5.
    assert_eq!(sim.step(&tt(true, false, 100.0)).unwrap()[0], Value::F64(5.0));
    // Outer gate off: everything held.
    assert_eq!(sim.step(&tt(false, true, 100.0)).unwrap()[0], Value::F64(5.0));
    // Both on again: accumulation resumes from 5.
    assert_eq!(sim.step(&tt(true, true, 2.0)).unwrap()[0], Value::F64(7.0));

    assert_equivalent(
        &model,
        &[
            tt(true, true, 5.0),
            tt(true, false, 100.0),
            tt(false, true, 100.0),
            tt(true, true, 2.0),
            tt(false, false, -3.0),
            tt(true, true, -3.0),
        ],
    );
}

#[test]
fn multi_output_action_subsystem_holds_all_outputs() {
    let mut inner = ModelBuilder::new("pair");
    let u = inner.inport("u", DataType::F64);
    let double = inner.add("double", BlockKind::Gain { gain: 2.0 });
    let negate = inner.add("negate", BlockKind::UnaryMinus);
    let y0 = inner.outport("double_out");
    let y1 = inner.outport("neg_out");
    inner.wire(u, double);
    inner.feed(u, negate, 0);
    inner.wire(double, y0);
    inner.wire(negate, y1);
    let inner = inner.finish().unwrap();

    let mut b = ModelBuilder::new("m");
    let u = b.inport("u", DataType::F64);
    let iff = b.add(
        "if",
        BlockKind::If {
            num_inputs: 1,
            conditions: vec![parse_expr("u1 > 0").unwrap()],
            has_else: false,
        },
    );
    let act = b.add("act", BlockKind::ActionSubsystem { model: Box::new(inner) });
    let y0 = b.outport("y0");
    let y1 = b.outport("y1");
    b.wire(u, iff);
    b.connect(iff, 0, act, 0);
    b.connect(u, 0, act, 1);
    b.connect(act, 0, y0, 0);
    b.connect(act, 1, y1, 0);
    let model = b.finish().unwrap();

    let mut sim = Simulator::new(&model).unwrap();
    let out = sim.step(&[Value::F64(3.0)]).unwrap();
    assert_eq!(out, vec![Value::F64(6.0), Value::F64(-3.0)]);
    // Inactive: both outputs hold.
    let out = sim.step(&[Value::F64(-9.0)]).unwrap();
    assert_eq!(out, vec![Value::F64(6.0), Value::F64(-3.0)]);

    let steps: Vec<Vec<Value>> =
        [3.0, -9.0, 0.0, 7.5, -1.0].iter().map(|&x| vec![Value::F64(x)]).collect();
    assert_equivalent(&model, &steps);
}

#[test]
fn triggered_subsystem_nested_in_action_subsystem() {
    // The trigger edge detector must keep its own state across outer
    // inactivity.
    let mut inner = ModelBuilder::new("trig_host");
    let trig = inner.inport("trig", DataType::Bool);
    let sub = inner.add(
        "counter_sub",
        BlockKind::TriggeredSubsystem {
            model: Box::new({
                let mut c = ModelBuilder::new("count");
                let cnt = c.add("cnt", BlockKind::CounterFreeRunning { bits: 8 });
                let y = c.outport("y");
                c.wire(cnt, y);
                c.finish().unwrap()
            }),
            edge: EdgeKind::Rising,
        },
    );
    let y = inner.outport("y");
    inner.feed(trig, sub, 0);
    inner.wire(sub, y);
    let inner = inner.finish().unwrap();

    let mut b = ModelBuilder::new("m");
    let active = b.inport("active", DataType::Bool);
    let trig = b.inport("trig", DataType::Bool);
    let iff = b.add(
        "if",
        BlockKind::If {
            num_inputs: 1,
            conditions: vec![parse_expr("u1").unwrap()],
            has_else: false,
        },
    );
    let act = b.add("act", BlockKind::ActionSubsystem { model: Box::new(inner) });
    let y = b.outport("y");
    b.wire(active, iff);
    b.connect(iff, 0, act, 0);
    b.connect(trig, 0, act, 1);
    b.wire(act, y);
    let model = b.finish().unwrap();

    let tt = |a, t| vec![Value::Bool(a), Value::Bool(t)];
    assert_equivalent(
        &model,
        &[
            tt(true, false),
            tt(true, true),   // rising edge, fire 0
            tt(true, true),   // no edge
            tt(false, false), // outer inactive: trigger state frozen (still true)
            tt(true, true),   // trigger was never seen low while active... edge semantics
            tt(true, false),
            tt(true, true), // rising edge, fire 1
        ],
    );
}

#[test]
fn merge_prefers_first_active_input() {
    // Two action branches from a SwitchCase with overlapping activity is
    // impossible; instead verify merge holds when *neither* fires.
    fn const_action(name: &str, v: f64) -> BlockKind {
        let mut b = ModelBuilder::new(name);
        let c = b.constant("c", v);
        let y = b.outport("y");
        b.wire(c, y);
        BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
    }
    let mut b = ModelBuilder::new("m");
    let sel = b.inport("sel", DataType::I32);
    let sc =
        b.add("sc", BlockKind::SwitchCase { cases: vec![vec![1], vec![2]], has_default: false });
    let a1 = b.add("a1", const_action("m1", 10.0));
    let a2 = b.add("a2", const_action("m2", 20.0));
    let merge = b.add("merge", BlockKind::Merge { inputs: 2 });
    let y = b.outport("y");
    b.wire(sel, sc);
    b.connect(sc, 0, a1, 0);
    b.connect(sc, 1, a2, 0);
    b.connect(a1, 0, merge, 0);
    b.connect(a2, 0, merge, 1);
    b.wire(merge, y);
    let model = b.finish().unwrap();

    let mut sim = Simulator::new(&model).unwrap();
    assert_eq!(sim.step(&[Value::I32(1)]).unwrap()[0], Value::F64(10.0));
    assert_eq!(sim.step(&[Value::I32(9)]).unwrap()[0], Value::F64(10.0)); // held
    assert_eq!(sim.step(&[Value::I32(2)]).unwrap()[0], Value::F64(20.0));
    let steps: Vec<Vec<Value>> = [1, 9, 2, 9, 1, 2].iter().map(|&s| vec![Value::I32(s)]).collect();
    assert_equivalent(&model, &steps);
}
