//! Differential testing: the compiled step program must produce exactly the
//! same outputs as the interpretive simulator on the same input sequences —
//! the reproduction of the paper's "we verified the correctness of the
//! generated code by comparing simulation results with code execution
//! results".

use cftcg_codegen::{compile, Executor};
use cftcg_coverage::NullRecorder;
use cftcg_model::expr::{parse_expr, parse_stmts};
use cftcg_model::{
    BlockKind, Chart, DataType, EdgeKind, FunctionDef, InputSign, LogicOp, MathFunc, MinMaxOp,
    Model, ModelBuilder, ProductOp, RelOp, State, SwitchCriterion, Transition, Value,
};
use cftcg_sim::Simulator;
use proptest::prelude::*;

/// Compares two values, treating NaN as equal to NaN of the same type.
fn values_eq(a: &Value, b: &Value) -> bool {
    if a.data_type() != b.data_type() {
        return false;
    }
    let (x, y) = (a.as_f64(), b.as_f64());
    (x.is_nan() && y.is_nan()) || x == y || (x.to_bits() == y.to_bits())
}

/// Runs the same input sequence through both engines and asserts equality of
/// every output of every step.
fn assert_equivalent(model: &Model, steps: &[Vec<Value>]) {
    let mut sim = Simulator::new(model).expect("model validates");
    let compiled = compile(model).expect("model compiles");
    let mut exec = Executor::new(&compiled);
    let mut rec = NullRecorder;
    let mut actual = Vec::new();
    for (k, inputs) in steps.iter().enumerate() {
        let expected = sim.step(inputs).expect("sim step");
        exec.step_into(inputs, &mut actual, &mut rec);
        assert_eq!(expected.len(), actual.len());
        for (port, (e, a)) in expected.iter().zip(&actual).enumerate() {
            assert!(
                values_eq(e, a),
                "model `{}` step {k} output {port}: sim {e:?} vs compiled {a:?} (inputs {inputs:?})",
                model.name()
            );
        }
    }
}

/// Builds a single-block probe model: `n` F64 inports -> block -> outports.
fn probe(kind: BlockKind) -> Model {
    let n = kind.num_inputs();
    let n_out = kind.num_outputs().max(1);
    let mut b = ModelBuilder::new("probe");
    let blk = b.add("blk", kind);
    for port in 0..n {
        let u = b.inport(format!("u{port}"), DataType::F64);
        b.connect(u, 0, blk, port);
    }
    for port in 0..n_out {
        let y = b.outport(format!("y{port}"));
        b.connect(blk, port, y, 0);
    }
    b.finish().expect("probe model validates")
}

fn all_scalar_kinds() -> Vec<BlockKind> {
    vec![
        BlockKind::Sum { signs: vec![InputSign::Plus, InputSign::Minus, InputSign::Plus] },
        BlockKind::Product { ops: vec![ProductOp::Mul, ProductOp::Div] },
        BlockKind::Gain { gain: -3.25 },
        BlockKind::Bias { bias: 0.5 },
        BlockKind::Abs,
        BlockKind::UnaryMinus,
        BlockKind::Signum,
        BlockKind::MinMax { op: MinMaxOp::Min, inputs: 3 },
        BlockKind::MinMax { op: MinMaxOp::Max, inputs: 2 },
        BlockKind::Math { func: MathFunc::Sqrt },
        BlockKind::Math { func: MathFunc::Exp },
        BlockKind::Math { func: MathFunc::Square },
        BlockKind::Math { func: MathFunc::Reciprocal },
        BlockKind::Math { func: MathFunc::Floor },
        BlockKind::Math { func: MathFunc::Ceil },
        BlockKind::Math { func: MathFunc::Round },
        BlockKind::Math { func: MathFunc::Mod },
        BlockKind::Math { func: MathFunc::Rem },
        BlockKind::Math { func: MathFunc::Pow },
        BlockKind::Math { func: MathFunc::Atan2 },
        BlockKind::Math { func: MathFunc::Hypot },
        BlockKind::Saturation { lower: -2.0, upper: 3.0 },
        BlockKind::DeadZone { start: -1.0, end: 1.0 },
        BlockKind::Relay {
            on_threshold: 1.0,
            off_threshold: -1.0,
            on_output: 5.0,
            off_output: -5.0,
        },
        BlockKind::Quantizer { interval: 0.75 },
        BlockKind::RateLimiter { rising: 1.5, falling: 2.5 },
        BlockKind::Backlash { width: 2.0, initial: 0.5 },
        BlockKind::CoulombFriction { offset: 0.25, gain: 1.5 },
        BlockKind::Logic { op: LogicOp::And, inputs: 3 },
        BlockKind::Logic { op: LogicOp::Or, inputs: 2 },
        BlockKind::Logic { op: LogicOp::Nand, inputs: 2 },
        BlockKind::Logic { op: LogicOp::Nor, inputs: 3 },
        BlockKind::Logic { op: LogicOp::Xor, inputs: 3 },
        BlockKind::Logic { op: LogicOp::Not, inputs: 1 },
        BlockKind::Relational { op: RelOp::Le },
        BlockKind::Relational { op: RelOp::Ne },
        BlockKind::Compare { op: RelOp::Gt, constant: 1.5 },
        BlockKind::Switch { criterion: SwitchCriterion::GreaterEqual(0.5) },
        BlockKind::Switch { criterion: SwitchCriterion::Greater(0.0) },
        BlockKind::Switch { criterion: SwitchCriterion::NotZero },
        BlockKind::MultiportSwitch { cases: 3 },
        BlockKind::DataTypeConversion { to: DataType::I16 },
        BlockKind::DataTypeConversion { to: DataType::U8 },
        BlockKind::DataTypeConversion { to: DataType::Bool },
        BlockKind::ZeroOrderHold,
        BlockKind::UnitDelay { initial: Value::F64(1.5) },
        BlockKind::Delay { steps: 3, initial: Value::F64(-1.0) },
        BlockKind::Memory { initial: Value::F64(0.0) },
        BlockKind::DiscreteIntegrator {
            gain: 0.5,
            initial: 1.0,
            lower: Some(-2.0),
            upper: Some(4.0),
        },
        BlockKind::DiscreteIntegrator { gain: 1.0, initial: 0.0, lower: None, upper: None },
        BlockKind::EdgeDetect { kind: EdgeKind::Rising },
        BlockKind::EdgeDetect { kind: EdgeKind::Falling },
        BlockKind::EdgeDetect { kind: EdgeKind::Either },
        BlockKind::Lookup1D {
            breakpoints: vec![-1.0, 0.0, 2.0, 5.0],
            values: vec![10.0, 0.0, -4.0, 8.0],
        },
        BlockKind::Lookup2D {
            row_breaks: vec![0.0, 1.0, 2.0],
            col_breaks: vec![-1.0, 1.0],
            values: vec![vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]],
        },
    ]
}

fn interesting_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -10.0f64..10.0,
        2 => prop_oneof![Just(0.0f64), Just(-0.0), Just(1.0), Just(-1.0), Just(0.5)],
        1 => -1e6f64..1e6,
        1 => prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(1e300f64),
            Just(-1e300f64),
        ],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every scalar block kind behaves identically in both engines over
    /// randomized multi-step input sequences (including NaN/Inf extremes).
    #[test]
    fn scalar_blocks_are_equivalent(
        seed_inputs in prop::collection::vec(
            prop::collection::vec(interesting_f64(), 8),
            4..10,
        ),
    ) {
        for kind in all_scalar_kinds() {
            let model = probe(kind.clone());
            let n = model.num_inports();
            let steps: Vec<Vec<Value>> = seed_inputs
                .iter()
                .map(|row| row.iter().take(n).map(|&x| Value::F64(x)).collect())
                .collect();
            assert_equivalent(&model, &steps);
        }
    }

    /// Typed integer paths saturate identically.
    #[test]
    fn integer_paths_are_equivalent(
        xs in prop::collection::vec(-300i32..300, 4..12),
        gain in -5.0f64..5.0,
    ) {
        let mut b = ModelBuilder::new("ints");
        let u = b.inport("u", DataType::I8);
        let g = b.add("g", BlockKind::Gain { gain });
        let dtc = b.add("dtc", BlockKind::DataTypeConversion { to: DataType::U16 });
        let y = b.outport("y");
        b.wire(u, g);
        b.wire(g, dtc);
        b.wire(dtc, y);
        let model = b.finish().unwrap();
        let steps: Vec<Vec<Value>> = xs
            .iter()
            .map(|&x| vec![Value::F64(f64::from(x))])
            .collect();
        assert_equivalent(&model, &steps);
    }

    /// A stateful composite (accumulator + saturation + relay feedback)
    /// stays equivalent across long sequences.
    #[test]
    fn stateful_composite_is_equivalent(
        xs in prop::collection::vec(interesting_f64(), 8..40),
    ) {
        let mut b = ModelBuilder::new("composite");
        let u = b.inport("u", DataType::F64);
        let sum = b.add("sum", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
        let dly = b.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
        let sat = b.add("sat", BlockKind::Saturation { lower: -50.0, upper: 50.0 });
        let relay = b.add("relay", BlockKind::Relay {
            on_threshold: 20.0,
            off_threshold: -20.0,
            on_output: 1.0,
            off_output: 0.0,
        });
        let y = b.outport("y");
        let ry = b.outport("relay_out");
        b.connect(u, 0, sum, 0);
        b.connect(dly, 0, sum, 1);
        b.connect(sum, 0, sat, 0);
        b.connect(sat, 0, dly, 0);
        b.connect(sat, 0, relay, 0);
        b.connect(sat, 0, y, 0);
        b.connect(relay, 0, ry, 0);
        let model = b.finish().unwrap();
        let steps: Vec<Vec<Value>> = xs.iter().map(|&x| vec![Value::F64(x)]).collect();
        assert_equivalent(&model, &steps);
    }

    /// MATLAB Function blocks (mode-d nested ifs, typed outputs) match.
    #[test]
    fn matlab_function_is_equivalent(
        xs in prop::collection::vec(interesting_f64(), 4..20),
    ) {
        let function = FunctionDef::parse(
            &[("u", DataType::F64)],
            &[("y", DataType::I16), ("zone", DataType::U8)],
            "zone = 0; \
             if (u > 100) { y = 100; zone = 1; } \
             else if (u < -100) { y = -100; zone = 2; } \
             else { t = u * 2; if (t > 50 && t < 150) { y = t + 1; } else { y = t; } }",
        )
        .unwrap();
        let mut b = ModelBuilder::new("mf");
        let u = b.inport("u", DataType::F64);
        let f = b.add("f", BlockKind::MatlabFunction { function });
        let y = b.outport("y");
        let z = b.outport("zone");
        b.wire(u, f);
        b.connect(f, 0, y, 0);
        b.connect(f, 1, z, 0);
        let model = b.finish().unwrap();
        let steps: Vec<Vec<Value>> = xs.iter().map(|&x| vec![Value::F64(x)]).collect();
        assert_equivalent(&model, &steps);
    }

    /// Charts (state dispatch, guards, actions, typed variables) match.
    #[test]
    fn chart_is_equivalent(
        gos in prop::collection::vec(any::<bool>(), 8..40),
        loads in prop::collection::vec(-20.0f64..20.0, 8..40),
    ) {
        let mut chart = Chart::new();
        chart.inputs.push(("go".into(), DataType::Bool));
        chart.inputs.push(("load".into(), DataType::F64));
        chart.outputs.push(("mode".into(), DataType::I32));
        chart.outputs.push(("acc".into(), DataType::F64));
        chart.variables.push(("ticks".into(), DataType::I32, Value::I32(0)));
        let idle = chart.add_state(
            State::new("Idle").with_entry(parse_stmts("mode = 0;").unwrap()),
        );
        let work = chart.add_state(
            State::new("Work")
                .with_entry(parse_stmts("mode = 1; ticks = 0;").unwrap())
                .with_during(parse_stmts("ticks = ticks + 1; acc = acc + load;").unwrap()),
        );
        let cool = chart.add_state(
            State::new("Cool")
                .with_entry(parse_stmts("mode = 2;").unwrap())
                .with_during(parse_stmts("acc = acc * 0.5;").unwrap()),
        );
        chart.initial = idle;
        chart.add_transition(Transition::new(idle, work, parse_expr("go").unwrap()));
        chart.add_transition(
            Transition::new(work, cool, parse_expr("ticks >= 3 || acc > 30").unwrap())
                .with_action(parse_stmts("ticks = 0;").unwrap()),
        );
        chart.add_transition(Transition::new(cool, idle, parse_expr("acc < 1 && !go").unwrap()));

        let mut b = ModelBuilder::new("chart");
        let go = b.inport("go", DataType::Bool);
        let load = b.inport("load", DataType::F64);
        let c = b.add("ctl", BlockKind::Chart { chart });
        let mode = b.outport("mode");
        let acc = b.outport("acc");
        b.connect(go, 0, c, 0);
        b.connect(load, 0, c, 1);
        b.connect(c, 0, mode, 0);
        b.connect(c, 1, acc, 0);
        let model = b.finish().unwrap();
        let n = gos.len().min(loads.len());
        let steps: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Bool(gos[i]), Value::F64(loads[i])])
            .collect();
        assert_equivalent(&model, &steps);
    }

    /// Conditional subsystems (if/else action + merge + enabled + triggered)
    /// match, including held outputs and frozen inner state.
    #[test]
    fn conditional_subsystems_are_equivalent(
        xs in prop::collection::vec(interesting_f64(), 8..40),
        enables in prop::collection::vec(any::<bool>(), 8..40),
    ) {
        fn gain_action(name: &str, gain: f64) -> BlockKind {
            let mut b = ModelBuilder::new(name);
            let u = b.inport("u", DataType::F64);
            let g = b.add("g", BlockKind::Gain { gain });
            let y = b.outport("y");
            b.wire(u, g);
            b.wire(g, y);
            BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
        }
        fn accumulator() -> Model {
            let mut b = ModelBuilder::new("acc");
            let u = b.inport("u", DataType::F64);
            let sum = b.add("sum", BlockKind::Sum { signs: vec![InputSign::Plus; 2] });
            let dly = b.add("dly", BlockKind::UnitDelay { initial: Value::F64(0.0) });
            let y = b.outport("y");
            b.connect(u, 0, sum, 0);
            b.connect(dly, 0, sum, 1);
            b.connect(sum, 0, dly, 0);
            b.connect(sum, 0, y, 0);
            b.finish().unwrap()
        }

        let mut b = ModelBuilder::new("cond");
        let u = b.inport("u", DataType::F64);
        let en = b.inport("en", DataType::Bool);
        let iff = b.add("if", BlockKind::If {
            num_inputs: 1,
            conditions: vec![parse_expr("u1 > 0").unwrap()],
            has_else: true,
        });
        let pos = b.add("pos", gain_action("pos_m", 2.0));
        let neg = b.add("neg", gain_action("neg_m", -1.0));
        let merge = b.add("merge", BlockKind::Merge { inputs: 2 });
        let esub = b.add("esub", BlockKind::EnabledSubsystem {
            model: Box::new(accumulator()),
        });
        let tsub = b.add("tsub", BlockKind::TriggeredSubsystem {
            model: Box::new(accumulator()),
            edge: EdgeKind::Rising,
        });
        let m_out = b.outport("merged");
        let e_out = b.outport("enabled_acc");
        let t_out = b.outport("triggered_acc");
        b.connect(u, 0, iff, 0);
        b.connect(iff, 0, pos, 0);
        b.connect(iff, 1, neg, 0);
        b.connect(u, 0, pos, 1);
        b.connect(u, 0, neg, 1);
        b.connect(pos, 0, merge, 0);
        b.connect(neg, 0, merge, 1);
        b.connect(en, 0, esub, 0);
        b.connect(u, 0, esub, 1);
        b.connect(en, 0, tsub, 0);
        b.connect(u, 0, tsub, 1);
        b.connect(merge, 0, m_out, 0);
        b.connect(esub, 0, e_out, 0);
        b.connect(tsub, 0, t_out, 0);
        let model = b.finish().unwrap();
        let n = xs.len().min(enables.len());
        let steps: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::F64(xs[i]), Value::Bool(enables[i])])
            .collect();
        assert_equivalent(&model, &steps);
    }

    /// SwitchCase dispatch + counters match.
    #[test]
    fn switch_case_and_counters_are_equivalent(
        sels in prop::collection::vec(-3i32..8, 6..30),
    ) {
        fn const_action(name: &str, value: f64) -> BlockKind {
            let mut b = ModelBuilder::new(name);
            let c = b.constant("c", value);
            let y = b.outport("y");
            b.wire(c, y);
            BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
        }
        let mut b = ModelBuilder::new("sc");
        let sel = b.inport("sel", DataType::I32);
        let sc = b.add("sc", BlockKind::SwitchCase {
            cases: vec![vec![0], vec![1, 2], vec![5]],
            has_default: true,
        });
        let a0 = b.add("a0", const_action("m0", 10.0));
        let a1 = b.add("a1", const_action("m1", 20.0));
        let a2 = b.add("a2", const_action("m2", 30.0));
        let ad = b.add("ad", const_action("md", 99.0));
        let merge = b.add("merge", BlockKind::Merge { inputs: 4 });
        let cnt = b.add("cnt", BlockKind::CounterLimited { limit: 3 });
        let fcnt = b.add("fcnt", BlockKind::CounterFreeRunning { bits: 3 });
        let y = b.outport("y");
        let c_out = b.outport("count");
        let f_out = b.outport("fcount");
        b.wire(sel, sc);
        for (i, a) in [a0, a1, a2, ad].into_iter().enumerate() {
            b.connect(sc, i, a, 0);
            b.connect(a, 0, merge, i);
        }
        b.wire(merge, y);
        b.wire(cnt, c_out);
        b.wire(fcnt, f_out);
        let model = b.finish().unwrap();
        let steps: Vec<Vec<Value>> =
            sels.iter().map(|&s| vec![Value::I32(s)]).collect();
        assert_equivalent(&model, &steps);
    }
}

#[test]
fn nested_virtual_subsystems_are_equivalent() {
    let mut inner2 = ModelBuilder::new("inner2");
    let u = inner2.inport("u", DataType::F64);
    let g = inner2.add("g", BlockKind::Gain { gain: 3.0 });
    let y = inner2.outport("y");
    inner2.wire(u, g);
    inner2.wire(g, y);
    let inner2 = inner2.finish().unwrap();

    let mut inner1 = ModelBuilder::new("inner1");
    let u = inner1.inport("u", DataType::F64);
    let sub = inner1.add("sub2", BlockKind::Subsystem { model: Box::new(inner2) });
    let bias = inner1.add("bias", BlockKind::Bias { bias: 1.0 });
    let y = inner1.outport("y");
    inner1.wire(u, sub);
    inner1.wire(sub, bias);
    inner1.wire(bias, y);
    let inner1 = inner1.finish().unwrap();

    let mut b = ModelBuilder::new("outer");
    let u = b.inport("u", DataType::F64);
    let sub = b.add("sub1", BlockKind::Subsystem { model: Box::new(inner1) });
    let y = b.outport("y");
    b.wire(u, sub);
    b.wire(sub, y);
    let model = b.finish().unwrap();

    let steps: Vec<Vec<Value>> = (-5..5).map(|i| vec![Value::F64(f64::from(i) * 0.5)]).collect();
    assert_equivalent(&model, &steps);
}

#[test]
fn if_block_multi_condition_is_equivalent() {
    let mut b = ModelBuilder::new("ifm");
    let a = b.inport("a", DataType::F64);
    let c = b.inport("c", DataType::F64);
    let iff = b.add(
        "if",
        BlockKind::If {
            num_inputs: 2,
            conditions: vec![
                parse_expr("u1 > 2 && u2 < 0").unwrap(),
                parse_expr("u1 == u2").unwrap(),
            ],
            has_else: true,
        },
    );
    fn const_action(name: &str, value: f64) -> BlockKind {
        let mut b = ModelBuilder::new(name);
        let cst = b.constant("c", value);
        let y = b.outport("y");
        b.wire(cst, y);
        BlockKind::ActionSubsystem { model: Box::new(b.finish().unwrap()) }
    }
    let a0 = b.add("a0", const_action("m0", 1.0));
    let a1 = b.add("a1", const_action("m1", 2.0));
    let a2 = b.add("a2", const_action("m2", 3.0));
    let merge = b.add("merge", BlockKind::Merge { inputs: 3 });
    let y = b.outport("y");
    b.connect(a, 0, iff, 0);
    b.connect(c, 0, iff, 1);
    for (i, act) in [a0, a1, a2].into_iter().enumerate() {
        b.connect(iff, i, act, 0);
        b.connect(act, 0, merge, i);
    }
    b.wire(merge, y);
    let model = b.finish().unwrap();
    let steps: Vec<Vec<Value>> = vec![
        vec![Value::F64(3.0), Value::F64(-1.0)],          // cond 0
        vec![Value::F64(2.0), Value::F64(2.0)],           // cond 1
        vec![Value::F64(0.0), Value::F64(5.0)],           // else
        vec![Value::F64(f64::NAN), Value::F64(f64::NAN)], // else (NaN != NaN)
    ];
    assert_equivalent(&model, &steps);
}
