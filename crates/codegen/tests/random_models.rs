//! Property test: *randomly generated* layered models behave identically in
//! the compiled VM and the interpretive simulator — broad structural
//! coverage beyond the hand-written differential cases.

use cftcg_codegen::{compile, BatchExecutor, Executor};
use cftcg_coverage::{NullLaneRecorder, NullRecorder};
use cftcg_model::{
    BlockKind, DataType, EdgeKind, InputSign, LogicOp, MathFunc, MinMaxOp, Model, ModelBuilder,
    ProductOp, RelOp, SwitchCriterion, Value,
};
use cftcg_sim::Simulator;
use proptest::prelude::*;

/// A recipe for one random block: picked params only (wiring is derived).
#[derive(Debug, Clone)]
enum Recipe {
    Sum(usize),
    Product(usize),
    Gain(f64),
    Bias(f64),
    Abs,
    Neg,
    Signum,
    MinMax(bool, usize),
    Math(MathFunc),
    Saturation(f64, f64),
    DeadZone(f64, f64),
    Quantizer(f64),
    Relay(f64, f64),
    RateLimiter(f64, f64),
    Backlash(f64),
    Coulomb(f64, f64),
    Logic(LogicOp, usize),
    Relational(RelOp),
    Compare(RelOp, f64),
    Switch(SwitchCriterion),
    Cast(DataType),
    UnitDelay(f64),
    Delay(usize, f64),
    Integrator(f64, f64),
    EdgeDetect(EdgeKind),
    Lookup(Vec<f64>, Vec<f64>),
    CounterLimited(u32),
}

impl Recipe {
    fn kind(&self) -> BlockKind {
        match self.clone() {
            Recipe::Sum(n) => BlockKind::Sum {
                signs: (0..n)
                    .map(|i| if i % 2 == 0 { InputSign::Plus } else { InputSign::Minus })
                    .collect(),
            },
            Recipe::Product(n) => BlockKind::Product {
                ops: (0..n)
                    .map(|i| if i % 3 == 2 { ProductOp::Div } else { ProductOp::Mul })
                    .collect(),
            },
            Recipe::Gain(g) => BlockKind::Gain { gain: g },
            Recipe::Bias(b) => BlockKind::Bias { bias: b },
            Recipe::Abs => BlockKind::Abs,
            Recipe::Neg => BlockKind::UnaryMinus,
            Recipe::Signum => BlockKind::Signum,
            Recipe::MinMax(min, n) => {
                BlockKind::MinMax { op: if min { MinMaxOp::Min } else { MinMaxOp::Max }, inputs: n }
            }
            Recipe::Math(f) => BlockKind::Math { func: f },
            Recipe::Saturation(a, b) => BlockKind::Saturation { lower: a.min(b), upper: a.max(b) },
            Recipe::DeadZone(a, b) => BlockKind::DeadZone { start: a.min(b), end: a.max(b) },
            Recipe::Quantizer(q) => BlockKind::Quantizer { interval: q.abs().max(0.1) },
            Recipe::Relay(a, b) => BlockKind::Relay {
                on_threshold: a.max(b),
                off_threshold: a.min(b),
                on_output: 1.0,
                off_output: -1.0,
            },
            Recipe::RateLimiter(r, f) => {
                BlockKind::RateLimiter { rising: r.abs(), falling: f.abs() }
            }
            Recipe::Backlash(w) => BlockKind::Backlash { width: w.abs(), initial: 0.0 },
            Recipe::Coulomb(o, g) => BlockKind::CoulombFriction { offset: o, gain: g },
            Recipe::Logic(op, n) => BlockKind::Logic { op, inputs: n },
            Recipe::Relational(op) => BlockKind::Relational { op },
            Recipe::Compare(op, c) => BlockKind::Compare { op, constant: c },
            Recipe::Switch(c) => BlockKind::Switch { criterion: c },
            Recipe::Cast(ty) => BlockKind::DataTypeConversion { to: ty },
            Recipe::UnitDelay(x) => BlockKind::UnitDelay { initial: Value::F64(x) },
            Recipe::Delay(n, x) => BlockKind::Delay { steps: n, initial: Value::F64(x) },
            Recipe::Integrator(g, lim) => BlockKind::DiscreteIntegrator {
                gain: g,
                initial: 0.0,
                lower: Some(-lim.abs() - 1.0),
                upper: Some(lim.abs() + 1.0),
            },
            Recipe::EdgeDetect(k) => BlockKind::EdgeDetect { kind: k },
            Recipe::Lookup(mut breaks, values) => {
                breaks.sort_by(f64::total_cmp);
                breaks.dedup();
                let n = breaks.len().min(values.len()).max(2);
                let mut breaks: Vec<f64> = breaks.into_iter().take(n).collect();
                while breaks.len() < 2 {
                    breaks.push(breaks.last().copied().unwrap_or(0.0) + 1.0);
                }
                // Enforce strict increase.
                for i in 1..breaks.len() {
                    if breaks[i] <= breaks[i - 1] {
                        breaks[i] = breaks[i - 1] + 1.0;
                    }
                }
                let values = values.into_iter().take(breaks.len()).collect::<Vec<_>>();
                let mut values = values;
                while values.len() < breaks.len() {
                    values.push(0.0);
                }
                BlockKind::Lookup1D { breakpoints: breaks, values }
            }
            Recipe::CounterLimited(limit) => BlockKind::CounterLimited { limit: limit % 20 },
        }
    }
}

fn small() -> impl Strategy<Value = f64> {
    -20.0f64..20.0
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (2usize..4).prop_map(Recipe::Sum),
        (2usize..4).prop_map(Recipe::Product),
        small().prop_map(Recipe::Gain),
        small().prop_map(Recipe::Bias),
        Just(Recipe::Abs),
        Just(Recipe::Neg),
        Just(Recipe::Signum),
        (any::<bool>(), 2usize..4).prop_map(|(m, n)| Recipe::MinMax(m, n)),
        prop_oneof![
            Just(MathFunc::Sqrt),
            Just(MathFunc::Square),
            Just(MathFunc::Floor),
            Just(MathFunc::Ceil),
            Just(MathFunc::Round),
            Just(MathFunc::Rem),
            Just(MathFunc::Mod),
            Just(MathFunc::Hypot),
        ]
        .prop_map(Recipe::Math),
        (small(), small()).prop_map(|(a, b)| Recipe::Saturation(a, b)),
        (small(), small()).prop_map(|(a, b)| Recipe::DeadZone(a, b)),
        small().prop_map(Recipe::Quantizer),
        (small(), small()).prop_map(|(a, b)| Recipe::Relay(a, b)),
        (small(), small()).prop_map(|(a, b)| Recipe::RateLimiter(a, b)),
        small().prop_map(Recipe::Backlash),
        (small(), small()).prop_map(|(a, b)| Recipe::Coulomb(a, b)),
        (
            prop_oneof![
                Just(LogicOp::And),
                Just(LogicOp::Or),
                Just(LogicOp::Nand),
                Just(LogicOp::Nor),
                Just(LogicOp::Xor),
            ],
            2usize..4
        )
            .prop_map(|(op, n)| Recipe::Logic(op, n)),
        prop_oneof![
            Just(RelOp::Eq),
            Just(RelOp::Ne),
            Just(RelOp::Lt),
            Just(RelOp::Le),
            Just(RelOp::Gt),
            Just(RelOp::Ge),
        ]
        .prop_map(Recipe::Relational),
        (prop_oneof![Just(RelOp::Lt), Just(RelOp::Ge), Just(RelOp::Eq)], small())
            .prop_map(|(op, c)| Recipe::Compare(op, c)),
        prop_oneof![
            small().prop_map(SwitchCriterion::GreaterEqual),
            small().prop_map(SwitchCriterion::Greater),
            Just(SwitchCriterion::NotZero),
        ]
        .prop_map(Recipe::Switch),
        prop_oneof![
            Just(DataType::I8),
            Just(DataType::U8),
            Just(DataType::I16),
            Just(DataType::U16),
            Just(DataType::I32),
            Just(DataType::F32),
            Just(DataType::F64),
        ]
        .prop_map(Recipe::Cast),
        small().prop_map(Recipe::UnitDelay),
        ((1usize..4), small()).prop_map(|(n, x)| Recipe::Delay(n, x)),
        (small(), small()).prop_map(|(g, l)| Recipe::Integrator(g / 10.0, l)),
        prop_oneof![Just(EdgeKind::Rising), Just(EdgeKind::Falling), Just(EdgeKind::Either)]
            .prop_map(Recipe::EdgeDetect),
        (prop::collection::vec(small(), 2..5), prop::collection::vec(small(), 2..5))
            .prop_map(|(b, v)| Recipe::Lookup(b, v)),
        any::<u32>().prop_map(Recipe::CounterLimited),
    ]
}

/// Builds a random layered model: inports, then blocks wired to arbitrary
/// earlier outputs (delays may also close feedback loops legally), then one
/// outport per sink-ish signal.
fn build_model(recipes: &[Recipe], wiring: &[usize], input_types: &[DataType]) -> Model {
    let mut b = ModelBuilder::new("random");
    let mut sources = Vec::new();
    for (i, &ty) in input_types.iter().enumerate() {
        sources.push(b.inport(format!("in{i}"), ty));
    }
    let mut wire_iter = wiring.iter().copied().cycle();
    for (i, recipe) in recipes.iter().enumerate() {
        let kind = recipe.kind();
        let n_in = kind.num_inputs();
        let blk = b.add(format!("blk{i}"), kind);
        for port in 0..n_in {
            let pick = wire_iter.next().expect("cycle is infinite") % sources.len();
            b.connect(sources[pick], 0, blk, port);
        }
        sources.push(blk);
    }
    // One outport on the last few signals so everything downstream matters.
    let takeable = sources.len().min(3);
    let tail: Vec<_> = sources[sources.len() - takeable..].to_vec();
    for (i, src) in tail.into_iter().enumerate() {
        let y = b.outport(format!("out{i}"));
        b.connect(src, 0, y, 0);
    }
    b.finish_unchecked()
}

fn values_eq(a: &Value, b: &Value) -> bool {
    let (x, y) = (a.as_f64(), b.as_f64());
    a.data_type() == b.data_type() && ((x.is_nan() && y.is_nan()) || x == y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_models_are_engine_equivalent(
        recipes in prop::collection::vec(arb_recipe(), 1..14),
        wiring in prop::collection::vec(0usize..1000, 8..40),
        input_types in prop::collection::vec(
            prop_oneof![
                Just(DataType::Bool),
                Just(DataType::I8),
                Just(DataType::I16),
                Just(DataType::I32),
                Just(DataType::F32),
                Just(DataType::F64),
            ],
            1..4,
        ),
        steps in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 4),
            3..12,
        ),
    ) {
        let model = build_model(&recipes, &wiring, &input_types);
        // Random wiring can produce invalid models (type mismatches are not
        // possible here, but unconnected nothing... everything is wired);
        // validation failures are simply skipped.
        if model.validate().is_err() {
            return Ok(());
        }
        let compiled = compile(&model).expect("validated model compiles");
        let mut sim = Simulator::new(&model).expect("validated model simulates");
        let mut exec = Executor::new(&compiled);
        let mut jit = Executor::new_jit(&compiled);
        let jit_live = jit.engine() == cftcg_codegen::Engine::Jit;
        let mut rec = NullRecorder;
        let mut actual = Vec::new();
        let mut jit_out = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (k, row) in steps.iter().enumerate() {
            let inputs: Vec<Value> = input_types
                .iter()
                .zip(row)
                .map(|(&ty, &x)| Value::from_f64(x, ty))
                .collect();
            let expected = sim.step(&inputs).expect("sim step");
            rows.push(inputs.clone());
            exec.step_into(&inputs, &mut actual, &mut rec);
            for (port, (e, a)) in expected.iter().zip(&actual).enumerate() {
                prop_assert!(
                    values_eq(e, a),
                    "step {k} output {port}: sim {e:?} vs compiled {a:?}"
                );
            }
            if jit_live {
                jit.step_into(&inputs, &mut jit_out, &mut rec);
                for (port, (f, j)) in actual.iter().zip(&jit_out).enumerate() {
                    prop_assert!(
                        f.as_f64().to_bits() == j.as_f64().to_bits(),
                        "step {k} output {port}: flat {f:?} vs jit {j:?}"
                    );
                }
            }
        }

        // Batch tier: four lanes running rotations of the same case must
        // each match a fresh scalar flat run bit for bit — different lane
        // contents force real divergence through the masked path.
        const WIDTH: usize = 4;
        let layout = compiled.layout();
        let tuple = layout.tuple_size().max(1);
        let lane_bytes: Vec<Vec<u8>> = (0..WIDTH)
            .map(|lane| {
                let mut bytes = Vec::new();
                for k in 0..rows.len() {
                    bytes.extend_from_slice(&layout.encode(&rows[(k + lane) % rows.len()]));
                }
                bytes
            })
            .collect();
        let expected_lanes: Vec<Vec<Vec<u64>>> = lane_bytes
            .iter()
            .map(|bytes| {
                exec.reset();
                layout
                    .split(bytes)
                    .map(|tup| {
                        exec.step_tuple(tup, &mut rec);
                        exec.outputs().iter().map(|v| v.as_f64().to_bits()).collect()
                    })
                    .collect()
            })
            .collect();
        let mut batch = BatchExecutor::new(&compiled, WIDTH);
        batch.begin();
        for t in 0..rows.len() {
            for (lane, bytes) in lane_bytes.iter().enumerate() {
                batch.load_tuple(lane, &bytes[t * tuple..(t + 1) * tuple]);
            }
            batch.step_tick(&mut NullLaneRecorder);
            for (lane, expected) in expected_lanes.iter().enumerate() {
                let out: Vec<u64> =
                    batch.lane_outputs(lane).iter().map(|v| v.as_f64().to_bits()).collect();
                prop_assert!(
                    expected[t] == out,
                    "tick {t} lane {lane}: batch {out:?} vs flat {:?}",
                    expected[t]
                );
            }
        }
    }

    /// Random valid models also round-trip through XML to an equal model.
    #[test]
    fn random_models_roundtrip_xml(
        recipes in prop::collection::vec(arb_recipe(), 1..10),
        wiring in prop::collection::vec(0usize..1000, 8..30),
    ) {
        let model = build_model(&recipes, &wiring, &[DataType::F64, DataType::I16]);
        let xml = cftcg_model::save_model(&model);
        let reloaded = cftcg_model::load_model(&xml)
            .unwrap_or_else(|e| panic!("reload failed: {e}"));
        prop_assert_eq!(reloaded, model);
    }
}
