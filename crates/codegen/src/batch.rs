//! The batched structure-of-arrays execution tier: N test cases per pass
//! through the flat program.
//!
//! The single-case engines pay the full dispatch/jump cost of every flat op
//! for every case. This tier transposes a batch of cases into
//! structure-of-arrays buffers — `regs[reg * width + lane]` instead of
//! `regs[reg]` per case — and walks the **batch program variant**
//! ([`crate::CompiledModel`]'s third flat program: condition/decision probes
//! stripped, branch probes, asserts, and relational compares kept) once per
//! tick for the whole batch. Straight-line spans become tight per-row loops
//! the compiler autovectorizes; one op dispatch is amortized over `width`
//! cases.
//!
//! # Divergence
//!
//! Lanes agree on control flow far more often than not (the models are
//! mode-switchy, not data-parallel-hostile; `flat_histo --divergence`
//! measures this). The interpreter therefore runs in two modes:
//!
//! * **converged** — one shared `pc`; pure ops execute every lane
//!   (including retired lanes: execute-and-discard is safe because every
//!   op is total over `f64`), probe events fire for live lanes only, and
//!   conditional jumps poll the live lanes — unanimous verdicts keep the
//!   batch converged;
//! * **diverged** — on a mixed verdict each live lane gets a private
//!   resume `pc` and a `#[cold]` masked-span scan (`masked_span`) walks
//!   forward, dispatching each op position once: the value is computed for
//!   every lane (execute-and-discard again) and committed through
//!   branchless masked row writes, a select keeping inactive lanes' old
//!   values. All jumps are forward, so the scan reconverges by
//!   construction (at latest at the end of the program), and the batch
//!   drops back to converged mode there.
//!
//! # Event contract
//!
//! Per lane, the [`LaneRecorder`] sees exactly the branch / compare /
//! assertion event sequence the single-case flat program would produce for
//! that case. Cross-lane interleaving is unspecified (converged ops fire
//! lane 0 before lane 1; diverged spans fire in scan order) — batched
//! consumers keep per-lane accounting, so only the per-lane order matters.
//! Condition and MCDC decision events never fire: cases that earn coverage
//! are replayed on the single-case engines with a full recorder, which is
//! the batch tier's winner-replay contract.

use cftcg_coverage::{AssertionId, BranchId, LaneRecorder};
use cftcg_model::interp::{lookup1d, lookup2d};
use cftcg_model::Value;

use crate::compile::{CompiledModel, Lookup2Table};
use crate::flatten::{FlatOp, MAX_INLINE};
use crate::ir::{BinopCode, UnopCode};

/// Default batch width: eight lanes fill an AVX-512 register of `f64`s and
/// keep two AVX2 rows in flight, and measured throughput on the bundled
/// benchmarks plateaus here.
pub const DEFAULT_BATCH_WIDTH: usize = 8;

/// Maximum supported batch width (per-op jump-target scratch is a fixed
/// stack array of this size).
pub const MAX_BATCH_WIDTH: usize = 64;

/// Execution counters for one [`BatchExecutor`] session — the data behind
/// the mask-vs-scalar-fallback decision and the `flat_histo --divergence`
/// report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batch ticks executed (one per [`BatchExecutor::step_tick`] with any
    /// live lane).
    pub ticks: u64,
    /// Ops dispatched in converged mode — each amortized over the whole
    /// batch.
    pub converged_ops: u64,
    /// Per-lane scalar op executions spent in diverged mode.
    pub diverged_ops: u64,
    /// Converged→diverged transitions (mixed jump verdicts).
    pub divergences: u64,
    /// Diverged-mode op positions dispatched with at least one active lane.
    pub masked_dispatches: u64,
    /// Diverged-mode op positions scanned with no lane parked on them.
    pub skipped_dispatches: u64,
}

impl BatchStats {
    /// Fraction of per-lane op executions that ran on the scalar diverged
    /// path rather than a converged row op, for a batch of `width` lanes.
    /// The number that justifies (or indicts) the divergence strategy.
    pub fn scalar_lane_fraction(&self, width: usize) -> f64 {
        let converged_lanes = self.converged_ops.saturating_mul(width as u64);
        let total = converged_lanes + self.diverged_ops;
        if total == 0 {
            0.0
        } else {
            self.diverged_ops as f64 / total as f64
        }
    }
}

/// A batched execution session over one compiled model: `width` lanes of
/// registers, state, and ports in structure-of-arrays layout, stepping the
/// batch program variant one tick at a time.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_codegen::{compile, BatchExecutor};
/// use cftcg_coverage::LaneBitmap;
/// use cftcg_model::{BlockKind, DataType, ModelBuilder};
///
/// let mut b = ModelBuilder::new("clip");
/// let u = b.inport("u", DataType::F64);
/// let sat = b.add("sat", BlockKind::Saturation { lower: 0.0, upper: 1.0 });
/// let y = b.outport("y");
/// b.wire(u, sat);
/// b.wire(sat, y);
/// let model = b.finish()?;
///
/// let compiled = compile(&model)?;
/// let mut batch = BatchExecutor::new(&compiled, 4);
/// let mut lanes = LaneBitmap::new(compiled.map().branch_count(), 4);
/// let cases: Vec<Vec<u8>> = (0..4u8)
///     .map(|i| vec![i; compiled.layout().tuple_size() * 3])
///     .collect();
/// let refs: Vec<&[u8]> = cases.iter().map(|c| c.as_slice()).collect();
/// let iterations = batch.run_cases(&refs, usize::MAX, &mut lanes);
/// assert_eq!(iterations, vec![3, 3, 3, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchExecutor<'c> {
    compiled: &'c CompiledModel,
    width: usize,
    /// Canonical per-lane register file (zeros plus the batch program's
    /// hoisted constants): every case starts from this exact file, so lane
    /// results are a pure function of the case bytes — no cross-case
    /// register residue, matching the single-case engines' per-case reset.
    reg_canon: Vec<f64>,
    regs: AlignedBuf,
    state: AlignedBuf,
    inputs: AlignedBuf,
    outputs: AlignedBuf,
    live: Vec<bool>,
    resume: Vec<usize>,
    stats: BatchStats,
}

/// One cache line of lanes — the allocation granule of [`AlignedBuf`].
#[repr(align(64))]
#[derive(Debug, Clone, Copy)]
struct LaneChunk(#[allow(dead_code)] [f64; 8]);

/// A 64-byte-aligned `f64` buffer for the lane-strided register, state,
/// input, and output files. `Vec<f64>` only guarantees 8-byte alignment,
/// which leaves vector-width row accesses straddling cache lines and
/// defeats store→load forwarding between an op that writes a row and the
/// next op that reads it — a per-dispatch latency tax on the whole batch
/// loop. Chunked allocation pins every power-of-two row base to (at
/// least) its row's natural alignment.
#[derive(Debug, Clone)]
struct AlignedBuf {
    chunks: Vec<LaneChunk>,
    len: usize,
}

impl AlignedBuf {
    fn zeroed(len: usize) -> Self {
        AlignedBuf { chunks: vec![LaneChunk([0.0; 8]); len.div_ceil(8)], len }
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [f64];

    fn deref(&self) -> &[f64] {
        // SAFETY: `chunks` is a contiguous array of `[f64; 8]` with no
        // padding (align 64 == size 64), so its allocation is a valid
        // `[f64]` of `chunks.len() * 8 >= len` elements.
        unsafe { std::slice::from_raw_parts(self.chunks.as_ptr().cast::<f64>(), self.len) }
    }
}

impl std::ops::DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [f64] {
        // SAFETY: as in `deref`.
        unsafe { std::slice::from_raw_parts_mut(self.chunks.as_mut_ptr().cast::<f64>(), self.len) }
    }
}

impl<'c> BatchExecutor<'c> {
    /// Creates a batch session of `width` lanes.
    ///
    /// # Panics
    ///
    /// Panics when `width` is zero or exceeds [`MAX_BATCH_WIDTH`].
    pub fn new(compiled: &'c CompiledModel, width: usize) -> Self {
        assert!(
            (1..=MAX_BATCH_WIDTH).contains(&width),
            "batch width must be in 1..={MAX_BATCH_WIDTH}, got {width}"
        );
        let mut reg_canon = vec![0.0; compiled.num_regs];
        for &(r, v) in &compiled.flat_batch.reg_init {
            reg_canon[r as usize] = v;
        }
        BatchExecutor {
            width,
            regs: AlignedBuf::zeroed(compiled.num_regs * width),
            state: AlignedBuf::zeroed(compiled.state_init.len() * width),
            inputs: AlignedBuf::zeroed(compiled.input_types.len() * width),
            outputs: AlignedBuf::zeroed(compiled.output_types.len() * width),
            live: vec![false; width],
            resume: vec![0; width],
            reg_canon,
            compiled,
            stats: BatchStats::default(),
        }
    }

    /// The compiled model this session runs.
    pub fn compiled(&self) -> &CompiledModel {
        self.compiled
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Execution counters accumulated since construction (or the last
    /// [`BatchExecutor::reset_stats`]).
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Clears the execution counters.
    pub fn reset_stats(&mut self) {
        self.stats = BatchStats::default();
    }

    /// Resets every lane to initial conditions — `Model_init()` across the
    /// batch — and marks all lanes retired until [`BatchExecutor::load_tuple`]
    /// revives them.
    pub fn begin(&mut self) {
        let w = self.width;
        for (r, &v) in self.reg_canon.iter().enumerate() {
            self.regs[r * w..(r + 1) * w].fill(v);
        }
        for (s, &v) in self.compiled.state_init.iter().enumerate() {
            self.state[s * w..(s + 1) * w].fill(v);
        }
        self.inputs.fill(0.0);
        self.outputs.fill(0.0);
        self.live.fill(false);
    }

    /// Loads one input tuple into `lane` and marks it live for the next
    /// tick. Call once per live lane before each [`BatchExecutor::step_tick`].
    ///
    /// # Panics
    ///
    /// Panics when `tuple` is shorter than the layout's tuple size or
    /// `lane` is out of range.
    pub fn load_tuple(&mut self, lane: usize, tuple: &[u8]) {
        assert!(lane < self.width, "lane {lane} out of range for width {}", self.width);
        let compiled: &'c CompiledModel = self.compiled;
        let w = self.width;
        for (i, field) in compiled.layout().fields().iter().enumerate() {
            let v = Value::from_le_bytes(&tuple[field.offset..], field.dtype);
            self.inputs[i * w + lane] = v.as_f64();
        }
        self.live[lane] = true;
    }

    /// Marks `lane` retired: its case ran out of tuples. Retired lanes stop
    /// firing events and voting on control flow; their rows still compute
    /// (execute-and-discard) until the batch finishes.
    pub fn retire_lane(&mut self, lane: usize) {
        self.live[lane] = false;
    }

    /// Number of live lanes.
    pub fn live_lanes(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// One output value of `lane` (after a tick), typed like the
    /// single-case [`crate::Executor::outputs`].
    pub fn lane_output(&self, lane: usize, index: usize) -> Value {
        let ty = self.compiled.output_types[index];
        Value::from_f64(self.outputs[index * self.width + lane], ty)
    }

    /// All output values of `lane` (after a tick).
    pub fn lane_outputs(&self, lane: usize) -> Vec<Value> {
        (0..self.compiled.output_types.len()).map(|i| self.lane_output(lane, i)).collect()
    }

    /// Reads one register of `lane`'s register file (the signal-probe seam,
    /// mirroring [`crate::Executor::reg`]).
    pub fn lane_reg(&self, lane: usize, reg: crate::ir::Reg) -> f64 {
        self.regs[reg as usize * self.width + lane]
    }

    /// `lane`'s state vector (delay lines, chart variables, ...).
    pub fn lane_state(&self, lane: usize) -> Vec<f64> {
        let slots = self.compiled.state_init.len();
        (0..slots).map(|s| self.state[s * self.width + lane]).collect()
    }

    /// Executes one model iteration for every live lane. A tick with no
    /// live lanes is a no-op.
    pub fn step_tick<R: LaneRecorder>(&mut self, recorder: &mut R) {
        if !self.live.iter().any(|&l| l) {
            return;
        }
        self.stats.ticks += 1;
        // Monomorphize the common widths so `w` is a compile-time constant
        // in the row loops (fixed trip counts vectorize cleanly); other
        // widths share one dynamic instantiation.
        match self.width {
            2 => self.tick_impl::<2, R>(recorder),
            4 => self.tick_impl::<4, R>(recorder),
            8 => self.tick_impl::<8, R>(recorder),
            16 => self.tick_impl::<16, R>(recorder),
            _ => self.tick_impl::<0, R>(recorder),
        }
    }

    /// Runs up to `width` whole cases (raw layout-shaped bytes) through the
    /// batch: `begin()`, then one tick per tuple with lanes retiring as
    /// their cases run out, each capped at `max_ticks` iterations. Returns
    /// the iteration count per case.
    ///
    /// # Panics
    ///
    /// Panics when more than `width` cases are supplied.
    pub fn run_cases<R: LaneRecorder>(
        &mut self,
        cases: &[&[u8]],
        max_ticks: usize,
        recorder: &mut R,
    ) -> Vec<usize> {
        assert!(cases.len() <= self.width, "more cases than lanes");
        let compiled: &'c CompiledModel = self.compiled;
        let layout = compiled.layout();
        let tuple = layout.tuple_size();
        self.begin();
        let counts: Vec<usize> =
            cases.iter().map(|c| layout.tuple_count(c).min(max_ticks)).collect();
        let ticks = counts.iter().copied().max().unwrap_or(0);
        for t in 0..ticks {
            for (lane, case) in cases.iter().enumerate() {
                if t < counts[lane] {
                    self.load_tuple(lane, &case[t * tuple..(t + 1) * tuple]);
                } else {
                    self.retire_lane(lane);
                }
            }
            self.step_tick(recorder);
        }
        for lane in 0..cases.len() {
            self.retire_lane(lane);
        }
        counts
    }

    /// The two-mode batch dispatch loop. `L == 0` selects the dynamic-width
    /// instantiation; otherwise `L` must equal the session width.
    #[allow(clippy::needless_range_loop)]
    fn tick_impl<const L: usize, R: LaneRecorder>(&mut self, rec: &mut R) {
        let w = if L == 0 { self.width } else { L };
        debug_assert_eq!(w, self.width);
        let program = &self.compiled.flat_batch;
        let ops: &[FlatOp] = &program.ops;
        let consts: &[f64] = &program.const_pool;
        let tables1 = &self.compiled.tables1;
        let tables2 = &self.compiled.tables2;
        let regs = &mut self.regs[..];
        let state = &mut self.state[..];
        let inputs = &self.inputs[..];
        let outputs = &mut self.outputs[..];
        // `[..w]` slices tie the lane-array lengths to `w`, eliding the
        // bounds checks in every `0..w` loop below.
        let live = &self.live[..w];
        let resume = &mut self.resume[..w];
        let nops = ops.len();
        let n_live = live.iter().map(|&b| usize::from(b)).sum::<usize>();
        let mut pc = 0usize;
        let mut diverged = false;
        let (mut c_ops, mut divs) = (0u64, 0u64);

        // First lane-slot of register `r`'s row.
        macro_rules! row {
            ($r:expr) => {
                ($r as usize) * w
            };
        }
        // Two-way jump vote on the condition row at `$base` (taken when the
        // slot's truthiness equals `$nz`): a branchless count of the live
        // lanes taking the jump decides unanimously-taken / unanimously-
        // fallthrough / mixed; only the mixed case pays a second (parking)
        // pass. The staged row sub-slice keeps the count loop check-free.
        macro_rules! fanout2 {
            ($base:expr, $nz:expr, $tgt:expr) => {{
                let base = $base;
                let tgt = $tgt;
                let crow = &regs[base..base + w];
                let mut n_taken = 0usize;
                for l in 0..w {
                    n_taken += usize::from(live[l] && ((crow[l] != 0.0) == $nz));
                }
                if n_taken == n_live {
                    pc = tgt;
                } else if n_taken != 0 {
                    // Unconditional select: dead lanes pick up garbage
                    // resume pcs, but the active-set test is gated on
                    // liveness so they are never consulted.
                    for l in 0..w {
                        resume[l] = if (crow[l] != 0.0) == $nz { tgt } else { pc };
                    }
                    divs += 1;
                    diverged = true;
                }
            }};
        }
        // General jump vote for multi-target ops (`$target(l)` yields each
        // lane's destination): unanimity poll with early exit, parking pass
        // only when mixed.
        macro_rules! fanout {
            ($target:expr) => {{
                let mut uni = usize::MAX;
                let mut mixed = false;
                for l in 0..w {
                    if !live[l] {
                        continue;
                    }
                    let t: usize = $target(l);
                    if uni == usize::MAX {
                        uni = t;
                    } else if uni != t {
                        mixed = true;
                        break;
                    }
                }
                if mixed {
                    for l in 0..w {
                        if live[l] {
                            resume[l] = $target(l);
                        }
                    }
                    divs += 1;
                    diverged = true;
                } else if uni != usize::MAX {
                    pc = uni;
                }
            }};
        }

        while pc < nops {
            if diverged {
                pc = masked_span::<L, R>(
                    ops,
                    consts,
                    tables1,
                    tables2,
                    regs,
                    state,
                    inputs,
                    outputs,
                    live,
                    resume,
                    rec,
                    pc,
                    n_live,
                    &mut self.stats,
                );
                diverged = false;
                continue;
            }
            let op = ops[pc];
            pc += 1;
            c_ops += 1;
            match op {
                FlatOp::Const { dst, idx } => {
                    regs[row!(dst)..row!(dst) + w].fill(consts[idx as usize]);
                }
                FlatOp::Const2 { dst1, idx1, dst2, idx2 } => {
                    regs[row!(dst1)..row!(dst1) + w].fill(consts[idx1 as usize]);
                    regs[row!(dst2)..row!(dst2) + w].fill(consts[idx2 as usize]);
                }
                FlatOp::Copy { dst, src } => {
                    regs.copy_within(row!(src)..row!(src) + w, row!(dst));
                }
                FlatOp::Input { dst, index } => {
                    let s = (index as usize) * w;
                    regs[row!(dst)..row!(dst) + w].copy_from_slice(&inputs[s..s + w]);
                }
                FlatOp::Output { index, src } => {
                    let d = (index as usize) * w;
                    outputs[d..d + w].copy_from_slice(&regs[row!(src)..row!(src) + w]);
                }
                FlatOp::Unop { dst, op, src } => {
                    let (d, s) = (row!(dst), row!(src));
                    match op {
                        UnopCode::Neg => map_row::<L>(regs, d, s, w, |x| -x),
                        UnopCode::Not => map_row::<L>(regs, d, s, w, |x| f64::from(x == 0.0)),
                        UnopCode::Truthy => map_row::<L>(regs, d, s, w, |x| f64::from(x != 0.0)),
                    }
                }
                FlatOp::Binop { dst, op, lhs, rhs } => {
                    binop_rows::<L>(op, regs, row!(dst), row!(lhs), row!(rhs), w);
                }
                FlatOp::BinopCmp { dst, op, lhs, rhs } => {
                    let (d, a, b) = (row!(dst), row!(lhs), row!(rhs));
                    if R::OBSERVES_COMPARES {
                        for l in 0..w {
                            if live[l] {
                                rec.compare(l, regs[a + l], regs[b + l]);
                            }
                        }
                    }
                    binop_rows::<L>(op, regs, d, a, b, w);
                }
                FlatOp::Call { dst, func, argc, args } => {
                    let d = row!(dst);
                    let argc = argc as usize;
                    for l in 0..w {
                        let mut xs = [0.0f64; MAX_INLINE];
                        for (x, &a) in xs.iter_mut().zip(&args[..argc]) {
                            *x = regs[row!(a) + l];
                        }
                        regs[d + l] = func.apply(&xs[..argc]);
                    }
                }
                FlatOp::CastSat { dst, src, ty } => {
                    let (d, s) = (row!(dst), row!(src));
                    map_row::<L>(regs, d, s, w, |x| Value::from_f64(x, ty).as_f64());
                }
                FlatOp::CastSatCopy { dst, src, ty, dst2 } => {
                    let (d, s, d2) = (row!(dst), row!(src), row!(dst2));
                    map_row::<L>(regs, d, s, w, |x| Value::from_f64(x, ty).as_f64());
                    regs.copy_within(d..d + w, d2);
                }
                FlatOp::CopyCastSat { dst, src, dst2, ty } => {
                    let (d, s, d2) = (row!(dst), row!(src), row!(dst2));
                    regs.copy_within(s..s + w, d);
                    map_row::<L>(regs, d2, d, w, |x| Value::from_f64(x, ty).as_f64());
                }
                FlatOp::LoadState { dst, slot } => {
                    let s = (slot as usize) * w;
                    regs[row!(dst)..row!(dst) + w].copy_from_slice(&state[s..s + w]);
                }
                FlatOp::Load2 { dst1, slot1, dst2, slot2 } => {
                    let s1 = (slot1 as usize) * w;
                    regs[row!(dst1)..row!(dst1) + w].copy_from_slice(&state[s1..s1 + w]);
                    let s2 = (slot2 as usize) * w;
                    regs[row!(dst2)..row!(dst2) + w].copy_from_slice(&state[s2..s2 + w]);
                }
                FlatOp::StoreState { slot, src } => {
                    let d = (slot as usize) * w;
                    state[d..d + w].copy_from_slice(&regs[row!(src)..row!(src) + w]);
                }
                FlatOp::StoreState2 { slot1, src1, slot2, src2 } => {
                    let d1 = (slot1 as usize) * w;
                    state[d1..d1 + w].copy_from_slice(&regs[row!(src1)..row!(src1) + w]);
                    let d2 = (slot2 as usize) * w;
                    state[d2..d2 + w].copy_from_slice(&regs[row!(src2)..row!(src2) + w]);
                }
                FlatOp::ShiftState { base, len, src } => {
                    // Slot rows are contiguous, so the whole delay-line
                    // shift is one block move across all lanes.
                    let (base, len) = (base as usize, len as usize);
                    state.copy_within((base + 1) * w..(base + len) * w, base * w);
                    let d = (base + len - 1) * w;
                    state[d..d + w].copy_from_slice(&regs[row!(src)..row!(src) + w]);
                }
                FlatOp::Lookup1 { dst, src, table } => {
                    let (breaks, values) = &tables1[table as usize];
                    let (d, s) = (row!(dst), row!(src));
                    map_row::<L>(regs, d, s, w, |x| lookup1d(breaks, values, x));
                }
                FlatOp::Lookup2 { dst, row, col, table } => {
                    let (rb, cb, values) = &tables2[table as usize];
                    let (d, r, c) = (row!(dst), row!(row), row!(col));
                    map2_row::<L>(regs, d, r, c, w, |x, y| lookup2d(rb, cb, values, x, y));
                }
                FlatOp::Probe { branch } => {
                    if R::OBSERVES_PROBES {
                        rec.branch_row(BranchId(u32::from(branch)), &live[..w]);
                    }
                }
                FlatOp::Assert { id, cond } => {
                    if R::OBSERVES_ASSERTIONS {
                        let c = row!(cond);
                        let aid = AssertionId(u32::from(id));
                        for l in 0..w {
                            if live[l] {
                                rec.assertion(l, aid, regs[c + l] != 0.0);
                            }
                        }
                    }
                }
                FlatOp::ProbeSelect { cond, then_branch, else_branch } => {
                    if R::OBSERVES_PROBES {
                        let c = row!(cond);
                        rec.branch_select_row(
                            BranchId(u32::from(then_branch)),
                            BranchId(u32::from(else_branch)),
                            &regs[c..c + w],
                            live,
                        );
                    }
                }
                FlatOp::CmpJump { op, dst, lhs, rhs, skip } => {
                    let (d, a, b) = (row!(dst), row!(lhs), row!(rhs));
                    if R::OBSERVES_COMPARES {
                        for l in 0..w {
                            if live[l] {
                                rec.compare(l, regs[a + l], regs[b + l]);
                            }
                        }
                    }
                    binop_rows::<L>(op, regs, d, a, b, w);
                    fanout2!(d, false, pc + skip as usize);
                }
                FlatOp::JumpIfZero { cond, skip } => {
                    fanout2!(row!(cond), false, pc + skip as usize);
                }
                FlatOp::JzLoad { cond, skip, dst, slot } => {
                    // The load is this op's side effect on fall-through
                    // lanes, so it must happen *before* any divergence.
                    let c = row!(cond);
                    let (next, tgt) = (pc, pc + skip as usize);
                    let mut n_taken = 0usize;
                    {
                        let crow = &regs[c..c + w];
                        for l in 0..w {
                            n_taken += usize::from(live[l] && crow[l] == 0.0);
                        }
                    }
                    let (d, s) = (row!(dst), (slot as usize) * w);
                    if n_taken == n_live {
                        pc = tgt;
                    } else if n_taken == 0 {
                        regs[d..d + w].copy_from_slice(&state[s..s + w]);
                    } else {
                        // Branchless mixed case: fall-through lanes load,
                        // taken lanes keep dst; dead lanes load-and-discard
                        // and park on garbage (never consulted).
                        for l in 0..w {
                            let fall = regs[c + l] != 0.0;
                            let old = regs[d + l];
                            regs[d + l] = if fall { state[s + l] } else { old };
                            resume[l] = if fall { next } else { tgt };
                        }
                        divs += 1;
                        diverged = true;
                    }
                }
                FlatOp::LoadJz { dst, slot, cond, skip } => {
                    let (d, s) = (row!(dst), (slot as usize) * w);
                    regs[d..d + w].copy_from_slice(&state[s..s + w]);
                    fanout2!(row!(cond), false, pc + skip as usize);
                }
                FlatOp::JzJz { cond1, skip1, cond2, skip2 } => {
                    let (c1, c2) = (row!(cond1), row!(cond2));
                    let next = pc;
                    let (t1, t2) = (pc + skip1 as usize, pc + skip2 as usize);
                    fanout!(|l: usize| if regs[c1 + l] == 0.0 {
                        t1
                    } else if regs[c2 + l] == 0.0 {
                        t2
                    } else {
                        next
                    });
                }
                FlatOp::JumpIfNonZero { cond, skip } => {
                    fanout2!(row!(cond), true, pc + skip as usize);
                }
                FlatOp::Jump { skip } => pc += skip as usize,
                FlatOp::CondProbe { .. }
                | FlatOp::CondProbe2 { .. }
                | FlatOp::Decision1 { .. }
                | FlatOp::DecisionSel { .. }
                | FlatOp::CmpSel { .. }
                | FlatOp::DecisionEvalSmall { .. }
                | FlatOp::DecisionEvalPool { .. }
                | FlatOp::DecisionSelJz { .. } => {
                    unreachable!("condition/decision ops are stripped from the batch program")
                }
            }
        }
        self.stats.converged_ops += c_ops;
        self.stats.divergences += divs;
    }
}

/// The diverged-span scan, kept out of the converged hot loop (`#[cold]`,
/// never inlined) so its masked machinery does not bloat the loop's
/// register allocation. Each op position is matched ONCE and committed
/// through branchless masked row writes to the *active* lanes — the live
/// lanes parked exactly on that pc; `$val` is computed for every lane
/// (all ops are total over `f64`, the converged mode's execute-and-discard
/// argument) and a select keeps inactive lanes' old values. Returns the pc
/// where every live lane reconverged (or the program end).
#[cold]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
fn masked_span<const L: usize, R: LaneRecorder>(
    ops: &[FlatOp],
    consts: &[f64],
    tables1: &[(Vec<f64>, Vec<f64>)],
    tables2: &[Lookup2Table],
    regs: &mut [f64],
    state: &mut [f64],
    inputs: &[f64],
    outputs: &mut [f64],
    live: &[bool],
    resume: &mut [usize],
    rec: &mut R,
    mut pc: usize,
    n_live: usize,
    stats: &mut BatchStats,
) -> usize {
    let w = if L == 0 { live.len() } else { L };
    debug_assert_eq!(w, live.len());
    let nops = ops.len();
    let mut act = [false; MAX_BATCH_WIDTH];

    macro_rules! row {
        ($r:expr) => {
            ($r as usize) * w
        };
    }
    // Masked row write: commits `$val` to the active lanes of `$arr`'s row
    // at `$base`, branchless select for the rest.
    macro_rules! mrow {
        ($arr:ident, $base:expr, $l:ident, $val:expr) => {{
            let base = $base;
            for $l in 0..w {
                let v = $val;
                let old = $arr[base + $l];
                $arr[base + $l] = if act[$l] { v } else { old };
            }
        }};
    }
    // Parks every active lane on `$val` (its next pc), branchless.
    macro_rules! mpark {
        ($l:ident, $val:expr) => {{
            for $l in 0..w {
                let v = $val;
                let old = resume[$l];
                resume[$l] = if act[$l] { v } else { old };
            }
        }};
    }

    while pc < nops {
        let mut n_act = 0usize;
        for l in 0..w {
            let a = live[l] && resume[l] == pc;
            act[l] = a;
            n_act += usize::from(a);
        }
        if n_act == n_live {
            return pc;
        }
        let op = ops[pc];
        let next = pc + 1;
        pc = next;
        if n_act == 0 {
            stats.skipped_dispatches += 1;
            continue;
        }
        stats.diverged_ops += n_act as u64;
        stats.masked_dispatches += 1;
        let mut parked = false;
        match op {
            FlatOp::Const { dst, idx } => {
                mrow!(regs, row!(dst), l, consts[idx as usize]);
            }
            FlatOp::Const2 { dst1, idx1, dst2, idx2 } => {
                mrow!(regs, row!(dst1), l, consts[idx1 as usize]);
                mrow!(regs, row!(dst2), l, consts[idx2 as usize]);
            }
            FlatOp::Copy { dst, src } => {
                let s = row!(src);
                mrow!(regs, row!(dst), l, regs[s + l]);
            }
            FlatOp::Input { dst, index } => {
                let s = row!(index);
                mrow!(regs, row!(dst), l, inputs[s + l]);
            }
            FlatOp::Output { index, src } => {
                let s = row!(src);
                mrow!(outputs, row!(index), l, regs[s + l]);
            }
            FlatOp::Unop { dst, op, src } => {
                let s = row!(src);
                match op {
                    UnopCode::Neg => mrow!(regs, row!(dst), l, -regs[s + l]),
                    UnopCode::Not => {
                        mrow!(regs, row!(dst), l, f64::from(regs[s + l] == 0.0));
                    }
                    UnopCode::Truthy => {
                        mrow!(regs, row!(dst), l, f64::from(regs[s + l] != 0.0));
                    }
                }
            }
            FlatOp::Binop { dst, op, lhs, rhs } => {
                let (a, b) = (row!(lhs), row!(rhs));
                mrow!(regs, row!(dst), l, op.apply(regs[a + l], regs[b + l]));
            }
            FlatOp::BinopCmp { dst, op, lhs, rhs } => {
                let (a, b) = (row!(lhs), row!(rhs));
                if R::OBSERVES_COMPARES {
                    for l in 0..w {
                        if act[l] {
                            rec.compare(l, regs[a + l], regs[b + l]);
                        }
                    }
                }
                mrow!(regs, row!(dst), l, op.apply(regs[a + l], regs[b + l]));
            }
            FlatOp::Call { dst, func, argc, args } => {
                let d = row!(dst);
                let argc = argc as usize;
                for l in 0..w {
                    if act[l] {
                        let mut xs = [0.0f64; MAX_INLINE];
                        for (x, &a) in xs.iter_mut().zip(&args[..argc]) {
                            *x = regs[row!(a) + l];
                        }
                        regs[d + l] = func.apply(&xs[..argc]);
                    }
                }
            }
            FlatOp::CastSat { dst, src, ty } => {
                let s = row!(src);
                mrow!(regs, row!(dst), l, Value::from_f64(regs[s + l], ty).as_f64());
            }
            FlatOp::CastSatCopy { dst, src, ty, dst2 } => {
                let (d, s) = (row!(dst), row!(src));
                mrow!(regs, d, l, Value::from_f64(regs[s + l], ty).as_f64());
                mrow!(regs, row!(dst2), l, regs[d + l]);
            }
            FlatOp::CopyCastSat { dst, src, dst2, ty } => {
                let (d, s) = (row!(dst), row!(src));
                mrow!(regs, d, l, regs[s + l]);
                mrow!(regs, row!(dst2), l, Value::from_f64(regs[d + l], ty).as_f64());
            }
            FlatOp::LoadState { dst, slot } => {
                let s = row!(slot);
                mrow!(regs, row!(dst), l, state[s + l]);
            }
            FlatOp::Load2 { dst1, slot1, dst2, slot2 } => {
                let (s1, s2) = (row!(slot1), row!(slot2));
                mrow!(regs, row!(dst1), l, state[s1 + l]);
                mrow!(regs, row!(dst2), l, state[s2 + l]);
            }
            FlatOp::StoreState { slot, src } => {
                let s = row!(src);
                mrow!(state, row!(slot), l, regs[s + l]);
            }
            FlatOp::StoreState2 { slot1, src1, slot2, src2 } => {
                let (s1, s2) = (row!(src1), row!(src2));
                mrow!(state, row!(slot1), l, regs[s1 + l]);
                mrow!(state, row!(slot2), l, regs[s2 + l]);
            }
            FlatOp::ShiftState { base, len, src } => {
                let (base, len) = (base as usize, len as usize);
                for k in base..base + len - 1 {
                    let s = (k + 1) * w;
                    mrow!(state, k * w, l, state[s + l]);
                }
                let s = row!(src);
                mrow!(state, (base + len - 1) * w, l, regs[s + l]);
            }
            FlatOp::Lookup1 { dst, src, table } => {
                let (breaks, values) = &tables1[table as usize];
                let s = row!(src);
                mrow!(regs, row!(dst), l, lookup1d(breaks, values, regs[s + l]));
            }
            FlatOp::Lookup2 { dst, row, col, table } => {
                let (rb, cb, values) = &tables2[table as usize];
                let (r, c) = (row!(row), row!(col));
                mrow!(regs, row!(dst), l, lookup2d(rb, cb, values, regs[r + l], regs[c + l]));
            }
            FlatOp::Probe { branch } => {
                if R::OBSERVES_PROBES {
                    rec.branch_row(BranchId(u32::from(branch)), &act[..w]);
                }
            }
            FlatOp::Assert { id, cond } => {
                if R::OBSERVES_ASSERTIONS {
                    let c = row!(cond);
                    let aid = AssertionId(u32::from(id));
                    for l in 0..w {
                        if act[l] {
                            rec.assertion(l, aid, regs[c + l] != 0.0);
                        }
                    }
                }
            }
            FlatOp::ProbeSelect { cond, then_branch, else_branch } => {
                if R::OBSERVES_PROBES {
                    let c = row!(cond);
                    rec.branch_select_row(
                        BranchId(u32::from(then_branch)),
                        BranchId(u32::from(else_branch)),
                        &regs[c..c + w],
                        &act[..w],
                    );
                }
            }
            FlatOp::CmpJump { op, dst, lhs, rhs, skip } => {
                let (a, b) = (row!(lhs), row!(rhs));
                if R::OBSERVES_COMPARES {
                    for l in 0..w {
                        if act[l] {
                            rec.compare(l, regs[a + l], regs[b + l]);
                        }
                    }
                }
                let d = row!(dst);
                mrow!(regs, d, l, op.apply(regs[a + l], regs[b + l]));
                let tgt = next + skip as usize;
                mpark!(l, if regs[d + l] == 0.0 { tgt } else { next });
                parked = true;
            }
            FlatOp::JumpIfZero { cond, skip } => {
                let c = row!(cond);
                let tgt = next + skip as usize;
                mpark!(l, if regs[c + l] == 0.0 { tgt } else { next });
                parked = true;
            }
            FlatOp::JzLoad { cond, skip, dst, slot } => {
                // Fall-through lanes take the load before parking.
                let c = row!(cond);
                let (d, s) = (row!(dst), row!(slot));
                mrow!(regs, d, l, if regs[c + l] != 0.0 { state[s + l] } else { regs[d + l] });
                let tgt = next + skip as usize;
                mpark!(l, if regs[c + l] == 0.0 { tgt } else { next });
                parked = true;
            }
            FlatOp::LoadJz { dst, slot, cond, skip } => {
                let s = row!(slot);
                mrow!(regs, row!(dst), l, state[s + l]);
                let c = row!(cond);
                let tgt = next + skip as usize;
                mpark!(l, if regs[c + l] == 0.0 { tgt } else { next });
                parked = true;
            }
            FlatOp::JzJz { cond1, skip1, cond2, skip2 } => {
                let (c1, c2) = (row!(cond1), row!(cond2));
                let (t1, t2) = (next + skip1 as usize, next + skip2 as usize);
                mpark!(
                    l,
                    if regs[c1 + l] == 0.0 {
                        t1
                    } else if regs[c2 + l] == 0.0 {
                        t2
                    } else {
                        next
                    }
                );
                parked = true;
            }
            FlatOp::JumpIfNonZero { cond, skip } => {
                let c = row!(cond);
                let tgt = next + skip as usize;
                mpark!(l, if regs[c + l] != 0.0 { tgt } else { next });
                parked = true;
            }
            FlatOp::Jump { skip } => {
                mpark!(l, next + skip as usize);
                parked = true;
            }
            FlatOp::CondProbe { .. }
            | FlatOp::CondProbe2 { .. }
            | FlatOp::Decision1 { .. }
            | FlatOp::DecisionSel { .. }
            | FlatOp::CmpSel { .. }
            | FlatOp::DecisionEvalSmall { .. }
            | FlatOp::DecisionEvalPool { .. }
            | FlatOp::DecisionSelJz { .. } => {
                unreachable!("condition/decision ops are stripped from the batch program")
            }
        }
        if !parked {
            mpark!(l, next);
        }
    }
    pc
}

/// One register row mapped through `f`. The const-width instantiations
/// (`L > 0`) stage through fixed-size arrays: one bounds check per row,
/// then check-free lane loops the compiler vectorizes; `L == 0` is the
/// dynamic-width fallback.
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn map_row<const L: usize>(regs: &mut [f64], d: usize, s: usize, w: usize, f: impl Fn(f64) -> f64) {
    if L == 0 {
        for l in 0..w {
            regs[d + l] = f(regs[s + l]);
        }
    } else {
        let x: [f64; L] = regs[s..s + L].try_into().unwrap();
        let mut o = [0.0; L];
        for l in 0..L {
            o[l] = f(x[l]);
        }
        regs[d..d + L].copy_from_slice(&o);
    }
}

/// Two register rows combined through `f` into a third (rows may alias —
/// the operands are staged out first).
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn map2_row<const L: usize>(
    regs: &mut [f64],
    d: usize,
    a: usize,
    b: usize,
    w: usize,
    f: impl Fn(f64, f64) -> f64,
) {
    if L == 0 {
        for l in 0..w {
            regs[d + l] = f(regs[a + l], regs[b + l]);
        }
    } else {
        let x: [f64; L] = regs[a..a + L].try_into().unwrap();
        let y: [f64; L] = regs[b..b + L].try_into().unwrap();
        let mut o = [0.0; L];
        for l in 0..L {
            o[l] = f(x[l], y[l]);
        }
        regs[d..d + L].copy_from_slice(&o);
    }
}

/// One binop across a register row, opcode matched once outside the lane
/// loop so each arm is a tight autovectorizable loop.
#[inline(always)]
fn binop_rows<const L: usize>(
    op: BinopCode,
    regs: &mut [f64],
    d: usize,
    a: usize,
    b: usize,
    w: usize,
) {
    match op {
        BinopCode::Add => map2_row::<L>(regs, d, a, b, w, |x, y| x + y),
        BinopCode::Sub => map2_row::<L>(regs, d, a, b, w, |x, y| x - y),
        BinopCode::Mul => map2_row::<L>(regs, d, a, b, w, |x, y| x * y),
        BinopCode::Div => map2_row::<L>(regs, d, a, b, w, |x, y| x / y),
        BinopCode::Rem => map2_row::<L>(regs, d, a, b, w, |x, y| x % y),
        BinopCode::Lt => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x < y)),
        BinopCode::Le => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x <= y)),
        BinopCode::Gt => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x > y)),
        BinopCode::Ge => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x >= y)),
        BinopCode::Eq => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x == y)),
        BinopCode::Ne => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x != y)),
        BinopCode::And => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x != 0.0 && y != 0.0)),
        BinopCode::Or => map2_row::<L>(regs, d, a, b, w, |x, y| f64::from(x != 0.0 || y != 0.0)),
    }
}
