//! Model compilation: the paper's "Schedule Convert" + "Code Synthesis"
//! stages, with branch instrumentation woven in.
//!
//! A model compiles to one linear step program per top-level iteration:
//!
//! 1. a *prologue* publishing delay-class state as this step's outputs,
//! 2. every block in deterministic schedule order, instrumented,
//! 3. an *epilogue* absorbing this step's inputs into delay state.
//!
//! Subsystems compile recursively; conditionally-executed subsystems wrap
//! their region in `If (action) { ... }` with held-output state slots —
//! exactly the shape Simulink's own coder produces.

use std::error::Error;
use std::fmt;

use cftcg_coverage::{InstrumentationMap, MapBuilder};
use cftcg_model::expr::{exec_stmts, ExprEnv, MapEnv};
use cftcg_model::{
    BlockKind, DataType, EdgeKind, InputSign, LogicOp, MinMaxOp, Model, ModelError, PortRef,
    ProductOp, SwitchCriterion,
};

use crate::flatten::{flatten, FlatProgram};
use crate::ir::{BinopCode, FuncCode, Instr, Reg, UnopCode};
use crate::layout::TupleLayout;
use crate::lower::{lower_decision, lower_stmts, Scope};
use crate::opt::{optimize, strip_probes, OptStats};

/// Error produced by [`compile`].
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The model failed validation or structural analysis.
    Model(ModelError),
    /// A chart's initial-state entry action could not be evaluated at
    /// compile time (it may only reference chart variables and outputs).
    ChartInit {
        /// The chart block's path.
        block: String,
        /// The evaluation failure.
        detail: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Model(e) => write!(f, "cannot compile model: {e}"),
            CompileError::ChartInit { block, detail } => {
                write!(f, "cannot initialize chart `{block}`: {detail}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Model(e) => Some(e),
            CompileError::ChartInit { .. } => None,
        }
    }
}

impl From<ModelError> for CompileError {
    fn from(e: ModelError) -> Self {
        CompileError::Model(e)
    }
}

/// A 2-D lookup table: row breakpoints, column breakpoints, value grid.
pub type Lookup2Table = (Vec<f64>, Vec<f64>, Vec<Vec<f64>>);

/// One entry of the compiled signal table: a block output port, its
/// hierarchical name, resolved data type, and the dedicated register that
/// carries its value after every tick.
///
/// `compile_region` allocates one register per block output port up front
/// and every block arm finishes by writing its (cast) outputs there, so the
/// register file doubles as a free signal probe surface: reading
/// [`Executor::reg`](crate::Executor::reg) after a tick observes the port's
/// current value with hold semantics identical to the interpreter's
/// persistent signal store — no extra instructions are emitted for tracing.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalMeta {
    /// Hierarchical signal name: `model/…/block:port`.
    pub name: String,
    /// The port's resolved output data type.
    pub dtype: DataType,
    /// Register holding the port's value after each tick.
    pub reg: Reg,
}

/// A compiled, instrumented model: the reproduction's "generated fuzz code".
///
/// Compilation runs the full back half: lowering produces the *reference*
/// structured program, the mid-end ([`crate::opt`]) optimizes it, and the
/// back-end ([`crate::flatten`]) lowers the optimized tree to the flat
/// jump-threaded form the production VM executes. Both the optimized tree
/// (for emission/inspection) and the unoptimized reference (for the
/// differential baseline) are carried.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    pub(crate) name: String,
    /// The optimized structured program, in the compacted register space.
    pub(crate) program: Vec<Instr>,
    /// The unoptimized program exactly as lowered — the reference walker's
    /// input and the optimizer's semantic baseline.
    pub(crate) reference: Vec<Instr>,
    /// Register-file size of the reference program (pre-compaction).
    pub(crate) reference_regs: usize,
    /// Signal table in the reference register space.
    pub(crate) reference_signals: Vec<SignalMeta>,
    /// The flat encoding of `program` (probes included).
    pub(crate) flat: FlatProgram,
    /// The probe-stripped flat variant for non-observing recorders.
    pub(crate) flat_noprobe: FlatProgram,
    /// The batch tier's flat variant: condition/decision probes stripped,
    /// branch/assert probes and relational compares kept (see
    /// [`crate::opt::strip_decision_probes`]). Same compacted register
    /// space as `flat`.
    pub(crate) flat_batch: FlatProgram,
    /// Per-pass mid-end accounting.
    pub(crate) opt_stats: OptStats,
    pub(crate) map: InstrumentationMap,
    pub(crate) layout: TupleLayout,
    pub(crate) state_init: Vec<f64>,
    pub(crate) num_regs: usize,
    pub(crate) input_types: Vec<DataType>,
    pub(crate) output_types: Vec<DataType>,
    pub(crate) tables1: Vec<(Vec<f64>, Vec<f64>)>,
    pub(crate) tables2: Vec<Lookup2Table>,
    pub(crate) signals: Vec<SignalMeta>,
    /// Lazily JIT-compiled native code for this instance. Clones restart
    /// empty (the machine code embeds instance-owned addresses).
    #[cfg(cftcg_jit)]
    pub(crate) jit: crate::jit::JitCache,
}

impl CompiledModel {
    /// The compiled model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instrumentation table produced by branch instrumentation.
    pub fn map(&self) -> &InstrumentationMap {
        &self.map
    }

    /// The fuzz driver's tuple layout (Section 3.1.1).
    pub fn layout(&self) -> &TupleLayout {
        &self.layout
    }

    /// The optimized step program (for emission and inspection) — the tree
    /// the flat engine's encoding was lowered from, in the compacted
    /// register space of [`CompiledModel::signals`].
    pub fn program(&self) -> &[Instr] {
        &self.program
    }

    /// The unoptimized step program exactly as lowered — what the
    /// reference tree walker ([`crate::Executor::new_reference`]) runs.
    pub fn reference_program(&self) -> &[Instr] {
        &self.reference
    }

    /// The signal table in the reference (pre-compaction) register space,
    /// for probing a reference executor. Same names/order/types as
    /// [`CompiledModel::signals`]; only the register indices differ.
    pub fn reference_signals(&self) -> &[SignalMeta] {
        &self.reference_signals
    }

    /// Mid-end pass accounting: instruction and register counts before and
    /// after each optimization pass.
    pub fn opt_stats(&self) -> &OptStats {
        &self.opt_stats
    }

    /// Number of flat ops the production dispatch loop executes over
    /// (jumps included) — with probes, and with probes stripped.
    pub fn flat_lens(&self) -> (usize, usize) {
        (self.flat.len(), self.flat_noprobe.len())
    }

    /// Static opcode histogram of the instrumented flat program, sorted by
    /// descending count — the tuning diagnostic behind the back-end's
    /// fusion choices (which op shapes are worth a dedicated opcode).
    pub fn flat_histogram(&self) -> Vec<(&'static str, usize)> {
        self.flat_histogram_at(0).expect("program 0 always exists")
    }

    /// Like [`CompiledModel::flat_histogram`], but for an explicit program
    /// index: `0` is the instrumented program, `1` the probe-stripped one
    /// executed under [`NullRecorder`](cftcg_coverage::NullRecorder), `2`
    /// the batch tier's variant (branch/assert probes kept,
    /// condition/decision probes stripped). Any other index returns `None`
    /// — out-of-range selectors are a caller mistake worth reporting, not
    /// panicking over.
    pub fn flat_histogram_at(&self, program: usize) -> Option<Vec<(&'static str, usize)>> {
        use std::collections::HashMap;
        let ops = &self.flat_program_at(program)?.ops;
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        for op in ops {
            *counts.entry(crate::flatten::op_name(op)).or_default() += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        Some(v)
    }

    /// Like [`CompiledModel::flat_pair_histogram`], but for an explicit
    /// program index (same selector space as
    /// [`CompiledModel::flat_histogram_at`]).
    pub fn flat_pair_histogram_at(&self, program: usize) -> Option<Vec<(String, usize)>> {
        use std::collections::HashMap;
        let ops = &self.flat_program_at(program)?.ops;
        let mut counts: HashMap<String, usize> = HashMap::new();
        for w in ops.windows(2) {
            let key =
                format!("{}+{}", crate::flatten::op_name(&w[0]), crate::flatten::op_name(&w[1]));
            *counts.entry(key).or_default() += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Some(v)
    }

    /// Static divergence profile of a flat program: the guarded-region
    /// size (flat ops skipped when the guard takes) of every *conditional*
    /// jump, in program order. Unconditional `Jump`s are excluded — every
    /// lane of a batch takes them together, so they cannot diverge. The
    /// `program` selector matches [`CompiledModel::flat_histogram_at`];
    /// out-of-range returns `None`.
    pub fn flat_guard_regions(&self, program: usize) -> Option<Vec<usize>> {
        use crate::flatten::FlatOp;
        let ops = &self.flat_program_at(program)?.ops;
        let mut regions = Vec::new();
        for op in ops {
            match op {
                FlatOp::CmpJump { skip, .. }
                | FlatOp::JumpIfZero { skip, .. }
                | FlatOp::JzLoad { skip, .. }
                | FlatOp::LoadJz { skip, .. }
                | FlatOp::DecisionSelJz { skip, .. }
                | FlatOp::JumpIfNonZero { skip, .. } => regions.push(usize::from(*skip)),
                FlatOp::JzJz { skip1, skip2, .. } => {
                    regions.push(usize::from(*skip1));
                    regions.push(usize::from(*skip2));
                }
                _ => {}
            }
        }
        Some(regions)
    }

    fn flat_program_at(&self, program: usize) -> Option<&crate::flatten::FlatProgram> {
        match program {
            0 => Some(&self.flat),
            1 => Some(&self.flat_noprobe),
            2 => Some(&self.flat_batch),
            _ => None,
        }
    }

    /// Static adjacent-pair histogram of the instrumented flat program —
    /// the companion diagnostic to [`CompiledModel::flat_histogram`] for
    /// spotting fusion candidates.
    pub fn flat_pair_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::HashMap;
        let mut counts: HashMap<String, usize> = HashMap::new();
        for w in self.flat.ops.windows(2) {
            let key =
                format!("{}+{}", crate::flatten::op_name(&w[0]), crate::flatten::op_name(&w[1]));
            *counts.entry(key).or_default() += 1;
        }
        let mut v: Vec<_> = counts.into_iter().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Declared inport types, in port order.
    pub fn input_types(&self) -> &[DataType] {
        &self.input_types
    }

    /// Resolved outport types, in port order.
    pub fn output_types(&self) -> &[DataType] {
        &self.output_types
    }

    /// Number of state slots.
    pub fn state_len(&self) -> usize {
        self.state_init.len()
    }

    /// Total instruction count (recursing into branches).
    pub fn instr_count(&self) -> usize {
        crate::ir::instr_count(&self.program)
    }

    /// The signal table: every block output port in schedule order, with
    /// subsystem-inner signals preceding their container's own ports. The
    /// enumeration order and naming match
    /// `cftcg_sim::Simulator::signals` exactly, which is what lets the
    /// divergence auditor compare the two engines index-by-index.
    pub fn signals(&self) -> &[SignalMeta] {
        &self.signals
    }

    /// The lazily JIT-compiled native code for this model, or `None` when
    /// compilation is unavailable (non-x86-64, feature off, executable
    /// pages refused).
    #[cfg(cftcg_jit)]
    pub(crate) fn jit_program(&self) -> Option<&crate::jit::JitProgram> {
        self.jit.get_or_compile(self)
    }

    /// Native code-size accounting for the JIT tier: bytes emitted and
    /// straight-line block counts for both program variants. `None` when
    /// the JIT is unavailable on this build/host. Triggers JIT compilation
    /// on first call.
    pub fn jit_stats(&self) -> Option<crate::JitStats> {
        #[cfg(cftcg_jit)]
        {
            self.jit_program().map(|p| p.stats())
        }
        #[cfg(not(cftcg_jit))]
        {
            None
        }
    }
}

/// The mutable compilation context shared across regions.
#[derive(Debug, Clone, Default)]
pub(crate) struct Ctx {
    pub next_reg: Reg,
    pub state_init: Vec<f64>,
    pub map: MapBuilder,
    pub tables1: Vec<(Vec<f64>, Vec<f64>)>,
    pub tables2: Vec<Lookup2Table>,
    pub signals: Vec<SignalMeta>,
}

impl Ctx {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Allocates a state slot with an initial value.
    pub fn slot(&mut self, init: f64) -> usize {
        self.state_init.push(init);
        self.state_init.len() - 1
    }

    fn const_reg(&mut self, body: &mut Vec<Instr>, value: f64) -> Reg {
        let dst = self.reg();
        body.push(Instr::Const { dst, value });
        dst
    }

    fn unop(&mut self, body: &mut Vec<Instr>, op: UnopCode, src: Reg) -> Reg {
        let dst = self.reg();
        body.push(Instr::Unop { dst, op, src });
        dst
    }

    fn binop(&mut self, body: &mut Vec<Instr>, op: BinopCode, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.reg();
        body.push(Instr::Binop { dst, op, lhs, rhs });
        dst
    }

    fn cast(&mut self, body: &mut Vec<Instr>, src: Reg, ty: DataType) -> Reg {
        if ty == DataType::F64 {
            return src;
        }
        let dst = self.reg();
        body.push(Instr::CastSat { dst, src, ty });
        dst
    }

    /// Instruments a single-condition decision (Switch control, threshold
    /// checks, activation conditions, ...): condition probe, MCDC record,
    /// and outcome probes. Returns the outcome register unchanged.
    fn single_cond_decision(
        &mut self,
        body: &mut Vec<Instr>,
        cond: Reg,
        label: &str,
        true_label: &str,
        false_label: &str,
    ) -> Reg {
        self.single_cond_decision_with(body, cond, label, true_label, false_label, true)
    }

    /// Like [`Ctx::single_cond_decision`] but for decisions that compile
    /// *branchless* under `-O2` (comparisons, edge detection, min/max), so a
    /// code-level fuzzer gets no feedback from them.
    fn single_cond_branchless_decision(
        &mut self,
        body: &mut Vec<Instr>,
        cond: Reg,
        label: &str,
        true_label: &str,
        false_label: &str,
    ) -> Reg {
        self.single_cond_decision_with(body, cond, label, true_label, false_label, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn single_cond_decision_with(
        &mut self,
        body: &mut Vec<Instr>,
        cond: Reg,
        label: &str,
        true_label: &str,
        false_label: &str,
        code_level: bool,
    ) -> Reg {
        let decision = if code_level {
            self.map.begin_decision(label)
        } else {
            self.map.begin_branchless_decision(label)
        };
        let c = self.map.add_condition(decision, label.to_string());
        body.push(Instr::CondProbe { cond: c, src: cond });
        body.push(Instr::DecisionEval { decision, conds: vec![cond], outcome: cond });
        let t = self.map.add_outcome(decision, format!("{label}: {true_label}"));
        let f = self.map.add_outcome(decision, format!("{label}: {false_label}"));
        body.push(Instr::If {
            cond,
            then_body: vec![Instr::Probe { branch: t }],
            else_body: vec![Instr::Probe { branch: f }],
        });
        cond
    }
}

/// Compiles a validated model into an instrumented step program.
///
/// # Errors
///
/// Returns [`CompileError::Model`] when validation fails, or
/// [`CompileError::ChartInit`] when a chart's initial entry action cannot be
/// evaluated at compile time.
pub fn compile(model: &Model) -> Result<CompiledModel, CompileError> {
    model.validate()?;
    let mut ctx = Ctx::new();
    let mut body = Vec::new();

    // Top-level inputs: one raw register per inport, cast at the Inport
    // blocks themselves.
    let inports = model.inports();
    let mut input_regs = Vec::with_capacity(inports.len());
    let mut input_types = Vec::with_capacity(inports.len());
    for (_, index, dtype) in &inports {
        let dst = ctx.reg();
        body.push(Instr::Input { dst, index: *index });
        input_regs.push(dst);
        input_types.push(*dtype);
    }

    let out_regs = compile_region(&mut ctx, &mut body, model, &input_regs, model.name())?;

    let types = model.resolve_types()?;
    let mut output_types = Vec::new();
    for ((id, index), src) in model.outports().into_iter().zip(&out_regs) {
        body.push(Instr::Output { index, src: *src });
        let driver =
            model.source_of(PortRef::new(id, 0)).expect("validated outports are connected");
        output_types.push(types.output_type(driver));
    }

    // The compiler back half: mid-end passes over the lowered tree, then
    // flat lowering for the production VM. The unoptimized tree is kept as
    // the reference engine's program and differential baseline.
    let reference = body;
    let reference_regs = ctx.next_reg as usize;
    let reference_signals = ctx.signals;
    let opt = optimize(&reference, reference_regs, &reference_signals);
    // Signal registers are observable between ticks (`Executor::reg` is
    // the tracing layer's probe surface), so conditional constant hoisting
    // must leave them materialized in the body.
    let observed: std::collections::HashSet<_> = opt.signals.iter().map(|s| s.reg).collect();
    let flat = flatten(&opt.program, &observed);
    let noprobe = strip_probes(&opt.program, &opt.signals);
    let flat_noprobe = flatten(&noprobe, &observed);
    let batch = crate::opt::strip_decision_probes(&opt.program);
    let flat_batch = flatten(&batch, &observed);

    Ok(CompiledModel {
        name: model.name().to_string(),
        program: opt.program,
        reference,
        reference_regs,
        reference_signals,
        flat,
        flat_noprobe,
        flat_batch,
        opt_stats: opt.stats,
        map: ctx.map.finish(),
        layout: TupleLayout::for_model(model),
        state_init: ctx.state_init,
        num_regs: opt.num_regs,
        input_types,
        output_types,
        tables1: ctx.tables1,
        tables2: ctx.tables2,
        signals: opt.signals,
        #[cfg(cftcg_jit)]
        jit: Default::default(),
    })
}

/// Compiles one model level into `body`. Returns the outport source
/// registers in port order.
fn compile_region(
    ctx: &mut Ctx,
    body: &mut Vec<Instr>,
    model: &Model,
    input_regs: &[Reg],
    path: &str,
) -> Result<Vec<Reg>, CompileError> {
    let order = model.execution_order()?;
    let types = model.resolve_types()?;
    let n = model.blocks().len();

    // Output registers per block per port, allocated up front.
    let mut port_regs: Vec<Vec<Reg>> = Vec::with_capacity(n);
    for block in model.blocks() {
        port_regs.push((0..block.kind().num_outputs()).map(|_| ctx.reg()).collect());
    }
    // Activity registers for conditionally-executed subsystems (for Merge).
    let mut activity: Vec<Option<Reg>> = vec![None; n];
    // Delay-class state slots, allocated in block order: (block, base slot).
    let mut delay_slots: Vec<(usize, usize)> = Vec::new();
    for block in model.blocks() {
        let b = block.id().index();
        match block.kind() {
            BlockKind::UnitDelay { initial } | BlockKind::Memory { initial } => {
                delay_slots.push((b, ctx.slot(initial.as_f64())));
            }
            BlockKind::Delay { steps, initial } => {
                let base = ctx.slot(initial.as_f64());
                for _ in 1..*steps {
                    ctx.slot(initial.as_f64());
                }
                delay_slots.push((b, base));
            }
            BlockKind::DiscreteIntegrator { initial, lower, upper, .. } => {
                let mut x = *initial;
                if let Some(hi) = upper {
                    x = x.min(*hi);
                }
                if let Some(lo) = lower {
                    x = x.max(*lo);
                }
                delay_slots.push((b, ctx.slot(x)));
            }
            _ => {}
        }
    }

    // Prologue: publish delay-class state.
    for &(b, base) in &delay_slots {
        body.push(Instr::LoadState { dst: port_regs[b][0], slot: base });
    }

    let input_of = |model: &Model, b: usize, port: usize| -> PortRef {
        model
            .source_of(PortRef::new(model.blocks()[b].id(), port))
            .expect("validated inputs are connected")
    };
    // Resolves the register carrying block `b`'s input `port`.
    let in_reg = |port_regs: &Vec<Vec<Reg>>, b: usize, port: usize| -> Reg {
        let src = input_of(model, b, port);
        port_regs[src.block.index()][src.port]
    };

    for id in order {
        let b = id.index();
        let block = &model.blocks()[b];
        let label = format!("{path}/{}", block.name());
        let out_ty = |port: usize| types.output_type(PortRef::new(id, port));
        match block.kind().clone() {
            // Delay-class: prologue/epilogue handle them.
            BlockKind::UnitDelay { .. }
            | BlockKind::Delay { .. }
            | BlockKind::Memory { .. }
            | BlockKind::DiscreteIntegrator { .. } => {}
            BlockKind::Inport { index, dtype } => {
                let cast = ctx.cast(body, input_regs[index], dtype);
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Outport { .. } | BlockKind::Terminator => {}
            BlockKind::Assertion => {
                // Pass/fail decision (Simulink counts assertion coverage)
                // plus the run-time violation report.
                let raw = in_reg(&port_regs, b, 0);
                let cond = ctx.unop(body, UnopCode::Truthy, raw);
                ctx.single_cond_decision(body, cond, &label, "pass", "fail");
                let id = ctx.map.add_assertion(label.clone());
                body.push(Instr::Assert { id, cond });
            }
            BlockKind::Constant { value } => {
                body.push(Instr::Const { dst: port_regs[b][0], value: value.as_f64() });
            }
            BlockKind::Ground { .. } => {
                body.push(Instr::Const { dst: port_regs[b][0], value: 0.0 });
            }
            BlockKind::Sum { signs } => {
                let mut acc = ctx.const_reg(body, 0.0);
                for (port, sign) in signs.iter().enumerate() {
                    let x = in_reg(&port_regs, b, port);
                    let op = match sign {
                        InputSign::Plus => BinopCode::Add,
                        InputSign::Minus => BinopCode::Sub,
                    };
                    acc = ctx.binop(body, op, acc, x);
                }
                let cast = ctx.cast(body, acc, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Product { ops } => {
                let mut acc = ctx.const_reg(body, 1.0);
                for (port, op) in ops.iter().enumerate() {
                    let x = in_reg(&port_regs, b, port);
                    let code = match op {
                        ProductOp::Mul => BinopCode::Mul,
                        ProductOp::Div => BinopCode::Div,
                    };
                    acc = ctx.binop(body, code, acc, x);
                }
                let cast = ctx.cast(body, acc, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Gain { gain } => {
                let g = ctx.const_reg(body, gain);
                let u = in_reg(&port_regs, b, 0);
                let y = ctx.binop(body, BinopCode::Mul, g, u);
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Bias { bias } => {
                let c = ctx.const_reg(body, bias);
                let u = in_reg(&port_regs, b, 0);
                let y = ctx.binop(body, BinopCode::Add, u, c);
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Abs => {
                let u = in_reg(&port_regs, b, 0);
                let func = FuncCode::from_builtin_name("abs").expect("abs is a builtin");
                let dst = ctx.reg();
                body.push(Instr::Call { dst, func, args: vec![u] });
                let cast = ctx.cast(body, dst, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::UnaryMinus => {
                let u = in_reg(&port_regs, b, 0);
                let y = ctx.unop(body, UnopCode::Neg, u);
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Signum => {
                let u = in_reg(&port_regs, b, 0);
                let zero = ctx.const_reg(body, 0.0);
                let y = ctx.reg();
                let pos = ctx.binop(body, BinopCode::Gt, u, zero);
                ctx.single_cond_decision(body, pos, &format!("{label} (u > 0)"), "pos", "not-pos");
                let mut else_body = Vec::new();
                let neg = ctx.binop(&mut else_body, BinopCode::Lt, u, zero);
                ctx.single_cond_decision(
                    &mut else_body,
                    neg,
                    &format!("{label} (u < 0)"),
                    "neg",
                    "zero",
                );
                else_body.push(Instr::If {
                    cond: neg,
                    then_body: vec![Instr::Const { dst: y, value: -1.0 }],
                    else_body: vec![Instr::Const { dst: y, value: 0.0 }],
                });
                body.push(Instr::If {
                    cond: pos,
                    then_body: vec![Instr::Const { dst: y, value: 1.0 }],
                    else_body,
                });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::MinMax { op, inputs } => {
                let mut acc = in_reg(&port_regs, b, 0);
                for port in 1..inputs {
                    let x = in_reg(&port_regs, b, port);
                    let cmp_op = match op {
                        MinMaxOp::Min => BinopCode::Lt,
                        MinMaxOp::Max => BinopCode::Gt,
                    };
                    let take = ctx.binop(body, cmp_op, x, acc);
                    ctx.single_cond_branchless_decision(
                        body,
                        take,
                        &format!("{label} (input {port} wins)"),
                        "wins",
                        "keeps",
                    );
                    let next = ctx.reg();
                    body.push(Instr::If {
                        cond: take,
                        then_body: vec![Instr::Copy { dst: next, src: x }],
                        else_body: vec![Instr::Copy { dst: next, src: acc }],
                    });
                    acc = next;
                }
                let cast = ctx.cast(body, acc, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Math { func } => {
                let args: Vec<Reg> = (0..func.arity()).map(|p| in_reg(&port_regs, b, p)).collect();
                let dst = ctx.reg();
                body.push(Instr::Call { dst, func: FuncCode::Math(func), args });
                body.push(Instr::Copy { dst: port_regs[b][0], src: dst });
            }
            BlockKind::Saturation { lower, upper } => {
                let u = in_reg(&port_regs, b, 0);
                let y = ctx.reg();
                let hi = ctx.const_reg(body, upper);
                let lo = ctx.const_reg(body, lower);
                let above = ctx.binop(body, BinopCode::Gt, u, hi);
                ctx.single_cond_decision(
                    body,
                    above,
                    &format!("{label} (upper limit)"),
                    "clipped",
                    "pass",
                );
                let mut else_body = Vec::new();
                let below = ctx.binop(&mut else_body, BinopCode::Lt, u, lo);
                ctx.single_cond_decision(
                    &mut else_body,
                    below,
                    &format!("{label} (lower limit)"),
                    "clipped",
                    "pass",
                );
                else_body.push(Instr::If {
                    cond: below,
                    then_body: vec![Instr::Copy { dst: y, src: lo }],
                    else_body: vec![Instr::Copy { dst: y, src: u }],
                });
                body.push(Instr::If {
                    cond: above,
                    then_body: vec![Instr::Copy { dst: y, src: hi }],
                    else_body,
                });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::DeadZone { start, end } => {
                let u = in_reg(&port_regs, b, 0);
                let y = ctx.reg();
                let e = ctx.const_reg(body, end);
                let s = ctx.const_reg(body, start);
                let above = ctx.binop(body, BinopCode::Gt, u, e);
                ctx.single_cond_decision(
                    body,
                    above,
                    &format!("{label} (above zone)"),
                    "above",
                    "not-above",
                );
                let mut else_body = Vec::new();
                let below = ctx.binop(&mut else_body, BinopCode::Lt, u, s);
                ctx.single_cond_decision(
                    &mut else_body,
                    below,
                    &format!("{label} (below zone)"),
                    "below",
                    "inside",
                );
                let sub_lo = ctx.reg();
                else_body.push(Instr::If {
                    cond: below,
                    then_body: vec![
                        Instr::Binop { dst: sub_lo, op: BinopCode::Sub, lhs: u, rhs: s },
                        Instr::Copy { dst: y, src: sub_lo },
                    ],
                    else_body: vec![Instr::Const { dst: y, value: 0.0 }],
                });
                let sub_hi = ctx.reg();
                body.push(Instr::If {
                    cond: above,
                    then_body: vec![
                        Instr::Binop { dst: sub_hi, op: BinopCode::Sub, lhs: u, rhs: e },
                        Instr::Copy { dst: y, src: sub_hi },
                    ],
                    else_body,
                });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Relay { on_threshold, off_threshold, on_output, off_output } => {
                let u = in_reg(&port_regs, b, 0);
                let slot = ctx.slot(0.0);
                let on = ctx.reg();
                body.push(Instr::LoadState { dst: on, slot });
                // While on: check the switch-off threshold.
                let mut on_body = Vec::new();
                let off_t = ctx.const_reg(&mut on_body, off_threshold);
                let turn_off = ctx.binop(&mut on_body, BinopCode::Le, u, off_t);
                ctx.single_cond_decision(
                    &mut on_body,
                    turn_off,
                    &format!("{label} (switch off)"),
                    "off",
                    "stay-on",
                );
                let zero = ctx.reg();
                on_body.push(Instr::If {
                    cond: turn_off,
                    then_body: vec![
                        Instr::Const { dst: zero, value: 0.0 },
                        Instr::StoreState { slot, src: zero },
                    ],
                    else_body: vec![],
                });
                // While off: check the switch-on threshold.
                let mut off_body = Vec::new();
                let on_t = ctx.const_reg(&mut off_body, on_threshold);
                let turn_on = ctx.binop(&mut off_body, BinopCode::Ge, u, on_t);
                ctx.single_cond_decision(
                    &mut off_body,
                    turn_on,
                    &format!("{label} (switch on)"),
                    "on",
                    "stay-off",
                );
                let one = ctx.reg();
                off_body.push(Instr::If {
                    cond: turn_on,
                    then_body: vec![
                        Instr::Const { dst: one, value: 1.0 },
                        Instr::StoreState { slot, src: one },
                    ],
                    else_body: vec![],
                });
                body.push(Instr::If { cond: on, then_body: on_body, else_body: off_body });
                let now_on = ctx.reg();
                body.push(Instr::LoadState { dst: now_on, slot });
                let y = ctx.reg();
                body.push(Instr::If {
                    cond: now_on,
                    then_body: vec![Instr::Const { dst: y, value: on_output }],
                    else_body: vec![Instr::Const { dst: y, value: off_output }],
                });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Quantizer { interval } => {
                let u = in_reg(&port_regs, b, 0);
                let step = ctx.const_reg(body, interval);
                let ratio = ctx.binop(body, BinopCode::Div, u, step);
                let func = FuncCode::from_builtin_name("round").expect("round is a builtin");
                let rounded = ctx.reg();
                body.push(Instr::Call { dst: rounded, func, args: vec![ratio] });
                let y = ctx.binop(body, BinopCode::Mul, step, rounded);
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::RateLimiter { rising, falling } => {
                let u = in_reg(&port_regs, b, 0);
                let slot = ctx.slot(0.0);
                let prev = ctx.reg();
                body.push(Instr::LoadState { dst: prev, slot });
                let delta = ctx.binop(body, BinopCode::Sub, u, prev);
                let y = ctx.reg();
                let r = ctx.const_reg(body, rising);
                let too_fast = ctx.binop(body, BinopCode::Gt, delta, r);
                ctx.single_cond_decision(
                    body,
                    too_fast,
                    &format!("{label} (rising limit)"),
                    "limited",
                    "pass",
                );
                let mut else_body = Vec::new();
                let nf = ctx.const_reg(&mut else_body, -falling);
                let too_slow = ctx.binop(&mut else_body, BinopCode::Lt, delta, nf);
                ctx.single_cond_decision(
                    &mut else_body,
                    too_slow,
                    &format!("{label} (falling limit)"),
                    "limited",
                    "pass",
                );
                let dn = ctx.reg();
                else_body.push(Instr::If {
                    cond: too_slow,
                    then_body: vec![
                        Instr::Binop { dst: dn, op: BinopCode::Add, lhs: prev, rhs: nf },
                        Instr::Copy { dst: y, src: dn },
                    ],
                    else_body: vec![Instr::Copy { dst: y, src: u }],
                });
                let up = ctx.reg();
                body.push(Instr::If {
                    cond: too_fast,
                    then_body: vec![
                        Instr::Binop { dst: up, op: BinopCode::Add, lhs: prev, rhs: r },
                        Instr::Copy { dst: y, src: up },
                    ],
                    else_body,
                });
                body.push(Instr::StoreState { slot, src: y });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Backlash { width, initial } => {
                let u = in_reg(&port_regs, b, 0);
                let slot = ctx.slot(initial);
                let y = ctx.reg();
                body.push(Instr::LoadState { dst: y, slot });
                let half = ctx.const_reg(body, width / 2.0);
                let hi_edge = ctx.binop(body, BinopCode::Add, y, half);
                let push_up = ctx.binop(body, BinopCode::Gt, u, hi_edge);
                ctx.single_cond_decision(
                    body,
                    push_up,
                    &format!("{label} (upper engage)"),
                    "engaged",
                    "free",
                );
                let mut else_body = Vec::new();
                let lo_edge = ctx.binop(&mut else_body, BinopCode::Sub, y, half);
                let push_dn = ctx.binop(&mut else_body, BinopCode::Lt, u, lo_edge);
                ctx.single_cond_decision(
                    &mut else_body,
                    push_dn,
                    &format!("{label} (lower engage)"),
                    "engaged",
                    "free",
                );
                let dn = ctx.reg();
                else_body.push(Instr::If {
                    cond: push_dn,
                    then_body: vec![
                        Instr::Binop { dst: dn, op: BinopCode::Add, lhs: u, rhs: half },
                        Instr::Copy { dst: y, src: dn },
                    ],
                    else_body: vec![],
                });
                let up = ctx.reg();
                body.push(Instr::If {
                    cond: push_up,
                    then_body: vec![
                        Instr::Binop { dst: up, op: BinopCode::Sub, lhs: u, rhs: half },
                        Instr::Copy { dst: y, src: up },
                    ],
                    else_body,
                });
                body.push(Instr::StoreState { slot, src: y });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::CoulombFriction { offset, gain } => {
                let u = in_reg(&port_regs, b, 0);
                let y = ctx.reg();
                let zero = ctx.const_reg(body, 0.0);
                let g = ctx.const_reg(body, gain);
                let c = ctx.const_reg(body, offset);
                let pos = ctx.binop(body, BinopCode::Gt, u, zero);
                ctx.single_cond_decision(body, pos, &format!("{label} (u > 0)"), "pos", "not-pos");
                let gu = ctx.reg();
                let y_pos = ctx.reg();
                let y_neg = ctx.reg();
                let mut else_body = Vec::new();
                let neg = ctx.binop(&mut else_body, BinopCode::Lt, u, zero);
                ctx.single_cond_decision(
                    &mut else_body,
                    neg,
                    &format!("{label} (u < 0)"),
                    "neg",
                    "zero",
                );
                else_body.push(Instr::If {
                    cond: neg,
                    then_body: vec![
                        Instr::Binop { dst: gu, op: BinopCode::Mul, lhs: g, rhs: u },
                        Instr::Binop { dst: y_neg, op: BinopCode::Sub, lhs: gu, rhs: c },
                        Instr::Copy { dst: y, src: y_neg },
                    ],
                    else_body: vec![Instr::Const { dst: y, value: 0.0 }],
                });
                body.push(Instr::If {
                    cond: pos,
                    then_body: vec![
                        Instr::Binop { dst: gu, op: BinopCode::Mul, lhs: g, rhs: u },
                        Instr::Binop { dst: y_pos, op: BinopCode::Add, lhs: gu, rhs: c },
                        Instr::Copy { dst: y, src: y_pos },
                    ],
                    else_body,
                });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Logic { op, inputs } => {
                // Mode (a): every input is a probed condition. Boolean
                // blocks compile branchless, so the decision is invisible
                // to code-level feedback (the Fuzz-Only ablation).
                let n = if op == LogicOp::Not { 1 } else { inputs };
                let decision = ctx.map.begin_branchless_decision(label.clone());
                let mut conds = Vec::with_capacity(n);
                for port in 0..n {
                    let raw = in_reg(&port_regs, b, port);
                    let c = ctx.unop(body, UnopCode::Truthy, raw);
                    let cond = ctx.map.add_condition(decision, format!("{label}: input {port}"));
                    body.push(Instr::CondProbe { cond, src: c });
                    conds.push(c);
                }
                let mut acc = conds[0];
                match op {
                    LogicOp::And | LogicOp::Nand => {
                        for &c in &conds[1..] {
                            acc = ctx.binop(body, BinopCode::And, acc, c);
                        }
                    }
                    LogicOp::Or | LogicOp::Nor => {
                        for &c in &conds[1..] {
                            acc = ctx.binop(body, BinopCode::Or, acc, c);
                        }
                    }
                    LogicOp::Xor => {
                        for &c in &conds[1..] {
                            acc = ctx.binop(body, BinopCode::Ne, acc, c);
                        }
                    }
                    LogicOp::Not => {}
                }
                let out = if matches!(op, LogicOp::Nand | LogicOp::Nor | LogicOp::Not) {
                    ctx.unop(body, UnopCode::Not, acc)
                } else {
                    acc
                };
                body.push(Instr::DecisionEval { decision, conds, outcome: out });
                let t = ctx.map.add_outcome(decision, format!("{label}: true"));
                let f = ctx.map.add_outcome(decision, format!("{label}: false"));
                body.push(Instr::If {
                    cond: out,
                    then_body: vec![Instr::Probe { branch: t }],
                    else_body: vec![Instr::Probe { branch: f }],
                });
                body.push(Instr::Copy { dst: port_regs[b][0], src: out });
            }
            BlockKind::Relational { op } => {
                let l = in_reg(&port_regs, b, 0);
                let r = in_reg(&port_regs, b, 1);
                let code = rel_to_binop(op);
                let c = ctx.binop(body, code, l, r);
                ctx.single_cond_branchless_decision(body, c, &label, "true", "false");
                body.push(Instr::Copy { dst: port_regs[b][0], src: c });
            }
            BlockKind::Compare { op, constant } => {
                let u = in_reg(&port_regs, b, 0);
                let k = ctx.const_reg(body, constant);
                let code = rel_to_binop(op);
                let c = ctx.binop(body, code, u, k);
                ctx.single_cond_branchless_decision(body, c, &label, "true", "false");
                body.push(Instr::Copy { dst: port_regs[b][0], src: c });
            }
            BlockKind::Switch { criterion } => {
                // Mode (b): one probe per data-selection branch.
                let ctrl = in_reg(&port_regs, b, 1);
                let c = match criterion {
                    SwitchCriterion::GreaterEqual(t) => {
                        let k = ctx.const_reg(body, t);
                        ctx.binop(body, BinopCode::Ge, ctrl, k)
                    }
                    SwitchCriterion::Greater(t) => {
                        let k = ctx.const_reg(body, t);
                        ctx.binop(body, BinopCode::Gt, ctrl, k)
                    }
                    SwitchCriterion::NotZero => ctx.unop(body, UnopCode::Truthy, ctrl),
                };
                ctx.single_cond_decision(body, c, &label, "pass-first", "pass-third");
                let first = in_reg(&port_regs, b, 0);
                let third = in_reg(&port_regs, b, 2);
                let y = ctx.reg();
                body.push(Instr::If {
                    cond: c,
                    then_body: vec![Instr::Copy { dst: y, src: first }],
                    else_body: vec![Instr::Copy { dst: y, src: third }],
                });
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::MultiportSwitch { cases } => {
                let sel = in_reg(&port_regs, b, 0);
                let func = FuncCode::from_builtin_name("round").expect("round is a builtin");
                let r = ctx.reg();
                body.push(Instr::Call { dst: r, func, args: vec![sel] });
                // Clamp to [1, cases]; NaN normalizes to 1.
                let one = ctx.const_reg(body, 1.0);
                let ge1 = ctx.binop(body, BinopCode::Ge, r, one);
                let not_ge1 = ctx.unop(body, UnopCode::Not, ge1);
                body.push(Instr::If {
                    cond: not_ge1,
                    then_body: vec![Instr::Copy { dst: r, src: one }],
                    else_body: vec![],
                });
                let max = ctx.const_reg(body, cases as f64);
                let too_big = ctx.binop(body, BinopCode::Gt, r, max);
                body.push(Instr::If {
                    cond: too_big,
                    then_body: vec![Instr::Copy { dst: r, src: max }],
                    else_body: vec![],
                });
                // Dispatch decision: one outcome per data input (mode b).
                let decision = ctx.map.begin_decision(label.clone());
                let outcomes: Vec<_> = (1..=cases)
                    .map(|k| ctx.map.add_outcome(decision, format!("{label}: case {k}")))
                    .collect();
                let y = ctx.reg();
                let mut chain: Vec<Instr> = vec![
                    Instr::Probe { branch: outcomes[cases - 1] },
                    Instr::Copy { dst: y, src: in_reg(&port_regs, b, cases) },
                ];
                for k in (1..cases).rev() {
                    let kk = ctx.const_reg(body, k as f64);
                    let is_k = ctx.binop(body, BinopCode::Eq, r, kk);
                    chain = vec![Instr::If {
                        cond: is_k,
                        then_body: vec![
                            Instr::Probe { branch: outcomes[k - 1] },
                            Instr::Copy { dst: y, src: in_reg(&port_regs, b, k) },
                        ],
                        else_body: chain,
                    }];
                }
                body.extend(chain);
                let cast = ctx.cast(body, y, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::Merge { inputs } => {
                let slot = ctx.slot(0.0);
                let mut chain: Vec<Instr> = Vec::new();
                for port in (0..inputs).rev() {
                    let src = input_of(model, b, port);
                    let act = activity[src.block.index()]
                        .expect("merge inputs come from already-compiled subsystems");
                    let v = in_reg(&port_regs, b, port);
                    chain = vec![Instr::If {
                        cond: act,
                        then_body: vec![Instr::StoreState { slot, src: v }],
                        else_body: chain,
                    }];
                }
                body.extend(chain);
                let raw = ctx.reg();
                body.push(Instr::LoadState { dst: raw, slot });
                let cast = ctx.cast(body, raw, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::DataTypeConversion { to } => {
                let u = in_reg(&port_regs, b, 0);
                let cast = ctx.cast(body, u, to);
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::ZeroOrderHold => {
                let u = in_reg(&port_regs, b, 0);
                body.push(Instr::Copy { dst: port_regs[b][0], src: u });
            }
            BlockKind::CounterLimited { limit } => {
                let slot = ctx.slot(0.0);
                let c = ctx.reg();
                body.push(Instr::LoadState { dst: c, slot });
                let lim = ctx.const_reg(body, f64::from(limit));
                let wrap = ctx.binop(body, BinopCode::Ge, c, lim);
                ctx.single_cond_decision(body, wrap, &format!("{label} (wrap)"), "wrap", "count");
                let zero = ctx.reg();
                let one = ctx.const_reg(body, 1.0);
                let next = ctx.reg();
                body.push(Instr::If {
                    cond: wrap,
                    then_body: vec![
                        Instr::Const { dst: zero, value: 0.0 },
                        Instr::StoreState { slot, src: zero },
                    ],
                    else_body: vec![
                        Instr::Binop { dst: next, op: BinopCode::Add, lhs: c, rhs: one },
                        Instr::StoreState { slot, src: next },
                    ],
                });
                let cast = ctx.cast(body, c, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::CounterFreeRunning { bits } => {
                let slot = ctx.slot(0.0);
                let c = ctx.reg();
                body.push(Instr::LoadState { dst: c, slot });
                let one = ctx.const_reg(body, 1.0);
                let next = ctx.binop(body, BinopCode::Add, c, one);
                let modulus = ctx.const_reg(body, (1u64 << bits.min(32)) as f64);
                let wrapped = ctx.binop(body, BinopCode::Rem, next, modulus);
                body.push(Instr::StoreState { slot, src: wrapped });
                let cast = ctx.cast(body, c, out_ty(0));
                body.push(Instr::Copy { dst: port_regs[b][0], src: cast });
            }
            BlockKind::EdgeDetect { kind } => {
                let u = in_reg(&port_regs, b, 0);
                let slot = ctx.slot(0.0);
                let curr = ctx.unop(body, UnopCode::Truthy, u);
                let prev = ctx.reg();
                body.push(Instr::LoadState { dst: prev, slot });
                let y = match kind {
                    EdgeKind::Rising => {
                        let np = ctx.unop(body, UnopCode::Not, prev);
                        ctx.binop(body, BinopCode::And, np, curr)
                    }
                    EdgeKind::Falling => {
                        let nc = ctx.unop(body, UnopCode::Not, curr);
                        ctx.binop(body, BinopCode::And, prev, nc)
                    }
                    EdgeKind::Either => ctx.binop(body, BinopCode::Ne, prev, curr),
                };
                body.push(Instr::StoreState { slot, src: curr });
                ctx.single_cond_branchless_decision(body, y, &label, "edge", "no-edge");
                body.push(Instr::Copy { dst: port_regs[b][0], src: y });
            }
            BlockKind::Lookup1D { breakpoints, values } => {
                let u = in_reg(&port_regs, b, 0);
                let table = ctx.tables1.len();
                ctx.tables1.push((breakpoints, values));
                body.push(Instr::Lookup1 { dst: port_regs[b][0], src: u, table });
            }
            BlockKind::Lookup2D { row_breaks, col_breaks, values } => {
                let r = in_reg(&port_regs, b, 0);
                let c = in_reg(&port_regs, b, 1);
                let table = ctx.tables2.len();
                ctx.tables2.push((row_breaks, col_breaks, values));
                body.push(Instr::Lookup2 { dst: port_regs[b][0], row: r, col: c, table });
            }
            BlockKind::If { num_inputs, conditions, has_else } => {
                // Mode (c): the action dispatch is a multi-outcome decision;
                // each condition expression is additionally its own boolean
                // decision, evaluated lazily exactly like the generated C.
                let mut scope = Scope::new();
                for port in 0..num_inputs {
                    scope.bind_reg(&format!("u{}", port + 1), in_reg(&port_regs, b, port), None);
                }
                let dispatch = ctx.map.begin_decision(format!("{label} (action)"));
                let n_out = conditions.len() + usize::from(has_else);
                let outcomes: Vec<_> = (0..n_out)
                    .map(|i| {
                        let what = if i < conditions.len() {
                            format!("action {i}")
                        } else {
                            "else action".to_string()
                        };
                        ctx.map.add_outcome(dispatch, format!("{label}: {what}"))
                    })
                    .collect();
                for &dst in port_regs[b].iter().take(n_out) {
                    body.push(Instr::Const { dst, value: 0.0 });
                }
                let mut chain: Vec<Instr> = if has_else {
                    vec![
                        Instr::Probe { branch: outcomes[conditions.len()] },
                        Instr::Const { dst: port_regs[b][conditions.len()], value: 1.0 },
                    ]
                } else {
                    Vec::new()
                };
                for (i, cond_expr) in conditions.iter().enumerate().rev() {
                    let mut arm = Vec::new();
                    let c = lower_decision(
                        ctx,
                        &mut arm,
                        &scope,
                        cond_expr,
                        &format!("{label} (condition {i})"),
                    );
                    arm.push(Instr::If {
                        cond: c,
                        then_body: vec![
                            Instr::Probe { branch: outcomes[i] },
                            Instr::Const { dst: port_regs[b][i], value: 1.0 },
                        ],
                        else_body: chain,
                    });
                    chain = arm;
                }
                body.extend(chain);
            }
            BlockKind::SwitchCase { cases, has_default } => {
                let sel_raw = in_reg(&port_regs, b, 0);
                let func = FuncCode::from_builtin_name("round").expect("round is a builtin");
                let sel = ctx.reg();
                body.push(Instr::Call { dst: sel, func, args: vec![sel_raw] });
                let dispatch = ctx.map.begin_decision(format!("{label} (case)"));
                let n_out = cases.len() + usize::from(has_default);
                let outcomes: Vec<_> = (0..n_out)
                    .map(|i| {
                        let what = if i < cases.len() {
                            format!("case {:?}", cases[i])
                        } else {
                            "default".to_string()
                        };
                        ctx.map.add_outcome(dispatch, format!("{label}: {what}"))
                    })
                    .collect();
                for &dst in port_regs[b].iter().take(n_out) {
                    body.push(Instr::Const { dst, value: 0.0 });
                }
                let mut chain: Vec<Instr> = if has_default {
                    vec![
                        Instr::Probe { branch: outcomes[cases.len()] },
                        Instr::Const { dst: port_regs[b][cases.len()], value: 1.0 },
                    ]
                } else {
                    Vec::new()
                };
                for (i, labels) in cases.iter().enumerate().rev() {
                    let mut arm = Vec::new();
                    let mut hit: Option<Reg> = None;
                    for &l in labels {
                        let k = ctx.const_reg(&mut arm, l as f64);
                        let eq = ctx.binop(&mut arm, BinopCode::Eq, sel, k);
                        hit = Some(match hit {
                            None => eq,
                            Some(prev) => ctx.binop(&mut arm, BinopCode::Or, prev, eq),
                        });
                    }
                    let hit = hit.expect("validated cases are non-empty");
                    arm.push(Instr::If {
                        cond: hit,
                        then_body: vec![
                            Instr::Probe { branch: outcomes[i] },
                            Instr::Const { dst: port_regs[b][i], value: 1.0 },
                        ],
                        else_body: chain,
                    });
                    chain = arm;
                }
                body.extend(chain);
            }
            BlockKind::ActionSubsystem { model: inner } => {
                let act = in_reg(&port_regs, b, 0);
                compile_conditional_subsystem(
                    ctx, body, &inner, b, act, &port_regs, model, &label,
                )?;
                activity[b] = Some(act);
            }
            BlockKind::EnabledSubsystem { model: inner } => {
                let raw = in_reg(&port_regs, b, 0);
                let act = ctx.unop(body, UnopCode::Truthy, raw);
                ctx.single_cond_decision(
                    body,
                    act,
                    &format!("{label} (enable)"),
                    "enabled",
                    "disabled",
                );
                compile_conditional_subsystem(
                    ctx, body, &inner, b, act, &port_regs, model, &label,
                )?;
                activity[b] = Some(act);
            }
            BlockKind::TriggeredSubsystem { model: inner, edge } => {
                let raw = in_reg(&port_regs, b, 0);
                let trig = ctx.unop(body, UnopCode::Truthy, raw);
                let slot = ctx.slot(0.0);
                let prev = ctx.reg();
                body.push(Instr::LoadState { dst: prev, slot });
                let act = match edge {
                    EdgeKind::Rising => {
                        let np = ctx.unop(body, UnopCode::Not, prev);
                        ctx.binop(body, BinopCode::And, np, trig)
                    }
                    EdgeKind::Falling => {
                        let nt = ctx.unop(body, UnopCode::Not, trig);
                        ctx.binop(body, BinopCode::And, prev, nt)
                    }
                    EdgeKind::Either => ctx.binop(body, BinopCode::Ne, prev, trig),
                };
                body.push(Instr::StoreState { slot, src: trig });
                ctx.single_cond_decision(body, act, &format!("{label} (trigger)"), "fired", "idle");
                compile_conditional_subsystem(
                    ctx, body, &inner, b, act, &port_regs, model, &label,
                )?;
                activity[b] = Some(act);
            }
            BlockKind::Subsystem { model: inner } => {
                let data: Vec<Reg> =
                    (0..inner.num_inports()).map(|i| in_reg(&port_regs, b, i)).collect();
                let outs = compile_region(ctx, body, &inner, &data, &label)?;
                for (port, src) in outs.into_iter().enumerate() {
                    body.push(Instr::Copy { dst: port_regs[b][port], src });
                }
            }
            BlockKind::MatlabFunction { function } => {
                let mut scope = Scope::new();
                for (port, (name, ty)) in function.inputs().iter().enumerate() {
                    let raw = in_reg(&port_regs, b, port);
                    let cast = ctx.cast(body, raw, *ty);
                    scope.bind_reg(name, cast, Some(*ty));
                }
                for (name, ty) in function.outputs() {
                    let r = ctx.reg();
                    body.push(Instr::Const { dst: r, value: 0.0 });
                    scope.bind_reg(name, r, Some(*ty));
                }
                lower_stmts(ctx, body, &mut scope, function.body(), &label);
                for (port, (name, _)) in function.outputs().iter().enumerate() {
                    let binding = scope.get(name).expect("outputs pre-bound");
                    let src = match binding.place {
                        crate::lower::Place::Reg(r) => r,
                        crate::lower::Place::Slot(_) => unreachable!("outputs are registers"),
                    };
                    let cast = ctx.cast(body, src, out_ty(port));
                    body.push(Instr::Copy { dst: port_regs[b][port], src: cast });
                }
            }
            BlockKind::Chart { chart } => {
                compile_chart(ctx, body, &chart, b, &port_regs, model, &label, &types)?;
            }
            other => unreachable!("unhandled block kind {}", other.tag()),
        }
        // Signal table entries for this block's output ports. Recursive
        // `compile_region` calls inside the arm above have already pushed
        // the inner region's signals, so a container's own ports always
        // follow its children — the same order the interpreter enumerates.
        for (port, &reg) in port_regs[b].iter().enumerate() {
            ctx.signals.push(SignalMeta {
                name: format!("{label}:{port}"),
                dtype: out_ty(port),
                reg,
            });
        }
    }

    // Epilogue: delay-class state updates.
    for &(b, base) in &delay_slots {
        let u = in_reg(&port_regs, b, 0);
        match model.blocks()[b].kind() {
            BlockKind::UnitDelay { initial } | BlockKind::Memory { initial } => {
                let cast = ctx.cast(body, u, initial.data_type());
                body.push(Instr::StoreState { slot: base, src: cast });
            }
            BlockKind::Delay { steps, initial } => {
                let cast = ctx.cast(body, u, initial.data_type());
                body.push(Instr::ShiftState { base, len: *steps, src: cast });
            }
            BlockKind::DiscreteIntegrator { gain, lower, upper, .. } => {
                let label = format!("{path}/{}", model.blocks()[b].name());
                let x = ctx.reg();
                body.push(Instr::LoadState { dst: x, slot: base });
                let g = ctx.const_reg(body, *gain);
                let gu = ctx.binop(body, BinopCode::Mul, g, u);
                let next = ctx.binop(body, BinopCode::Add, x, gu);
                if let Some(hi) = upper {
                    let k = ctx.const_reg(body, *hi);
                    let over = ctx.binop(body, BinopCode::Gt, next, k);
                    ctx.single_cond_decision(
                        body,
                        over,
                        &format!("{label} (upper limit)"),
                        "clipped",
                        "pass",
                    );
                    body.push(Instr::If {
                        cond: over,
                        then_body: vec![Instr::Copy { dst: next, src: k }],
                        else_body: vec![],
                    });
                }
                if let Some(lo) = lower {
                    let k = ctx.const_reg(body, *lo);
                    let under = ctx.binop(body, BinopCode::Lt, next, k);
                    ctx.single_cond_decision(
                        body,
                        under,
                        &format!("{label} (lower limit)"),
                        "clipped",
                        "pass",
                    );
                    body.push(Instr::If {
                        cond: under,
                        then_body: vec![Instr::Copy { dst: next, src: k }],
                        else_body: vec![],
                    });
                }
                body.push(Instr::StoreState { slot: base, src: next });
            }
            other => unreachable!("delay-class kind {}", other.tag()),
        }
    }

    // Collect outport sources.
    let mut outs = Vec::new();
    for (id, _) in model.outports() {
        let src = model.source_of(PortRef::new(id, 0)).expect("validated outports are connected");
        outs.push(port_regs[src.block.index()][src.port]);
    }
    Ok(outs)
}

/// Compiles a conditionally-executed subsystem: `If (act) { region; hold }`.
#[allow(clippy::too_many_arguments)]
fn compile_conditional_subsystem(
    ctx: &mut Ctx,
    body: &mut Vec<Instr>,
    inner: &Model,
    b: usize,
    act: Reg,
    port_regs: &[Vec<Reg>],
    model: &Model,
    label: &str,
) -> Result<(), CompileError> {
    let data: Vec<Reg> = (0..inner.num_inports())
        .map(|i| {
            let src = model
                .source_of(PortRef::new(model.blocks()[b].id(), 1 + i))
                .expect("validated inputs are connected");
            port_regs[src.block.index()][src.port]
        })
        .collect();
    let held: Vec<usize> = (0..inner.num_outports()).map(|_| ctx.slot(0.0)).collect();
    let mut region = Vec::new();
    let outs = compile_region(ctx, &mut region, inner, &data, label)?;
    for (slot, src) in held.iter().zip(outs) {
        region.push(Instr::StoreState { slot: *slot, src });
    }
    body.push(Instr::If { cond: act, then_body: region, else_body: vec![] });
    for (port, slot) in held.into_iter().enumerate() {
        body.push(Instr::LoadState { dst: port_regs[b][port], slot });
    }
    Ok(())
}

/// Compiles a chart block: state dispatch decision + guarded transitions +
/// instrumented actions.
#[allow(clippy::too_many_arguments)]
fn compile_chart(
    ctx: &mut Ctx,
    body: &mut Vec<Instr>,
    chart: &cftcg_model::Chart,
    b: usize,
    port_regs: &[Vec<Reg>],
    model: &Model,
    label: &str,
    types: &cftcg_model::TypeMap,
) -> Result<(), CompileError> {
    // Compile-time initial environment: chart variables + outputs after the
    // initial state's entry action (mirrors the interpreter's init).
    let mut env = MapEnv::new();
    for (name, _, init) in &chart.variables {
        env.set(name, *init);
    }
    for (name, ty) in &chart.outputs {
        env.set(name, ty.zero());
    }
    exec_stmts(&chart.states[chart.initial].entry, &mut env)
        .map_err(|e| CompileError::ChartInit { block: label.to_string(), detail: e.to_string() })?;

    let active_slot = ctx.slot(chart.initial as f64);
    let mut scope = Scope::new();
    for (port, (name, ty)) in chart.inputs.iter().enumerate() {
        let src = model
            .source_of(PortRef::new(model.blocks()[b].id(), port))
            .expect("validated inputs are connected");
        let raw = port_regs[src.block.index()][src.port];
        let cast = ctx.cast(body, raw, *ty);
        scope.bind_reg(name, cast, Some(*ty));
    }
    for (name, ty, _) in &chart.variables {
        let init = env.get(name).expect("seeded above").as_f64();
        let slot = ctx.slot(init);
        scope.bind_slot(name, slot, *ty);
    }
    let mut out_slots = Vec::new();
    for (name, ty) in &chart.outputs {
        let init = env.get(name).expect("seeded above").as_f64();
        let slot = ctx.slot(init);
        scope.bind_slot(name, slot, *ty);
        out_slots.push(slot);
    }

    let active = ctx.reg();
    body.push(Instr::LoadState { dst: active, slot: active_slot });

    // State dispatch: a multi-outcome decision over the active state.
    let dispatch = ctx.map.begin_decision(format!("{label} (state)"));
    let state_probes: Vec<_> = chart
        .states
        .iter()
        .map(|s| ctx.map.add_outcome(dispatch, format!("{label}: state {}", s.name)))
        .collect();

    // Build per-state bodies, innermost states first for the else chain.
    let mut chain: Vec<Instr> = Vec::new();
    for (s, state) in chart.states.iter().enumerate().rev() {
        let mut state_body = vec![Instr::Probe { branch: state_probes[s] }];
        // Transition chain for this state, in priority order.
        let transitions: Vec<_> = chart.transitions_from(s).cloned().collect();
        let mut t_chain: Vec<Instr> = {
            // Fallback: no transition fired → during action.
            let mut during = Vec::new();
            lower_stmts(ctx, &mut during, &mut scope.clone(), &state.during, label);
            during
        };
        for (ti, t) in transitions.iter().enumerate().rev() {
            let mut arm = Vec::new();
            let fire = match &t.guard {
                Some(g) => lower_decision(
                    ctx,
                    &mut arm,
                    &scope,
                    g,
                    &format!("{label} ({} -> {} guard {ti})", state.name, chart.states[t.to].name),
                ),
                None => {
                    let one = ctx.reg();
                    arm.push(Instr::Const { dst: one, value: 1.0 });
                    one
                }
            };
            let mut fire_body = Vec::new();
            lower_stmts(ctx, &mut fire_body, &mut scope.clone(), &t.action, label);
            lower_stmts(ctx, &mut fire_body, &mut scope.clone(), &chart.states[t.to].entry, label);
            let target = ctx.reg();
            fire_body.push(Instr::Const { dst: target, value: t.to as f64 });
            fire_body.push(Instr::StoreState { slot: active_slot, src: target });
            arm.push(Instr::If { cond: fire, then_body: fire_body, else_body: t_chain });
            t_chain = arm;
        }
        state_body.extend(t_chain);

        if s == 0 {
            // Outermost arm of the dispatch chain.
            chain = if chart.states.len() == 1 {
                state_body
            } else {
                let k = ctx.const_reg(body, 0.0);
                let is_s = ctx.binop(body, BinopCode::Eq, active, k);
                vec![Instr::If { cond: is_s, then_body: state_body, else_body: chain }]
            };
        } else if s == chart.states.len() - 1 {
            chain = state_body; // innermost else: the last state
        } else {
            let mut cond_ir = Vec::new();
            let k = ctx.const_reg(&mut cond_ir, s as f64);
            let is_s = ctx.binop(&mut cond_ir, BinopCode::Eq, active, k);
            cond_ir.push(Instr::If { cond: is_s, then_body: state_body, else_body: chain });
            chain = cond_ir;
        }
    }
    body.extend(chain);

    // Publish outputs.
    let out_ty = |port: usize| types.output_type(PortRef::new(model.blocks()[b].id(), port));
    for (port, slot) in out_slots.into_iter().enumerate() {
        let raw = ctx.reg();
        body.push(Instr::LoadState { dst: raw, slot });
        let cast = ctx.cast(body, raw, out_ty(port));
        body.push(Instr::Copy { dst: port_regs[b][port], src: cast });
    }
    Ok(())
}

fn rel_to_binop(op: cftcg_model::RelOp) -> BinopCode {
    match op {
        cftcg_model::RelOp::Eq => BinopCode::Eq,
        cftcg_model::RelOp::Ne => BinopCode::Ne,
        cftcg_model::RelOp::Lt => BinopCode::Lt,
        cftcg_model::RelOp::Le => BinopCode::Le,
        cftcg_model::RelOp::Gt => BinopCode::Gt,
        cftcg_model::RelOp::Ge => BinopCode::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_model::{DataType, ModelBuilder};

    #[test]
    fn compile_simple_model() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let sat = b.add("sat", BlockKind::Saturation { lower: 0.0, upper: 1.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        let model = b.finish().unwrap();
        let compiled = compile(&model).unwrap();
        // Saturation: 2 decisions × 2 outcomes = 4 branch probes.
        assert_eq!(compiled.map().branch_count(), 4);
        assert_eq!(compiled.map().decision_count(), 2);
        assert_eq!(compiled.map().condition_count(), 2);
        assert_eq!(compiled.input_types(), &[DataType::F64]);
        assert_eq!(compiled.output_types(), &[DataType::F64]);
        assert!(compiled.instr_count() > 5);
        assert_eq!(compiled.layout().tuple_size(), 8);
    }

    #[test]
    fn invalid_model_is_rejected() {
        let mut b = ModelBuilder::new("m");
        b.add("g", BlockKind::Gain { gain: 1.0 });
        let model = b.finish_unchecked();
        assert!(matches!(compile(&model), Err(CompileError::Model(_))));
    }

    #[test]
    fn logic_block_instrumentation_counts() {
        let mut b = ModelBuilder::new("m");
        let a = b.inport("a", DataType::Bool);
        let c = b.inport("c", DataType::Bool);
        let and = b.add("and", BlockKind::Logic { op: LogicOp::And, inputs: 2 });
        let y = b.outport("y");
        b.connect(a, 0, and, 0);
        b.connect(c, 0, and, 1);
        b.wire(and, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();
        // One decision, two outcomes, two conditions.
        assert_eq!(compiled.map().decision_count(), 1);
        assert_eq!(compiled.map().branch_count(), 2);
        assert_eq!(compiled.map().condition_count(), 2);
    }

    #[test]
    fn error_display() {
        let e = CompileError::ChartInit { block: "m/c".into(), detail: "boom".into() };
        assert!(e.to_string().contains("m/c"));
    }
}
