//! Replaying finished test suites for coverage scoring — the reproduction's
//! equivalent of converting test cases to CSV and replaying them through
//! Simulink's coverage tool for a fair cross-tool comparison.

use cftcg_coverage::{CoverageReport, FullTracker};

use crate::compile::CompiledModel;
use crate::layout::TestCase;
use crate::vm::Executor;

/// Replays one test case into an existing tracker. Returns the number of
/// model iterations executed.
pub fn replay_case(compiled: &CompiledModel, case: &TestCase, tracker: &mut FullTracker) -> usize {
    let mut exec = Executor::new(compiled);
    exec.run_case(case, tracker)
}

/// Replays a whole suite and scores it.
///
/// Every case starts from freshly initialized model state (`Model_init()`),
/// as the paper's fuzz driver does per input.
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use cftcg_codegen::{compile, replay_suite, TestCase};
/// use cftcg_model::{BlockKind, DataType, ModelBuilder};
///
/// let mut b = ModelBuilder::new("m");
/// let u = b.inport("u", DataType::U8);
/// let sat = b.add("sat", BlockKind::Saturation { lower: 10.0, upper: 20.0 });
/// let y = b.outport("y");
/// b.wire(u, sat);
/// b.wire(sat, y);
/// let compiled = compile(&b.finish()?)?;
///
/// let suite = vec![TestCase::new(vec![0, 15, 255])]; // three 1-byte tuples
/// let report = replay_suite(&compiled, &suite);
/// assert_eq!(report.decision.percent(), 100.0);
/// # Ok(())
/// # }
/// ```
pub fn replay_suite(compiled: &CompiledModel, suite: &[TestCase]) -> CoverageReport {
    let mut tracker = FullTracker::new(compiled.map());
    let mut exec = Executor::new(compiled);
    for case in suite {
        exec.run_case(case, &mut tracker);
    }
    CoverageReport::score(compiled.map(), &tracker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use cftcg_model::{BlockKind, DataType, ModelBuilder, Value};

    #[test]
    fn replay_accumulates_across_cases() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::I8);
        let cmp = b.add("cmp", BlockKind::Compare { op: cftcg_model::RelOp::Gt, constant: 0.0 });
        let y = b.outport("y");
        b.wire(u, cmp);
        b.wire(cmp, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();

        let pos = TestCase::new(Value::I8(5).to_le_bytes());
        let neg = TestCase::new(Value::I8(-5).to_le_bytes());
        let half = replay_suite(&compiled, std::slice::from_ref(&pos));
        assert_eq!(half.decision.covered, 1);
        let full = replay_suite(&compiled, &[pos, neg]);
        assert_eq!(full.decision.covered, 2);
        assert_eq!(full.condition.percent(), 100.0);
        assert_eq!(full.mcdc.percent(), 100.0);
    }

    #[test]
    fn state_resets_between_cases() {
        // Counter wraps at 2; a case of 3 iterations hits the wrap branch,
        // but two separate short cases must not (state resets).
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::U8);
        let t = b.add("t", BlockKind::Terminator);
        b.wire(u, t);
        let c = b.add("cnt", BlockKind::CounterLimited { limit: 2 });
        let y = b.outport("y");
        b.wire(c, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();

        let long = vec![TestCase::new(vec![0, 0, 0])];
        let report = replay_suite(&compiled, &long);
        assert_eq!(report.decision.percent(), 100.0); // wrap + count

        let short = vec![TestCase::new(vec![0]), TestCase::new(vec![0, 0])];
        let report = replay_suite(&compiled, &short);
        assert!(report.decision.percent() < 100.0); // wrap never reached
    }
}
