//! The flattening back-end: lowers the structured step-IR into one linear
//! instruction array executed by a non-recursive, jump-threaded loop.
//!
//! The structured tree is pleasant to build and optimize but slow to run:
//! every `If` recurses, every `Call` chases a heap-allocated operand `Vec`,
//! and relational binops re-test their opcode on every execution. The flat
//! encoding fixes all three, then squeezes the hot loop further:
//!
//! * nested `If` arms become **relative forward jumps**
//!   ([`FlatOp::JumpIfZero`] / [`FlatOp::JumpIfNonZero`] / [`FlatOp::Jump`],
//!   `pc = pc + 1 + skip`), so dispatch is a single flat loop;
//! * call operands are stored **inline** as `[RegW; 3]` (the IR's maximum
//!   arity), eliminating the per-call pointer chase;
//! * small decision-condition lists (≤ 3, the overwhelmingly common case)
//!   are inlined the same way, with a side pool for wider decisions;
//! * relational comparisons get their own opcode ([`FlatOp::BinopCmp`]),
//!   selected once at lowering time via [`BinopCode::is_relational`]
//!   instead of a per-execution `matches!` test;
//! * every op is **12 bytes**: register operands, ids, and jump offsets
//!   narrow to `u16` (checked at lowering time — a compacted register
//!   file is far below 65 536 entries) and `f64` immediates move to a
//!   deduplicated constant pool, so four ops share a cache line where the
//!   structured tree fits barely one `Instr`;
//! * the two instrumentation shapes every decision point emits are
//!   **fused**: `CondProbe` + single-condition `DecisionEval` on the same
//!   register becomes [`FlatOp::Decision1`], and the universal
//!   `If { Probe } else { Probe }` outcome pattern becomes
//!   [`FlatOp::ProbeSelect`] — turning the six-dispatch instrumentation
//!   preamble of a decision into three;
//! * beyond those, a catalog of **profile-driven pair fusions** collapses
//!   the adjacent-op pairs that dominate *executed* (not static) dispatch
//!   counts on the bundled benchmark models: paired loads/stores/consts/
//!   probes ([`FlatOp::Load2`], [`FlatOp::StoreState2`], [`FlatOp::Const2`],
//!   [`FlatOp::CondProbe2`]), cast/copy chains ([`FlatOp::CastSatCopy`],
//!   [`FlatOp::CopyCastSat`]), relational compares feeding a guard or a
//!   whole decision preamble ([`FlatOp::CmpJump`], [`FlatOp::CmpSel`]),
//!   state loads beside a guard ([`FlatOp::LoadJz`], [`FlatOp::JzLoad`]),
//!   a decision dispatch followed by the branch-entry guard on its outcome
//!   ([`FlatOp::DecisionSelJz`]), and nested one-armed guards
//!   ([`FlatOp::JzJz`]). Static histograms mislead here — cold chart-store
//!   blocks inflate them — so the catalog was chosen from dynamic
//!   (executed-op) profiles; the `flat_histo` bench binary prints both.
//!
//! Fusion never reorders or drops recorder events: every fused op replays
//! the exact event sequence of its constituents — `Decision1` performs the
//! same `condition` → `decision_eval` call sequence, `CmpSel` replays
//! `compare` → `condition` → `decision_eval` → `branch`, and `ProbeSelect`
//! fires exactly the one `branch` event the taken arm would have. Two
//! structural guards keep pair fusion sound: backward fusion (popping the
//! previous op into a guard) stops at a *fence* just past any
//! already-lowered `If`, because a patched inner jump may target the seam;
//! and `CondProbe` pairing yields to a following `Decision1`/`DecisionSel`
//! fusion rather than stealing its head probe.

use cftcg_model::DataType;

use crate::ir::{BinopCode, FuncCode, Instr, Reg, UnopCode};

/// Maximum inline operand count — the IR's maximum call arity, reused for
/// inline decision-condition lists.
pub(crate) const MAX_INLINE: usize = 3;

/// A flat-encoded register operand. The mid-end's register compaction
/// keeps files dense and small, so 16 bits are plenty; [`flatten`] checks.
pub(crate) type RegW = u16;

/// One flat-encoded instruction. Mirrors [`Instr`] minus `If`, plus the
/// three jump forms and the relational/decision/probe specializations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum FlatOp {
    /// `regs[dst] = const_pool[idx]`.
    Const {
        dst: RegW,
        idx: u16,
    },
    /// Two constant materializations in one dispatch.
    Const2 {
        dst1: RegW,
        idx1: u16,
        dst2: RegW,
        idx2: u16,
    },
    Copy {
        dst: RegW,
        src: RegW,
    },
    Input {
        dst: RegW,
        index: u16,
    },
    Output {
        index: u16,
        src: RegW,
    },
    Unop {
        dst: RegW,
        op: UnopCode,
        src: RegW,
    },
    /// A non-relational binop: pure arithmetic, no recorder interaction.
    Binop {
        dst: RegW,
        op: BinopCode,
        lhs: RegW,
        rhs: RegW,
    },
    /// A relational binop: fires `Recorder::compare` before applying.
    BinopCmp {
        dst: RegW,
        op: BinopCode,
        lhs: RegW,
        rhs: RegW,
    },
    /// [`FlatOp::BinopCmp`] fused with the `JumpIfZero` testing its result
    /// — the relational guard of an `if` with a real body. Fires the same
    /// `compare` event and still writes `dst` (later reads and signal
    /// probes see it); `skip` is relative to the next op, like all jumps.
    CmpJump {
        op: BinopCode,
        dst: RegW,
        lhs: RegW,
        rhs: RegW,
        skip: u16,
    },
    Call {
        dst: RegW,
        func: FuncCode,
        argc: u8,
        args: [RegW; MAX_INLINE],
    },
    CastSat {
        dst: RegW,
        src: RegW,
        ty: DataType,
    },
    /// [`FlatOp::CastSat`] whose result is immediately copied to a second
    /// register (the block-output + signal-register shape every saturating
    /// block lowers to): one dispatch, both registers written.
    CastSatCopy {
        dst: RegW,
        src: RegW,
        ty: DataType,
        dst2: RegW,
    },
    /// `Copy` whose destination immediately feeds a [`FlatOp::CastSat`]:
    /// `regs[dst] = regs[src]; regs[dst2] = cast(regs[dst])`.
    CopyCastSat {
        dst: RegW,
        src: RegW,
        dst2: RegW,
        ty: DataType,
    },
    LoadState {
        dst: RegW,
        slot: u16,
    },
    /// Two adjacent state loads in one dispatch.
    Load2 {
        dst1: RegW,
        slot1: u16,
        dst2: RegW,
        slot2: u16,
    },
    StoreState {
        slot: u16,
        src: RegW,
    },
    /// Two adjacent state stores in one dispatch (applied in order) — the
    /// most common adjacent pair in chart-heavy models, where transition
    /// actions write several chart variables back to back.
    StoreState2 {
        slot1: u16,
        src1: RegW,
        slot2: u16,
        src2: RegW,
    },
    ShiftState {
        base: u32,
        len: u32,
        src: RegW,
    },
    Lookup1 {
        dst: RegW,
        src: RegW,
        table: u16,
    },
    Lookup2 {
        dst: RegW,
        row: RegW,
        col: RegW,
        table: u16,
    },
    Probe {
        branch: u16,
    },
    CondProbe {
        cond: u16,
        src: RegW,
    },
    /// Two adjacent condition probes in one dispatch (events in order).
    CondProbe2 {
        cond1: u16,
        src1: RegW,
        cond2: u16,
        src2: RegW,
    },
    /// Fused `CondProbe` + single-condition `DecisionEval` over one
    /// register: `condition(cond, v)` then `decision_eval(decision, v, v)`.
    Decision1 {
        decision: u16,
        cond: u16,
        src: RegW,
    },
    /// [`FlatOp::Decision1`] further fused with the outcome probe-select
    /// that instrumentation emits right after it: `condition` →
    /// `decision_eval` → one `branch` event, all in one dispatch.
    DecisionSel {
        decision: u16,
        cond: u16,
        src: RegW,
        then_branch: u16,
        else_branch: u16,
    },
    /// [`FlatOp::BinopCmp`] fused with the [`FlatOp::DecisionSel`] that
    /// consumes its result — the dominant adjacent pair in decision-dense
    /// models, where every guard is `compare → condition → decision_eval →
    /// branch`. The four instrumentation ids narrow to `u8` to keep the
    /// variant inside the 12-byte envelope; pairs with wider ids simply
    /// stay unfused (two dispatches instead of one, same events).
    CmpSel {
        op: BinopCode,
        dst: RegW,
        lhs: RegW,
        rhs: RegW,
        decision: u8,
        cond: u8,
        then_branch: u8,
        else_branch: u8,
    },
    /// Decision evaluation with the condition registers inline.
    DecisionEvalSmall {
        decision: u16,
        outcome: RegW,
        len: u8,
        conds: [RegW; MAX_INLINE],
    },
    /// Decision evaluation reading `len` condition registers from the
    /// program's condition pool starting at `start`.
    DecisionEvalPool {
        decision: u16,
        outcome: RegW,
        start: u16,
        len: u16,
    },
    Assert {
        id: u16,
        cond: RegW,
    },
    /// Fused `If { Probe(then) } else { Probe(else) }`: fires exactly one
    /// branch event, no jumps executed.
    ProbeSelect {
        cond: RegW,
        then_branch: u16,
        else_branch: u16,
    },
    /// `if regs[cond] == 0 { pc += skip }` (relative to the next op).
    JumpIfZero {
        cond: RegW,
        skip: u16,
    },
    /// `JumpIfZero` fused with the state load that opens its fall-through
    /// body — the hottest executed pair in state-heavy models: taken, it
    /// skips like the jump; not taken, it also performs the load.
    JzLoad {
        cond: RegW,
        skip: u16,
        dst: RegW,
        slot: u16,
    },
    /// The mirror fusion: a state load immediately guarding an `If` (mode
    /// variables re-materialized then tested). Loads unconditionally, then
    /// jumps like `JumpIfZero` — `cond` is usually but not necessarily
    /// `dst`.
    LoadJz {
        dst: RegW,
        slot: u16,
        cond: RegW,
        skip: u16,
    },
    /// [`FlatOp::DecisionSel`] fused with the `JumpIfZero` entering the
    /// *real* branch body on the same register — the universal
    /// "instrument the decision, then take it" shape. Ids narrow to `u8`
    /// like [`FlatOp::CmpSel`]; wider ids stay unfused.
    DecisionSelJz {
        decision: u8,
        cond: u8,
        src: RegW,
        then_branch: u8,
        else_branch: u8,
        skip: u16,
    },
    /// Two nested entry guards in one dispatch: `if c1 == 0 { skip1 }
    /// else if c2 == 0 { skip2 }` — the `If c1 { If c2 { … } … }` shape.
    /// Both skips are relative to the next op, like all jumps.
    JzJz {
        cond1: RegW,
        skip1: u16,
        cond2: RegW,
        skip2: u16,
    },
    /// `if regs[cond] != 0 { pc += skip }` (relative to the next op).
    JumpIfNonZero {
        cond: RegW,
        skip: u16,
    },
    /// `pc += skip` (relative to the next op).
    Jump {
        skip: u16,
    },
}

/// A flat-encoded step program: the op array plus the side pools — `f64`
/// immediates (deduplicated by bit pattern) and wide decision-condition
/// lists.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatProgram {
    pub ops: Vec<FlatOp>,
    pub const_pool: Vec<f64>,
    pub cond_pool: Vec<RegW>,
    /// Registers the executor pre-loads once per session instead of the
    /// program re-materializing them every tick: top-level constants whose
    /// register has no other writer anywhere in the program. Hoisting them
    /// out of the step body is safe because the register file persists
    /// across ticks and lowering puts definitions before uses, so every
    /// tick (including the first) reads the same value the in-body `Const`
    /// would have just stored.
    pub reg_init: Vec<(RegW, f64)>,
}

impl FlatProgram {
    /// Number of flat ops (jumps included) — the dispatch loop's workload.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Interns `value` in the constant pool, deduplicating by bit pattern
    /// (NaN payloads included — the pool must reproduce folds bit-exactly).
    fn intern(&mut self, value: f64) -> u16 {
        let bits = value.to_bits();
        if let Some(i) = self.const_pool.iter().position(|c| c.to_bits() == bits) {
            return i as u16;
        }
        let idx = narrow(self.const_pool.len(), "constant pool index");
        self.const_pool.push(value);
        idx
    }
}

/// Narrows an index to the flat encoding's 16-bit operand width, panicking
/// with a named diagnostic if a model ever outgrows it (none remotely do:
/// the check is a compile-time guard, not a runtime branch in the VM).
fn narrow(x: usize, what: &str) -> u16 {
    u16::try_from(x).unwrap_or_else(|_| panic!("{what} {x} exceeds the flat encoding's u16 width"))
}

fn r(x: Reg) -> RegW {
    narrow(x as usize, "register operand")
}

/// Lowers a structured body into flat form. `observed` lists registers
/// readable from outside the program between ticks (the signal-probe
/// surface of [`crate::Executor::reg`]) — they constrain hoisting.
pub(crate) fn flatten(body: &[Instr], observed: &std::collections::HashSet<Reg>) -> FlatProgram {
    let mut p = FlatProgram::default();
    // Constant hoisting: a `Const` whose register has no other writer in
    // the whole program and whose every read is *dominated* by it (reads
    // occur only downstream of the write within its own arm) stores a
    // value no execution can ever observe differing from the constant —
    // so it moves to `reg_init` and out of the per-tick dispatch loop.
    // Top-level constants re-store unconditionally every tick, so they
    // hoist even when externally observed; conditional ones hoist only
    // when the register is invisible to the signal-probe surface (on
    // ticks where the arm never ran, the original register still holds
    // its initial zero, and an observer could tell the difference).
    let mut writes = std::collections::HashMap::new();
    count_writes(body, &mut writes);
    let mut consts = Vec::new();
    collect_consts(body, &mut consts);
    let mut hoisted = std::collections::HashSet::new();
    for (dst, value) in consts {
        if writes.get(&dst) != Some(&1) {
            continue;
        }
        let ok = match scan_dominance(body, dst) {
            Dom::Dominated => true,
            Dom::CondDominated => !observed.contains(&dst),
            _ => false,
        };
        if ok {
            hoisted.insert(dst);
            p.reg_init.push((r(dst), value));
        }
    }
    flatten_into(body, &mut p, &hoisted);
    p
}

/// Collects every `Const` in the tree (register, value), any depth.
fn collect_consts(body: &[Instr], out: &mut Vec<(Reg, f64)>) {
    for instr in body {
        match instr {
            Instr::Const { dst, value } => out.push((*dst, *value)),
            Instr::If { then_body, else_body, .. } => {
                collect_consts(then_body, out);
                collect_consts(else_body, out);
            }
            _ => {}
        }
    }
}

/// Dominance state of one register's single `Const` write within a subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Dom {
    /// No write, no reads here.
    Clean,
    /// Reads but no write here.
    ReadsOnly,
    /// The write is in this body; every read in the subtree follows it.
    Dominated,
    /// The write sits dominated inside a nested arm; reads *after* that
    /// arm at any outer level would observe ticks where the arm never ran.
    CondDominated,
    /// Some read is not dominated by the write.
    Broken,
}

/// Walks `body` in execution order classifying whether every read of `dst`
/// is dominated by its single `Const` write (see [`Dom`]).
fn scan_dominance(body: &[Instr], dst: Reg) -> Dom {
    fn bump_read(state: Dom) -> Dom {
        match state {
            Dom::Clean => Dom::ReadsOnly,
            Dom::ReadsOnly => Dom::ReadsOnly,
            Dom::Dominated => Dom::Dominated,
            // A read downstream of a conditional write sees stale values
            // on ticks where the write's arm did not run.
            Dom::CondDominated | Dom::Broken => Dom::Broken,
        }
    }
    let mut state = Dom::Clean;
    for instr in body {
        match instr {
            Instr::Const { dst: d, .. } if *d == dst => {
                // The single global write: every later read (any depth,
                // any later instruction) executes after it this tick.
                return if state == Dom::Clean { Dom::Dominated } else { Dom::Broken };
            }
            Instr::If { cond, then_body, else_body } => {
                if *cond == dst {
                    state = bump_read(state);
                }
                for sub in [scan_dominance(then_body, dst), scan_dominance(else_body, dst)] {
                    state = match (state, sub) {
                        (Dom::Broken, _) | (_, Dom::Broken) => Dom::Broken,
                        (s, Dom::Clean) => s,
                        (Dom::Clean, Dom::ReadsOnly) | (Dom::ReadsOnly, Dom::ReadsOnly) => {
                            Dom::ReadsOnly
                        }
                        (Dom::Clean, Dom::Dominated | Dom::CondDominated) => Dom::CondDominated,
                        // Reads strictly before a conditional write, or in
                        // its sibling arm, are not dominated.
                        (Dom::ReadsOnly, Dom::Dominated | Dom::CondDominated) => Dom::Broken,
                        (Dom::CondDominated, _) => Dom::Broken,
                        (Dom::Dominated, _) => unreachable!("write returns early"),
                    };
                }
            }
            other => {
                if instr_reads(other, dst) {
                    state = bump_read(state);
                }
            }
        }
    }
    state
}

/// Whether `instr` reads register `dst` (source operands only; `If` conds
/// and nested bodies are handled by [`scan_dominance`]).
fn instr_reads(instr: &Instr, dst: Reg) -> bool {
    match instr {
        Instr::Copy { src, .. }
        | Instr::Output { src, .. }
        | Instr::Unop { src, .. }
        | Instr::CastSat { src, .. }
        | Instr::StoreState { src, .. }
        | Instr::ShiftState { src, .. }
        | Instr::Lookup1 { src, .. }
        | Instr::CondProbe { src, .. } => *src == dst,
        Instr::Binop { lhs, rhs, .. } => *lhs == dst || *rhs == dst,
        Instr::Lookup2 { row, col, .. } => *row == dst || *col == dst,
        Instr::Call { args, .. } => args.contains(&dst),
        Instr::DecisionEval { conds, outcome, .. } => *outcome == dst || conds.contains(&dst),
        Instr::Assert { cond, .. } => *cond == dst,
        Instr::Const { .. }
        | Instr::Input { .. }
        | Instr::LoadState { .. }
        | Instr::Probe { .. } => false,
        Instr::If { .. } => false,
    }
}

/// Counts static register writes across the whole tree.
fn count_writes(body: &[Instr], counts: &mut std::collections::HashMap<Reg, u32>) {
    for instr in body {
        match instr {
            Instr::Const { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Input { dst, .. }
            | Instr::Unop { dst, .. }
            | Instr::Binop { dst, .. }
            | Instr::Call { dst, .. }
            | Instr::CastSat { dst, .. }
            | Instr::LoadState { dst, .. }
            | Instr::Lookup1 { dst, .. }
            | Instr::Lookup2 { dst, .. } => *counts.entry(*dst).or_default() += 1,
            Instr::If { then_body, else_body, .. } => {
                count_writes(then_body, counts);
                count_writes(else_body, counts);
            }
            Instr::Output { .. }
            | Instr::StoreState { .. }
            | Instr::ShiftState { .. }
            | Instr::Probe { .. }
            | Instr::CondProbe { .. }
            | Instr::DecisionEval { .. }
            | Instr::Assert { .. } => {}
        }
    }
}

fn flatten_into(body: &[Instr], p: &mut FlatProgram, hoisted: &std::collections::HashSet<Reg>) {
    let mut i = 0;
    // Ops at positions below `fence` may be jump targets of already-patched
    // inner lowerings; backward fusion must never pop them (a patched skip
    // landing on a fused op would execute its extra effects on the taken
    // path). The fence advances past every completed `If` lowering.
    let mut fence = p.ops.len();
    while i < body.len() {
        let instr = &body[i];
        i += 1;
        match instr {
            Instr::Const { dst, value } => {
                // A hoisted register's single writer IS this instruction;
                // the executor pre-loads it, so emit nothing.
                if hoisted.contains(dst) {
                    continue;
                }
                let idx = p.intern(*value);
                // Un-hoistable constants cluster (multi-writer scratch
                // registers at block boundaries); pair adjacent ones up.
                if let Some(Instr::Const { dst: d2, value: v2 }) = body.get(i) {
                    if !hoisted.contains(d2) {
                        i += 1;
                        let idx2 = p.intern(*v2);
                        p.ops.push(FlatOp::Const2 { dst1: r(*dst), idx1: idx, dst2: r(*d2), idx2 });
                        continue;
                    }
                }
                p.ops.push(FlatOp::Const { dst: r(*dst), idx });
            }
            Instr::Copy { dst, src } => {
                // A copy feeding straight into a saturating cast (block
                // input selection then quantization) is one dispatch.
                if let Some(Instr::CastSat { dst: d2, src: s2, ty }) = body.get(i) {
                    if s2 == dst {
                        i += 1;
                        p.ops.push(FlatOp::CopyCastSat {
                            dst: r(*dst),
                            src: r(*src),
                            dst2: r(*d2),
                            ty: *ty,
                        });
                        continue;
                    }
                }
                p.ops.push(FlatOp::Copy { dst: r(*dst), src: r(*src) });
            }
            Instr::Input { dst, index } => {
                p.ops.push(FlatOp::Input { dst: r(*dst), index: narrow(*index, "input index") });
            }
            Instr::Output { index, src } => {
                p.ops.push(FlatOp::Output { index: narrow(*index, "output index"), src: r(*src) });
            }
            Instr::Unop { dst, op, src } => {
                p.ops.push(FlatOp::Unop { dst: r(*dst), op: *op, src: r(*src) });
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                if op.is_relational() {
                    // A relational guard almost always feeds straight into
                    // its decision preamble (CondProbe + DecisionEval +
                    // probe-only outcome If over the same register). When
                    // all four instrumentation ids fit in a byte, the whole
                    // compare-and-decide shape is one dispatch.
                    if let Some((decision, cond, t, e)) = peek_decision_preamble(&body[i..], *dst) {
                        i += 3;
                        p.ops.push(FlatOp::CmpSel {
                            op: *op,
                            dst: r(*dst),
                            lhs: r(*lhs),
                            rhs: r(*rhs),
                            decision,
                            cond,
                            then_branch: t,
                            else_branch: e,
                        });
                        continue;
                    }
                    p.ops.push(FlatOp::BinopCmp {
                        dst: r(*dst),
                        op: *op,
                        lhs: r(*lhs),
                        rhs: r(*rhs),
                    });
                } else {
                    p.ops.push(FlatOp::Binop { dst: r(*dst), op: *op, lhs: r(*lhs), rhs: r(*rhs) });
                }
            }
            Instr::Call { dst, func, args } => {
                assert!(args.len() <= MAX_INLINE, "IR call arity exceeds inline operand space");
                let mut inline = [0 as RegW; MAX_INLINE];
                for (slot, a) in inline.iter_mut().zip(args) {
                    *slot = r(*a);
                }
                p.ops.push(FlatOp::Call {
                    dst: r(*dst),
                    func: *func,
                    argc: args.len() as u8,
                    args: inline,
                });
            }
            Instr::CastSat { dst, src, ty } => {
                // Every saturating block ends by publishing its quantized
                // result to a signal register: cast + copy, one dispatch.
                if let Some(Instr::Copy { dst: d2, src: s2 }) = body.get(i) {
                    if s2 == dst {
                        i += 1;
                        p.ops.push(FlatOp::CastSatCopy {
                            dst: r(*dst),
                            src: r(*src),
                            ty: *ty,
                            dst2: r(*d2),
                        });
                        continue;
                    }
                }
                p.ops.push(FlatOp::CastSat { dst: r(*dst), src: r(*src), ty: *ty });
            }
            Instr::LoadState { dst, slot } => {
                let (dst1, slot1) = (r(*dst), narrow(*slot, "state slot"));
                // Blocks reading several state slots in a row (delays,
                // charts re-materializing variables) pair up like stores.
                if let Some(Instr::LoadState { dst: d2, slot: s2 }) = body.get(i) {
                    i += 1;
                    p.ops.push(FlatOp::Load2 {
                        dst1,
                        slot1,
                        dst2: r(*d2),
                        slot2: narrow(*s2, "state slot"),
                    });
                    continue;
                }
                p.ops.push(FlatOp::LoadState { dst: dst1, slot: slot1 });
            }
            Instr::StoreState { slot, src } => {
                let (slot1, src1) = (narrow(*slot, "state slot"), r(*src));
                // Chart transition actions store several variables in a
                // row; pair them up into one dispatch (order preserved).
                if let Some(Instr::StoreState { slot: slot2, src: src2 }) = body.get(i) {
                    i += 1;
                    p.ops.push(FlatOp::StoreState2 {
                        slot1,
                        src1,
                        slot2: narrow(*slot2, "state slot"),
                        src2: r(*src2),
                    });
                } else {
                    p.ops.push(FlatOp::StoreState { slot: slot1, src: src1 });
                }
            }
            Instr::ShiftState { base, len, src } => {
                p.ops.push(FlatOp::ShiftState {
                    base: *base as u32,
                    len: *len as u32,
                    src: r(*src),
                });
            }
            Instr::Lookup1 { dst, src, table } => {
                p.ops.push(FlatOp::Lookup1 {
                    dst: r(*dst),
                    src: r(*src),
                    table: narrow(*table, "1-D table index"),
                });
            }
            Instr::Lookup2 { dst, row, col, table } => {
                p.ops.push(FlatOp::Lookup2 {
                    dst: r(*dst),
                    row: r(*row),
                    col: r(*col),
                    table: narrow(*table, "2-D table index"),
                });
            }
            Instr::Probe { branch } => {
                p.ops.push(FlatOp::Probe { branch: narrow(branch.index(), "branch id") });
            }
            Instr::CondProbe { cond, src } => {
                // Fuse with the single-condition decision evaluation that
                // instrumentation emits immediately after (same register
                // as sole condition and outcome): one dispatch, identical
                // condition → decision_eval event order.
                if let Some(Instr::DecisionEval { decision, conds, outcome }) = body.get(i) {
                    if conds.as_slice() == [*src] && outcome == src {
                        i += 1;
                        let decision = narrow(decision.index(), "decision id");
                        let cond = narrow(cond.index(), "condition id");
                        // Single-condition decisions are always followed by
                        // their outcome probe-select on the same register;
                        // folding it in makes the whole instrumentation
                        // preamble of a decision one dispatch.
                        if let Some(Instr::If { cond: icond, then_body, else_body }) = body.get(i) {
                            if let (
                                true,
                                [Instr::Probe { branch: t }],
                                [Instr::Probe { branch: e }],
                            ) = (icond == src, then_body.as_slice(), else_body.as_slice())
                            {
                                i += 1;
                                p.ops.push(FlatOp::DecisionSel {
                                    decision,
                                    cond,
                                    src: r(*src),
                                    then_branch: narrow(t.index(), "branch id"),
                                    else_branch: narrow(e.index(), "branch id"),
                                });
                                continue;
                            }
                        }
                        p.ops.push(FlatOp::Decision1 { decision, cond, src: r(*src) });
                        continue;
                    }
                }
                // Multi-condition decisions probe their conditions back to
                // back; pair adjacent probes (events stay in order). Only
                // when the next probe does not itself head a fusable
                // decision preamble — a greedy pair here would break it.
                if let Some(Instr::CondProbe { cond: c2, src: s2 }) = body.get(i) {
                    let next_fuses = matches!(
                        body.get(i + 1),
                        Some(Instr::DecisionEval { conds, outcome, .. })
                            if conds.as_slice() == [*s2] && outcome == s2
                    );
                    if !next_fuses {
                        i += 1;
                        p.ops.push(FlatOp::CondProbe2 {
                            cond1: narrow(cond.index(), "condition id"),
                            src1: r(*src),
                            cond2: narrow(c2.index(), "condition id"),
                            src2: r(*s2),
                        });
                        continue;
                    }
                }
                p.ops.push(FlatOp::CondProbe {
                    cond: narrow(cond.index(), "condition id"),
                    src: r(*src),
                });
            }
            Instr::DecisionEval { decision, conds, outcome } => {
                let decision = narrow(decision.index(), "decision id");
                if conds.len() <= MAX_INLINE {
                    let mut inline = [0 as RegW; MAX_INLINE];
                    for (slot, c) in inline.iter_mut().zip(conds) {
                        *slot = r(*c);
                    }
                    p.ops.push(FlatOp::DecisionEvalSmall {
                        decision,
                        outcome: r(*outcome),
                        len: conds.len() as u8,
                        conds: inline,
                    });
                } else {
                    let start = narrow(p.cond_pool.len(), "condition pool offset");
                    p.cond_pool.extend(conds.iter().map(|c| r(*c)));
                    p.ops.push(FlatOp::DecisionEvalPool {
                        decision,
                        outcome: r(*outcome),
                        start,
                        len: narrow(conds.len(), "condition pool span"),
                    });
                }
            }
            Instr::Assert { id, cond } => {
                p.ops.push(FlatOp::Assert {
                    id: narrow(id.index(), "assertion id"),
                    cond: r(*cond),
                });
            }
            Instr::If { cond, then_body, else_body } => {
                // The universal decision-outcome shape — one probe per arm
                // — needs no control flow at all in flat form.
                if let ([Instr::Probe { branch: t }], [Instr::Probe { branch: e }]) =
                    (then_body.as_slice(), else_body.as_slice())
                {
                    p.ops.push(FlatOp::ProbeSelect {
                        cond: r(*cond),
                        then_branch: narrow(t.index(), "branch id"),
                        else_branch: narrow(e.index(), "branch id"),
                    });
                    continue;
                }
                if else_body.is_empty() {
                    // Nested one-armed guards collapse into one dispatch:
                    // `If c1 { If c2 { inner } rest }` tests both
                    // conditions in a single op, each skip patched to its
                    // own body end.
                    if let Some(Instr::If { cond: c2, then_body: tb2, else_body: eb2 }) =
                        then_body.first()
                    {
                        if eb2.is_empty() {
                            let pos = reserve(
                                p,
                                FlatOp::JzJz { cond1: r(*cond), skip1: 0, cond2: r(*c2), skip2: 0 },
                            );
                            flatten_into(tb2, p, hoisted);
                            patch_jzjz(p, pos, false);
                            flatten_into(&then_body[1..], p, hoisted);
                            patch_jzjz(p, pos, true);
                            fence = p.ops.len();
                            continue;
                        }
                    }
                    let (jz, skipped) = reserve_guard(p, r(*cond), then_body, fence);
                    flatten_into(&then_body[skipped..], p, hoisted);
                    patch(p, jz);
                } else if then_body.is_empty() {
                    let jnz = reserve(p, FlatOp::JumpIfNonZero { cond: r(*cond), skip: 0 });
                    flatten_into(else_body, p, hoisted);
                    patch(p, jnz);
                } else {
                    let (jz, skipped) = reserve_guard(p, r(*cond), then_body, fence);
                    flatten_into(&then_body[skipped..], p, hoisted);
                    let jump = reserve(p, FlatOp::Jump { skip: 0 });
                    patch(p, jz);
                    flatten_into(else_body, p, hoisted);
                    patch(p, jump);
                }
                fence = p.ops.len();
            }
        }
    }
}

/// Matches the full single-condition decision preamble over register `dst`
/// at the head of `rest` — `CondProbe` + `DecisionEval` + probe-only
/// outcome `If`, all on `dst` — returning the four instrumentation ids iff
/// every one fits the byte-wide [`FlatOp::CmpSel`] encoding.
fn peek_decision_preamble(rest: &[Instr], dst: Reg) -> Option<(u8, u8, u8, u8)> {
    let fits = |x: usize| u8::try_from(x).ok();
    match rest {
        [Instr::CondProbe { cond, src }, Instr::DecisionEval { decision, conds, outcome }, Instr::If { cond: icond, then_body, else_body }, ..]
            if *src == dst && conds.as_slice() == [dst] && *outcome == dst && *icond == dst =>
        {
            if let ([Instr::Probe { branch: t }], [Instr::Probe { branch: e }]) =
                (then_body.as_slice(), else_body.as_slice())
            {
                return Some((
                    fits(decision.index())?,
                    fits(cond.index())?,
                    fits(t.index())?,
                    fits(e.index())?,
                ));
            }
            None
        }
        _ => None,
    }
}

/// Stable display name of an op's variant, for diagnostics/histograms.
pub(crate) fn op_name(op: &FlatOp) -> &'static str {
    match op {
        FlatOp::Const { .. } => "Const",
        FlatOp::Const2 { .. } => "Const2",
        FlatOp::Copy { .. } => "Copy",
        FlatOp::Input { .. } => "Input",
        FlatOp::Output { .. } => "Output",
        FlatOp::Unop { .. } => "Unop",
        FlatOp::Binop { .. } => "Binop",
        FlatOp::BinopCmp { .. } => "BinopCmp",
        FlatOp::CmpJump { .. } => "CmpJump",
        FlatOp::Call { .. } => "Call",
        FlatOp::CastSat { .. } => "CastSat",
        FlatOp::CastSatCopy { .. } => "CastSatCopy",
        FlatOp::CopyCastSat { .. } => "CopyCastSat",
        FlatOp::LoadState { .. } => "LoadState",
        FlatOp::Load2 { .. } => "Load2",
        FlatOp::StoreState { .. } => "StoreState",
        FlatOp::StoreState2 { .. } => "StoreState2",
        FlatOp::ShiftState { .. } => "ShiftState",
        FlatOp::Lookup1 { .. } => "Lookup1",
        FlatOp::Lookup2 { .. } => "Lookup2",
        FlatOp::Probe { .. } => "Probe",
        FlatOp::CondProbe { .. } => "CondProbe",
        FlatOp::CondProbe2 { .. } => "CondProbe2",
        FlatOp::Decision1 { .. } => "Decision1",
        FlatOp::DecisionSel { .. } => "DecisionSel",
        FlatOp::CmpSel { .. } => "CmpSel",
        FlatOp::DecisionEvalSmall { .. } => "DecisionEvalSmall",
        FlatOp::DecisionEvalPool { .. } => "DecisionEvalPool",
        FlatOp::Assert { .. } => "Assert",
        FlatOp::ProbeSelect { .. } => "ProbeSelect",
        FlatOp::JumpIfZero { .. } => "JumpIfZero",
        FlatOp::JzLoad { .. } => "JzLoad",
        FlatOp::LoadJz { .. } => "LoadJz",
        FlatOp::DecisionSelJz { .. } => "DecisionSelJz",
        FlatOp::JzJz { .. } => "JzJz",
        FlatOp::JumpIfNonZero { .. } => "JumpIfNonZero",
        FlatOp::Jump { .. } => "Jump",
    }
}

/// Pushes a jump placeholder, returning its position for later patching.
fn reserve(p: &mut FlatProgram, op: FlatOp) -> usize {
    p.ops.push(op);
    p.ops.len() - 1
}

/// Reserves the entry guard of an `If` taken on zero, fusing where the
/// dynamic profile says it pays: backward with a just-emitted relational
/// compare producing the condition ([`FlatOp::CmpJump`] — legal only above
/// `fence`, i.e. no patched jump can land between the pair), else forward
/// with a state load opening the fall-through body ([`FlatOp::JzLoad`]).
/// Returns the placeholder position and how many leading body instructions
/// the guard already consumed.
fn reserve_guard(
    p: &mut FlatProgram,
    cond: RegW,
    then_body: &[Instr],
    fence: usize,
) -> (usize, usize) {
    if p.ops.len() > fence {
        match *p.ops.last().expect("len > fence >= 0") {
            FlatOp::BinopCmp { dst, op, lhs, rhs } if dst == cond => {
                p.ops.pop();
                return (reserve(p, FlatOp::CmpJump { op, dst, lhs, rhs, skip: 0 }), 0);
            }
            FlatOp::LoadState { dst, slot } => {
                p.ops.pop();
                return (reserve(p, FlatOp::LoadJz { dst, slot, cond, skip: 0 }), 0);
            }
            FlatOp::DecisionSel { decision, cond: cid, src, then_branch, else_branch }
                if src == cond =>
            {
                let fits = |x: u16| u8::try_from(x).ok();
                if let (Some(d), Some(c), Some(t), Some(e)) =
                    (fits(decision), fits(cid), fits(then_branch), fits(else_branch))
                {
                    p.ops.pop();
                    let op = FlatOp::DecisionSelJz {
                        decision: d,
                        cond: c,
                        src,
                        then_branch: t,
                        else_branch: e,
                        skip: 0,
                    };
                    return (reserve(p, op), 0);
                }
            }
            _ => {}
        }
    }
    if let Some(Instr::LoadState { dst, slot }) = then_body.first() {
        let op = FlatOp::JzLoad { cond, skip: 0, dst: r(*dst), slot: narrow(*slot, "state slot") };
        return (reserve(p, op), 1);
    }
    (reserve(p, FlatOp::JumpIfZero { cond, skip: 0 }), 0)
}

/// Patches the jump at `pos` to skip to the current end of the op array.
fn patch(p: &mut FlatProgram, pos: usize) {
    let skip = narrow(p.ops.len() - pos - 1, "jump offset");
    match &mut p.ops[pos] {
        FlatOp::JumpIfZero { skip: s, .. }
        | FlatOp::JumpIfNonZero { skip: s, .. }
        | FlatOp::Jump { skip: s, .. }
        | FlatOp::CmpJump { skip: s, .. }
        | FlatOp::JzLoad { skip: s, .. }
        | FlatOp::LoadJz { skip: s, .. }
        | FlatOp::DecisionSelJz { skip: s, .. } => *s = skip,
        other => unreachable!("patching a non-jump op {other:?}"),
    }
}

/// Patches one of a [`FlatOp::JzJz`]'s two skips to the current end of the
/// op array: the outer guard's (`skip1`) or the inner's (`skip2`).
fn patch_jzjz(p: &mut FlatProgram, pos: usize, outer: bool) {
    let skip = narrow(p.ops.len() - pos - 1, "jump offset");
    match &mut p.ops[pos] {
        FlatOp::JzJz { skip1, skip2, .. } => *(if outer { skip1 } else { skip2 }) = skip,
        other => unreachable!("patching a non-JzJz op {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cftcg_coverage::{BranchId, ConditionId, DecisionId};

    #[test]
    fn flat_ops_stay_small() {
        // The whole point of the narrowed encoding: four ops per cache
        // line. Growing an op past 12 bytes is a throughput regression.
        assert!(std::mem::size_of::<FlatOp>() <= 12, "{}", std::mem::size_of::<FlatOp>());
    }

    #[test]
    fn if_with_both_arms_uses_two_jumps() {
        let body = vec![Instr::If {
            cond: 0,
            then_body: vec![Instr::Const { dst: 1, value: 1.0 }],
            else_body: vec![Instr::Const { dst: 1, value: 2.0 }],
        }];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::JumpIfZero { cond: 0, skip: 2 },
                FlatOp::Const { dst: 1, idx: 0 },
                FlatOp::Jump { skip: 1 },
                FlatOp::Const { dst: 1, idx: 1 },
            ]
        );
        assert_eq!(p.const_pool, vec![1.0, 2.0]);
    }

    #[test]
    fn one_armed_ifs_use_a_single_conditional_jump() {
        let then_only = vec![Instr::If {
            cond: 0,
            then_body: vec![Instr::Copy { dst: 1, src: 2 }],
            else_body: vec![],
        }];
        let p = flatten(&then_only, &Default::default());
        assert_eq!(p.ops[0], FlatOp::JumpIfZero { cond: 0, skip: 1 });
        assert_eq!(p.ops.len(), 2);

        let else_only = vec![Instr::If {
            cond: 0,
            then_body: vec![],
            else_body: vec![Instr::Copy { dst: 1, src: 2 }],
        }];
        let p = flatten(&else_only, &Default::default());
        assert_eq!(p.ops[0], FlatOp::JumpIfNonZero { cond: 0, skip: 1 });
        assert_eq!(p.ops.len(), 2);
    }

    #[test]
    fn nested_one_armed_ifs_fuse_into_a_double_guard() {
        let body = vec![Instr::If {
            cond: 0,
            then_body: vec![
                Instr::If {
                    cond: 1,
                    then_body: vec![Instr::Copy { dst: 2, src: 3 }],
                    else_body: vec![],
                },
                Instr::Copy { dst: 4, src: 5 },
            ],
            else_body: vec![],
        }];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                // Outer guard skips both copies; inner only the first.
                FlatOp::JzJz { cond1: 0, skip1: 2, cond2: 1, skip2: 1 },
                FlatOp::Copy { dst: 2, src: 3 },
                FlatOp::Copy { dst: 4, src: 5 },
            ]
        );
    }

    #[test]
    fn nested_ifs_with_else_arms_keep_separate_jumps() {
        // An inner `If` with an else arm can't share the double-guard op.
        let body = vec![Instr::If {
            cond: 0,
            then_body: vec![Instr::If {
                cond: 1,
                then_body: vec![Instr::Copy { dst: 2, src: 3 }],
                else_body: vec![Instr::Copy { dst: 2, src: 4 }],
            }],
            else_body: vec![],
        }];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::JumpIfZero { cond: 0, skip: 4 },
                FlatOp::JumpIfZero { cond: 1, skip: 2 },
                FlatOp::Copy { dst: 2, src: 3 },
                FlatOp::Jump { skip: 1 },
                FlatOp::Copy { dst: 2, src: 4 },
            ]
        );
    }

    #[test]
    fn relational_binops_lower_to_cmp_opcode() {
        let body = vec![
            Instr::Binop { dst: 2, op: BinopCode::Lt, lhs: 0, rhs: 1 },
            Instr::Binop { dst: 3, op: BinopCode::Add, lhs: 0, rhs: 1 },
        ];
        let p = flatten(&body, &Default::default());
        assert!(matches!(p.ops[0], FlatOp::BinopCmp { op: BinopCode::Lt, .. }));
        assert!(matches!(p.ops[1], FlatOp::Binop { op: BinopCode::Add, .. }));
    }

    #[test]
    fn wide_decisions_spill_to_the_cond_pool() {
        let body = vec![Instr::DecisionEval {
            decision: DecisionId(0),
            conds: vec![0, 1, 2, 3, 4],
            outcome: 5,
        }];
        let p = flatten(&body, &Default::default());
        assert_eq!(p.cond_pool, vec![0, 1, 2, 3, 4]);
        assert!(matches!(p.ops[0], FlatOp::DecisionEvalPool { start: 0, len: 5, .. }));
    }

    #[test]
    fn constants_dedupe_by_bit_pattern() {
        // Conditional constants read outside their arm stay in the body
        // (not hoistable) and share pool slots per bit pattern.
        let conditional = |dst, value| Instr::If {
            cond: 9,
            then_body: vec![Instr::Const { dst, value }],
            else_body: vec![],
        };
        let body = vec![
            conditional(0, 2.5),
            conditional(1, 2.5),
            conditional(2, -2.5),
            Instr::Output { index: 0, src: 0 },
            Instr::Output { index: 1, src: 1 },
            Instr::Output { index: 2, src: 2 },
        ];
        let p = flatten(&body, &Default::default());
        assert!(p.reg_init.is_empty());
        assert_eq!(p.const_pool, vec![2.5, -2.5]);
        assert_eq!(p.ops[1], FlatOp::Const { dst: 0, idx: 0 });
        assert_eq!(p.ops[3], FlatOp::Const { dst: 1, idx: 0 });
        assert_eq!(p.ops[5], FlatOp::Const { dst: 2, idx: 1 });
    }

    #[test]
    fn observed_registers_keep_conditional_constants_inline() {
        let body = vec![Instr::If {
            cond: 0,
            then_body: vec![Instr::Const { dst: 1, value: 3.0 }],
            else_body: vec![],
        }];
        // Register 1 is a signal probe surface: tracing would see 3.0 on
        // ticks where the arm never ran. Must stay in the body.
        let observed = std::collections::HashSet::from([1 as Reg]);
        let p = flatten(&body, &observed);
        assert!(p.reg_init.is_empty());
        assert_eq!(p.ops.len(), 2);

        // Unobserved and dominated (no reads at all): hoists, and the
        // emptied arm collapses to a lone jump over nothing.
        let p = flatten(&body, &Default::default());
        assert_eq!(p.reg_init, vec![(1, 3.0)]);
        assert_eq!(p.ops, vec![FlatOp::JumpIfZero { cond: 0, skip: 0 }]);
    }

    #[test]
    fn single_writer_dominating_constants_hoist_to_reg_init() {
        let body = vec![
            Instr::Const { dst: 0, value: 4.0 },
            Instr::Const { dst: 1, value: 5.0 },
            // dst 1 has a second writer, so its const must stay inline.
            Instr::Copy { dst: 1, src: 0 },
            // dst 2's only read follows the write inside the same arm:
            // dominated, hoists even though the write is conditional.
            Instr::If {
                cond: 0,
                then_body: vec![
                    Instr::Const { dst: 2, value: 6.0 },
                    Instr::StoreState { slot: 0, src: 2 },
                ],
                else_body: vec![],
            },
            // dst 3's read sits *outside* the arm that writes it: on ticks
            // where the arm does not run the original program reads a
            // stale/zero value, so this const must stay inline.
            Instr::If {
                cond: 0,
                then_body: vec![Instr::Const { dst: 3, value: 7.0 }],
                else_body: vec![],
            },
            Instr::Output { index: 0, src: 3 },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(p.reg_init, vec![(0, 4.0), (2, 6.0)]);
        assert_eq!(
            p.ops,
            vec![
                FlatOp::Const { dst: 1, idx: 0 },
                FlatOp::Copy { dst: 1, src: 0 },
                FlatOp::JumpIfZero { cond: 0, skip: 1 },
                FlatOp::StoreState { slot: 0, src: 2 },
                FlatOp::JumpIfZero { cond: 0, skip: 1 },
                FlatOp::Const { dst: 3, idx: 1 },
                FlatOp::Output { index: 0, src: 3 },
            ]
        );
        assert_eq!(p.const_pool, vec![5.0, 7.0]);
    }

    #[test]
    fn adjacent_state_stores_pair_up() {
        let body = vec![
            Instr::StoreState { slot: 0, src: 1 },
            Instr::StoreState { slot: 1, src: 2 },
            Instr::StoreState { slot: 2, src: 3 },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::StoreState2 { slot1: 0, src1: 1, slot2: 1, src2: 2 },
                FlatOp::StoreState { slot: 2, src: 3 },
            ]
        );
    }

    #[test]
    fn single_condition_decisions_fuse_into_one_op() {
        let body = vec![
            Instr::CondProbe { cond: ConditionId(3), src: 7 },
            Instr::DecisionEval { decision: DecisionId(2), conds: vec![7], outcome: 7 },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(p.ops, vec![FlatOp::Decision1 { decision: 2, cond: 3, src: 7 }]);

        // A decision over a *different* register must not fuse.
        let body = vec![
            Instr::CondProbe { cond: ConditionId(3), src: 7 },
            Instr::DecisionEval { decision: DecisionId(2), conds: vec![8], outcome: 8 },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(p.ops.len(), 2);
        assert!(matches!(p.ops[0], FlatOp::CondProbe { .. }));
    }

    #[test]
    fn decision_preamble_fuses_into_a_single_dispatch() {
        // The full instrumentation shape of a single-condition decision:
        // CondProbe + DecisionEval + probe-only outcome If → one op.
        let body = vec![
            Instr::CondProbe { cond: ConditionId(3), src: 7 },
            Instr::DecisionEval { decision: DecisionId(2), conds: vec![7], outcome: 7 },
            Instr::If {
                cond: 7,
                then_body: vec![Instr::Probe { branch: BranchId(4) }],
                else_body: vec![Instr::Probe { branch: BranchId(5) }],
            },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![FlatOp::DecisionSel {
                decision: 2,
                cond: 3,
                src: 7,
                then_branch: 4,
                else_branch: 5,
            }]
        );

        // An outcome If over a different register must not fold in.
        let body = vec![
            Instr::CondProbe { cond: ConditionId(3), src: 7 },
            Instr::DecisionEval { decision: DecisionId(2), conds: vec![7], outcome: 7 },
            Instr::If {
                cond: 8,
                then_body: vec![Instr::Probe { branch: BranchId(4) }],
                else_body: vec![Instr::Probe { branch: BranchId(5) }],
            },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(p.ops.len(), 2);
        assert!(matches!(p.ops[0], FlatOp::Decision1 { .. }));
        assert!(matches!(p.ops[1], FlatOp::ProbeSelect { .. }));
    }

    #[test]
    fn relational_guards_fuse_with_their_decision_preamble() {
        let preamble = |branch_base: u32| {
            vec![
                Instr::Binop { dst: 2, op: BinopCode::Lt, lhs: 0, rhs: 1 },
                Instr::CondProbe { cond: ConditionId(3), src: 2 },
                Instr::DecisionEval { decision: DecisionId(2), conds: vec![2], outcome: 2 },
                Instr::If {
                    cond: 2,
                    then_body: vec![Instr::Probe { branch: BranchId(branch_base) }],
                    else_body: vec![Instr::Probe { branch: BranchId(branch_base + 1) }],
                },
            ]
        };
        let p = flatten(&preamble(4), &Default::default());
        assert_eq!(
            p.ops,
            vec![FlatOp::CmpSel {
                op: BinopCode::Lt,
                dst: 2,
                lhs: 0,
                rhs: 1,
                decision: 2,
                cond: 3,
                then_branch: 4,
                else_branch: 5,
            }]
        );

        // Ids past the byte-wide encoding stay unfused: two dispatches,
        // identical event sequence.
        let p = flatten(&preamble(400), &Default::default());
        assert_eq!(p.ops.len(), 2);
        assert!(matches!(p.ops[0], FlatOp::BinopCmp { op: BinopCode::Lt, .. }));
        assert!(matches!(p.ops[1], FlatOp::DecisionSel { then_branch: 400, else_branch: 401, .. }));
    }

    #[test]
    fn hot_adjacent_pairs_fuse_into_single_dispatches() {
        // Const+Const, Copy+CastSat, CastSat+Copy, Load+Load — the
        // profile-driven peephole pairs (each preserves write order).
        let body = vec![
            Instr::Const { dst: 0, value: 1.0 },
            Instr::Const { dst: 0, value: 2.0 },
            Instr::Copy { dst: 1, src: 0 },
            Instr::CastSat { dst: 2, src: 1, ty: DataType::I8 },
            Instr::CastSat { dst: 3, src: 2, ty: DataType::I8 },
            Instr::Copy { dst: 4, src: 3 },
            Instr::LoadState { dst: 5, slot: 0 },
            Instr::LoadState { dst: 6, slot: 1 },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::Const2 { dst1: 0, idx1: 0, dst2: 0, idx2: 1 },
                FlatOp::CopyCastSat { dst: 1, src: 0, dst2: 2, ty: DataType::I8 },
                FlatOp::CastSatCopy { dst: 3, src: 2, ty: DataType::I8, dst2: 4 },
                FlatOp::Load2 { dst1: 5, slot1: 0, dst2: 6, slot2: 1 },
            ]
        );
    }

    #[test]
    fn adjacent_condition_probes_pair_up() {
        let body = vec![
            Instr::CondProbe { cond: ConditionId(0), src: 1 },
            Instr::CondProbe { cond: ConditionId(1), src: 2 },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(p.ops, vec![FlatOp::CondProbe2 { cond1: 0, src1: 1, cond2: 1, src2: 2 }]);

        // A probe heading a fusable decision preamble must stay free for
        // the Decision1/DecisionSel fusion instead.
        let body = vec![
            Instr::CondProbe { cond: ConditionId(0), src: 1 },
            Instr::CondProbe { cond: ConditionId(1), src: 2 },
            Instr::DecisionEval { decision: DecisionId(0), conds: vec![2], outcome: 2 },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::CondProbe { cond: 0, src: 1 },
                FlatOp::Decision1 { decision: 0, cond: 1, src: 2 },
            ]
        );
    }

    #[test]
    fn relational_guards_of_real_bodies_fuse_into_cmp_jump() {
        let body = vec![
            Instr::Binop { dst: 2, op: BinopCode::Ge, lhs: 0, rhs: 1 },
            Instr::If {
                cond: 2,
                then_body: vec![Instr::Copy { dst: 3, src: 0 }],
                else_body: vec![],
            },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::CmpJump { op: BinopCode::Ge, dst: 2, lhs: 0, rhs: 1, skip: 1 },
                FlatOp::Copy { dst: 3, src: 0 },
            ]
        );
    }

    #[test]
    fn patched_jump_targets_block_backward_guard_fusion() {
        // The compare is the *last op of a completed inner lowering*: the
        // inner `If`'s patched jump lands right after it, so popping it
        // into a CmpJump would make the taken path recompute the compare
        // (an extra recorder event). The fence must force a plain jump.
        let body = vec![
            Instr::If {
                cond: 0,
                then_body: vec![Instr::Binop { dst: 2, op: BinopCode::Lt, lhs: 0, rhs: 1 }],
                else_body: vec![],
            },
            Instr::If {
                cond: 2,
                then_body: vec![Instr::Copy { dst: 3, src: 0 }],
                else_body: vec![],
            },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::JumpIfZero { cond: 0, skip: 1 },
                FlatOp::BinopCmp { dst: 2, op: BinopCode::Lt, lhs: 0, rhs: 1 },
                FlatOp::JumpIfZero { cond: 2, skip: 1 },
                FlatOp::Copy { dst: 3, src: 0 },
            ]
        );
    }

    #[test]
    fn state_loads_fuse_with_adjacent_guards() {
        // Backward: load feeding a guard → LoadJz.
        let body = vec![
            Instr::LoadState { dst: 0, slot: 3 },
            Instr::If {
                cond: 0,
                then_body: vec![Instr::Copy { dst: 1, src: 2 }],
                else_body: vec![],
            },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::LoadJz { dst: 0, slot: 3, cond: 0, skip: 1 },
                FlatOp::Copy { dst: 1, src: 2 },
            ]
        );

        // Forward: guard whose fall-through body opens with a load →
        // JzLoad (the load is conditional, exactly as in the tree).
        let body = vec![Instr::If {
            cond: 0,
            then_body: vec![Instr::LoadState { dst: 1, slot: 4 }, Instr::Copy { dst: 2, src: 1 }],
            else_body: vec![],
        }];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::JzLoad { cond: 0, skip: 1, dst: 1, slot: 4 },
                FlatOp::Copy { dst: 2, src: 1 },
            ]
        );
    }

    #[test]
    fn decision_dispatch_fuses_with_its_branch_entry_jump() {
        let body = vec![
            Instr::CondProbe { cond: ConditionId(3), src: 7 },
            Instr::DecisionEval { decision: DecisionId(2), conds: vec![7], outcome: 7 },
            Instr::If {
                cond: 7,
                then_body: vec![Instr::Probe { branch: BranchId(4) }],
                else_body: vec![Instr::Probe { branch: BranchId(5) }],
            },
            Instr::If {
                cond: 7,
                then_body: vec![Instr::Copy { dst: 1, src: 2 }],
                else_body: vec![],
            },
        ];
        let p = flatten(&body, &Default::default());
        assert_eq!(
            p.ops,
            vec![
                FlatOp::DecisionSelJz {
                    decision: 2,
                    cond: 3,
                    src: 7,
                    then_branch: 4,
                    else_branch: 5,
                    skip: 1,
                },
                FlatOp::Copy { dst: 1, src: 2 },
            ]
        );
    }

    #[test]
    fn probe_only_arms_fuse_into_probe_select() {
        let body = vec![Instr::If {
            cond: 4,
            then_body: vec![Instr::Probe { branch: BranchId(0) }],
            else_body: vec![Instr::Probe { branch: BranchId(1) }],
        }];
        let p = flatten(&body, &Default::default());
        assert_eq!(p.ops, vec![FlatOp::ProbeSelect { cond: 4, then_branch: 0, else_branch: 1 }]);

        // An arm with extra work keeps the jump lowering.
        let body = vec![Instr::If {
            cond: 4,
            then_body: vec![
                Instr::Probe { branch: BranchId(0) },
                Instr::Const { dst: 1, value: 1.0 },
            ],
            else_body: vec![Instr::Probe { branch: BranchId(1) }],
        }];
        let p = flatten(&body, &Default::default());
        assert!(matches!(p.ops[0], FlatOp::JumpIfZero { .. }));
    }
}
