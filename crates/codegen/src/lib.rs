#![warn(missing_docs)]

//! CFTCG fuzzing code generation.
//!
//! This crate implements the paper's **Fuzzing Code Generation** stage
//! (Section 3.1): it converts a validated model into executable, branch-
//! instrumented code plus the model-specific fuzz driver.
//!
//! * **Schedule conversion + code synthesis** — [`compile`] turns a
//!   [`Model`](cftcg_model::Model) into a [`CompiledModel`]: a structured
//!   step program (the *step-IR*) over an `f64` register file with explicit
//!   state slots, executed by the fast [`Executor`] VM. The step-IR plays
//!   the role of the generated C in the paper; [`emit_c`] additionally
//!   prints equivalent instrumented C source for inspection.
//! * **Branch instrumentation** — during conversion every decision point is
//!   annotated with probes following the four modes of the paper's
//!   Figure 4: (a) boolean-block inputs, (b) data-switch branches,
//!   (c) branch blocks (If / SwitchCase action subsystems), and
//!   (d) conditionals inside blocks (Saturation, MATLAB Function,
//!   charts, ...) including implicit `else` branches. The resulting
//!   [`InstrumentationMap`](cftcg_coverage::InstrumentationMap) is carried
//!   by the compiled model.
//! * **Fuzz driver generation** — [`TupleLayout`] is computed from the
//!   top-level inports (Section 3.1.1): per-iteration field offsets, sizes
//!   and types. It decodes fuzzer byte streams into input tuples exactly
//!   like the `memcpy` driver of the paper's Figure 3, whose C text
//!   [`emit_driver_c`] prints.
//! * **Replay** — [`replay_suite`] runs a finished test suite through the
//!   instrumented program with a full tracker and scores Decision /
//!   Condition / MCDC coverage; this is the common yardstick used by every
//!   experiment (the paper converts test cases to CSV and replays them in
//!   Simulink's coverage tool — [`test_case_to_csv`] mirrors that exporter).
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use cftcg_codegen::{compile, Executor};
//! use cftcg_coverage::BranchBitmap;
//! use cftcg_model::{BlockKind, DataType, ModelBuilder, Value};
//!
//! let mut b = ModelBuilder::new("clip");
//! let u = b.inport("u", DataType::F64);
//! let sat = b.add("sat", BlockKind::Saturation { lower: 0.0, upper: 1.0 });
//! let y = b.outport("y");
//! b.wire(u, sat);
//! b.wire(sat, y);
//! let model = b.finish()?;
//!
//! let compiled = compile(&model)?;
//! let mut exec = Executor::new(&compiled);
//! let mut cov = BranchBitmap::new(compiled.map().branch_count());
//! let out = exec.step(&[Value::F64(7.0)], &mut cov);
//! assert_eq!(out, vec![Value::F64(1.0)]); // clipped
//! assert!(cov.count() > 0); // the upper-limit branch probe fired
//! # Ok(())
//! # }
//! ```

mod batch;
mod cemit;
mod compile;
mod flatten;
mod ir;
#[cfg(cftcg_jit)]
mod jit;
mod layout;
mod lower;
mod opt;
mod replay;
mod vm;

pub use batch::{BatchExecutor, BatchStats, DEFAULT_BATCH_WIDTH, MAX_BATCH_WIDTH};
pub use cemit::{emit_c, emit_driver_c};
pub use compile::{compile, CompileError, CompiledModel, SignalMeta};
pub use ir::{BinopCode, FuncCode, Instr, Reg, UnopCode};
pub use layout::{
    test_case_from_csv, test_case_to_csv, FieldLayout, ParseCsvError, TestCase, TupleLayout,
};
pub use opt::OptStats;
pub use replay::{replay_case, replay_suite};
pub use vm::{resolve_engine, Engine, Executor, JitStats};
