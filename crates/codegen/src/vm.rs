//! The step-program executor: the runtime of the "generated fuzz code".
//!
//! Where the paper compiles its generated C with Clang `-O2` and runs it
//! in-process under LibFuzzer, this reproduction executes the step-IR with a
//! register VM. Three execution engines share one `Executor` interface:
//!
//! * the **flat engine** (default) runs the optimized, flattened program —
//!   a non-recursive, jump-threaded dispatch loop over a linear op array
//!   (see [`crate::flatten`]); recorders that promise
//!   [`Recorder::OBSERVES_PROBES`]` == false` are routed to a
//!   probe-stripped program variant, the replay/minimization fast path;
//! * the **JIT engine** ([`Executor::new_jit`]) lowers the same flat
//!   programs to native x86-64 machine code (see `crate::jit`) — available
//!   with the `jit` feature on x86-64 Linux, transparently falling back to
//!   the flat engine everywhere else;
//! * the **reference engine** ([`Executor::new_reference`]) walks the
//!   original unoptimized instruction tree — the semantic baseline the
//!   differential tests and byte-identity suites compare against.

use cftcg_coverage::{AssertionId, BranchId, ConditionId, DecisionId, Recorder};
use cftcg_model::interp::{lookup1d, lookup2d};
use cftcg_model::Value;

use crate::compile::CompiledModel;
use crate::flatten::{FlatOp, FlatProgram};
use crate::ir::Instr;
use crate::layout::TestCase;

/// Which execution engine an [`Executor`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The unoptimized recursive tree walker (semantic baseline).
    Reference,
    /// The optimized flat jump-threaded VM (always available).
    Flat,
    /// The native x86-64 JIT tier. Requesting it where unavailable (other
    /// architectures, `--no-default-features`, executable-page mapping
    /// refused) transparently resolves to [`Engine::Flat`].
    Jit,
    /// The batched structure-of-arrays tier: the fuzz loop executes `width`
    /// cases per pass through the flat program (see
    /// [`BatchExecutor`](crate::BatchExecutor)), replaying coverage-earning
    /// cases on the best single-case engine. `width == 0` means the
    /// default ([`crate::DEFAULT_BATCH_WIDTH`]). A single-case [`Executor`]
    /// asked for this tier runs that replay engine.
    Batch {
        /// Lanes per batch (0 = default width).
        width: usize,
    },
}

impl Engine {
    /// Whether the JIT tier can be compiled in this build (the `jit`
    /// feature on x86-64 Linux). Individual models can still fall back at
    /// run time if executable pages cannot be mapped.
    pub const fn jit_supported() -> bool {
        cfg!(cftcg_jit)
    }

    /// The best engine this build offers: [`Engine::Jit`] when supported,
    /// otherwise [`Engine::Flat`].
    pub const fn best() -> Engine {
        if Engine::jit_supported() {
            Engine::Jit
        } else {
            Engine::Flat
        }
    }

    /// Reads the `CFTCG_ENGINE` environment override: `ref`/`reference`,
    /// `flat`, `jit`, or `batch`/`batch:N` (case-insensitive; `N` an
    /// explicit lane width). Returns `None` when unset or unrecognized.
    pub fn from_env() -> Option<Engine> {
        let v = std::env::var("CFTCG_ENGINE").ok()?;
        match v.to_ascii_lowercase().as_str() {
            "ref" | "reference" => Some(Engine::Reference),
            "flat" => Some(Engine::Flat),
            "jit" => Some(Engine::Jit),
            "batch" => Some(Engine::Batch { width: 0 }),
            s => {
                let width: usize = s.strip_prefix("batch:")?.parse().ok()?;
                (1..=crate::batch::MAX_BATCH_WIDTH)
                    .contains(&width)
                    .then_some(Engine::Batch { width })
            }
        }
    }

    /// The engine's short name (`ref`/`flat`/`jit`/`batch`) as logged into
    /// bench and campaign metadata.
    pub const fn name(self) -> &'static str {
        match self {
            Engine::Reference => "ref",
            Engine::Flat => "flat",
            Engine::Jit => "jit",
            Engine::Batch { .. } => "batch",
        }
    }
}

/// Resolves the effective engine from the three-level preference chain
/// every CLI entry point shares: the `CFTCG_ENGINE` environment override
/// wins, then the caller's configured preference, then `default`.
pub fn resolve_engine(preference: Option<Engine>, default: Engine) -> Engine {
    Engine::from_env().or(preference).unwrap_or(default)
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Native code-size accounting for one JIT-compiled model (see
/// [`CompiledModel::jit_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitStats {
    /// Machine-code bytes emitted for the probed program.
    pub probed_code_bytes: usize,
    /// Machine-code bytes emitted for the probe-stripped program.
    pub noprobe_code_bytes: usize,
    /// Straight-line native blocks in the probed program (jump targets
    /// plus entry).
    pub probed_blocks: usize,
    /// Straight-line native blocks in the probe-stripped program.
    pub noprobe_blocks: usize,
    /// Wall-clock cost of compiling both program variants, nanoseconds.
    pub compile_ns: u64,
}

/// An execution session over one compiled model: registers + state.
///
/// See the crate-level example for usage. `step` is generic over the
/// [`Recorder`] so the fuzz loop's branch bitmap monomorphizes to direct
/// stores — and so the probe-observation const folds the fast-path
/// selection away entirely.
#[derive(Debug, Clone)]
pub struct Executor<'c> {
    compiled: &'c CompiledModel,
    regs: Vec<f64>,
    /// The canonical start-of-case register file (zeros plus hoisted
    /// constants): [`Executor::reset`] restores it so every case's
    /// execution is a pure function of its bytes, with no register residue
    /// from the previous case — the invariant the batch tier's lane
    /// classification relies on, and what replay/minimization (which
    /// always run cases on fresh executors) already assumed.
    reg_canon: Vec<f64>,
    state: Vec<f64>,
    inputs: Vec<f64>,
    outputs: Vec<f64>,
    engine: Engine,
    #[cfg(cftcg_jit)]
    jit: Option<&'c crate::jit::JitProgram>,
}

impl<'c> Executor<'c> {
    /// Creates an executor with freshly initialized state, running the
    /// optimized flat program (the production engine).
    pub fn new(compiled: &'c CompiledModel) -> Self {
        Self::with_engine(compiled, Engine::Flat)
    }

    /// Creates an executor running the *unoptimized* structured program
    /// with the recursive tree walker — the reference semantics that the
    /// optimizer and flattener must preserve bit-for-bit.
    ///
    /// Note the reference register file is the pre-compaction one:
    /// [`Executor::reg`] on a reference executor must be indexed with
    /// [`CompiledModel::reference_signals`], not
    /// [`CompiledModel::signals`].
    pub fn new_reference(compiled: &'c CompiledModel) -> Self {
        Self::with_engine(compiled, Engine::Reference)
    }

    /// Creates an executor running native JIT-compiled code when the build
    /// and host support it, silently falling back to the flat VM otherwise
    /// — callers never need to feature-gate. [`Executor::engine`] reports
    /// which tier was actually selected.
    pub fn new_jit(compiled: &'c CompiledModel) -> Self {
        Self::with_engine(compiled, Engine::Jit)
    }

    /// Creates an executor with an explicit engine choice.
    /// [`Engine::Jit`] resolves to [`Engine::Flat`] when unavailable;
    /// [`Engine::Batch`] — a fuzz-loop strategy, not a single-case engine —
    /// resolves to the best scalar engine (the tier's winner-replay path).
    pub fn with_engine(compiled: &'c CompiledModel, engine: Engine) -> Self {
        let engine = if matches!(engine, Engine::Batch { .. }) { Engine::best() } else { engine };
        #[cfg(cftcg_jit)]
        let mut engine = engine;
        #[cfg(not(cftcg_jit))]
        let engine = if engine == Engine::Jit { Engine::Flat } else { engine };
        #[cfg(cftcg_jit)]
        let jit = if engine == Engine::Jit {
            let prog = compiled.jit_program();
            if prog.is_none() {
                engine = Engine::Flat;
            }
            prog
        } else {
            None
        };
        let reference = engine == Engine::Reference;
        let num_regs = if reference { compiled.reference_regs } else { compiled.num_regs };
        let mut regs = vec![0.0; num_regs];
        if !reference {
            // Hoisted constants: single-writer top-level `Const` registers
            // are pre-loaded once here instead of re-stored every tick by
            // the flat programs (both variants share the register space).
            for &(r, v) in &compiled.flat.reg_init {
                regs[r as usize] = v;
            }
            for &(r, v) in &compiled.flat_noprobe.reg_init {
                regs[r as usize] = v;
            }
        }
        let reg_canon = regs.clone();
        Executor {
            regs,
            reg_canon,
            state: compiled.state_init.clone(),
            inputs: vec![0.0; compiled.input_types.len()],
            outputs: vec![0.0; compiled.output_types.len()],
            compiled,
            engine,
            #[cfg(cftcg_jit)]
            jit,
        }
    }

    /// The compiled model this executor runs.
    pub fn compiled(&self) -> &CompiledModel {
        self.compiled
    }

    /// Whether this executor runs the reference tree walker instead of the
    /// optimized flat program.
    pub fn is_reference(&self) -> bool {
        self.engine == Engine::Reference
    }

    /// The engine this executor actually runs (after JIT fallback
    /// resolution — a [`Executor::new_jit`] executor reports
    /// [`Engine::Flat`] when native code is unavailable).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Resets all state to initial conditions — the generated driver's
    /// `Model_init()` call, executed once per test case. Also restores the
    /// canonical register file, so consecutive cases on one executor see
    /// exactly what a fresh executor would.
    pub fn reset(&mut self) {
        self.state.copy_from_slice(&self.compiled.state_init);
        self.regs.copy_from_slice(&self.reg_canon);
    }

    /// Executes one model iteration, collecting the outputs into a fresh
    /// `Vec`. Allocation-sensitive callers (per-iteration loops) should use
    /// [`Executor::step_into`] and reuse one buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the model's inport count.
    pub fn step<R: Recorder>(&mut self, inputs: &[Value], recorder: &mut R) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.compiled.output_types.len());
        self.step_into(inputs, &mut out, recorder);
        out
    }

    /// Executes one model iteration, writing the outputs into `out`
    /// (cleared first, capacity reused) — [`Executor::step`] without the
    /// per-iteration `Vec` allocation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the model's inport count.
    pub fn step_into<R: Recorder>(
        &mut self,
        inputs: &[Value],
        out: &mut Vec<Value>,
        recorder: &mut R,
    ) {
        assert_eq!(inputs.len(), self.compiled.input_types.len(), "input arity mismatch");
        for (slot, v) in self.inputs.iter_mut().zip(inputs) {
            *slot = v.as_f64();
        }
        self.run_body_owned(recorder);
        out.clear();
        out.extend(
            self.compiled
                .output_types
                .iter()
                .zip(&self.outputs)
                .map(|(ty, &x)| Value::from_f64(x, *ty)),
        );
    }

    /// Executes one iteration from a raw input tuple (driver fast path: no
    /// `Value` allocation).
    ///
    /// # Panics
    ///
    /// Panics if `tuple` is shorter than the layout's tuple size.
    pub fn step_tuple<R: Recorder>(&mut self, tuple: &[u8], recorder: &mut R) {
        let layout = self.compiled.layout();
        for (i, field) in layout.fields().iter().enumerate() {
            let v = Value::from_le_bytes(&tuple[field.offset..], field.dtype);
            self.inputs[i] = v.as_f64();
        }
        self.run_body_owned(recorder);
    }

    /// Runs a whole test case: `Model_init()` then one iteration per tuple,
    /// exactly like the generated `FuzzTestOneInput` of the paper's
    /// Figure 3. Returns the number of iterations executed.
    pub fn run_case<R: Recorder>(&mut self, case: &TestCase, recorder: &mut R) -> usize {
        self.reset();
        // Copy the `&'c` reference out of `self` so iterating the layout
        // doesn't hold a borrow of `self` (and doesn't clone the layout).
        let compiled: &'c CompiledModel = self.compiled;
        let tuples = compiled.layout().split(&case.bytes);
        let iterations = tuples.len();
        for tuple in tuples {
            self.step_tuple(tuple, recorder);
        }
        iterations
    }

    /// The current state vector (delay lines, chart variables, held
    /// outputs, ...). Together with [`Executor::set_state`] this lets
    /// search-based generators (the SLDV-like baseline) snapshot and
    /// restore execution states.
    pub fn state(&self) -> &[f64] {
        &self.state
    }

    /// Restores a state vector captured with [`Executor::state`].
    ///
    /// # Panics
    ///
    /// Panics if `state` has the wrong length for this model.
    pub fn set_state(&mut self, state: &[f64]) {
        self.state.copy_from_slice(state);
    }

    /// Reads one register of the current register file.
    ///
    /// With the registers listed in
    /// [`CompiledModel::signals`](crate::CompiledModel::signals) this is the
    /// VM's signal probe: after a step, `reg(meta.reg)` is the value block
    /// port `meta.name` produced (or held) this tick. Reading costs one
    /// index per probed signal — tracing is O(probed), not O(model).
    ///
    /// A reference executor's register file predates compaction: index it
    /// with [`CompiledModel::reference_signals`](crate::CompiledModel::reference_signals).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range for this model's register file.
    pub fn reg(&self, reg: crate::ir::Reg) -> f64 {
        self.regs[reg as usize]
    }

    /// Current outport values (after a step).
    pub fn outputs(&self) -> Vec<Value> {
        self.compiled
            .output_types
            .iter()
            .zip(&self.outputs)
            .map(|(ty, &x)| Value::from_f64(x, *ty))
            .collect()
    }

    fn run_body_owned<R: Recorder>(&mut self, recorder: &mut R) {
        if self.engine == Engine::Reference {
            run_tree(
                &self.compiled.reference,
                &mut self.regs,
                &mut self.state,
                &self.inputs,
                &mut self.outputs,
                &self.compiled.tables1,
                &self.compiled.tables2,
                recorder,
            );
            return;
        }
        #[cfg(cftcg_jit)]
        if self.engine == Engine::Jit {
            let jit = self.jit.expect("Jit engine implies compiled native code");
            crate::jit::run_jit(
                jit,
                &mut self.regs,
                &mut self.state,
                &self.inputs,
                &mut self.outputs,
                recorder,
            );
            return;
        }
        // `OBSERVES_PROBES` is an associated const, so monomorphization
        // folds this selection away: a `NullRecorder` caller compiles
        // straight to the probe-stripped program.
        let program: &FlatProgram =
            if R::OBSERVES_PROBES { &self.compiled.flat } else { &self.compiled.flat_noprobe };
        run_flat(
            program,
            &mut self.regs,
            &mut self.state,
            &self.inputs,
            &mut self.outputs,
            &self.compiled.tables1,
            &self.compiled.tables2,
            recorder,
        );
    }
}

/// The jump-threaded dispatch loop over a flat program: no recursion, no
/// per-call operand chase, relational dispatch decided at lowering time.
#[allow(clippy::too_many_arguments)]
fn run_flat<R: Recorder>(
    program: &FlatProgram,
    regs: &mut [f64],
    state: &mut [f64],
    inputs: &[f64],
    outputs: &mut [f64],
    tables1: &[(Vec<f64>, Vec<f64>)],
    tables2: &[crate::compile::Lookup2Table],
    recorder: &mut R,
) {
    let ops: &[FlatOp] = &program.ops;
    let const_pool: &[f64] = &program.const_pool;
    let mut pc = 0usize;
    while let Some(op) = ops.get(pc) {
        pc += 1;
        match *op {
            FlatOp::Const { dst, idx } => regs[dst as usize] = const_pool[idx as usize],
            FlatOp::Const2 { dst1, idx1, dst2, idx2 } => {
                regs[dst1 as usize] = const_pool[idx1 as usize];
                regs[dst2 as usize] = const_pool[idx2 as usize];
            }
            FlatOp::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
            FlatOp::Input { dst, index } => regs[dst as usize] = inputs[index as usize],
            FlatOp::Output { index, src } => outputs[index as usize] = regs[src as usize],
            FlatOp::Unop { dst, op, src } => {
                let x = regs[src as usize];
                regs[dst as usize] = match op {
                    crate::ir::UnopCode::Neg => -x,
                    crate::ir::UnopCode::Not => f64::from(x == 0.0),
                    crate::ir::UnopCode::Truthy => f64::from(x != 0.0),
                };
            }
            FlatOp::Binop { dst, op, lhs, rhs } => {
                regs[dst as usize] = op.apply(regs[lhs as usize], regs[rhs as usize]);
            }
            FlatOp::BinopCmp { dst, op, lhs, rhs } => {
                let (l, r) = (regs[lhs as usize], regs[rhs as usize]);
                recorder.compare(l, r);
                regs[dst as usize] = op.apply(l, r);
            }
            FlatOp::Call { dst, func, argc, args } => {
                let mut xs = [0.0f64; crate::flatten::MAX_INLINE];
                for i in 0..argc as usize {
                    xs[i] = regs[args[i] as usize];
                }
                regs[dst as usize] = func.apply(&xs[..argc as usize]);
            }
            FlatOp::CastSat { dst, src, ty } => {
                regs[dst as usize] = Value::from_f64(regs[src as usize], ty).as_f64();
            }
            FlatOp::CastSatCopy { dst, src, ty, dst2 } => {
                let v = Value::from_f64(regs[src as usize], ty).as_f64();
                regs[dst as usize] = v;
                regs[dst2 as usize] = v;
            }
            FlatOp::CopyCastSat { dst, src, dst2, ty } => {
                let v = regs[src as usize];
                regs[dst as usize] = v;
                regs[dst2 as usize] = Value::from_f64(v, ty).as_f64();
            }
            FlatOp::LoadState { dst, slot } => regs[dst as usize] = state[slot as usize],
            FlatOp::Load2 { dst1, slot1, dst2, slot2 } => {
                regs[dst1 as usize] = state[slot1 as usize];
                regs[dst2 as usize] = state[slot2 as usize];
            }
            FlatOp::StoreState { slot, src } => state[slot as usize] = regs[src as usize],
            FlatOp::StoreState2 { slot1, src1, slot2, src2 } => {
                state[slot1 as usize] = regs[src1 as usize];
                state[slot2 as usize] = regs[src2 as usize];
            }
            FlatOp::ShiftState { base, len, src } => {
                let (base, len) = (base as usize, len as usize);
                state.copy_within(base + 1..base + len, base);
                state[base + len - 1] = regs[src as usize];
            }
            FlatOp::Lookup1 { dst, src, table } => {
                let (breaks, values) = &tables1[table as usize];
                regs[dst as usize] = lookup1d(breaks, values, regs[src as usize]);
            }
            FlatOp::Lookup2 { dst, row, col, table } => {
                let (rb, cb, values) = &tables2[table as usize];
                regs[dst as usize] =
                    lookup2d(rb, cb, values, regs[row as usize], regs[col as usize]);
            }
            FlatOp::Probe { branch } => recorder.branch(BranchId(u32::from(branch))),
            FlatOp::CondProbe { cond, src } => {
                recorder.condition(ConditionId(u32::from(cond)), regs[src as usize] != 0.0);
            }
            FlatOp::CondProbe2 { cond1, src1, cond2, src2 } => {
                recorder.condition(ConditionId(u32::from(cond1)), regs[src1 as usize] != 0.0);
                recorder.condition(ConditionId(u32::from(cond2)), regs[src2 as usize] != 0.0);
            }
            FlatOp::Decision1 { decision, cond, src } => {
                // Fused CondProbe + single-condition DecisionEval: the
                // recorder sees the exact event sequence the unfused pair
                // produced — condition first, then the one-bit decision.
                let v = regs[src as usize] != 0.0;
                recorder.condition(ConditionId(u32::from(cond)), v);
                recorder.decision_eval(DecisionId(u32::from(decision)), u64::from(v), u32::from(v));
            }
            FlatOp::DecisionSel { decision, cond, src, then_branch, else_branch } => {
                // Fully fused decision preamble: condition, decision_eval,
                // then exactly the branch event the taken outcome arm
                // would have fired — same events, one dispatch.
                let v = regs[src as usize] != 0.0;
                recorder.condition(ConditionId(u32::from(cond)), v);
                recorder.decision_eval(DecisionId(u32::from(decision)), u64::from(v), u32::from(v));
                let taken = if v { then_branch } else { else_branch };
                recorder.branch(BranchId(u32::from(taken)));
            }
            FlatOp::CmpSel { op, dst, lhs, rhs, decision, cond, then_branch, else_branch } => {
                // Fused relational guard + decision preamble: compare,
                // condition, decision_eval, then the taken outcome's branch
                // event — the exact four-event sequence of the unfused
                // BinopCmp + DecisionSel pair, in one dispatch.
                let (l, r) = (regs[lhs as usize], regs[rhs as usize]);
                recorder.compare(l, r);
                let v = op.apply(l, r);
                regs[dst as usize] = v;
                let t = v != 0.0;
                recorder.condition(ConditionId(u32::from(cond)), t);
                recorder.decision_eval(DecisionId(u32::from(decision)), u64::from(t), u32::from(t));
                let taken = if t { then_branch } else { else_branch };
                recorder.branch(BranchId(u32::from(taken)));
            }
            FlatOp::DecisionEvalSmall { decision, outcome, len, conds } => {
                let mut vector = 0u64;
                for (bit, c) in conds[..len as usize].iter().enumerate() {
                    if regs[*c as usize] != 0.0 {
                        vector |= 1 << bit;
                    }
                }
                let out = u32::from(regs[outcome as usize] != 0.0);
                recorder.decision_eval(DecisionId(u32::from(decision)), vector, out);
            }
            FlatOp::DecisionEvalPool { decision, outcome, start, len } => {
                let conds = &program.cond_pool[start as usize..start as usize + len as usize];
                let mut vector = 0u64;
                for (bit, c) in conds.iter().enumerate() {
                    if regs[*c as usize] != 0.0 {
                        vector |= 1 << bit;
                    }
                }
                let out = u32::from(regs[outcome as usize] != 0.0);
                recorder.decision_eval(DecisionId(u32::from(decision)), vector, out);
            }
            FlatOp::Assert { id, cond } => {
                recorder.assertion(AssertionId(u32::from(id)), regs[cond as usize] != 0.0);
            }
            FlatOp::ProbeSelect { cond, then_branch, else_branch } => {
                // Fused `if { Probe } else { Probe }`: fire exactly the
                // branch event the taken arm would have, with no jumps.
                let taken = if regs[cond as usize] != 0.0 { then_branch } else { else_branch };
                recorder.branch(BranchId(u32::from(taken)));
            }
            FlatOp::CmpJump { op, dst, lhs, rhs, skip } => {
                // Fused relational guard + entry jump of an `if` with a
                // real body: same compare event, same dst write, then the
                // conditional skip the unfused JumpIfZero performed.
                let (l, r) = (regs[lhs as usize], regs[rhs as usize]);
                recorder.compare(l, r);
                let v = op.apply(l, r);
                regs[dst as usize] = v;
                if v == 0.0 {
                    pc += skip as usize;
                }
            }
            FlatOp::JumpIfZero { cond, skip } => {
                if regs[cond as usize] == 0.0 {
                    pc += skip as usize;
                }
            }
            FlatOp::JzLoad { cond, skip, dst, slot } => {
                if regs[cond as usize] == 0.0 {
                    pc += skip as usize;
                } else {
                    regs[dst as usize] = state[slot as usize];
                }
            }
            FlatOp::LoadJz { dst, slot, cond, skip } => {
                regs[dst as usize] = state[slot as usize];
                if regs[cond as usize] == 0.0 {
                    pc += skip as usize;
                }
            }
            FlatOp::DecisionSelJz { decision, cond, src, then_branch, else_branch, skip } => {
                // DecisionSel's exact event sequence, then the entry jump
                // of the real branch body on the same register.
                let v = regs[src as usize] != 0.0;
                recorder.condition(ConditionId(u32::from(cond)), v);
                recorder.decision_eval(DecisionId(u32::from(decision)), u64::from(v), u32::from(v));
                let taken = if v { then_branch } else { else_branch };
                recorder.branch(BranchId(u32::from(taken)));
                if !v {
                    pc += skip as usize;
                }
            }
            FlatOp::JzJz { cond1, skip1, cond2, skip2 } => {
                if regs[cond1 as usize] == 0.0 {
                    pc += skip1 as usize;
                } else if regs[cond2 as usize] == 0.0 {
                    pc += skip2 as usize;
                }
            }
            FlatOp::JumpIfNonZero { cond, skip } => {
                if regs[cond as usize] != 0.0 {
                    pc += skip as usize;
                }
            }
            FlatOp::Jump { skip } => pc += skip as usize,
        }
    }
}

/// The reference tree walker over the unoptimized structured program — the
/// seed VM, kept verbatim as the semantic baseline for differential tests.
#[allow(clippy::too_many_arguments)]
fn run_tree<R: Recorder>(
    body: &[Instr],
    regs: &mut [f64],
    state: &mut [f64],
    inputs: &[f64],
    outputs: &mut [f64],
    tables1: &[(Vec<f64>, Vec<f64>)],
    tables2: &[crate::compile::Lookup2Table],
    recorder: &mut R,
) {
    for instr in body {
        match instr {
            Instr::Const { dst, value } => regs[*dst as usize] = *value,
            Instr::Copy { dst, src } => regs[*dst as usize] = regs[*src as usize],
            Instr::Input { dst, index } => regs[*dst as usize] = inputs[*index],
            Instr::Output { index, src } => outputs[*index] = regs[*src as usize],
            Instr::Unop { dst, op, src } => {
                let x = regs[*src as usize];
                regs[*dst as usize] = match op {
                    crate::ir::UnopCode::Neg => -x,
                    crate::ir::UnopCode::Not => f64::from(x == 0.0),
                    crate::ir::UnopCode::Truthy => f64::from(x != 0.0),
                };
            }
            Instr::Binop { dst, op, lhs, rhs } => {
                let (l, r) = (regs[*lhs as usize], regs[*rhs as usize]);
                if op.is_relational() {
                    recorder.compare(l, r);
                }
                regs[*dst as usize] = op.apply(l, r);
            }
            Instr::Call { dst, func, args } => {
                let mut xs = [0.0f64; 3];
                for (i, a) in args.iter().enumerate() {
                    xs[i] = regs[*a as usize];
                }
                regs[*dst as usize] = func.apply(&xs[..args.len()]);
            }
            Instr::CastSat { dst, src, ty } => {
                regs[*dst as usize] = Value::from_f64(regs[*src as usize], *ty).as_f64();
            }
            Instr::LoadState { dst, slot } => regs[*dst as usize] = state[*slot],
            Instr::StoreState { slot, src } => state[*slot] = regs[*src as usize],
            Instr::ShiftState { base, len, src } => {
                state.copy_within(base + 1..base + len, *base);
                state[base + len - 1] = regs[*src as usize];
            }
            Instr::Lookup1 { dst, src, table } => {
                let (breaks, values) = &tables1[*table];
                regs[*dst as usize] = lookup1d(breaks, values, regs[*src as usize]);
            }
            Instr::Lookup2 { dst, row, col, table } => {
                let (rb, cb, values) = &tables2[*table];
                regs[*dst as usize] =
                    lookup2d(rb, cb, values, regs[*row as usize], regs[*col as usize]);
            }
            Instr::Probe { branch } => recorder.branch(*branch),
            Instr::Assert { id, cond } => {
                recorder.assertion(*id, regs[*cond as usize] != 0.0);
            }
            Instr::CondProbe { cond, src } => {
                recorder.condition(*cond, regs[*src as usize] != 0.0);
            }
            Instr::DecisionEval { decision, conds, outcome } => {
                let mut vector = 0u64;
                for (bit, c) in conds.iter().enumerate() {
                    if regs[*c as usize] != 0.0 {
                        vector |= 1 << bit;
                    }
                }
                let out = u32::from(regs[*outcome as usize] != 0.0);
                recorder.decision_eval(*decision, vector, out);
            }
            Instr::If { cond, then_body, else_body } => {
                let taken = regs[*cond as usize] != 0.0;
                let branch = if taken { then_body } else { else_body };
                run_tree(branch, regs, state, inputs, outputs, tables1, tables2, recorder);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use cftcg_coverage::{BranchBitmap, FullTracker, NullRecorder};
    use cftcg_model::{BlockKind, DataType, ModelBuilder};

    fn saturation_model() -> CompiledModel {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let sat = b.add("sat", BlockKind::Saturation { lower: -1.0, upper: 1.0 });
        let y = b.outport("y");
        b.wire(u, sat);
        b.wire(sat, y);
        compile(&b.finish().unwrap()).unwrap()
    }

    #[test]
    fn step_produces_expected_outputs() {
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut rec = NullRecorder;
        assert_eq!(exec.step(&[Value::F64(0.5)], &mut rec), vec![Value::F64(0.5)]);
        assert_eq!(exec.step(&[Value::F64(9.0)], &mut rec), vec![Value::F64(1.0)]);
        assert_eq!(exec.step(&[Value::F64(-9.0)], &mut rec), vec![Value::F64(-1.0)]);
    }

    #[test]
    fn reference_engine_matches_flat_engine() {
        let compiled = saturation_model();
        let mut flat = Executor::new(&compiled);
        let mut tree = Executor::new_reference(&compiled);
        let mut rec = NullRecorder;
        for x in [0.5, 9.0, -9.0, f64::NAN, 0.0] {
            let a = flat.step(&[Value::F64(x)], &mut rec);
            let b = tree.step(&[Value::F64(x)], &mut rec);
            let bits =
                |vs: &[Value]| -> Vec<u64> { vs.iter().map(|v| v.as_f64().to_bits()).collect() };
            assert_eq!(bits(&a), bits(&b), "input {x}");
        }
    }

    #[test]
    fn probes_fire_into_bitmap() {
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut cov = BranchBitmap::new(compiled.map().branch_count());
        exec.step(&[Value::F64(9.0)], &mut cov);
        // Upper-limit decision true outcome fired; lower-limit decision
        // never evaluated this iteration.
        assert_eq!(cov.count(), 1);
        cov.clear();
        exec.step(&[Value::F64(0.0)], &mut cov);
        // Upper false + lower false.
        assert_eq!(cov.count(), 2);
    }

    #[test]
    fn run_case_resets_and_counts_iterations() {
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut tracker = FullTracker::new(compiled.map());
        let case = TestCase::new(vec![0u8; 8 * 3 + 2]); // 3 tuples + fragment
        assert_eq!(exec.run_case(&case, &mut tracker), 3);
    }

    #[test]
    fn full_tracker_scores_saturation() {
        use cftcg_coverage::CoverageReport;
        let compiled = saturation_model();
        let mut exec = Executor::new(&compiled);
        let mut tracker = FullTracker::new(compiled.map());
        for x in [0.0, 9.0, -9.0] {
            exec.step(&[Value::F64(x)], &mut tracker);
        }
        let report = CoverageReport::score(compiled.map(), &tracker);
        assert_eq!(report.decision.covered, 4);
        assert_eq!(report.decision.total, 4);
        assert_eq!(report.condition.percent(), 100.0);
        assert_eq!(report.mcdc.percent(), 100.0);
    }

    #[test]
    fn jit_executor_matches_flat_on_saturation() {
        let compiled = saturation_model();
        let mut jit = Executor::new_jit(&compiled);
        let mut flat = Executor::new(&compiled);
        if Engine::jit_supported() {
            assert_eq!(jit.engine(), Engine::Jit, "jit requested and supported");
        } else {
            assert_eq!(jit.engine(), Engine::Flat, "transparent fallback");
        }
        let mut cov_j = BranchBitmap::new(compiled.map().branch_count());
        let mut cov_f = BranchBitmap::new(compiled.map().branch_count());
        for x in [0.5, 9.0, -9.0, 0.0, f64::NAN, -0.0] {
            let a = jit.step(&[Value::F64(x)], &mut cov_j);
            let b = flat.step(&[Value::F64(x)], &mut cov_f);
            let bits =
                |vs: &[Value]| -> Vec<u64> { vs.iter().map(|v| v.as_f64().to_bits()).collect() };
            assert_eq!(bits(&a), bits(&b), "input {x}");
            assert_eq!(cov_j, cov_f, "input {x}");
        }
    }

    #[test]
    fn jit_null_recorder_runs_noprobe_program() {
        let compiled = saturation_model();
        let mut jit = Executor::new_jit(&compiled);
        let mut rec = NullRecorder;
        assert_eq!(jit.step(&[Value::F64(9.0)], &mut rec), vec![Value::F64(1.0)]);
        assert_eq!(jit.step(&[Value::F64(-9.0)], &mut rec), vec![Value::F64(-1.0)]);
    }

    #[test]
    fn engine_env_parsing() {
        // Uses the parser directly (no env mutation: tests run threaded).
        assert_eq!(Engine::Flat.name(), "flat");
        assert_eq!(Engine::Jit.name(), "jit");
        assert_eq!(Engine::Reference.name(), "ref");
        assert_eq!(
            Engine::best(),
            if Engine::jit_supported() { Engine::Jit } else { Engine::Flat }
        );
    }

    #[test]
    fn null_recorder_fast_path_still_computes_outputs_and_state() {
        let mut b = ModelBuilder::new("m");
        let u = b.inport("u", DataType::F64);
        let d = b.add("d", BlockKind::UnitDelay { initial: Value::F64(0.0) });
        let y = b.outport("y");
        b.wire(u, d);
        b.wire(d, y);
        let compiled = compile(&b.finish().unwrap()).unwrap();
        let mut exec = Executor::new(&compiled);
        let mut rec = NullRecorder;
        // Unit delay: output lags input by one tick even with probes
        // stripped (state stores are effects, not probes).
        assert_eq!(exec.step(&[Value::F64(3.0)], &mut rec), vec![Value::F64(0.0)]);
        assert_eq!(exec.step(&[Value::F64(5.0)], &mut rec), vec![Value::F64(3.0)]);
    }
}
